// Slotted-page heap file: the minidb table store.
//
// Page layout:
//   [0..3]   uint32 tuple_count
//   [4..23]  reserved (free-space pointers etc. in a real system)
//   [24..]   line pointers: uint32 offset-within-page per tuple
//   [... ]   tuples growing from the end of the page downward, each
//            kTupleHeaderSize bytes of header followed by the row values
//            encoded at their declared widths.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/types.h"
#include "expr/table.h"
#include "minidb/page.h"

namespace adv::minidb {

struct HeapStats {
  uint64_t pages_read = 0;
  uint64_t tuples_read = 0;
};

// Column description persisted in the heap file header page.
struct HeapColumn {
  std::string name;
  DataType type = DataType::kFloat64;
};

class HeapFileWriter {
 public:
  HeapFileWriter(const std::string& path, std::vector<HeapColumn> cols);

  // Appends one row (values in column order) and returns its TupleId.
  TupleId append(const double* values);

  uint64_t tuple_count() const { return tuples_; }
  uint32_t page_count() const { return next_page_; }

  // Flushes the final page and the header; the file is unreadable before
  // close() completes.
  void close();

 private:
  void flush_page();

  std::string path_;
  std::vector<HeapColumn> cols_;
  std::size_t row_payload_;  // bytes of one encoded row (without header)
  std::unique_ptr<BufferedWriter> out_;
  std::vector<unsigned char> page_;
  uint32_t page_tuples_ = 0;
  std::size_t lp_cursor_ = 0;    // next line-pointer write position
  std::size_t data_cursor_ = 0;  // next tuple end position (grows downward)
  uint32_t next_page_ = 1;       // page 0 is the header
  uint64_t tuples_ = 0;
};

class HeapFileReader {
 public:
  explicit HeapFileReader(const std::string& path);

  const std::vector<HeapColumn>& columns() const { return cols_; }
  uint64_t tuple_count() const { return tuple_count_; }
  uint32_t page_count() const { return page_count_; }
  uint64_t file_bytes() const { return file_.size(); }

  // Memory-maps the heap file; scan()/fetch() then decode pages straight
  // out of the mapping instead of preading into a scratch buffer.  Returns
  // false when the platform refuses the mapping (readers fall back to
  // pread transparently).  Call before sharing the reader across threads.
  bool map() { return file_.map(); }
  bool is_mapped() const { return file_.mapped_data() != nullptr; }

  // Full scan: decodes every tuple into `row` (one double per column) and
  // invokes fn(row).  Page-at-a-time I/O.
  void scan(const std::function<void(const double*)>& fn,
            HeapStats* stats = nullptr) const;

  // Fetches specific tuples (bitmap-heap-scan style: callers pass TIDs
  // sorted by page so each page is read once).
  void fetch(const std::vector<TupleId>& sorted_tids,
             const std::function<void(const double*)>& fn,
             HeapStats* stats = nullptr) const;

 private:
  void decode_page(const unsigned char* page, uint32_t page_no,
                   const std::function<void(uint16_t, const double*)>& fn)
      const;

  FileHandle file_;
  std::vector<HeapColumn> cols_;
  std::size_t row_payload_ = 0;
  uint64_t tuple_count_ = 0;
  uint32_t page_count_ = 0;
};

}  // namespace adv::minidb
