#include "minidb/heap.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "common/error.h"

namespace adv::minidb {

namespace {

std::size_t payload_bytes(const std::vector<HeapColumn>& cols) {
  std::size_t n = 0;
  for (const auto& c : cols) n += size_of(c.type);
  return n;
}

// Header page: magic, column metadata, tuple/page counts.
constexpr char kMagic[8] = {'M', 'D', 'B', 'H', 'E', 'A', 'P', '1'};

}  // namespace

HeapFileWriter::HeapFileWriter(const std::string& path,
                               std::vector<HeapColumn> cols)
    : path_(path),
      cols_(std::move(cols)),
      row_payload_(payload_bytes(cols_)),
      out_(std::make_unique<BufferedWriter>(path)),
      page_(kPageSize, 0) {
  if (cols_.empty()) throw InternalError("heap file needs columns");
  std::size_t tuple_bytes = kTupleHeaderSize + row_payload_;
  if (kPageHeaderSize + kLinePointerSize + tuple_bytes > kPageSize)
    throw InternalError("heap tuple larger than a page");
  // Reserve the header page; it is rewritten by close().
  std::vector<unsigned char> header(kPageSize, 0);
  out_->write(header.data(), header.size());
  lp_cursor_ = kPageHeaderSize;
  data_cursor_ = kPageSize;
}

TupleId HeapFileWriter::append(const double* values) {
  std::size_t tuple_bytes = kTupleHeaderSize + row_payload_;
  if (lp_cursor_ + kLinePointerSize + tuple_bytes > data_cursor_)
    flush_page();

  data_cursor_ -= tuple_bytes;
  // Line pointer.
  uint32_t off = static_cast<uint32_t>(data_cursor_);
  std::memcpy(page_.data() + lp_cursor_, &off, 4);
  lp_cursor_ += kLinePointerSize;
  // Tuple header: length word plus MVCC-style visibility fields (xmin,
  // xmax, infomask), which the scan checks per tuple like PostgreSQL does.
  uint32_t len = static_cast<uint32_t>(tuple_bytes);
  std::memcpy(page_.data() + data_cursor_, &len, 4);
  uint32_t xmin = 2, xmax = 0;
  uint16_t infomask = 0x0001;  // "committed"
  std::memcpy(page_.data() + data_cursor_ + 4, &xmin, 4);
  std::memcpy(page_.data() + data_cursor_ + 8, &xmax, 4);
  std::memcpy(page_.data() + data_cursor_ + 12, &infomask, 2);
  // Row values at declared widths.
  unsigned char* p = page_.data() + data_cursor_ + kTupleHeaderSize;
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    encode_double(cols_[c].type, values[c], p);
    p += size_of(cols_[c].type);
  }
  TupleId tid{next_page_, static_cast<uint16_t>(page_tuples_)};
  page_tuples_++;
  tuples_++;
  return tid;
}

void HeapFileWriter::flush_page() {
  std::memcpy(page_.data(), &page_tuples_, 4);
  out_->write(page_.data(), kPageSize);
  std::fill(page_.begin(), page_.end(), 0);
  page_tuples_ = 0;
  lp_cursor_ = kPageHeaderSize;
  data_cursor_ = kPageSize;
  next_page_++;
}

void HeapFileWriter::close() {
  if (!out_) return;
  if (page_tuples_ > 0) flush_page();
  out_->close();
  out_.reset();

  // Rewrite the header page in place.
  std::vector<unsigned char> header(kPageSize, 0);
  unsigned char* p = header.data();
  std::memcpy(p, kMagic, 8);
  p += 8;
  uint32_t ncols = static_cast<uint32_t>(cols_.size());
  std::memcpy(p, &ncols, 4);
  p += 4;
  std::memcpy(p, &tuples_, 8);
  p += 8;
  uint32_t pages = next_page_;
  std::memcpy(p, &pages, 4);
  p += 4;
  for (const auto& c : cols_) {
    uint8_t t = static_cast<uint8_t>(c.type);
    std::memcpy(p, &t, 1);
    p += 1;
    uint16_t len = static_cast<uint16_t>(c.name.size());
    std::memcpy(p, &len, 2);
    p += 2;
    std::memcpy(p, c.name.data(), c.name.size());
    p += c.name.size();
    if (static_cast<std::size_t>(p - header.data()) > kPageSize - 64)
      throw InternalError("heap header overflow: too many/long columns");
  }
  int fd = ::open(path_.c_str(), O_WRONLY);
  if (fd < 0) throw IoError("cannot reopen heap file header: " + path_);
  ssize_t w = ::pwrite(fd, header.data(), kPageSize, 0);
  ::close(fd);
  if (w != static_cast<ssize_t>(kPageSize))
    throw IoError("heap header write failed: " + path_);
}

HeapFileReader::HeapFileReader(const std::string& path) : file_(path) {
  std::vector<unsigned char> header(kPageSize);
  file_.pread_exact(header.data(), kPageSize, 0);
  if (std::memcmp(header.data(), kMagic, 8) != 0)
    throw IoError("'" + path + "' is not a minidb heap file");
  const unsigned char* p = header.data() + 8;
  uint32_t ncols;
  std::memcpy(&ncols, p, 4);
  p += 4;
  std::memcpy(&tuple_count_, p, 8);
  p += 8;
  std::memcpy(&page_count_, p, 4);
  p += 4;
  for (uint32_t c = 0; c < ncols; ++c) {
    uint8_t t;
    std::memcpy(&t, p, 1);
    p += 1;
    uint16_t len;
    std::memcpy(&len, p, 2);
    p += 2;
    HeapColumn col;
    col.type = static_cast<DataType>(t);
    col.name.assign(reinterpret_cast<const char*>(p), len);
    p += len;
    cols_.push_back(std::move(col));
  }
  row_payload_ = payload_bytes(cols_);
}

void HeapFileReader::decode_page(
    const unsigned char* page, uint32_t page_no,
    const std::function<void(uint16_t, const double*)>& fn) const {
  (void)page_no;
  uint32_t count;
  std::memcpy(&count, page, 4);
  std::vector<double> row(cols_.size());
  for (uint32_t s = 0; s < count; ++s) {
    uint32_t off;
    std::memcpy(&off, page + kPageHeaderSize + s * kLinePointerSize, 4);
    // Visibility check (PostgreSQL checks xmin/xmax/infomask per tuple).
    uint32_t xmin, xmax;
    uint16_t infomask;
    std::memcpy(&xmin, page + off + 4, 4);
    std::memcpy(&xmax, page + off + 8, 4);
    std::memcpy(&infomask, page + off + 12, 2);
    if (xmin == 0 || xmax != 0 || (infomask & 0x0001) == 0) continue;
    const unsigned char* tup = page + off + kTupleHeaderSize;
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      row[c] = decode_double(cols_[c].type, tup);
      tup += size_of(cols_[c].type);
    }
    fn(static_cast<uint16_t>(s), row.data());
  }
}

void HeapFileReader::scan(const std::function<void(const double*)>& fn,
                          HeapStats* stats) const {
  std::vector<unsigned char> page(is_mapped() ? 0 : kPageSize);
  for (uint32_t pno = 1; pno < page_count_; ++pno) {
    const uint64_t off = static_cast<uint64_t>(pno) * kPageSize;
    const unsigned char* p;
    if (is_mapped()) {
      p = file_.mapped_range(kPageSize, off);
    } else {
      file_.pread_exact(page.data(), kPageSize, off);
      p = page.data();
    }
    if (stats) stats->pages_read++;
    decode_page(p, pno, [&](uint16_t, const double* row) {
      if (stats) stats->tuples_read++;
      fn(row);
    });
  }
}

void HeapFileReader::fetch(const std::vector<TupleId>& sorted_tids,
                           const std::function<void(const double*)>& fn,
                           HeapStats* stats) const {
  std::vector<unsigned char> buf(is_mapped() ? 0 : kPageSize);
  const unsigned char* page = nullptr;
  uint32_t loaded_page = 0;  // page 0 is the header, never fetched
  std::vector<double> row(cols_.size());
  for (const TupleId& tid : sorted_tids) {
    if (tid.page != loaded_page || page == nullptr) {
      const uint64_t poff = static_cast<uint64_t>(tid.page) * kPageSize;
      if (is_mapped()) {
        page = file_.mapped_range(kPageSize, poff);
      } else {
        file_.pread_exact(buf.data(), kPageSize, poff);
        page = buf.data();
      }
      loaded_page = tid.page;
      if (stats) stats->pages_read++;
    }
    uint32_t count;
    std::memcpy(&count, page, 4);
    if (tid.slot >= count) continue;
    uint32_t off;
    std::memcpy(&off, page + kPageHeaderSize + tid.slot * kLinePointerSize,
                4);
    uint32_t xmin, xmax;
    std::memcpy(&xmin, page + off + 4, 4);
    std::memcpy(&xmax, page + off + 8, 4);
    if (xmin == 0 || xmax != 0) continue;
    const unsigned char* tup = page + off + kTupleHeaderSize;
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      row[c] = decode_double(cols_[c].type, tup);
      tup += size_of(cols_[c].type);
    }
    if (stats) stats->tuples_read++;
    fn(row.data());
  }
}

}  // namespace adv::minidb
