#include "minidb/btree.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace adv::minidb {

namespace {

constexpr char kMagic[8] = {'M', 'D', 'B', 'B', 'T', 'R', 'E', '1'};
constexpr std::size_t kEntrySize = 16;  // key(8) + page(4) + slot(2) + pad
constexpr std::size_t kNodeHeader = 24; // count(4) + next(4) + reserved
constexpr std::size_t kFanout = (kPageSize - kNodeHeader) / kEntrySize;

void put_leaf_entry(unsigned char* p, double key, TupleId tid) {
  std::memcpy(p, &key, 8);
  std::memcpy(p + 8, &tid.page, 4);
  std::memcpy(p + 12, &tid.slot, 2);
}

void get_leaf_entry(const unsigned char* p, double* key, TupleId* tid) {
  std::memcpy(key, p, 8);
  std::memcpy(&tid->page, p + 8, 4);
  std::memcpy(&tid->slot, p + 12, 2);
}

void put_inner_entry(unsigned char* p, double key, uint32_t child) {
  std::memcpy(p, &key, 8);
  std::memcpy(p + 8, &child, 4);
}

void get_inner_entry(const unsigned char* p, double* key, uint32_t* child) {
  std::memcpy(key, p, 8);
  std::memcpy(child, p + 8, 4);
}

}  // namespace

uint64_t BTree::build(const std::string& path,
                      const std::vector<Entry>& sorted_entries) {
  for (std::size_t i = 1; i < sorted_entries.size(); ++i)
    check_internal(sorted_entries[i - 1].key <= sorted_entries[i].key,
                   "BTree::build requires sorted entries");

  BufferedWriter out(path);
  // Header page written last would need a seek; reserve it and patch like
  // the heap writer: write zero header now, patch at the end.
  std::vector<unsigned char> header(kPageSize, 0);
  out.write(header.data(), kPageSize);

  uint32_t next_page = 1;
  std::vector<unsigned char> page(kPageSize, 0);

  // Leaf level.
  std::vector<std::pair<double, uint32_t>> level;  // (min key, page id)
  std::size_t n = sorted_entries.size();
  std::size_t num_leaves = (n + kFanout - 1) / kFanout;
  if (num_leaves == 0) num_leaves = 1;
  for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
    std::size_t begin = leaf * kFanout;
    std::size_t end = std::min(n, begin + kFanout);
    std::fill(page.begin(), page.end(), 0);
    uint32_t count = static_cast<uint32_t>(end - begin);
    std::memcpy(page.data(), &count, 4);
    uint32_t next_leaf = (leaf + 1 < num_leaves) ? next_page + 1 : 0;
    std::memcpy(page.data() + 4, &next_leaf, 4);
    for (std::size_t i = begin; i < end; ++i)
      put_leaf_entry(page.data() + kNodeHeader + (i - begin) * kEntrySize,
                     sorted_entries[i].key, sorted_entries[i].tid);
    double min_key = begin < end ? sorted_entries[begin].key : 0;
    level.emplace_back(min_key, next_page);
    out.write(page.data(), kPageSize);
    next_page++;
  }

  // Internal levels.
  int height = 1;
  while (level.size() > 1) {
    std::vector<std::pair<double, uint32_t>> parent;
    for (std::size_t i = 0; i < level.size(); i += kFanout) {
      std::size_t end = std::min(level.size(), i + kFanout);
      std::fill(page.begin(), page.end(), 0);
      uint32_t count = static_cast<uint32_t>(end - i);
      std::memcpy(page.data(), &count, 4);
      for (std::size_t j = i; j < end; ++j)
        put_inner_entry(page.data() + kNodeHeader + (j - i) * kEntrySize,
                        level[j].first, level[j].second);
      parent.emplace_back(level[i].first, next_page);
      out.write(page.data(), kPageSize);
      next_page++;
    }
    level = std::move(parent);
    height++;
  }
  out.close();

  // Patch the header.
  unsigned char* p = header.data();
  std::memcpy(p, kMagic, 8);
  uint32_t root = level[0].second;
  std::memcpy(p + 8, &root, 4);
  uint32_t h = static_cast<uint32_t>(height);
  std::memcpy(p + 12, &h, 4);
  uint64_t cnt = n;
  std::memcpy(p + 16, &cnt, 8);
  double mn = n ? sorted_entries.front().key : 0;
  double mx = n ? sorted_entries.back().key : 0;
  std::memcpy(p + 24, &mn, 8);
  std::memcpy(p + 32, &mx, 8);
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) throw IoError("cannot reopen btree header: " + path);
  ssize_t w = ::pwrite(fd, header.data(), kPageSize, 0);
  ::close(fd);
  if (w != static_cast<ssize_t>(kPageSize))
    throw IoError("btree header write failed: " + path);
  return static_cast<uint64_t>(next_page) * kPageSize;
}

BTree::BTree(const std::string& path) : file_(path) {
  std::vector<unsigned char> header(kPageSize);
  file_.pread_exact(header.data(), kPageSize, 0);
  if (std::memcmp(header.data(), kMagic, 8) != 0)
    throw IoError("'" + path + "' is not a minidb btree file");
  uint32_t h;
  std::memcpy(&root_page_, header.data() + 8, 4);
  std::memcpy(&h, header.data() + 12, 4);
  height_ = static_cast<int>(h);
  std::memcpy(&entry_count_, header.data() + 16, 8);
  std::memcpy(&min_key_, header.data() + 24, 8);
  std::memcpy(&max_key_, header.data() + 32, 8);
}

void BTree::range_scan(double lo, double hi,
                       const std::function<void(TupleId)>& fn,
                       BTreeStats* stats) const {
  if (entry_count_ == 0 || lo > hi) return;
  std::vector<unsigned char> page(kPageSize);

  // Descend to the leaf that may contain `lo`.
  uint32_t pno = root_page_;
  for (int level = height_; level > 1; --level) {
    file_.pread_exact(page.data(), kPageSize,
                      static_cast<uint64_t>(pno) * kPageSize);
    if (stats) stats->pages_read++;
    uint32_t count;
    std::memcpy(&count, page.data(), 4);
    // Last child whose min key is strictly below lo (first child when lo
    // precedes all).  Strict: with duplicate keys a run of lo-valued
    // entries can start at the tail of the child *before* the first child
    // whose min key equals lo, so descending by `<= lo` would skip them.
    // The leaf walk below skips any sub-lo entries this lands us on.
    uint32_t child = 0;
    std::memcpy(&child, page.data() + kNodeHeader + 8, 4);
    for (uint32_t i = 0; i < count; ++i) {
      double key;
      uint32_t c;
      get_inner_entry(page.data() + kNodeHeader + i * kEntrySize, &key, &c);
      if (i == 0 || key < lo) child = c;
      else break;
    }
    pno = child;
  }

  // Walk leaves.
  while (pno != 0) {
    file_.pread_exact(page.data(), kPageSize,
                      static_cast<uint64_t>(pno) * kPageSize);
    if (stats) stats->pages_read++;
    uint32_t count, next;
    std::memcpy(&count, page.data(), 4);
    std::memcpy(&next, page.data() + 4, 4);
    for (uint32_t i = 0; i < count; ++i) {
      double key;
      TupleId tid;
      get_leaf_entry(page.data() + kNodeHeader + i * kEntrySize, &key, &tid);
      if (key < lo) continue;
      if (key > hi) return;
      if (stats) stats->entries_returned++;
      fn(tid);
    }
    pno = next;
  }
}

double BTree::estimate_selectivity(double lo, double hi) const {
  if (entry_count_ == 0) return 0;
  double span = max_key_ - min_key_;
  if (span <= 0) return (lo <= min_key_ && min_key_ <= hi) ? 1.0 : 0.0;
  double clo = std::max(lo, min_key_), chi = std::min(hi, max_key_);
  if (clo > chi) return 0;
  return (chi - clo) / span;
}

}  // namespace adv::minidb
