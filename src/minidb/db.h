// minidb::Database — the PostgreSQL-substitute engine for the Figure 6
// comparison.
//
// Loading copies the dataset into minidb's own heap format (the storage
// and loading overhead the paper's approach avoids) and bulk-builds B+tree
// indexes.  Querying runs the same SQL subset through a two-alternative
// planner: sequential heap scan, or a bitmap-style index scan when an
// indexed attribute's predicate interval is estimated selective enough.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "expr/table.h"
#include "metadata/model.h"
#include "minidb/btree.h"
#include "minidb/heap.h"

namespace adv::minidb {

struct LoadStats {
  double load_seconds = 0;
  uint64_t rows = 0;
  uint64_t raw_bytes = 0;    // nominal payload of the source rows
  uint64_t heap_bytes = 0;   // heap file size after load
  uint64_t index_bytes = 0;  // total size of all index files
  uint64_t total_bytes() const { return heap_bytes + index_bytes; }
};

struct ExecStats {
  std::string plan;  // "SeqScan" or "IndexScan(<col>)"
  uint64_t pages_read = 0;
  uint64_t tuples_scanned = 0;
  uint64_t rows_returned = 0;
  double estimated_selectivity = 1.0;
};

class Database {
 public:
  // Creates `<dir>/<table>.heap` (+ one `.idx` per index column) from the
  // source rows.  Source column order defines the table schema.
  static Database create(const std::string& dir, const std::string& table,
                         const expr::Table& src,
                         const std::vector<std::string>& index_cols,
                         LoadStats* stats = nullptr);

  // Opens an existing database (indexes discovered from `index_cols`).
  static Database open(const std::string& dir, const std::string& table,
                       const std::vector<std::string>& index_cols);

  const meta::Schema& schema() const { return schema_; }

  // Index-scan threshold: use an index when the estimated selectivity of
  // its predicate interval is below this fraction (PostgreSQL-flavored
  // default).
  void set_index_threshold(double t) { index_threshold_ = t; }

  // Executes a SELECT; FROM must name this table (case-insensitive).
  expr::Table query(const std::string& sql, ExecStats* stats = nullptr) const;
  expr::Table query(const expr::BoundQuery& q,
                    ExecStats* stats = nullptr) const;

  uint64_t disk_bytes() const;

 private:
  Database(std::string dir, std::string table,
           std::vector<std::string> index_cols);

  struct Index {
    std::string col;
    int attr = -1;
    std::unique_ptr<BTree> tree;
    uint64_t file_bytes = 0;
  };

  std::string dir_, table_;
  std::unique_ptr<HeapFileReader> heap_;
  meta::Schema schema_;
  std::vector<Index> indexes_;
  double index_threshold_ = 0.05;
};

}  // namespace adv::minidb
