// Packed (bulk-loaded) B+tree index over one double-valued column.
//
// Built once at CREATE INDEX time from sorted (key, TupleId) pairs, stored
// in 8 KB pages in its own file.  Leaves are chained for range scans;
// internal nodes hold (separator key, child page) entries.  Lookups count
// page reads so the Figure 6 benchmark can report index-scan I/O honestly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/io.h"
#include "minidb/page.h"

namespace adv::minidb {

struct BTreeStats {
  uint64_t pages_read = 0;
  uint64_t entries_returned = 0;
};

class BTree {
 public:
  struct Entry {
    double key;
    TupleId tid;
  };

  // Bulk-builds the index file from entries (sorted ascending by key —
  // asserted).  Returns the file size in bytes.
  static uint64_t build(const std::string& path,
                        const std::vector<Entry>& sorted_entries);

  explicit BTree(const std::string& path);

  uint64_t entry_count() const { return entry_count_; }
  int height() const { return height_; }
  uint64_t file_bytes() const { return file_.size(); }
  double min_key() const { return min_key_; }
  double max_key() const { return max_key_; }

  // Invokes fn(tid) for every entry with lo <= key <= hi, in key order.
  void range_scan(double lo, double hi,
                  const std::function<void(TupleId)>& fn,
                  BTreeStats* stats = nullptr) const;

  // Uniformity-based selectivity estimate for [lo, hi] (planner input).
  double estimate_selectivity(double lo, double hi) const;

 private:
  FileHandle file_;
  uint32_t root_page_ = 0;
  int height_ = 0;
  uint64_t entry_count_ = 0;
  double min_key_ = 0, max_key_ = 0;
};

}  // namespace adv::minidb
