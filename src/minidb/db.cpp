#include "minidb/db.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/io.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sql/ast.h"

namespace adv::minidb {

namespace {

std::string heap_path(const std::string& dir, const std::string& table) {
  return dir + "/" + table + ".heap";
}

std::string index_path(const std::string& dir, const std::string& table,
                       const std::string& col) {
  return dir + "/" + table + "." + col + ".idx";
}

}  // namespace

Database::Database(std::string dir, std::string table,
                   std::vector<std::string> index_cols)
    : dir_(std::move(dir)), table_(std::move(table)) {
  heap_ = std::make_unique<HeapFileReader>(heap_path(dir_, table_));
  schema_.name = table_;
  for (const auto& c : heap_->columns()) schema_.attrs.push_back({c.name, c.type});
  for (const auto& col : index_cols) {
    Index idx;
    idx.col = col;
    idx.attr = schema_.find(col);
    if (idx.attr < 0)
      throw QueryError("index column '" + col + "' not in table " + table_);
    std::string p = index_path(dir_, table_, col);
    idx.tree = std::make_unique<BTree>(p);
    idx.file_bytes = file_size(p);
    indexes_.push_back(std::move(idx));
  }
}

Database Database::create(const std::string& dir, const std::string& table,
                          const expr::Table& src,
                          const std::vector<std::string>& index_cols,
                          LoadStats* stats) {
  Stopwatch sw;
  LoadStats ls;
  ls.rows = src.num_rows();
  ls.raw_bytes = src.payload_bytes();

  std::vector<HeapColumn> cols;
  for (const auto& c : src.columns()) cols.push_back({c.name, c.type});
  HeapFileWriter writer(heap_path(dir, table), cols);

  // Remember TIDs for index builds.
  std::vector<TupleId> tids;
  tids.reserve(src.num_rows());
  std::vector<double> row(src.num_cols());
  for (std::size_t r = 0; r < src.num_rows(); ++r) {
    for (std::size_t c = 0; c < src.num_cols(); ++c) row[c] = src.at(r, c);
    tids.push_back(writer.append(row.data()));
  }
  writer.close();
  ls.heap_bytes = file_size(heap_path(dir, table));

  for (const auto& col : index_cols) {
    int attr = -1;
    for (std::size_t c = 0; c < src.num_cols(); ++c)
      if (src.columns()[c].name == col) attr = static_cast<int>(c);
    if (attr < 0)
      throw QueryError("index column '" + col + "' not in source table");
    std::vector<BTree::Entry> entries(src.num_rows());
    for (std::size_t r = 0; r < src.num_rows(); ++r)
      entries[r] = {src.at(r, static_cast<std::size_t>(attr)), tids[r]};
    std::sort(entries.begin(), entries.end(),
              [](const BTree::Entry& a, const BTree::Entry& b) {
                return a.key < b.key;
              });
    ls.index_bytes += BTree::build(index_path(dir, table, col), entries);
  }
  ls.load_seconds = sw.elapsed_seconds();
  if (stats) *stats = ls;
  return Database(dir, table, index_cols);
}

Database Database::open(const std::string& dir, const std::string& table,
                        const std::vector<std::string>& index_cols) {
  return Database(dir, table, index_cols);
}

uint64_t Database::disk_bytes() const {
  uint64_t total = heap_->file_bytes();
  for (const auto& i : indexes_) total += i.file_bytes;
  return total;
}

expr::Table Database::query(const std::string& sql, ExecStats* stats) const {
  sql::SelectQuery q = sql::parse_select(sql);
  if (!iequals(q.table, table_) && !iequals(q.table, schema_.name))
    throw QueryError("query table '" + q.table + "' is not '" + table_ + "'");
  return query(expr::BoundQuery(std::move(q), schema_), stats);
}

expr::Table Database::query(const expr::BoundQuery& q,
                            ExecStats* stats) const {
  ExecStats es;
  expr::Table out(q.result_columns());

  // Map the full heap row to the query's needed-slot buffer.
  const auto& needed = q.needed_attrs();
  std::vector<double> buf(needed.size());
  std::vector<double> sel(q.select_slots().size());
  auto consume = [&](const double* full_row) {
    for (std::size_t s = 0; s < needed.size(); ++s)
      buf[s] = full_row[needed[s]];
    if (!q.matches(buf.data())) return;
    for (std::size_t i = 0; i < sel.size(); ++i)
      sel[i] = buf[static_cast<std::size_t>(q.select_slots()[i])];
    out.append_row(sel.data());
  };

  // Plan: cheapest sufficiently-selective index wins, else seq scan.
  const Index* best = nullptr;
  double best_sel = 1.0;
  expr::Interval best_iv;
  if (!q.intervals().contradictory()) {
    for (const auto& idx : indexes_) {
      const expr::Interval& iv =
          q.intervals().interval(static_cast<std::size_t>(idx.attr));
      if (iv.is_all()) continue;
      double lo = std::isfinite(iv.lo) ? iv.lo : idx.tree->min_key();
      double hi = std::isfinite(iv.hi) ? iv.hi : idx.tree->max_key();
      double s = idx.tree->estimate_selectivity(lo, hi);
      if (s < best_sel) {
        best_sel = s;
        best = &idx;
        best_iv = expr::Interval::closed(lo, hi);
      }
    }
  } else {
    // Contradictory predicate: nothing can match.
    if (stats) {
      stats->plan = "EmptyScan";
      stats->rows_returned = 0;
    }
    return out;
  }

  HeapStats hs;
  if (best && best_sel <= index_threshold_) {
    es.plan = "IndexScan(" + best->col + ")";
    es.estimated_selectivity = best_sel;
    BTreeStats bs;
    std::vector<TupleId> tids;
    best->tree->range_scan(best_iv.lo, best_iv.hi,
                           [&](TupleId tid) { tids.push_back(tid); }, &bs);
    std::sort(tids.begin(), tids.end());
    heap_->fetch(tids, consume, &hs);
    es.pages_read = bs.pages_read + hs.pages_read;
  } else {
    es.plan = "SeqScan";
    es.estimated_selectivity = best_sel;
    heap_->scan(consume, &hs);
    es.pages_read = hs.pages_read;
  }
  es.tuples_scanned = hs.tuples_read;
  es.rows_returned = out.num_rows();
  if (stats) *stats = es;
  return out;
}

}  // namespace adv::minidb
