// On-disk page geometry for minidb, the PostgreSQL-substitute row store
// used as the Figure 6 comparator (see DESIGN.md §4 Substitutions).
//
// The cost structure mirrors PostgreSQL's storage shape:
//   * 8 KB slotted pages with a page header and a line-pointer array;
//   * a 24-byte tuple header in front of every row (PG: 23 bytes + pad);
//   * values stored at their declared widths.
// A narrow scientific row (e.g. Titan's 32 raw bytes) therefore inflates by
// roughly 2x in the heap, and secondary B+tree indexes push total loaded
// size toward the paper's observed ~3x.
#pragma once

#include <cstdint>

namespace adv::minidb {

constexpr std::size_t kPageSize = 8192;
constexpr std::size_t kPageHeaderSize = 24;
constexpr std::size_t kLinePointerSize = 4;
constexpr std::size_t kTupleHeaderSize = 24;

// Physical address of a tuple.
struct TupleId {
  uint32_t page = 0;
  uint16_t slot = 0;

  auto operator<=>(const TupleId&) const = default;
};

}  // namespace adv::minidb
