// Deterministic fault injection for correctness campaigns.
//
// A process-wide FaultPlan holds a seeded RNG and one hit counter per
// injection *site* (a named point in the read path, the socket layer, the
// sidecar loader, ...).  Whether the k-th hit of a site fires is a pure
// function of {seed, site, k}, so a campaign is fully reproducible from
// {seed, spec} even though the *thread* that takes the k-th hit may vary
// between runs: replaying the same seed injects the same fault at the same
// per-site hit index every time.
//
// Sites are compiled into the production code as cheap guarded hooks: when
// the plan is disarmed (the default, and the only state production ever
// runs in) a hook costs one relaxed atomic load.  Arming happens
// programmatically (tests, the adv_fuzz replay CLI) or via the environment:
//
//   ADV_FAULT_SEED=42 ADV_FAULT_SPEC="pread.eio=0.02:4,mmap.fail=1" ctest
//
// Spec grammar: comma-separated `site=probability[:max_fires]`.  The
// injected behavior per site mirrors what the kernel could do — EINTR and
// EIO from pread, short reads, refused or torn mappings, partial socket
// writes, resets mid-frame — so the production EINTR/short-read/fallback
// handling is exercised, not bypassed.
#pragma once

#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace adv::faultz {

enum class Site : uint8_t {
  kPreadEintr = 0,  // pread returns -1/EINTR (the retry loop must absorb it)
  kPreadEio,        // pread returns -1/EIO (hard read error)
  kPreadShort,      // pread returns 0 early (premature EOF -> short read)
  kMmapFail,        // FileHandle::map() refuses (forces the pread fallback)
  kMmapTorn,        // a mapped-range read throws (file truncated under map)
  kSendEintr,       // send returns -1/EINTR
  kSendPartial,     // send writes a 1-byte prefix (exercises write_all loop)
  kSendReset,       // send returns -1/ECONNRESET (peer vanished mid-frame)
  kRecvEintr,       // recv returns -1/EINTR
  kRecvReset,       // recv returns -1/ECONNRESET
  kZonemapLoad,     // sidecar load aborts (must fall back to full scan)
  kNodeRun,         // a STORM node worker dies at query start
  kServeQuery,      // the query-service worker dies after admission
  kJitCompile,      // JIT kernel compilation fails (must fall back to vector)
  kAggMerge,        // partial-aggregate worker->node merge dies mid-query
  kServeCache,      // result cache misbehaves: a lookup hit is poisoned
                    // (entry evicted, treated as a miss, no single-flight
                    // join) and an insert is dropped — served rows must be
                    // byte-identical to uncached execution either way
  kCount,
};

constexpr std::size_t kNumSites = static_cast<std::size_t>(Site::kCount);

// Spec name of a site (e.g. "pread.eio").
const char* site_name(Site s);
// Site for a spec name; returns false when unknown.
bool site_from_name(const std::string& name, Site& out);

struct SiteStats {
  uint64_t hits = 0;   // times the site was reached while armed
  uint64_t fires = 0;  // times it injected
};

class FaultPlan {
 public:
  // The process-wide instance.  First use reads ADV_FAULT_SEED /
  // ADV_FAULT_SPEC and arms when both are set.
  static FaultPlan& instance();

  // Installs a campaign; throws adv::Error on a malformed spec.  Resets all
  // site counters.  Thread-safe against concurrent hooks: sites observe the
  // new plan from their next hit on.
  void arm(uint64_t seed, const std::string& spec);
  // Stops injecting (counters are kept until the next arm()).
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }
  uint64_t seed() const;
  std::string spec() const;

  // The decision hook.  Deterministic per {seed, site, hit index}; returns
  // false when disarmed or the site is not in the spec.
  bool should_fire(Site s);

  SiteStats stats(Site s) const;
  uint64_t total_fires() const;
  // "site=hits/fires" for every site that was hit, for diagnostics.
  std::string stats_string() const;

 private:
  FaultPlan();

  struct SiteState {
    double probability = 0;
    uint64_t max_fires = 0;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  std::string spec_;
  std::array<SiteState, kNumSites> sites_{};
};

// Fast gate for hot-path hooks: one atomic load when no campaign is armed.
inline bool enabled() { return FaultPlan::instance().armed(); }

// Throws adv::IoError("injected fault: <what> [site ...]") when `s` fires.
void maybe_throw_io(Site s, const char* what);

// Syscall wrappers with injection; straight pass-through when disarmed.
ssize_t inj_pread(int fd, void* buf, std::size_t n, off_t offset);
ssize_t inj_send(int fd, const void* buf, std::size_t n, int flags);
ssize_t inj_recv(int fd, void* buf, std::size_t n, int flags);

// False when kMmapFail fires (the caller must fall back to pread).
bool inj_mmap_allowed();

// RAII campaign scope for tests: arms on construction, disarms on
// destruction (also on exceptions, so a failed assertion cannot leak an
// armed plan into the next test).
class ScopedFaultPlan {
 public:
  ScopedFaultPlan(uint64_t seed, const std::string& spec);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace adv::faultz
