#include "faultz/faultz.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"

namespace adv::faultz {

namespace {

constexpr const char* kSiteNames[kNumSites] = {
    "pread.eintr", "pread.eio",  "pread.short", "mmap.fail",
    "mmap.torn",   "send.eintr", "send.partial", "send.reset",
    "recv.eintr",  "recv.reset", "zonemap.load", "node.run",
    "serve.query", "jit.compile", "agg.merge", "serve.cache",
};

}  // namespace

const char* site_name(Site s) {
  auto i = static_cast<std::size_t>(s);
  return i < kNumSites ? kSiteNames[i] : "?";
}

bool site_from_name(const std::string& name, Site& out) {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (name == kSiteNames[i]) {
      out = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

FaultPlan& FaultPlan::instance() {
  static FaultPlan plan;
  return plan;
}

FaultPlan::FaultPlan() {
  // Environment arming lets any existing binary run a campaign without code
  // changes (ctest, benches, the CLI tools).  std::getenv, not adv::env_*,
  // keeps faultz free of link dependencies.
  const char* seed = std::getenv("ADV_FAULT_SEED");
  const char* spec = std::getenv("ADV_FAULT_SPEC");
  if (seed != nullptr && spec != nullptr && *spec != '\0') {
    arm(std::strtoull(seed, nullptr, 10), spec);
  }
}

void FaultPlan::arm(uint64_t seed, const std::string& spec) {
  std::array<SiteState, kNumSites> sites{};
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    auto eq = entry.find('=');
    if (eq == std::string::npos) {
      throw ValidationError("fault spec entry missing '=': " + entry);
    }
    Site site;
    if (!site_from_name(entry.substr(0, eq), site)) {
      throw ValidationError("unknown fault site: " + entry.substr(0, eq));
    }
    std::string rhs = entry.substr(eq + 1);
    auto colon = rhs.find(':');
    auto& st = sites[static_cast<std::size_t>(site)];
    try {
      st.probability = std::stod(rhs.substr(0, colon));
      st.max_fires = colon == std::string::npos
                         ? UINT64_MAX
                         : std::stoull(rhs.substr(colon + 1));
    } catch (const std::exception&) {
      throw ValidationError("bad fault spec value: " + entry);
    }
    if (st.probability < 0.0 || st.probability > 1.0) {
      throw ValidationError("fault probability out of [0,1]: " + entry);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  spec_ = spec;
  sites_ = sites;
  armed_.store(true, std::memory_order_release);
}

void FaultPlan::disarm() { armed_.store(false, std::memory_order_release); }

uint64_t FaultPlan::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

std::string FaultPlan::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

bool FaultPlan::should_fire(Site s) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto& st = sites_[static_cast<std::size_t>(s)];
  uint64_t hit = st.hits++;
  if (st.probability <= 0.0 || st.fires >= st.max_fires) return false;
  // Pure function of {seed, site, hit index}: the same campaign fires at
  // the same per-site hit positions on every replay, independent of thread
  // interleaving.
  uint64_t h = hash_combine(hash_combine(seed_, static_cast<uint64_t>(s) + 1),
                            hit);
  if (hash_unit(h) >= st.probability) return false;
  ++st.fires;
  return true;
}

SiteStats FaultPlan::stats(Site s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto& st = sites_[static_cast<std::size_t>(s)];
  return SiteStats{st.hits, st.fires};
}

uint64_t FaultPlan::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& st : sites_) total += st.fires;
  return total;
}

std::string FaultPlan::stats_string() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (std::size_t i = 0; i < kNumSites; ++i) {
    const auto& st = sites_[i];
    if (st.hits == 0) continue;
    if (!out.empty()) out += ' ';
    out += kSiteNames[i];
    out += '=';
    out += std::to_string(st.fires);
    out += '/';
    out += std::to_string(st.hits);
  }
  return out.empty() ? "(no sites hit)" : out;
}

void maybe_throw_io(Site s, const char* what) {
  if (FaultPlan::instance().should_fire(s)) {
    throw IoError(std::string("injected fault: ") + what + " [" +
                  site_name(s) + "]");
  }
}

ssize_t inj_pread(int fd, void* buf, std::size_t n, off_t offset) {
  if (enabled()) {
    auto& plan = FaultPlan::instance();
    if (plan.should_fire(Site::kPreadEintr)) {
      errno = EINTR;
      return -1;
    }
    if (plan.should_fire(Site::kPreadEio)) {
      errno = EIO;
      return -1;
    }
    // 0 mimics an unexpected EOF (file shorter than the layout promised);
    // pread_some passes it up and pread_exact turns it into a short-read
    // IoError, unlike a partial count which its loop would simply heal.
    if (plan.should_fire(Site::kPreadShort)) return 0;
  }
  return ::pread(fd, buf, n, offset);
}

ssize_t inj_send(int fd, const void* buf, std::size_t n, int flags) {
  if (enabled()) {
    auto& plan = FaultPlan::instance();
    if (plan.should_fire(Site::kSendEintr)) {
      errno = EINTR;
      return -1;
    }
    if (plan.should_fire(Site::kSendReset)) {
      errno = ECONNRESET;
      return -1;
    }
    if (n > 1 && plan.should_fire(Site::kSendPartial)) {
      return ::send(fd, buf, 1, flags);
    }
  }
  return ::send(fd, buf, n, flags);
}

ssize_t inj_recv(int fd, void* buf, std::size_t n, int flags) {
  if (enabled()) {
    auto& plan = FaultPlan::instance();
    if (plan.should_fire(Site::kRecvEintr)) {
      errno = EINTR;
      return -1;
    }
    if (plan.should_fire(Site::kRecvReset)) {
      errno = ECONNRESET;
      return -1;
    }
  }
  return ::recv(fd, buf, n, flags);
}

bool inj_mmap_allowed() {
  return !FaultPlan::instance().should_fire(Site::kMmapFail);
}

ScopedFaultPlan::ScopedFaultPlan(uint64_t seed, const std::string& spec) {
  FaultPlan::instance().arm(seed, spec);
}

ScopedFaultPlan::~ScopedFaultPlan() { FaultPlan::instance().disarm(); }

}  // namespace adv::faultz
