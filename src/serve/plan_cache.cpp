#include "serve/plan_cache.h"

namespace adv {

std::shared_ptr<const CachedPlan> PlanCache::find(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_++;
    return nullptr;
  }
  hits_++;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> plan) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  map_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {hits_, misses_, map_.size(), capacity_};
}

}  // namespace adv
