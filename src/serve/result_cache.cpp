#include "serve/result_cache.h"

#include <chrono>

#include "faultz/faultz.h"

namespace adv::serve {

std::size_t ResultEntry::charged_bytes() const {
  std::size_t b = sizeof(ResultEntry) + replay_blob.size();
  for (const auto& c : columns) b += c.name.size() + sizeof(c);
  for (const auto& p : partitions) {
    b += sizeof(expr::Table) +
         p.num_rows() * p.num_cols() * sizeof(double);
  }
  return b;
}

// The flight is a tiny latch: the leader sets `done` (entry may be null on
// failure) and broadcasts; followers wait with a poll period so a cancelled
// client stops waiting promptly without the leader having to know about it.
class ResultCache::Flight {
 public:
  void publish(ResultEntryPtr e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry_ = std::move(e);
      done_ = true;
    }
    cv_.notify_all();
  }

  ResultEntryPtr wait(CancelToken* cancel) {
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      if (cancel != nullptr && cancel->cancelled()) return nullptr;
      cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
    return entry_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  ResultEntryPtr entry_;
};

ResultCache::ResultCache(Options opts) : opts_(opts) {}

ResultCache::Lookup ResultCache::lookup(const std::string& key,
                                        CancelToken* cancel) {
  (void)cancel;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (faultz::FaultPlan::instance().should_fire(
            faultz::Site::kServeCache)) {
      // Poisoned hit: drop the entry and make the caller execute uncached
      // (leader without a flight, so the later insert is skipped too).
      ++stats_.poisoned;
      ++stats_.misses;
      erase_locked(key);
      return Lookup{nullptr, true, nullptr};
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return Lookup{it->second.entry, false, nullptr};
  }
  ++stats_.misses;
  auto fit = flights_.find(key);
  if (fit != flights_.end()) {
    ++stats_.coalesced;
    --stats_.misses;  // a follower is not an execution
    return Lookup{nullptr, false, fit->second};
  }
  auto flight = std::make_shared<Flight>();
  flights_.emplace(key, flight);
  flight_keys_.emplace(flight.get(), key);
  return Lookup{nullptr, true, flight};
}

void ResultCache::publish(const FlightPtr& flight, ResultEntryPtr entry) {
  if (flight == nullptr) return;
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto kit = flight_keys_.find(flight.get());
    if (kit != flight_keys_.end()) {
      key = kit->second;
      flight_keys_.erase(kit);
      flights_.erase(key);
    }
    if (entry != nullptr && !key.empty()) insert_locked(key, entry);
  }
  flight->publish(std::move(entry));
}

ResultEntryPtr ResultCache::wait(const FlightPtr& flight,
                                 CancelToken* cancel) {
  if (flight == nullptr) return nullptr;
  return flight->wait(cancel);
}

void ResultCache::insert(const std::string& key, ResultEntryPtr entry) {
  if (entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  insert_locked(key, std::move(entry));
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  stats_.entries = 0;
  stats_.bytes = 0;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResultCache::insert_locked(const std::string& key, ResultEntryPtr entry) {
  std::size_t bytes = entry->charged_bytes();
  if (bytes > opts_.max_entry_bytes || bytes > opts_.capacity_bytes) {
    ++stats_.too_large;
    return;
  }
  if (faultz::FaultPlan::instance().should_fire(faultz::Site::kServeCache)) {
    ++stats_.poisoned;
    return;
  }
  erase_locked(key);  // replace, never double-charge
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), bytes, lru_.begin()});
  bytes_ += bytes;
  ++stats_.inserts;
  evict_to_budget_locked();
  stats_.entries = map_.size();
  stats_.bytes = bytes_;
}

void ResultCache::evict_to_budget_locked() {
  while (bytes_ > opts_.capacity_bytes && !lru_.empty()) {
    ++stats_.evictions;
    erase_locked(lru_.back());
  }
}

void ResultCache::erase_locked(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  stats_.entries = map_.size();
  stats_.bytes = bytes_;
}

}  // namespace adv::serve
