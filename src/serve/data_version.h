// Data version: the cache-invalidation half of the serving layer's result
// cache key (docs/SERVING.md §6).
//
// A cached query result is only reusable while the bytes it was computed
// from are still the bytes on disk.  DataVersion captures that as one
// 64-bit FNV-1a hash over the identity of every data file of the dataset
// — FileCache's FileId (dev, inode, size, nanosecond mtime), the same
// identity the handle cache revalidates against, so a same-size rewrite
// within the same wall-clock second still changes the version — plus,
// when a zone-map sidecar directory is known, the identity of the three
// sidecar files (<dataset>.zm.{heap,idx,meta}).  A missing file hashes as
// an explicit "absent" marker, so creating or deleting a sidecar changes
// the version too.
//
// The version is a *key component*, not a validation step: entries of a
// superseded version are simply never looked up again and age out of the
// LRU.  Computing it is one stat(2) per file — microseconds against the
// dentry cache, amortized over a whole served query.
#pragma once

#include <cstdint>
#include <string>

#include "codegen/plan.h"

namespace adv::serve {

struct DataVersion {
  uint64_t hash = 0;
  uint64_t files_seen = 0;  // files stat'ed (diagnostics only)

  bool operator==(const DataVersion& o) const { return hash == o.hash; }
  bool operator!=(const DataVersion& o) const { return hash != o.hash; }

  // 16-hex-digit form, used in cache keys and logs.
  std::string hex() const;

  // Stats every data file of `plan`'s dataset model (in model order) and,
  // when `sidecar_dir` is non-empty, the zone-map sidecar triplet for the
  // dataset under that directory.  Never throws: an unstatable file hashes
  // as absent (a vanished file must invalidate, not crash the server).
  static DataVersion compute(const codegen::DataServicePlan& plan,
                             const std::string& sidecar_dir = std::string());
};

}  // namespace adv::serve
