// Versioned result cache with single-flight execution dedup — the serving
// layer's hot path (docs/SERVING.md §6).
//
// The cache maps a *fully qualified* query key to the materialized result
// of a previously served query.  The key is built by the caller
// (storm::QueryServer) as
//
//   <canonical SQL> "|" <partition spec> "|" <DataVersion hex>
//
// so two textually different but semantically identical queries share an
// entry (the SQL is canonicalized through the parser's printer, the same
// normalization PlanCache keys on), and any rewrite of the underlying data
// files or zone-map sidecars changes the version component — stale entries
// are never *found*, they just age out of the LRU.  Correctness therefore
// never depends on an invalidation callback firing.
//
// Eviction is byte-budgeted LRU: every entry is charged its materialized
// size (column names + row payload + replay blob) and the least recently
// used entries are dropped until the configured budget holds.  Entries
// larger than max_entry_bytes are never stored (a single giant scan must
// not wipe the cache) — but they still flow through single-flight, so
// concurrent identical giants execute once.
//
// Single-flight: when several connections miss on the same key at once,
// exactly one (the *leader*) executes; the rest (*followers*) block on the
// flight and are handed the leader's entry directly, even when it was too
// large to store.  A leader that fails publishes null and followers fall
// back to executing themselves — no re-election, no convoy.
//
// Fault site faultz::Site::kServeCache makes the cache *misbehave benignly*
// for differential campaigns: a firing lookup-hit poisons the entry (it is
// evicted and reported as a miss, with no single-flight join), and a firing
// insert is dropped.  Either way the caller executes for real, so served
// rows must stay byte-identical to an uncached run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "expr/table.h"

namespace adv::serve {

// One materialized query result.  Immutable once published: consumers share
// it by shared_ptr<const> and stream it straight into row batches.
struct ResultEntry {
  std::vector<expr::Table::Column> columns;  // schema, in projection order
  std::vector<expr::Table> partitions;       // result rows, one per consumer
  // Opaque replay blob, stored verbatim and returned on every hit.  The
  // query server keeps the serialized per-node stats section of the kStats
  // frame here so cache hits report the work the original execution did.
  std::vector<unsigned char> replay_blob;

  std::size_t charged_bytes() const;
};

using ResultEntryPtr = std::shared_ptr<const ResultEntry>;

class ResultCache {
 public:
  struct Options {
    // Total byte budget across entries; inserting past it evicts LRU-first.
    std::size_t capacity_bytes = 64ull << 20;
    // Entries above this are handed to waiting followers but never stored.
    std::size_t max_entry_bytes = 8ull << 20;
  };

  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;            // entry served from the cache
    uint64_t misses = 0;          // leader executions (includes poisoned hits)
    uint64_t coalesced = 0;       // followers handed a leader's entry
    uint64_t inserts = 0;
    uint64_t evictions = 0;       // LRU budget evictions
    uint64_t too_large = 0;       // entries skipped by max_entry_bytes
    uint64_t poisoned = 0;        // kServeCache fired (hit evicted / insert
                                  // dropped)
    std::size_t entries = 0;      // current
    std::size_t bytes = 0;        // current
  };

  // In-progress execution of one key, shared by its leader and followers.
  class Flight;
  using FlightPtr = std::shared_ptr<Flight>;

  struct Lookup {
    ResultEntryPtr entry;  // non-null: cache hit, serve it
    bool leader = false;   // miss and this caller must execute + publish()
    // Miss bookkeeping: the leader publishes here; a follower waits here.
    // Null when the hit was poisoned by kServeCache (execute uncached, no
    // publish).
    FlightPtr flight;
  };

  ResultCache() : ResultCache(Options{}) {}
  explicit ResultCache(Options opts);

  // Hit, or miss with a single-flight role.  A null `cancel` never blocks;
  // lookup itself never blocks either way — followers block in wait().
  Lookup lookup(const std::string& key, CancelToken* cancel = nullptr);

  // Leader hand-off: stores `entry` (unless null, too large, or dropped by
  // kServeCache) and wakes every follower with it.  Must be called exactly
  // once per leader lookup, null on failure.
  void publish(const FlightPtr& flight, ResultEntryPtr entry);

  // Follower wait: blocks until the leader publishes or `cancel` fires.
  // Null means the leader failed or the wait was cancelled — execute
  // uncached.
  ResultEntryPtr wait(const FlightPtr& flight, CancelToken* cancel = nullptr);

  // Direct insert without a flight (used when the caller bypassed
  // single-flight, e.g. after a poisoned hit).  Same size/fault gates as
  // publish().
  void insert(const std::string& key, ResultEntryPtr entry);

  // Drops every stored entry (in-flight executions are unaffected).
  void clear();

  Stats stats() const;
  const Options& options() const { return opts_; }

 private:
  struct Slot {
    ResultEntryPtr entry;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  void insert_locked(const std::string& key, ResultEntryPtr entry);
  void evict_to_budget_locked();
  void erase_locked(const std::string& key);

  const Options opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> map_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, FlightPtr> flights_;
  std::unordered_map<Flight*, std::string> flight_keys_;
  std::size_t bytes_ = 0;
  Stats stats_;
};

// Serving-layer knobs for storm::QueryServer, grouped here so the server
// ctor takes one struct (docs/SERVING.md §6).
struct ServeOptions {
  // Result cache: off by default — front ends opt in because correctness
  // of a hit additionally depends on the DataVersion stat sweep, which a
  // deployment with exotic storage (no stable inode identity) may not
  // want.
  bool enable_result_cache = false;
  ResultCache::Options result_cache;
  // Server-side plan cache (bind + per-node index runs + jit modules),
  // keyed like the result cache so data rewrites retire stale AFC lists.
  bool enable_plan_cache = true;
  std::size_t plan_cache_capacity = 32;
  // Zone-map sidecar directory folded into DataVersion; empty = data files
  // only.  Set it to the same directory the server's chunk filter was
  // loaded from, or a sidecar rebuild will not invalidate cached results.
  std::string version_sidecar_dir;
};

}  // namespace adv::serve
