#include "serve/data_version.h"

#include <cstdio>

#include "common/error.h"
#include "common/io.h"
#include "zonemap/zonemap.h"

namespace adv::serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv1a64(const void* data, std::size_t n, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t mix_u64(uint64_t h, uint64_t v) { return fnv1a64(&v, sizeof v, h); }

// Hashes one file's identity into `h`.  The path is part of the hash so a
// rename (same inode, new name in the model) changes the version, and an
// unstatable file contributes a marker distinct from every real FileId.
uint64_t mix_file(uint64_t h, const std::string& path, uint64_t* seen) {
  h = fnv1a64(path.data(), path.size(), h);
  try {
    auto id = FileHandle::stat_id(path);
    h = mix_u64(h, id.dev);
    h = mix_u64(h, id.ino);
    h = mix_u64(h, id.size);
    h = mix_u64(h, static_cast<uint64_t>(id.mtime_ns));
    if (seen != nullptr) ++*seen;
  } catch (const IoError&) {
    h = fnv1a64("<absent>", 8, h);
  }
  return h;
}

}  // namespace

std::string DataVersion::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf, 16);
}

DataVersion DataVersion::compute(const codegen::DataServicePlan& plan,
                                 const std::string& sidecar_dir) {
  DataVersion v;
  uint64_t h = kFnvOffset;
  const auto& model = plan.model();
  for (const auto& f : model.files()) {
    h = mix_file(h, f.full_path, &v.files_seen);
  }
  if (!sidecar_dir.empty()) {
    auto sp = zonemap::ZoneMap::sidecar_paths(sidecar_dir,
                                              model.dataset_name());
    h = mix_file(h, sp.heap, &v.files_seen);
    h = mix_file(h, sp.btree, &v.files_seen);
    h = mix_file(h, sp.manifest, &v.files_seen);
  }
  v.hash = h;
  return v;
}

}  // namespace adv::serve
