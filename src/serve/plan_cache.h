// LRU cache of planning outcomes for repeated queries.
//
// Planning a query — bind + one index-function run per virtual node, each
// walking the dataset's file groups and consulting the chunk filter — is
// pure: it depends only on the compiled descriptor and the query text.
// Both front ends cache the result — VirtualTable keyed by (descriptor
// hash, normalized query shape), QueryServer additionally folding the
// serve::DataVersion in so a data rewrite retires the plan (its AFC lists
// embed file paths).  The shape is the parsed query printed back to
// canonical SQL so formatting differences ("select *" vs "SELECT  *")
// share one entry.  A hit replays the exact per-node AFC lists of the
// cold run through StormCluster::execute_planned / execute_streaming.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "afc/types.h"
#include "expr/predicate.h"
#include "kernels/jit.h"

namespace adv {

// One cached planning outcome: the bound query plus the per-node
// index-function results (chunk filter already applied).
struct CachedPlan {
  expr::BoundQuery query;
  std::vector<afc::PlanResult> node_plans;  // node_plans[n] serves node n
  // Precompiled jit modules matching node_plans (empty unless the table
  // runs in jit kernel mode; null entries mean that node fell back).
  // Cached alongside the plan so warm queries skip emit + compile + dlopen.
  std::vector<std::shared_ptr<const kernels::JitModule>> jit_modules;

  explicit CachedPlan(expr::BoundQuery q) : query(std::move(q)) {}
};

// Thread-safe LRU map.  Entries are shared_ptr<const CachedPlan> so an
// in-flight query keeps its plan alive even if the cache evicts it.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };

  // Returns the entry for `key` (marking it most-recently-used) or null,
  // counting a hit or miss.
  std::shared_ptr<const CachedPlan> find(const std::string& key);

  // Inserts (or replaces) `key`, evicting the least-recently-used entry
  // beyond capacity.
  void insert(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  void clear();
  Stats stats() const;

 private:
  using Lru =
      std::list<std::pair<std::string, std::shared_ptr<const CachedPlan>>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  Lru lru_;  // front = most recently used
  std::unordered_map<std::string, Lru::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace adv
