// advirt — automatic data virtualization for flat-file scientific datasets.
//
// Umbrella header exposing the public API:
//
//   * meta::parse_descriptor / meta::Descriptor — the meta-data description
//     language (schema + storage + layout components).
//   * codegen::DataServicePlan — compiles a descriptor into index and
//     extraction functions; execute() runs SQL locally.
//   * codegen::emit_cpp — emits the same functions as standalone C++.
//   * storm::StormCluster — the parallel middleware: per-node index/extract/
//     filter/partition/transfer with a virtual node per storage node.
//   * index::MinMaxIndex / index::RTreeFilter — the chunk indexing service.
//   * zonemap::ZoneMap — persistent per-chunk min/max sidecars over every
//     stored attribute (see docs/INDEXING.md).
//   * expr::Table — query results; expr::UdfRegistry — user-defined filter
//     functions for WHERE clauses.
//
// Quickstart (the one-class facade):
//
//   auto vt = adv::VirtualTable::open(descriptor_text, "IparsData",
//                                     "/data/root");
//   adv::expr::Table t = vt.query(
//       "SELECT * FROM IparsData WHERE TIME > 1000 AND TIME < 1100");
//
// or, with explicit control:
//
//   auto plan = std::make_shared<adv::codegen::DataServicePlan>(
//       adv::meta::parse_descriptor(descriptor_text), "IparsData", root);
//   adv::storm::StormCluster cluster(plan);
//   auto result = cluster.execute(sql, partition_spec, &chunk_index);
#pragma once

#include "api/virtual_table.h"
#include "codegen/emit.h"
#include "codegen/plan.h"
#include "expr/predicate.h"
#include "expr/table.h"
#include "expr/udf.h"
#include "index/minmax.h"
#include "index/rtree.h"
#include "index/spatial_filter.h"
#include "metadata/model.h"
#include "metadata/xml.h"
#include "sql/ast.h"
#include "storm/cluster.h"
#include "storm/net.h"
#include "zonemap/zonemap.h"
