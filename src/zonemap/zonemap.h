// Zone-map index — persistent per-chunk min/max over every stored
// numeric attribute.
//
// Where index::MinMaxIndex covers only the DATAINDEX attributes a dataset
// declares (the paper's spatial index), the zone map is the storage-level
// generalization: one build pass scans each aligned file chunk exactly once
// and records the [min, max] of *all* stored schema attributes, so any
// interval predicate — not just declared index dimensions — can prune
// chunks before extraction.
//
// The index persists as a sidecar triplet next to the data (minidb files,
// so the metadata survives restarts and is memory-mapped on reopen):
//
//   <dataset>.zm.heap  slotted-page heap, one tuple per chunk:
//                      [FILE id, OFFSET, MIN/MAX per indexed attribute]
//   <dataset>.zm.idx   bulk-loaded B+tree keyed by FILE id -> TupleId,
//                      so one file's chunk entries load without scanning
//                      the whole heap
//   <dataset>.zm.meta  text manifest: indexed attributes and the file
//                      table with each data file's size + mtime fingerprint
//
// Staleness is per file: on load, any data file whose size or mtime no
// longer matches the manifest has its entries dropped, so queries fall
// back to a full scan of that file's chunks (conservative `may_match` =
// true) — stale metadata can cost I/O, never correctness.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "afc/types.h"
#include "common/io.h"

namespace adv {
class ThreadPool;
}
namespace adv::codegen {
class DataServicePlan;
}

namespace adv::zonemap {

struct ZoneKey {
  std::string file;  // full path of the data file
  uint64_t offset = 0;
  auto operator<=>(const ZoneKey&) const = default;
};

struct ZoneBounds {
  // Parallel to ZoneMap::attrs(): [min, max] per indexed attribute.
  std::vector<std::pair<double, double>> bounds;
};

// Sidecar file locations for one dataset under a given directory.
struct SidecarPaths {
  std::string heap;
  std::string btree;
  std::string manifest;
};

class ZoneMap : public afc::ChunkFilter, public afc::ChunkBoundsSource {
 public:
  struct BuildOptions {
    IoMode io_mode = IoMode::kAuto;
    // Schema attribute indices to cover; empty = every stored attribute.
    std::vector<int> attrs;
  };

  ZoneMap() = default;
  explicit ZoneMap(std::vector<int> attrs) : attrs_(std::move(attrs)) {}

  // Schema attribute indices that appear as stored fields in any region of
  // the dataset's layout (sorted, deduplicated).
  static std::vector<int> stored_attrs(const codegen::DataServicePlan& plan);

  // Scans every chunk of `plan` once — one planner run per virtual node,
  // AFC scans fanned out across `pool` when given (each worker owns its
  // Extractor; file handles come from the shared FileCache/mmap path) —
  // and records per-chunk min/max of the covered attributes.
  static ZoneMap build(const codegen::DataServicePlan& plan,
                       ThreadPool* pool, const BuildOptions& opts);
  static ZoneMap build(const codegen::DataServicePlan& plan,
                       ThreadPool* pool = nullptr) {
    return build(plan, pool, BuildOptions());
  }

  // Writes the sidecar triplet under `dir` (created if missing).  The
  // manifest is written last so a crash mid-save leaves no loadable but
  // half-written sidecar.
  void save(const std::string& dir,
            const codegen::DataServicePlan& plan) const;

  // Loads the sidecar for `plan`'s dataset.  Returns nullopt when the
  // sidecar is absent, unreadable, or was built against a different
  // attribute set than the current schema provides.  Entries of data files
  // whose size/mtime changed since the build are dropped (counted in
  // num_stale_files()).
  static std::optional<ZoneMap> load(const std::string& dir,
                                     const codegen::DataServicePlan& plan);

  static SidecarPaths sidecar_paths(const std::string& dir,
                                    const std::string& dataset);

  const std::vector<int>& attrs() const { return attrs_; }
  std::size_t num_chunks() const { return entries_.size(); }
  const std::map<ZoneKey, ZoneBounds>& entries() const { return entries_; }
  uint64_t num_files() const { return files_total_; }
  uint64_t num_stale_files() const { return files_stale_; }
  double build_seconds() const { return build_seconds_; }

  // Merges `bounds` into the entry for `key` (hull when already present).
  void add(ZoneKey key, const ZoneBounds& bounds);
  const ZoneBounds* find(const ZoneKey& key) const;

  // ChunkFilter: conservative membership test.  Unindexed chunks pass.
  bool may_match(const std::string& file_path, uint64_t offset,
                 const expr::QueryIntervals& qi) const override;

  // ChunkBoundsSource (for the code emitter).
  const std::vector<int>& bounds_attrs() const override { return attrs_; }
  bool chunk_bounds(const std::string& file_path, uint64_t offset,
                    std::vector<std::pair<double, double>>& out)
      const override;

 private:
  std::vector<int> attrs_;
  std::map<ZoneKey, ZoneBounds> entries_;
  uint64_t files_total_ = 0;
  uint64_t files_stale_ = 0;
  double build_seconds_ = 0;
};

}  // namespace adv::zonemap
