#include "zonemap/zonemap.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <set>
#include <sstream>

#include "codegen/plan.h"
#include "common/error.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "faultz/faultz.h"
#include "minidb/btree.h"
#include "minidb/heap.h"

namespace adv::zonemap {

namespace {

// ADVZM2 added content checksums of the heap/btree sidecars to the
// manifest; an ADVZM1 sidecar (no checksums) is treated as absent, which
// degrades to a full scan — never to trusting unverified bounds.
constexpr const char* kManifestMagic = "ADVZM2";

// FNV-1a over a whole file.  Not cryptographic — it guards against
// truncation and bit rot, the failure modes of a torn sidecar write.
uint64_t file_checksum(const std::string& path) {
  std::string bytes = read_text_file(path);
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Chunk offsets ride in kFloat64 heap columns; past 2^53 a uint64 is no
// longer exactly representable there.
constexpr uint64_t kMaxExactOffset = uint64_t{1} << 53;

int64_t file_mtime_stamp(const std::string& path) {
  std::error_code ec;
  auto t = std::filesystem::last_write_time(path, ec);
  if (ec) return 0;
  return static_cast<int64_t>(t.time_since_epoch().count());
}

// RowSink that folds every decoded row into running per-column bounds.
class BoundsSink final : public codegen::RowSink {
 public:
  explicit BoundsSink(std::size_t ncols)
      : ncols_(ncols),
        bounds_(ncols, {std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()}) {}

  void on_row(const double* vals, uint64_t) override {
    for (std::size_t c = 0; c < ncols_; ++c) {
      bounds_[c].first = std::min(bounds_[c].first, vals[c]);
      bounds_[c].second = std::max(bounds_[c].second, vals[c]);
    }
  }

  std::vector<std::pair<double, double>> take() { return std::move(bounds_); }

 private:
  std::size_t ncols_;
  std::vector<std::pair<double, double>> bounds_;
};

}  // namespace

void ZoneMap::add(ZoneKey key, const ZoneBounds& bounds) {
  if (bounds.bounds.size() != attrs_.size())
    throw InternalError("ZoneMap::add: bounds arity mismatch");
  auto [it, inserted] = entries_.try_emplace(std::move(key), bounds);
  if (!inserted) {
    // Same chunk reached twice (e.g. overlapping groups): keep the hull.
    for (std::size_t i = 0; i < attrs_.size(); ++i) {
      it->second.bounds[i].first =
          std::min(it->second.bounds[i].first, bounds.bounds[i].first);
      it->second.bounds[i].second =
          std::max(it->second.bounds[i].second, bounds.bounds[i].second);
    }
  }
}

const ZoneBounds* ZoneMap::find(const ZoneKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ZoneMap::may_match(const std::string& file_path, uint64_t offset,
                        const expr::QueryIntervals& qi) const {
  const ZoneBounds* b = find({file_path, offset});
  if (!b) return true;  // unindexed (or stale) chunk: cannot prune
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (!qi.chunk_may_match(static_cast<std::size_t>(attrs_[i]),
                            b->bounds[i].first, b->bounds[i].second))
      return false;
  }
  return true;
}

bool ZoneMap::chunk_bounds(const std::string& file_path, uint64_t offset,
                           std::vector<std::pair<double, double>>& out)
    const {
  const ZoneBounds* b = find({file_path, offset});
  if (!b) return false;
  out = b->bounds;
  return true;
}

SidecarPaths ZoneMap::sidecar_paths(const std::string& dir,
                                    const std::string& dataset) {
  std::string base = dir + "/" + dataset;
  return {base + ".zm.heap", base + ".zm.idx", base + ".zm.meta"};
}

std::vector<int> ZoneMap::stored_attrs(const codegen::DataServicePlan& plan) {
  const meta::Schema& schema = plan.schema();
  std::set<int> found;
  for (const auto& leaf : plan.model().leaves())
    for (const auto& region : leaf.skeleton)
      for (const auto& field : region.fields) {
        int a = schema.find(field.attr);
        if (a >= 0) found.insert(a);
      }
  return {found.begin(), found.end()};
}

ZoneMap ZoneMap::build(const codegen::DataServicePlan& plan, ThreadPool* pool,
                       const BuildOptions& opts) {
  Stopwatch sw;
  std::vector<int> attrs = opts.attrs.empty() ? stored_attrs(plan)
                                              : opts.attrs;
  if (attrs.empty())
    throw QueryError("ZoneMap::build: dataset '" +
                     plan.model().dataset_name() +
                     "' stores no schema attributes");
  const meta::Schema& schema = plan.schema();

  // One scan query covering the indexed attributes; no predicate, so every
  // chunk is visited with its unclipped offsets — the same keys the planner
  // later presents to may_match().
  std::string sql = "SELECT ";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i) sql += ", ";
    sql += schema.at(static_cast<std::size_t>(attrs[i])).name;
  }
  sql += " FROM " + plan.model().dataset_name();
  expr::BoundQuery q = plan.bind(sql);

  // Plan per virtual node — the same per-node index-function runs the
  // cluster performs — then fan the AFC scans out across the pool.
  const int nodes = plan.model().num_nodes();
  std::vector<afc::PlanResult> prs;
  prs.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    afc::PlannerOptions popts;
    popts.only_node = n;
    prs.push_back(plan.index_fn(q, popts));
  }

  std::vector<std::vector<codegen::GroupBinding>> bindings(prs.size());
  struct Task {
    std::size_t pr;
    std::size_t afc;
  };
  std::vector<Task> tasks;
  for (std::size_t p = 0; p < prs.size(); ++p) {
    for (const auto& g : prs[p].groups)
      bindings[p].push_back(codegen::bind_group(g, q, schema));
    for (std::size_t i = 0; i < prs[p].afcs.size(); ++i)
      tasks.push_back({p, i});
  }

  codegen::ExtractorOptions xopts;
  xopts.io_mode = opts.io_mode;
  std::vector<ZoneBounds> results(tasks.size());
  auto scan_one = [&](std::size_t t, codegen::Extractor& ex) {
    const afc::PlanResult& pr = prs[tasks[t].pr];
    const afc::Afc& a = pr.afcs[tasks[t].afc];
    const std::size_t g = static_cast<std::size_t>(a.group);
    BoundsSink sink(attrs.size());
    ex.extract(pr.groups[g], a, bindings[tasks[t].pr][g], q, sink);
    results[t].bounds = sink.take();
  };
  if (pool && pool->size() > 1 && tasks.size() > 1) {
    pool->parallel_for(tasks.size(), [&](std::size_t t) {
      codegen::Extractor ex(xopts);
      scan_one(t, ex);
    });
  } else {
    codegen::Extractor ex(xopts);
    for (std::size_t t = 0; t < tasks.size(); ++t) scan_one(t, ex);
  }

  ZoneMap zm(std::move(attrs));
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const afc::PlanResult& pr = prs[tasks[t].pr];
    const afc::Afc& a = pr.afcs[tasks[t].afc];
    const afc::GroupPlan& gp = pr.groups[static_cast<std::size_t>(a.group)];
    for (std::size_t c = 0; c < gp.chunks.size(); ++c) {
      if (gp.chunks[c].fields.empty()) continue;
      zm.add({gp.files[static_cast<std::size_t>(gp.chunks[c].file)],
              a.offsets[c]},
             results[t]);
    }
  }
  zm.files_total_ = plan.model().files().size();
  zm.build_seconds_ = sw.elapsed_seconds();
  return zm;
}

void ZoneMap::save(const std::string& dir,
                   const codegen::DataServicePlan& plan) const {
  std::filesystem::create_directories(dir);
  const meta::Schema& schema = plan.schema();
  SidecarPaths sp = sidecar_paths(dir, plan.model().dataset_name());

  // File table: id = rank of the path among the indexed files.
  std::map<std::string, uint32_t> file_ids;
  for (const auto& [key, b] : entries_) file_ids.emplace(key.file, 0);
  uint32_t next_id = 0;
  for (auto& [path, id] : file_ids) id = next_id++;

  // Heap: one tuple per chunk.  entries_ iterates file-major (ZoneKey
  // ordering), so the B+tree bulk-load input comes out key-sorted.
  std::vector<minidb::HeapColumn> cols;
  cols.push_back({"FILE", DataType::kFloat64});
  cols.push_back({"OFFSET", DataType::kFloat64});
  for (int a : attrs_) {
    const std::string& n = schema.at(static_cast<std::size_t>(a)).name;
    cols.push_back({"MIN_" + n, DataType::kFloat64});
    cols.push_back({"MAX_" + n, DataType::kFloat64});
  }
  minidb::HeapFileWriter heap(sp.heap, cols);
  std::vector<minidb::BTree::Entry> tree_entries;
  tree_entries.reserve(entries_.size());
  std::vector<double> row(cols.size());
  for (const auto& [key, b] : entries_) {
    if (key.offset >= kMaxExactOffset)
      throw InternalError("ZoneMap::save: chunk offset exceeds 2^53");
    row[0] = static_cast<double>(file_ids.at(key.file));
    row[1] = static_cast<double>(key.offset);
    for (std::size_t i = 0; i < attrs_.size(); ++i) {
      row[2 + 2 * i] = b.bounds[i].first;
      row[3 + 2 * i] = b.bounds[i].second;
    }
    minidb::TupleId tid = heap.append(row.data());
    tree_entries.push_back({row[0], tid});
  }
  heap.close();
  minidb::BTree::build(sp.btree, tree_entries);

  // Manifest last: it is the commit point loaders look for.  Its checksums
  // cover the heap/btree bytes just written, so a loader that sees the
  // manifest can verify it is reading the matching sidecar generation.
  std::ostringstream m;
  m << kManifestMagic << "\n";
  m << "sum " << file_checksum(sp.heap) << " " << file_checksum(sp.btree)
    << "\n";
  m << "dataset " << plan.model().dataset_name() << "\n";
  for (int a : attrs_)
    m << "attr " << a << " "
      << schema.at(static_cast<std::size_t>(a)).name << "\n";
  m << "chunks " << entries_.size() << "\n";
  for (const auto& [path, id] : file_ids) {
    m << "file " << id << " " << file_size(path) << " "
      << file_mtime_stamp(path) << " " << path << "\n";
  }
  // Commit marker: a manifest truncated anywhere (torn write, clipped
  // copy) is missing this line and the loader rejects the whole sidecar
  // rather than trusting a partial file table.
  m << "end\n";
  write_text_file(sp.manifest, m.str());
}

std::optional<ZoneMap> ZoneMap::load(const std::string& dir,
                                     const codegen::DataServicePlan& plan) {
  const meta::Schema& schema = plan.schema();
  SidecarPaths sp = sidecar_paths(dir, plan.model().dataset_name());
  if (!file_exists(sp.manifest) || !file_exists(sp.heap) ||
      !file_exists(sp.btree))
    return std::nullopt;

  struct FileEntry {
    uint32_t id;
    uint64_t size;
    int64_t mtime;
    std::string path;
  };
  std::vector<int> attrs;
  std::vector<FileEntry> files;
  bool have_sums = false;
  bool have_end = false;
  uint64_t heap_sum = 0, btree_sum = 0;
  try {
    // Injected sidecar-load failure: the catch below maps it to nullopt,
    // i.e. the same conservative "no zone map, full scan" a real corrupt
    // sidecar produces.  Wrong rows are never an option.
    faultz::maybe_throw_io(faultz::Site::kZonemapLoad,
                           "zone-map sidecar load failed");
    std::istringstream in(read_text_file(sp.manifest));
    std::string line;
    if (!std::getline(in, line) || line != kManifestMagic)
      return std::nullopt;
    while (std::getline(in, line)) {
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "sum") {
        ls >> heap_sum >> btree_sum;
        have_sums = !ls.fail();
      } else if (tag == "dataset") {
        std::string name;
        ls >> name;
        if (name != plan.model().dataset_name()) return std::nullopt;
      } else if (tag == "attr") {
        int idx;
        std::string name;
        ls >> idx >> name;
        // A rename or reorder of the schema invalidates the whole sidecar.
        if (idx < 0 || static_cast<std::size_t>(idx) >= schema.size() ||
            schema.at(static_cast<std::size_t>(idx)).name != name)
          return std::nullopt;
        attrs.push_back(idx);
      } else if (tag == "file") {
        FileEntry f;
        ls >> f.id >> f.size >> f.mtime;
        std::getline(ls, f.path);
        std::size_t i = f.path.find_first_not_of(' ');
        if (i != std::string::npos) f.path = f.path.substr(i);
        files.push_back(std::move(f));
      } else if (tag == "end") {
        have_end = true;
      }
    }
  } catch (const Error&) {
    return std::nullopt;
  }
  // No commit marker = truncated manifest; no checksums = pre-ADVZM2 or
  // clipped header.  Either way: reject, full-scan.
  if (attrs.empty() || !have_sums || !have_end) return std::nullopt;

  ZoneMap zm(std::move(attrs));
  try {
    // Verify the heap/btree bytes against the manifest before decoding
    // them: a bit-flipped page would otherwise parse into plausible but
    // wrong bounds and prune chunks that actually match.  Truncation is
    // caught here too (the checksum changes), as well as by the decoders'
    // own bounds checks.
    if (file_checksum(sp.heap) != heap_sum ||
        file_checksum(sp.btree) != btree_sum)
      return std::nullopt;
    minidb::HeapFileReader heap(sp.heap);
    heap.map();  // decode pages straight out of the mapping
    if (heap.columns().size() != 2 + 2 * zm.attrs_.size())
      return std::nullopt;
    minidb::BTree tree(sp.btree);
    for (const FileEntry& f : files) {
      zm.files_total_++;
      bool fresh = file_exists(f.path) && file_size(f.path) == f.size &&
                   file_mtime_stamp(f.path) == f.mtime;
      if (!fresh) {
        // Rewritten or deleted since the build: drop its entries so the
        // planner full-scans this file instead of trusting stale bounds.
        zm.files_stale_++;
        continue;
      }
      std::vector<minidb::TupleId> tids;
      double fid = static_cast<double>(f.id);
      tree.range_scan(fid, fid,
                      [&](minidb::TupleId tid) { tids.push_back(tid); });
      std::sort(tids.begin(), tids.end());
      heap.fetch(tids, [&](const double* row) {
        ZoneBounds b;
        b.bounds.resize(zm.attrs_.size());
        for (std::size_t i = 0; i < zm.attrs_.size(); ++i)
          b.bounds[i] = {row[2 + 2 * i], row[3 + 2 * i]};
        zm.entries_[{f.path, static_cast<uint64_t>(row[1])}] = std::move(b);
      });
    }
  } catch (const Error&) {
    return std::nullopt;
  }
  return zm;
}

}  // namespace adv::zonemap
