#include "storm/cluster.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>

#include "agg/agg.h"
#include "codegen/emit.h"
#include "common/env.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "faultz/faultz.h"

namespace adv::storm {

namespace {

// Per-worker output: extraction counters, shipping accounting, and any
// failure, written lock-free by exactly one worker and merged by the node
// after the joins.  Errors travel as strings, not exceptions — an
// exception object rethrown across threads would be shared mutable state.
struct WorkerStats {
  codegen::ExtractStats extract;
  uint64_t bytes_sent = 0;
  double transfer_seconds = 0;
  uint64_t io_retries = 0;
  std::string error;
  ErrorKind error_kind = ErrorKind::kNone;
};

// Sink that partitions matched rows into per-consumer pending batches and
// ships full batches through the data mover.  Rows land in a batch
// directly from the extractor's decode buffer — no intermediate table or
// row copy.  One instance per worker; the only cross-worker state it
// touches is the mover's channel, which is internally synchronized.
class PartitionSink final : public codegen::RowSink {
 public:
  PartitionSink(int node, std::size_t ncols, int nconsumers,
                const PartitionGenerationService& partsvc,
                DataMoverService& mover, std::size_t batch_rows,
                WorkerStats& ws, const CancelToken* cancel)
      : node_(node),
        ncols_(ncols),
        partsvc_(partsvc),
        mover_(mover),
        batch_rows_(batch_rows),
        ws_(ws),
        cancel_(cancel),
        pending_(static_cast<std::size_t>(nconsumers)) {
    for (int c = 0; c < nconsumers; ++c) reset(c);
  }

  // Scan-position sequence of the next AFC's first row.  Also marks the
  // current pending-batch fill levels so a failed extraction of this AFC
  // can be rolled back (see rollback_afc).
  void begin_afc(uint64_t base_seq) {
    base_seq_ = base_seq;
    for (std::size_t c = 0; c < pending_.size(); ++c)
      mark_[c] = pending_[c].data.size();
    flushed_since_mark_ = false;
  }

  // Discards rows buffered since the last begin_afc, making an IoError
  // retry of that AFC safe (re-extraction cannot duplicate rows).  Returns
  // false when any batch was already shipped since the mark — those rows
  // are beyond recall, so the caller must NOT retry and must fail instead.
  bool rollback_afc() {
    if (flushed_since_mark_) return false;
    for (std::size_t c = 0; c < pending_.size(); ++c)
      pending_[c].data.resize(mark_[c]);
    return true;
  }

  void on_row(const double* vals, uint64_t scan_index) override {
    int dest = partsvc_.destination(vals, base_seq_ + scan_index);
    RowBatch& b = pending_[static_cast<std::size_t>(dest)];
    b.data.insert(b.data.end(), vals, vals + ncols_);
    if (b.num_rows() >= batch_rows_) flush(dest);
  }

  // Bulk path for the vector/jit kernels.  With a single consumer every
  // row has destination 0, so the whole batch lands in one insert; with
  // multiple consumers rows route individually (destinations depend on row
  // content / sequence), preserving on_row semantics exactly.
  void on_rows(const double* rows, std::size_t ncols, std::size_t nrows,
               const uint64_t* scan_index) override {
    if (pending_.size() == 1 &&
        partsvc_.spec().policy == PartitionSpec::Policy::kSingle) {
      RowBatch& b = pending_[0];
      b.data.insert(b.data.end(), rows, rows + nrows * ncols);
      if (b.num_rows() >= batch_rows_) flush(0);
      return;
    }
    for (std::size_t i = 0; i < nrows; ++i)
      on_row(rows + i * ncols, scan_index[i]);
  }

  void flush_all() {
    for (std::size_t c = 0; c < pending_.size(); ++c)
      flush(static_cast<int>(c));
  }

 private:
  void reset(int c) {
    RowBatch& b = pending_[static_cast<std::size_t>(c)];
    b = RowBatch{};
    b.source_node = node_;
    b.consumer = c;
    b.num_cols = ncols_;
  }

  void flush(int c) {
    RowBatch& b = pending_[static_cast<std::size_t>(c)];
    if (b.data.empty()) return;
    flushed_since_mark_ = true;
    // The row-shipping poll: a cancelled query must not keep feeding the
    // data-mover channel (whose consumer may be about to stop draining).
    if (cancel_) cancel_->check();
    ws_.bytes_sent += b.bytes();
    ws_.transfer_seconds += mover_.send(std::move(b));
    reset(c);
  }

  int node_;
  std::size_t ncols_;
  const PartitionGenerationService& partsvc_;
  DataMoverService& mover_;
  std::size_t batch_rows_;
  WorkerStats& ws_;
  const CancelToken* cancel_;
  std::vector<RowBatch> pending_;
  std::vector<std::size_t> mark_ = std::vector<std::size_t>(pending_.size());
  bool flushed_since_mark_ = false;
  uint64_t base_seq_ = 0;
};

// Per-node worker: index -> parallel extract/filter -> partition -> ship.
// When `pool` is non-null the AFC list is split into contiguous ranges
// (balanced by row count, ~4 per pool thread) and scanned concurrently;
// each range worker owns its Extractor and PartitionSink.
// For pushdown queries `agg_out` (required then) receives the node's
// serialized partial-aggregate state; no row batches are shipped.
void run_node(int node, const codegen::DataServicePlan& plan,
              const expr::BoundQuery& q, const afc::ChunkFilter* filter,
              const PartitionGenerationService& partsvc,
              DataMoverService& mover, const ClusterOptions& opts,
              ThreadPool* pool, NodeStats& stats,
              const afc::PlanResult* preplanned = nullptr,
              const CancelToken* cancel = nullptr,
              const std::shared_ptr<const kernels::JitModule>* premodule =
                  nullptr,
              std::string* agg_out = nullptr) {
  stats.node_id = node;
  Stopwatch busy;
  try {
    // Node-death campaign: the whole virtual node dies before planning.
    // The try below turns it into a typed per-node error; other nodes are
    // unaffected (that is the graceful-degradation contract under test).
    faultz::maybe_throw_io(faultz::Site::kNodeRun, "storm node worker died");
    afc::PlanResult planned;
    if (!preplanned) {
      afc::PlannerOptions popts;
      popts.filter = filter;
      popts.only_node = node;
      popts.cancel = cancel;
      planned = plan.index_fn(q, popts);
    }
    const afc::PlanResult& pr = preplanned ? *preplanned : planned;
    const std::size_t nafcs = pr.afcs.size();
    stats.afcs = nafcs;
    stats.afcs_pruned = pr.stats.afcs_filtered_by_index;
    stats.rows_pruned = pr.stats.rows_pruned;
    stats.bytes_skipped = pr.stats.bytes_skipped;

    std::vector<codegen::GroupBinding> bindings;
    bindings.reserve(pr.groups.size());
    for (const auto& g : pr.groups)
      bindings.push_back(codegen::bind_group(g, q, plan.schema()));

    // jit tier: bind the per-group generated functions.  A precompiled
    // module (plan-cache warm path) is used as-is; otherwise emit+compile
    // through the process-wide cache.  Any failure — no compiler, UDF in
    // the predicate, an armed jit.compile fault — leaves jit_fn null and
    // the extractor runs the vector tier instead.
    const KernelMode mode = resolve_kernel_mode(opts.kernel_mode);
    std::shared_ptr<const kernels::JitModule> jit_mod;
    if (mode == KernelMode::kJit && !pr.groups.empty() &&
        codegen::can_jit_query(q)) {
      if (premodule != nullptr && *premodule != nullptr) {
        jit_mod = *premodule;
      } else {
        jit_mod = kernels::JitCache::instance().get_or_compile(
            codegen::emit_extract_cpp(pr, q));
      }
      if (jit_mod &&
          jit_mod->num_groups() == static_cast<int>(pr.groups.size())) {
        for (std::size_t g = 0; g < bindings.size(); ++g)
          bindings[g].jit_fn = jit_mod->group_fn(static_cast<int>(g));
      }
    }

    // Ordering contract: rows are numbered by scan position.  AFC i's rows
    // start at the prefix sum of earlier AFCs' row counts — a numbering
    // that is a function of the plan alone, so kRoundRobin/kBlockCyclic
    // destinations are identical no matter how the list is split across
    // workers (or whether a predicate drops rows in between).
    std::vector<uint64_t> base(nafcs + 1, 0);
    for (std::size_t i = 0; i < nafcs; ++i)
      base[i + 1] = base[i] + pr.afcs[i].num_rows;

    const std::size_t ncols = q.select_slots().size();
    const int nconsumers = partsvc.num_consumers();
    codegen::ExtractorOptions xopts;
    xopts.io_mode = opts.io_mode;
    xopts.cancel = cancel;
    xopts.kernel_mode = mode;

    // Aggregation / top-k pushdown: workers fold rows into local aggregate
    // state (one PushdownSink per range worker, merged below) instead of
    // partitioning and shipping them.  The strategy is chosen once from
    // the plan's cardinality hints so every worker of this query agrees.
    const bool pushdown = q.is_pushdown();
    agg::StrategyChoice agg_choice;
    if (pushdown && q.has_aggregates())
      agg_choice = agg::choose_strategy(
          q, pr, dynamic_cast<const afc::ChunkBoundsSource*>(filter));
    std::vector<std::unique_ptr<agg::PushdownSink>> psinks;

    auto scan_range = [&](std::size_t lo, std::size_t hi, WorkerStats& ws,
                          agg::PushdownSink* psink) {
      try {
        codegen::Extractor extractor(xopts);
        std::optional<PartitionSink> part;
        if (!psink)
          part.emplace(node, ncols, nconsumers, partsvc, mover,
                       opts.batch_rows, ws, cancel);
        codegen::RowSink& sink =
            psink ? static_cast<codegen::RowSink&>(*psink)
                  : static_cast<codegen::RowSink&>(*part);
        for (std::size_t i = lo; i < hi; ++i) {
          if (cancel) cancel->check();
          const afc::Afc& a = pr.afcs[i];
          // Bounded retry for transient read faults, valid only while no
          // row of this AFC left the sink: begin_afc marks the pending
          // batches and rollback_afc restores them, so a retried
          // extraction re-emits the same rows at the same scan positions.
          // Once a batch shipped, retrying would duplicate rows — the
          // error propagates instead.  (The pushdown sink buffers the AFC
          // as an uncommitted delta, so its rollback always succeeds.)
          for (std::size_t attempt = 0;; ++attempt) {
            if (psink) psink->begin_afc();
            else part->begin_afc(base[i]);
            try {
              ws.extract += extractor.extract(
                  pr.groups[static_cast<std::size_t>(a.group)], a,
                  bindings[static_cast<std::size_t>(a.group)], q, sink);
              break;
            } catch (const IoError&) {
              const bool rolled =
                  psink ? psink->rollback_afc() : part->rollback_afc();
              if (attempt >= opts.io_retry_limit || !rolled) throw;
              ++ws.io_retries;
              std::this_thread::sleep_for(std::chrono::microseconds(
                  opts.io_retry_backoff_us << attempt));
            }
          }
        }
        if (psink) psink->finish();
        else part->flush_all();
      } catch (const std::exception& e) {
        ws.error = e.what();
        ws.error_kind = classify_error(e);
      }
    };
    auto merge = [&stats](const WorkerStats& ws) {
      stats.bytes_read += ws.extract.bytes_read;
      stats.rows_scanned += ws.extract.rows_scanned;
      stats.rows_matched += ws.extract.rows_matched;
      stats.bytes_sent += ws.bytes_sent;
      stats.transfer_seconds += ws.transfer_seconds;
      stats.io_retries += ws.io_retries;
      stats.afcs_interp += ws.extract.afcs_interp;
      stats.afcs_vector += ws.extract.afcs_vector;
      stats.afcs_jit += ws.extract.afcs_jit;
      if (stats.error.empty() && !ws.error.empty()) {
        stats.error = ws.error;
        stats.error_kind = ws.error_kind;
      }
    };

    // The pool is shared by every node worker, so size this node's range
    // fan-out for its *share* of the pool: every node splitting into
    // pool->size() * 4 ranges of its own would multiply the per-range
    // setup cost (extractor scratch, pread batch buffers, per-consumer
    // pending batches) by the node count without adding parallelism —
    // measurably slower on short filtered scans (see docs/PIPELINE.md).
    const std::size_t sharing =
        opts.parallel_nodes
            ? static_cast<std::size_t>(plan.model().num_nodes())
            : 1;
    std::size_t ntasks =
        pool ? std::min(nafcs,
                        std::max<std::size_t>(1, pool->size() * 4 / sharing))
             : 1;
    // Admission heuristic: don't split below ~min_rows_per_worker rows per
    // range — on small post-pruning scans the per-range setup cost exceeds
    // the parallel win and par-* configs lose to seq-* (docs/PIPELINE.md).
    uint64_t min_rows = opts.min_rows_per_worker;
    if (min_rows == 0)
      min_rows = static_cast<uint64_t>(
          std::max<int64_t>(1, env_int("ADV_MIN_ROWS_PER_WORKER", 64 * 1024)));
    ntasks = std::min<std::size_t>(
        ntasks,
        std::max<uint64_t>(1, base[nafcs] / min_rows));
    if (!pool || pool->size() <= 1 || ntasks <= 1) ntasks = 1;
    if (pushdown)
      for (std::size_t k = 0; k < ntasks; ++k)
        psinks.push_back(std::make_unique<agg::PushdownSink>(q, agg_choice));
    if (ntasks <= 1) {
      WorkerStats ws;
      scan_range(0, nafcs, ws, pushdown ? psinks[0].get() : nullptr);
      merge(ws);
    } else {
      // Contiguous ranges cut at balanced row counts, so one heavyweight
      // AFC doesn't serialize the tail.
      std::vector<std::size_t> cuts(ntasks + 1, nafcs);
      cuts[0] = 0;
      for (std::size_t k = 1; k < ntasks; ++k) {
        uint64_t target = base[nafcs] / ntasks * k;
        cuts[k] = static_cast<std::size_t>(
            std::lower_bound(base.begin(), base.begin() + nafcs, target) -
            base.begin());
      }
      std::vector<WorkerStats> wstats(ntasks);
      // The pool-level token check makes queued ranges of a cancelled
      // query return before constructing any per-range state (the ranges
      // themselves poll per AFC and per batch once running).
      pool->parallel_for(
          ntasks,
          [&](std::size_t k) {
            scan_range(cuts[k], cuts[k + 1], wstats[k],
                       pushdown ? psinks[k].get() : nullptr);
          },
          cancel);
      for (const WorkerStats& ws : wstats) merge(ws);
    }

    // Two-phase merge, phase one: fold every range worker's aggregate
    // state into one per-node state and serialize it — the only bytes
    // that cross the node boundary.  Merging is exact, so the worker
    // order is irrelevant to the final result.
    if (pushdown && stats.error.empty()) {
      faultz::maybe_throw_io(faultz::Site::kAggMerge,
                             "partial-aggregate merge failed");
      for (const auto& ps : psinks) {
        if (!ps->table()) continue;
        switch (ps->table()->strategy()) {
          case agg::Strategy::kDense: ++stats.agg_dense; break;
          case agg::Strategy::kHash: ++stats.agg_hash; break;
          case agg::Strategy::kRadix: ++stats.agg_radix; break;
        }
      }
      agg::PushdownSink& node_sink = *psinks[0];
      for (std::size_t k = 1; k < psinks.size(); ++k)
        psinks[k]->merge_into(node_sink);
      std::string enc;
      node_sink.encode(enc);
      stats.groups_emitted = node_sink.table() ? node_sink.table()->ngroups()
                                               : node_sink.topk()->nrows();
      stats.agg_bytes_shipped = enc.size();
      stats.bytes_sent += enc.size();
      if (agg_out) *agg_out = std::move(enc);
    }
  } catch (const Error& e) {
    stats.error = e.what();
    stats.error_kind = classify_error(e);
  } catch (const std::exception& e) {
    stats.error = e.what();
    stats.error_kind = classify_error(e);
  }
  stats.busy_seconds = busy.elapsed_seconds();
}

}  // namespace

int PartitionGenerationService::destination(const double* row,
                                            uint64_t row_seq) const {
  switch (spec_.policy) {
    case PartitionSpec::Policy::kSingle:
      return 0;
    case PartitionSpec::Policy::kRoundRobin:
      return static_cast<int>(row_seq % spec_.num_consumers);
    case PartitionSpec::Policy::kHashAttr: {
      double v = row[spec_.select_index];
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof bits);
      return static_cast<int>(mix64(bits) %
                              static_cast<uint64_t>(spec_.num_consumers));
    }
    case PartitionSpec::Policy::kRangeAttr: {
      double v = row[spec_.select_index];
      double span = spec_.range_hi - spec_.range_lo;
      if (span <= 0) return 0;
      double t = (v - spec_.range_lo) / span;
      int dest = static_cast<int>(t * spec_.num_consumers);
      return std::clamp(dest, 0, spec_.num_consumers - 1);
    }
    case PartitionSpec::Policy::kBlockCyclic: {
      uint64_t block = spec_.block_size == 0 ? 1 : spec_.block_size;
      return static_cast<int>((row_seq / block) %
                              static_cast<uint64_t>(spec_.num_consumers));
    }
  }
  return 0;
}

StormCluster::StormCluster(std::shared_ptr<codegen::DataServicePlan> plan,
                           ClusterOptions opts)
    : plan_(std::move(plan)), opts_(opts), query_service_(plan_) {}

int StormCluster::num_nodes() const { return plan_->model().num_nodes(); }

ThreadPool* StormCluster::extraction_pool() {
  std::size_t t = opts_.threads_per_node;
  if (t == 0)
    t = static_cast<std::size_t>(env_int(
        "ADV_THREADS_PER_NODE",
        std::max<int64_t>(1, std::thread::hardware_concurrency())));
  if (t <= 1) return nullptr;
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(t);
  return pool_.get();
}

QueryResult StormCluster::execute(const std::string& sql,
                                  const PartitionSpec& partition,
                                  const afc::ChunkFilter* filter,
                                  CancelToken* cancel) {
  Stopwatch plan_sw;
  expr::BoundQuery q = query_service_.submit(sql);
  QueryResult r = execute(q, partition, filter, cancel);
  r.plan_seconds += plan_sw.elapsed_seconds() - r.wall_seconds;
  return r;
}

QueryResult StormCluster::execute(const expr::BoundQuery& q,
                                  const PartitionSpec& partition,
                                  const afc::ChunkFilter* filter,
                                  CancelToken* cancel) {
  // Materializing execution is streaming execution draining into tables.
  std::vector<expr::Table> tables;
  for (int c = 0; c < std::max(1, partition.num_consumers); ++c)
    tables.emplace_back(q.result_columns());
  QueryResult result = execute_streaming(
      q,
      [&](const RowBatch& batch) {
        tables[static_cast<std::size_t>(batch.consumer)].append_rows(
            batch.data.data(), batch.num_rows());
      },
      partition, filter, nullptr, cancel);
  result.partitions = std::move(tables);
  return result;
}

std::vector<afc::PlanResult> StormCluster::plan_nodes(
    const expr::BoundQuery& q, const afc::ChunkFilter* filter) {
  std::vector<afc::PlanResult> plans;
  const int nodes = num_nodes();
  plans.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    afc::PlannerOptions popts;
    popts.filter = filter;
    popts.only_node = n;
    plans.push_back(plan_->index_fn(q, popts));
  }
  return plans;
}

QueryResult StormCluster::execute_planned(
    const expr::BoundQuery& q, const std::vector<afc::PlanResult>& node_plans,
    const PartitionSpec& partition, CancelToken* cancel,
    const std::vector<std::shared_ptr<const kernels::JitModule>>*
        node_modules) {
  if (node_plans.size() != static_cast<std::size_t>(num_nodes()))
    throw QueryError("execute_planned: expected one plan per node");
  std::vector<expr::Table> tables;
  for (int c = 0; c < std::max(1, partition.num_consumers); ++c)
    tables.emplace_back(q.result_columns());
  QueryResult result = execute_streaming(
      q,
      [&](const RowBatch& batch) {
        tables[static_cast<std::size_t>(batch.consumer)].append_rows(
            batch.data.data(), batch.num_rows());
      },
      partition, nullptr, &node_plans, cancel, node_modules);
  result.partitions = std::move(tables);
  return result;
}

QueryResult StormCluster::execute_streaming(
    const expr::BoundQuery& q, const BatchSink& sink,
    const PartitionSpec& partition, const afc::ChunkFilter* filter,
    const std::vector<afc::PlanResult>* node_plans, CancelToken* cancel,
    const std::vector<std::shared_ptr<const kernels::JitModule>>*
        node_modules) {
  if (partition.num_consumers < 1)
    throw QueryError("PartitionSpec.num_consumers must be >= 1");
  // Pushdown queries partition *final* rows (result-column order); plain
  // queries partition scan rows (select-slot order).
  const bool pushdown = q.is_pushdown();
  const std::size_t part_width =
      pushdown ? q.result_columns().size() : q.select_slots().size();
  if ((partition.policy == PartitionSpec::Policy::kHashAttr ||
       partition.policy == PartitionSpec::Policy::kRangeAttr) &&
      (partition.select_index < 0 ||
       static_cast<std::size_t>(partition.select_index) >= part_width))
    throw QueryError("PartitionSpec.select_index out of range");

  Stopwatch wall;
  const int nodes = num_nodes();
  QueryResult result;
  result.node_stats.resize(static_cast<std::size_t>(nodes));

  auto channel = std::make_shared<Channel<RowBatch>>(256);
  DataMoverService mover(channel, opts_.transfer);
  PartitionGenerationService partsvc(partition);
  ThreadPool* pool = extraction_pool();

  if (node_plans && node_plans->size() != static_cast<std::size_t>(nodes))
    throw QueryError("execute_streaming: expected one plan per node");
  if (node_modules &&
      node_modules->size() != static_cast<std::size_t>(nodes))
    throw QueryError("execute_streaming: expected one jit module per node");
  std::vector<std::string> agg_states(static_cast<std::size_t>(nodes));
  auto node_body = [&](int n) {
    run_node(n, *plan_, q, filter, partsvc, mover, opts_, pool,
             result.node_stats[static_cast<std::size_t>(n)],
             node_plans ? &(*node_plans)[static_cast<std::size_t>(n)]
                        : nullptr,
             cancel,
             node_modules ? &(*node_modules)[static_cast<std::size_t>(n)]
                          : nullptr,
             &agg_states[static_cast<std::size_t>(n)]);
  };

  // A sink that throws (a remote consumer hung up mid-stream) must not
  // leak node workers blocked on a never-drained channel: capture the
  // first sink failure, cancel the query so producers stop scanning, keep
  // draining the channel (discarding batches), and rethrow only after
  // every worker joined.
  std::exception_ptr sink_error;
  auto guarded_sink = [&](const RowBatch& batch) {
    if (sink_error) return;
    try {
      sink(batch);
    } catch (...) {
      sink_error = std::current_exception();
      if (cancel) cancel->cancel();
    }
  };

  if (opts_.parallel_nodes) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) workers.emplace_back(node_body, n);
    // Close the channel once every node finished.
    std::thread closer([&] {
      for (auto& w : workers) w.join();
      channel->close();
    });
    // Client side: hand batches to the sink as they arrive.
    while (auto batch = channel->pop()) guarded_sink(*batch);
    closer.join();
  } else {
    // Sequential mode: run one node at a time, draining its output after it
    // finishes.  The per-node channel is unbounded so a node never blocks
    // on its own undrained batches.
    for (int n = 0; n < nodes; ++n) {
      auto ch = std::make_shared<Channel<RowBatch>>(
          std::numeric_limits<std::size_t>::max());
      DataMoverService seq_mover(ch, opts_.transfer);
      run_node(n, *plan_, q, filter, partsvc, seq_mover, opts_, pool,
               result.node_stats[static_cast<std::size_t>(n)],
               node_plans ? &(*node_plans)[static_cast<std::size_t>(n)]
                          : nullptr,
               cancel,
               node_modules ? &(*node_modules)[static_cast<std::size_t>(n)]
                            : nullptr,
               &agg_states[static_cast<std::size_t>(n)]);
      ch->close();
      while (auto batch = ch->pop()) guarded_sink(*batch);
    }
  }
  // Two-phase merge, phase two: fold the surviving nodes' serialized
  // states (exact — node order is immaterial), materialize the final
  // deterministically-ordered rows, and hand them to the sink as synthetic
  // batches partitioned by *final* row index.  Failed nodes contribute
  // nothing: partial results for a pushdown query are aggregates over the
  // surviving nodes' data.
  if (pushdown && !sink_error) {
    agg::MergeAcc acc(agg::finalize_spec(q));
    for (int n = 0; n < nodes; ++n)
      if (result.node_stats[static_cast<std::size_t>(n)].error.empty())
        acc.merge_encoded(agg_states[static_cast<std::size_t>(n)]);
    const std::vector<double> rows = acc.finalize_rows();
    const std::size_t out_cols = static_cast<std::size_t>(acc.spec().ncols);
    std::vector<RowBatch> out(
        static_cast<std::size_t>(partition.num_consumers));
    for (std::size_t c = 0; c < out.size(); ++c) {
      out[c].consumer = static_cast<int>(c);
      out[c].num_cols = out_cols;
    }
    const std::size_t nrows = out_cols ? rows.size() / out_cols : 0;
    for (std::size_t i = 0; i < nrows; ++i) {
      const double* row = rows.data() + i * out_cols;
      const int dest = partsvc.destination(row, i);
      RowBatch& b = out[static_cast<std::size_t>(dest)];
      b.data.insert(b.data.end(), row, row + out_cols);
      if (b.num_rows() >= opts_.batch_rows) {
        guarded_sink(b);
        b.data.clear();
      }
    }
    for (RowBatch& b : out)
      if (!b.data.empty()) guarded_sink(b);
  }
  if (sink_error) std::rethrow_exception(sink_error);

  result.wall_seconds = wall.elapsed_seconds();
  for (const auto& ns : result.node_stats)
    result.makespan_seconds = std::max(
        result.makespan_seconds, ns.busy_seconds + ns.transfer_seconds);
  return result;
}

uint64_t QueryResult::total_rows() const {
  uint64_t n = 0;
  for (const auto& p : partitions) n += p.num_rows();
  return n;
}

uint64_t QueryResult::total_bytes_read() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.bytes_read;
  return n;
}

uint64_t QueryResult::total_afcs_pruned() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.afcs_pruned;
  return n;
}

uint64_t QueryResult::total_rows_pruned() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.rows_pruned;
  return n;
}

uint64_t QueryResult::total_bytes_skipped() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.bytes_skipped;
  return n;
}

uint64_t QueryResult::total_io_retries() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.io_retries;
  return n;
}

uint64_t QueryResult::total_afcs_interp() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.afcs_interp;
  return n;
}

uint64_t QueryResult::total_afcs_vector() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.afcs_vector;
  return n;
}

uint64_t QueryResult::total_afcs_jit() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.afcs_jit;
  return n;
}

uint64_t QueryResult::total_groups_emitted() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.groups_emitted;
  return n;
}

uint64_t QueryResult::total_agg_bytes_shipped() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.agg_bytes_shipped;
  return n;
}

expr::Table QueryResult::merged() const {
  expr::Table out = partitions.empty() ? expr::Table() : partitions[0];
  for (std::size_t i = 1; i < partitions.size(); ++i)
    out.append_table(partitions[i]);
  return out;
}

std::string QueryResult::first_error() const {
  for (const auto& s : node_stats)
    if (!s.error.empty()) return s.error;
  return "";
}

ErrorKind QueryResult::first_error_kind() const {
  for (const auto& s : node_stats)
    if (!s.error.empty()) return s.error_kind;
  return ErrorKind::kNone;
}

std::vector<int> QueryResult::failed_nodes() const {
  std::vector<int> out;
  for (const auto& s : node_stats)
    if (!s.error.empty()) out.push_back(s.node_id);
  return out;
}

}  // namespace adv::storm
