#include "storm/cluster.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace adv::storm {

namespace {

// Per-node worker: index -> extract/filter -> partition -> ship.
void run_node(int node, const codegen::DataServicePlan& plan,
              const expr::BoundQuery& q, const afc::ChunkFilter* filter,
              const PartitionGenerationService& partsvc,
              DataMoverService& mover, std::size_t batch_rows,
              NodeStats& stats) {
  stats.node_id = node;
  Stopwatch busy;
  try {
    afc::PlannerOptions opts;
    opts.filter = filter;
    opts.only_node = node;
    afc::PlanResult pr = plan.index_fn(q, opts);
    stats.afcs = pr.afcs.size();

    codegen::Extractor extractor;
    std::vector<codegen::GroupBinding> bindings;
    bindings.reserve(pr.groups.size());
    for (const auto& g : pr.groups)
      bindings.push_back(codegen::bind_group(g, q, plan.schema()));

    const std::size_t ncols = q.select_slots().size();
    const int nconsumers = partsvc.num_consumers();
    std::vector<RowBatch> pending(static_cast<std::size_t>(nconsumers));
    for (int c = 0; c < nconsumers; ++c) {
      pending[c].source_node = node;
      pending[c].consumer = c;
      pending[c].num_cols = ncols;
    }
    auto flush = [&](int c) {
      if (pending[c].data.empty()) return;
      stats.bytes_sent += pending[c].bytes();
      stats.transfer_seconds += mover.send(std::move(pending[c]));
      pending[c] = RowBatch{};
      pending[c].source_node = node;
      pending[c].consumer = c;
      pending[c].num_cols = ncols;
    };

    uint64_t row_seq = 0;
    expr::Table scratch(q.result_columns());
    for (const auto& a : pr.afcs) {
      const afc::GroupPlan& gp = pr.groups[static_cast<std::size_t>(a.group)];
      codegen::ExtractStats es = extractor.extract(
          gp, a, bindings[static_cast<std::size_t>(a.group)], q, scratch);
      stats.bytes_read += es.bytes_read;
      stats.rows_scanned += es.rows_scanned;
      stats.rows_matched += es.rows_matched;

      // Partition the extracted rows and append to per-consumer batches.
      std::vector<double> row(ncols);
      for (std::size_t r = 0; r < scratch.num_rows(); ++r) {
        for (std::size_t c = 0; c < ncols; ++c) row[c] = scratch.at(r, c);
        int dest = partsvc.destination(row.data(), row_seq++);
        RowBatch& b = pending[static_cast<std::size_t>(dest)];
        b.data.insert(b.data.end(), row.begin(), row.end());
        if (b.num_rows() >= batch_rows) flush(dest);
      }
      scratch = expr::Table(q.result_columns());  // reset scratch
    }
    for (int c = 0; c < nconsumers; ++c) flush(c);
  } catch (const Error& e) {
    stats.error = e.what();
  }
  stats.busy_seconds = busy.elapsed_seconds();
}

}  // namespace

int PartitionGenerationService::destination(const double* row,
                                            uint64_t row_seq) const {
  switch (spec_.policy) {
    case PartitionSpec::Policy::kSingle:
      return 0;
    case PartitionSpec::Policy::kRoundRobin:
      return static_cast<int>(row_seq % spec_.num_consumers);
    case PartitionSpec::Policy::kHashAttr: {
      double v = row[spec_.select_index];
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof bits);
      return static_cast<int>(mix64(bits) %
                              static_cast<uint64_t>(spec_.num_consumers));
    }
    case PartitionSpec::Policy::kRangeAttr: {
      double v = row[spec_.select_index];
      double span = spec_.range_hi - spec_.range_lo;
      if (span <= 0) return 0;
      double t = (v - spec_.range_lo) / span;
      int dest = static_cast<int>(t * spec_.num_consumers);
      return std::clamp(dest, 0, spec_.num_consumers - 1);
    }
    case PartitionSpec::Policy::kBlockCyclic: {
      uint64_t block = spec_.block_size == 0 ? 1 : spec_.block_size;
      return static_cast<int>((row_seq / block) %
                              static_cast<uint64_t>(spec_.num_consumers));
    }
  }
  return 0;
}

StormCluster::StormCluster(std::shared_ptr<codegen::DataServicePlan> plan,
                           ClusterOptions opts)
    : plan_(std::move(plan)), opts_(opts), query_service_(plan_) {}

int StormCluster::num_nodes() const { return plan_->model().num_nodes(); }

QueryResult StormCluster::execute(const std::string& sql,
                                  const PartitionSpec& partition,
                                  const afc::ChunkFilter* filter) {
  Stopwatch plan_sw;
  expr::BoundQuery q = query_service_.submit(sql);
  QueryResult r = execute(q, partition, filter);
  r.plan_seconds += plan_sw.elapsed_seconds() - r.wall_seconds;
  return r;
}

QueryResult StormCluster::execute(const expr::BoundQuery& q,
                                  const PartitionSpec& partition,
                                  const afc::ChunkFilter* filter) {
  // Materializing execution is streaming execution draining into tables.
  std::vector<expr::Table> tables;
  for (int c = 0; c < std::max(1, partition.num_consumers); ++c)
    tables.emplace_back(q.result_columns());
  QueryResult result = execute_streaming(
      q,
      [&](const RowBatch& batch) {
        expr::Table& t = tables[static_cast<std::size_t>(batch.consumer)];
        for (std::size_t r = 0; r < batch.num_rows(); ++r)
          t.append_row(batch.data.data() + r * batch.num_cols);
      },
      partition, filter);
  result.partitions = std::move(tables);
  return result;
}

QueryResult StormCluster::execute_streaming(const expr::BoundQuery& q,
                                            const BatchSink& sink,
                                            const PartitionSpec& partition,
                                            const afc::ChunkFilter* filter) {
  if (partition.num_consumers < 1)
    throw QueryError("PartitionSpec.num_consumers must be >= 1");
  if ((partition.policy == PartitionSpec::Policy::kHashAttr ||
       partition.policy == PartitionSpec::Policy::kRangeAttr) &&
      (partition.select_index < 0 ||
       static_cast<std::size_t>(partition.select_index) >=
           q.select_slots().size()))
    throw QueryError("PartitionSpec.select_index out of range");

  Stopwatch wall;
  const int nodes = num_nodes();
  QueryResult result;
  result.node_stats.resize(static_cast<std::size_t>(nodes));

  auto channel = std::make_shared<Channel<RowBatch>>(256);
  DataMoverService mover(channel, opts_.transfer);
  PartitionGenerationService partsvc(partition);

  auto node_body = [&](int n) {
    run_node(n, *plan_, q, filter, partsvc, mover, opts_.batch_rows,
             result.node_stats[static_cast<std::size_t>(n)]);
  };

  if (opts_.parallel_nodes) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) workers.emplace_back(node_body, n);
    // Close the channel once every node finished.
    std::thread closer([&] {
      for (auto& w : workers) w.join();
      channel->close();
    });
    // Client side: hand batches to the sink as they arrive.
    while (auto batch = channel->pop()) sink(*batch);
    closer.join();
  } else {
    // Sequential mode: run one node at a time, draining its output after it
    // finishes.  The per-node channel is unbounded so a node never blocks
    // on its own undrained batches.
    for (int n = 0; n < nodes; ++n) {
      auto ch = std::make_shared<Channel<RowBatch>>(
          std::numeric_limits<std::size_t>::max());
      DataMoverService seq_mover(ch, opts_.transfer);
      run_node(n, *plan_, q, filter, partsvc, seq_mover, opts_.batch_rows,
               result.node_stats[static_cast<std::size_t>(n)]);
      ch->close();
      while (auto batch = ch->pop()) sink(*batch);
    }
  }

  result.wall_seconds = wall.elapsed_seconds();
  for (const auto& ns : result.node_stats)
    result.makespan_seconds = std::max(
        result.makespan_seconds, ns.busy_seconds + ns.transfer_seconds);
  return result;
}

uint64_t QueryResult::total_rows() const {
  uint64_t n = 0;
  for (const auto& p : partitions) n += p.num_rows();
  return n;
}

uint64_t QueryResult::total_bytes_read() const {
  uint64_t n = 0;
  for (const auto& s : node_stats) n += s.bytes_read;
  return n;
}

expr::Table QueryResult::merged() const {
  expr::Table out = partitions.empty() ? expr::Table() : partitions[0];
  for (std::size_t i = 1; i < partitions.size(); ++i)
    out.append_table(partitions[i]);
  return out;
}

std::string QueryResult::first_error() const {
  for (const auto& s : node_stats)
    if (!s.error.empty()) return s.error;
  return "";
}

}  // namespace adv::storm
