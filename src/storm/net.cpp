#include "storm/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.h"
#include "faultz/faultz.h"
#include "storm/wire.h"

namespace adv::storm {

// The frame codec (Payload, send_frame/recv_frame, MsgType, Socket) is
// shared with the node daemon and the distribution coordinator — see
// storm/wire.h.
using namespace wire;

namespace {

// Why a running query ended, judged from its token: an explicit cancel
// (client kCancel, disconnect, server drain) wins over an expired
// deadline; anything else is a plain failure.
sched::Outcome classify_failure(const CancelToken& token) {
  if (token.cancel_requested()) return sched::Outcome::kCancelled;
  if (token.deadline_exceeded()) return sched::Outcome::kDeadlineExceeded;
  return sched::Outcome::kFailed;
}

// Fixed-size kStats v2 tail: query_id + queue_wait + run_seconds + 7
// outcome counters + 4 gauges, 8 bytes each.  The v2.1 retry-after hint
// rides after it as its own optional tail so a v2 peer parses unchanged.
constexpr std::size_t kSchedTailBytes = 14 * 8;

}  // namespace

// ---------------------------------------------------------------------------
// Server

QueryServer::QueryServer(std::shared_ptr<codegen::DataServicePlan> plan,
                         ClusterOptions opts, int port,
                         const afc::ChunkFilter* filter,
                         sched::SchedulerOptions sched_opts)
    : plan_(std::move(plan)),
      filter_(filter),
      cluster_(plan_, opts),
      scheduler_(sched_opts) {
  ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("cannot create server socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    throw IoError(std::string("cannot bind query server: ") +
                  std::strerror(errno));
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw IoError("cannot listen on query server socket");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

QueryServer::~QueryServer() { shutdown(); }

void QueryServer::shutdown() {
  if (stopping_.exchange(true)) return;
  // 1. Stop accepting.  shutdown() — not close() — unblocks accept()
  // without racing a concurrent accept against kernel fd reuse; the fd is
  // closed only once the acceptor joined.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Drain the scheduler: future submissions are rejected, queued
  // queries are cancelled (their connections send kError and wind down),
  // and running queries finish streaming their results.
  scheduler_.drain();
  // 3. Unblock idle connections (parked in recv waiting for a query
  // frame) and join every connection thread.  Collect node pointers under
  // the lock but join outside it — serving threads take conn_mu_ to close
  // their fd on the way out.
  std::vector<Connection*> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto& c : connections_) {
      // Busy connections already had their fate settled by the drain
      // (queued ones expelled, running ones completed); they deliver
      // their final frames and exit on their own — forcing their sockets
      // here would chop that delivery mid-frame.
      if (c->fd >= 0 && !c->busy.load()) ::shutdown(c->fd, SHUT_RDWR);
      conns.push_back(c.get());
    }
  }
  for (Connection* c : conns)
    if (c->thread.joinable()) c->thread.join();
  std::lock_guard<std::mutex> lk(conn_mu_);
  connections_.clear();
}

void QueryServer::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_ || (errno != EINTR && errno != ECONNABORTED)) return;
      continue;
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    set_nodelay(fd);
    std::lock_guard<std::mutex> lk(conn_mu_);
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* cp = conn.get();
    connections_.push_back(std::move(conn));
    cp->thread = std::thread([this, cp] { serve_connection(cp); });
  }
}

void QueryServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryServer::serve_connection(Connection* conn) {
  serve_query(conn);
  // Close under conn_mu_: shutdown() shuts live fds down under the same
  // lock, so it can never touch a closed (possibly reused) descriptor.
  std::lock_guard<std::mutex> lk(conn_mu_);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true);
}

void QueryServer::serve_query(Connection* conn) {
  const int fd = conn->fd;
  try {
    auto [type, payload] = recv_frame(fd);
    conn->busy.store(true);
    if (type != kQuery) {
      // Covers v1 garbage and the v2.1 distribution frames alike: a
      // DistCoordinator that scatters kNodeQuery at a plain query server
      // gets an immediate typed error (kQuery = non-retryable, so it does
      // not burn its failover budget reconnecting here) instead of a hang.
      send_error(fd, "expected a query frame (node scatter frames belong to adv_node daemons, not the query service)", ErrorKind::kQuery);
      return;
    }
    PartitionSpec part;
    part.num_consumers = payload.get<uint16_t>();
    part.policy = static_cast<PartitionSpec::Policy>(payload.get<uint8_t>());
    part.select_index = payload.get<int32_t>();
    part.range_lo = payload.get<double>();
    part.range_hi = payload.get<double>();
    std::string sql = payload.get_string();
    // v2 tail: deadline + priority (absent from v1 clients).
    double deadline_seconds = 0;
    uint8_t priority = 1;
    if (payload.remaining() >= sizeof(double) + 1) {
      deadline_seconds = payload.get<double>();
      priority = payload.get<uint8_t>();
    }

    // Admission.
    sched::QueryScheduler::Admission adm =
        scheduler_.submit(priority, deadline_seconds);
    if (!adm.ctx) {
      Payload rej;
      rej.put<double>(adm.retry_after_seconds);
      rej.put_string(adm.reject_reason);
      send_frame(fd, kRejected, rej);
      return;
    }
    std::shared_ptr<sched::QueryContext> ctx = adm.ctx;
    if (adm.queued) {
      Payload qd;
      qd.put<uint64_t>(ctx->id);
      qd.put<uint32_t>(static_cast<uint32_t>(adm.queue_position));
      qd.put<uint32_t>(static_cast<uint32_t>(adm.queue_depth));
      send_frame(fd, kQueued, qd);
    }

    // Control reader: for the rest of the query's life, a kCancel frame or
    // a disconnect fires the token (which the planner, the extraction
    // workers, and the row-shipping path all poll).
    std::thread reader([fd, ctx] {
      try {
        for (;;) {
          auto [t, p] = recv_frame(fd);
          if (t == kCancel) {
            ctx->token.cancel();
            return;
          }
          // Ignore anything else the client sends mid-query.
        }
      } catch (const Error&) {
        // EOF or socket error: the client is gone.
        ctx->token.cancel();
      }
    });
    bool reader_joined = false;
    // Joined only after the query's outcome is recorded, so a disconnect
    // observed by the reader can never misclassify a finished query.
    auto join_reader = [&]() noexcept {
      if (reader_joined) return;
      reader_joined = true;
      ::shutdown(fd, SHUT_RD);  // unblocks the reader's recv
      reader.join();
    };

    if (!scheduler_.wait_admitted(ctx)) {
      // Left the queue without running: client cancel, expired deadline,
      // or server drain.  The scheduler already recorded the outcome.
      join_reader();
      Payload err;
      err.put_string(ctx->token.cancel_requested() ? "query cancelled"
                                                   : "query deadline exceeded");
      send_frame(fd, kError, err);
      return;
    }

    bool finished = false;
    auto finish = [&](sched::Outcome o) {
      if (finished) return;
      finished = true;
      scheduler_.finish(ctx, o);
    };
    try {
      Payload admitted;
      admitted.put<uint64_t>(ctx->id);
      admitted.put<double>(ctx->queue_wait_seconds);
      send_frame(fd, kAdmitted, admitted);

      // A query-service worker dying right after admission must release the
      // run slot (finish in the catch below) and answer with kError, never
      // leave the client or the scheduler hanging.
      faultz::maybe_throw_io(faultz::Site::kServeQuery,
                             "query-service worker died");

      // Bind first: the schema frame goes out before execution so the
      // client can stream row batches straight into typed tables.
      expr::BoundQuery q = cluster_.query_service().submit(sql);
      {
        Payload schema;
        std::vector<expr::Table::Column> cols = q.result_columns();
        schema.put<uint16_t>(static_cast<uint16_t>(cols.size()));
        for (const auto& c : cols) {
          schema.put<uint8_t>(static_cast<uint8_t>(c.type));
          schema.put<uint16_t>(static_cast<uint16_t>(c.name.size()));
          schema.put_bytes(c.name.data(), c.name.size());
        }
        send_frame(fd, kSchema, schema);
      }

      // Stream: the data mover's network leg.  Batches go out as nodes
      // produce them; a send failure (client gone) makes execute_streaming
      // cancel the query and rethrow after its workers joined.
      QueryResult r = cluster_.execute_streaming(
          q,
          [&](const RowBatch& b) {
            if (b.num_rows() == 0) return;
            Payload batch;
            batch.put<uint16_t>(static_cast<uint16_t>(b.consumer));
            batch.put<uint32_t>(static_cast<uint32_t>(b.num_rows()));
            batch.put<uint16_t>(static_cast<uint16_t>(b.num_cols));
            batch.put_bytes(b.data.data(), b.data.size() * sizeof(double));
            send_frame(fd, kRowBatch, batch);
          },
          part, filter_, nullptr, &ctx->token);

      std::string node_error = r.first_error();
      if (!node_error.empty()) {
        finish(classify_failure(ctx->token));
        join_reader();
        Payload err;
        err.put_string(node_error);
        send_frame(fd, kError, err);
        return;
      }

      // Record the outcome (and the query's run time) before joining the
      // reader and before shipping stats that include it.
      finish(sched::Outcome::kCompleted);
      join_reader();
      queries_served_.fetch_add(1);

      {
        sched::SchedulerMetrics m = scheduler_.metrics();
        Payload stats;
        stats.put<uint32_t>(static_cast<uint32_t>(r.node_stats.size()));
        for (const auto& ns : r.node_stats) {
          stats.put<int32_t>(ns.node_id);
          stats.put<uint64_t>(ns.afcs);
          stats.put<uint64_t>(ns.bytes_read);
          stats.put<uint64_t>(ns.rows_matched);
          stats.put<double>(ns.busy_seconds);
        }
        stats.put<uint64_t>(ctx->id);
        stats.put<double>(ctx->queue_wait_seconds);
        stats.put<double>(ctx->run_seconds);
        stats.put<uint64_t>(m.submitted);
        stats.put<uint64_t>(m.admitted);
        stats.put<uint64_t>(m.rejected);
        stats.put<uint64_t>(m.completed);
        stats.put<uint64_t>(m.failed);
        stats.put<uint64_t>(m.cancelled);
        stats.put<uint64_t>(m.deadline_exceeded);
        stats.put<uint64_t>(m.queue_depth);
        stats.put<uint64_t>(m.running);
        stats.put<uint64_t>(m.peak_running);
        stats.put<uint64_t>(m.peak_queue_depth);
        // v2.1 tail: the EWMA pacing hint, so well-behaved clients slow
        // down before the queue fills instead of discovering kRejected.
        stats.put<double>(scheduler_.retry_after_hint());
        send_frame(fd, kStats, stats);
      }
      send_frame(fd, kEnd, Payload());
    } catch (const Error& e) {
      finish(classify_failure(ctx->token));
      join_reader();
      Payload err;
      err.put_string(e.what());
      try {
        send_frame(fd, kError, err);
      } catch (const Error&) {
        // The connection is already gone.
      }
    }
  } catch (const Error&) {
    // Connection-level failure outside a query's lifecycle: nothing more
    // we can do; the client sees a closed socket.
  }
}

// ---------------------------------------------------------------------------
// Client

expr::Table RemoteResult::merged() const {
  expr::Table out = partitions.empty() ? expr::Table() : partitions[0];
  for (std::size_t i = 1; i < partitions.size(); ++i)
    out.append_table(partitions[i]);
  return out;
}

RemoteResult QueryClient::execute(const std::string& sql,
                                  const PartitionSpec& partition,
                                  const QueryOptions& opts) const {
  Socket sock(connect_with_timeout(host_, port_, connect_timeout_seconds_));

  Payload q;
  q.put<uint16_t>(static_cast<uint16_t>(partition.num_consumers));
  q.put<uint8_t>(static_cast<uint8_t>(partition.policy));
  q.put<int32_t>(partition.select_index);
  q.put<double>(partition.range_lo);
  q.put<double>(partition.range_hi);
  q.put_string(sql);
  // v2 tail (a v1 server's positional parse simply ignores it).
  q.put<double>(opts.deadline_seconds);
  q.put<uint8_t>(opts.priority);
  send_frame(sock.fd, kQuery, q);

  RemoteResult result;
  std::vector<expr::Table::Column> cols;
  std::vector<double> rowbuf;
  bool cancel_sent = false;
  for (;;) {
    auto [type, payload] =
        recv_frame_cancellable(sock.fd, opts.cancel, cancel_sent);
    switch (type) {
      case kQueued: {
        uint64_t id = payload.get<uint64_t>();
        uint32_t position = payload.get<uint32_t>();
        uint32_t depth = payload.get<uint32_t>();
        if (opts.on_queued) opts.on_queued(id, position, depth);
        break;
      }
      case kAdmitted: {
        uint64_t id = payload.get<uint64_t>();
        double wait = payload.get<double>();
        if (opts.on_admitted) opts.on_admitted(id, wait);
        break;
      }
      case kRejected: {
        double retry_after = payload.get<double>();
        std::string msg = payload.get_string();
        throw QueueFullError("server: " + msg, retry_after);
      }
      case kSchema: {
        uint16_t n = payload.get<uint16_t>();
        cols.clear();
        for (uint16_t i = 0; i < n; ++i) {
          expr::Table::Column c;
          c.type = static_cast<DataType>(payload.get<uint8_t>());
          uint16_t len = payload.get<uint16_t>();
          c.name.assign(
              reinterpret_cast<const char*>(payload.raw(len)), len);
          cols.push_back(std::move(c));
        }
        result.partitions.assign(
            static_cast<std::size_t>(partition.num_consumers),
            expr::Table(cols));
        break;
      }
      case kRowBatch: {
        uint16_t consumer = payload.get<uint16_t>();
        uint32_t nrows = payload.get<uint32_t>();
        uint16_t ncols = payload.get<uint16_t>();
        if (consumer >= result.partitions.size())
          throw IoError("row batch for unknown consumer");
        std::size_t nvals = static_cast<std::size_t>(nrows) * ncols;
        rowbuf.resize(nvals);
        std::memcpy(rowbuf.data(), payload.raw(nvals * sizeof(double)),
                    nvals * sizeof(double));
        for (uint32_t r = 0; r < nrows; ++r)
          result.partitions[consumer].append_row(rowbuf.data() +
                                                 static_cast<std::size_t>(r) *
                                                     ncols);
        break;
      }
      case kStats: {
        uint32_t n = payload.get<uint32_t>();
        for (uint32_t i = 0; i < n; ++i) {
          NodeStats ns;
          ns.node_id = payload.get<int32_t>();
          ns.afcs = payload.get<uint64_t>();
          ns.bytes_read = payload.get<uint64_t>();
          ns.rows_matched = payload.get<uint64_t>();
          ns.busy_seconds = payload.get<double>();
          result.node_stats.push_back(ns);
        }
        if (payload.remaining() >= kSchedTailBytes) {
          SchedInfo& s = result.sched;
          s.valid = true;
          s.query_id = payload.get<uint64_t>();
          s.queue_wait_seconds = payload.get<double>();
          s.run_seconds = payload.get<double>();
          s.submitted = payload.get<uint64_t>();
          s.admitted = payload.get<uint64_t>();
          s.rejected = payload.get<uint64_t>();
          s.completed = payload.get<uint64_t>();
          s.failed = payload.get<uint64_t>();
          s.cancelled = payload.get<uint64_t>();
          s.deadline_exceeded = payload.get<uint64_t>();
          s.queue_depth = payload.get<uint64_t>();
          s.running = payload.get<uint64_t>();
          s.peak_running = payload.get<uint64_t>();
          s.peak_queue_depth = payload.get<uint64_t>();
          // v2.1: optional pacing hint (absent from v2 servers).
          if (payload.remaining() >= sizeof(double))
            s.retry_after_hint_seconds = payload.get<double>();
        }
        break;
      }
      case kEnd:
        return result;
      case kError: {
        std::string msg = payload.get_string();
        if (opts.cancel && opts.cancel->cancelled())
          throw CancelledError("server: " + msg);
        throw QueryError("server: " + msg);
      }
      default:
        throw IoError("unexpected frame type from server");
    }
  }
}

}  // namespace adv::storm
