#include "storm/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "faultz/faultz.h"
#include "sql/ast.h"
#include "storm/wire.h"

namespace adv::storm {

// The frame codec (Payload, send_frame/recv_frame, MsgType, Socket) is
// shared with the node daemon and the distribution coordinator — see
// storm/wire.h.
using namespace wire;

namespace {

// Why a running query ended, judged from its token: an explicit cancel
// (client kCancel, disconnect, server drain) wins over an expired
// deadline; anything else is a plain failure.
sched::Outcome classify_failure(const CancelToken& token) {
  if (token.cancel_requested()) return sched::Outcome::kCancelled;
  if (token.deadline_exceeded()) return sched::Outcome::kDeadlineExceeded;
  return sched::Outcome::kFailed;
}

// Fixed-size kStats v2 tail: query_id + queue_wait + run_seconds + 7
// outcome counters + 4 gauges, 8 bytes each.  The v2.1 retry-after hint
// rides after it as its own optional tail so a v2 peer parses unchanged.
constexpr std::size_t kSchedTailBytes = 14 * 8;

}  // namespace

// ---------------------------------------------------------------------------
// Server

QueryServer::QueryServer(std::shared_ptr<codegen::DataServicePlan> plan,
                         ClusterOptions opts, int port,
                         const afc::ChunkFilter* filter,
                         sched::SchedulerOptions sched_opts,
                         serve::ServeOptions serve_opts)
    : plan_(std::move(plan)),
      filter_(filter),
      cluster_(plan_, opts),
      scheduler_(sched_opts),
      serve_opts_(std::move(serve_opts)) {
  if (serve_opts_.enable_result_cache) {
    result_cache_ =
        std::make_unique<serve::ResultCache>(serve_opts_.result_cache);
  }
  if (serve_opts_.enable_plan_cache && serve_opts_.plan_cache_capacity > 0) {
    plan_cache_ = std::make_unique<PlanCache>(serve_opts_.plan_cache_capacity);
  }
  ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("cannot create server socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    throw IoError(std::string("cannot bind query server: ") +
                  std::strerror(errno));
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw IoError("cannot listen on query server socket");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

QueryServer::~QueryServer() { shutdown(); }

void QueryServer::shutdown() {
  if (stopping_.exchange(true)) return;
  // 1. Stop accepting.  shutdown() — not close() — unblocks accept()
  // without racing a concurrent accept against kernel fd reuse; the fd is
  // closed only once the acceptor joined.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Drain the scheduler: future submissions are rejected, queued
  // queries are cancelled (their connections send kError and wind down),
  // and running queries finish streaming their results.
  scheduler_.drain();
  // 3. Unblock idle connections (parked in recv waiting for a query
  // frame) and join every connection thread.  Collect node pointers under
  // the lock but join outside it — serving threads take conn_mu_ to close
  // their fd on the way out.
  std::vector<Connection*> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto& c : connections_) {
      // Busy connections already had their fate settled by the drain
      // (queued ones expelled, running ones completed); they deliver
      // their final frames and exit on their own — forcing their sockets
      // here would chop that delivery mid-frame.
      if (c->fd >= 0 && !c->busy.load()) ::shutdown(c->fd, SHUT_RDWR);
      conns.push_back(c.get());
    }
  }
  for (Connection* c : conns)
    if (c->thread.joinable()) c->thread.join();
  std::lock_guard<std::mutex> lk(conn_mu_);
  connections_.clear();
}

void QueryServer::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_ || (errno != EINTR && errno != ECONNABORTED)) return;
      continue;
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    set_nodelay(fd);
    std::lock_guard<std::mutex> lk(conn_mu_);
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* cp = conn.get();
    connections_.push_back(std::move(conn));
    cp->thread = std::thread([this, cp] { serve_connection(cp); });
  }
}

void QueryServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryServer::serve_connection(Connection* conn) {
  serve_query(conn);
  // Close under conn_mu_: shutdown() shuts live fds down under the same
  // lock, so it can never touch a closed (possibly reused) descriptor.
  std::lock_guard<std::mutex> lk(conn_mu_);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true);
}

void QueryServer::serve_query(Connection* conn) {
  const int fd = conn->fd;
  try {
    auto [type, payload] = recv_frame(fd);
    conn->busy.store(true);
    if (type != kQuery) {
      // Covers v1 garbage and the v2.1 distribution frames alike: a
      // DistCoordinator that scatters kNodeQuery at a plain query server
      // gets an immediate typed error (kQuery = non-retryable, so it does
      // not burn its failover budget reconnecting here) instead of a hang.
      send_error(fd, "expected a query frame (node scatter frames belong to adv_node daemons, not the query service)", ErrorKind::kQuery);
      return;
    }
    PartitionSpec part;
    part.num_consumers = payload.get<uint16_t>();
    part.policy = static_cast<PartitionSpec::Policy>(payload.get<uint8_t>());
    part.select_index = payload.get<int32_t>();
    part.range_lo = payload.get<double>();
    part.range_hi = payload.get<double>();
    std::string sql = payload.get_string();
    // v2 tail: deadline + priority (absent from v1 clients).
    double deadline_seconds = 0;
    uint8_t priority = 1;
    if (payload.remaining() >= sizeof(double) + 1) {
      deadline_seconds = payload.get<double>();
      priority = payload.get<uint8_t>();
    }
    // v2.2 tail: the fair-share tenant id (absent = default tenant).
    // Parsed defensively: trailing bytes that do not decode as a sane
    // length-prefixed string are some newer peer's unknown fields, not a
    // tenant id, and must be ignored rather than fail the query.
    std::string tenant;
    if (payload.remaining() >= sizeof(uint32_t)) {
      uint32_t len = payload.get<uint32_t>();
      if (len <= payload.remaining() && len <= 256) {
        tenant.assign(reinterpret_cast<const char*>(payload.raw(len)), len);
      }
    }

    // Admission.
    sched::QueryScheduler::Admission adm =
        scheduler_.submit(priority, deadline_seconds, tenant);
    if (!adm.ctx) {
      Payload rej;
      rej.put<double>(adm.retry_after_seconds);
      rej.put_string(adm.reject_reason);
      // v2.2 tail: the typed kind, so a quota'd tenant is told apart from
      // a genuinely full server.
      rej.put<uint8_t>(static_cast<uint8_t>(adm.reject_kind));
      send_frame(fd, kRejected, rej);
      return;
    }
    std::shared_ptr<sched::QueryContext> ctx = adm.ctx;
    if (adm.queued) {
      Payload qd;
      qd.put<uint64_t>(ctx->id);
      qd.put<uint32_t>(static_cast<uint32_t>(adm.queue_position));
      qd.put<uint32_t>(static_cast<uint32_t>(adm.queue_depth));
      send_frame(fd, kQueued, qd);
    }

    // Control reader: for the rest of the query's life, a kCancel frame or
    // a disconnect fires the token (which the planner, the extraction
    // workers, and the row-shipping path all poll).
    std::thread reader([fd, ctx] {
      try {
        for (;;) {
          auto [t, p] = recv_frame(fd);
          if (t == kCancel) {
            ctx->token.cancel();
            return;
          }
          // Ignore anything else the client sends mid-query.
        }
      } catch (const Error&) {
        // EOF or socket error: the client is gone.
        ctx->token.cancel();
      }
    });
    bool reader_joined = false;
    // Joined only after the query's outcome is recorded, so a disconnect
    // observed by the reader can never misclassify a finished query.
    auto join_reader = [&]() noexcept {
      if (reader_joined) return;
      reader_joined = true;
      ::shutdown(fd, SHUT_RD);  // unblocks the reader's recv
      reader.join();
    };

    if (!scheduler_.wait_admitted(ctx)) {
      // Left the queue without running: client cancel, expired deadline,
      // or server drain.  The scheduler already recorded the outcome.
      join_reader();
      Payload err;
      err.put_string(ctx->token.cancel_requested() ? "query cancelled"
                                                   : "query deadline exceeded");
      send_frame(fd, kError, err);
      return;
    }

    bool finished = false;
    auto finish = [&](sched::Outcome o) {
      if (finished) return;
      finished = true;
      scheduler_.finish(ctx, o);
    };
    // Result-cache single-flight state; lives outside the try so an
    // aborted leader releases its flight (followers then execute
    // themselves instead of waiting forever).
    serve::ResultCache::FlightPtr flight;
    auto abort_flight = [&]() noexcept {
      if (flight != nullptr) {
        result_cache_->publish(flight, nullptr);
        flight = nullptr;
      }
    };
    try {
      Payload admitted;
      admitted.put<uint64_t>(ctx->id);
      admitted.put<double>(ctx->queue_wait_seconds);
      send_frame(fd, kAdmitted, admitted);

      // A query-service worker dying right after admission must release the
      // run slot (finish in the catch below) and answer with kError, never
      // leave the client or the scheduler hanging.
      faultz::maybe_throw_io(faultz::Site::kServeQuery,
                             "query-service worker died");

      // Canonical SQL: the parser's printer normalizes formatting, so the
      // cache keys below treat "select *" and "SELECT  *" as one query
      // (the same normalization VirtualTable's plan key uses).  A parse
      // error lands in the catch below exactly as a failed bind would.
      const std::string canon_sql = sql::parse_select(sql).to_string();
      std::string version_hex;
      if (result_cache_ != nullptr || plan_cache_ != nullptr) {
        version_hex =
            serve::DataVersion::compute(*plan_, serve_opts_.version_sidecar_dir)
                .hex();
      }

      // Result cache: hit, follower (identical query already executing),
      // or leader (must execute and publish).
      std::string result_key;
      serve::ResultEntryPtr cached;
      if (result_cache_ != nullptr) {
        char pk[96];
        std::snprintf(pk, sizeof pk, "%u|%u|%d|%a|%a",
                      static_cast<unsigned>(part.num_consumers),
                      static_cast<unsigned>(part.policy), part.select_index,
                      part.range_lo, part.range_hi);
        result_key = canon_sql + "|" + pk + "|" + version_hex;
        serve::ResultCache::Lookup lk =
            result_cache_->lookup(result_key, &ctx->token);
        if (lk.entry != nullptr) {
          cached = std::move(lk.entry);
        } else if (lk.leader) {
          flight = std::move(lk.flight);  // null after a poisoned hit
        } else {
          cached = result_cache_->wait(lk.flight, &ctx->token);
        }
      }

      if (cached != nullptr) {
        // Serve straight from the cache: schema, batched rows, then the
        // original execution's node stats replayed under fresh sched and
        // serving tails.  No extraction runs.
        Payload schema;
        schema.put<uint16_t>(static_cast<uint16_t>(cached->columns.size()));
        for (const auto& c : cached->columns) {
          schema.put<uint8_t>(static_cast<uint8_t>(c.type));
          schema.put<uint16_t>(static_cast<uint16_t>(c.name.size()));
          schema.put_bytes(c.name.data(), c.name.size());
        }
        send_frame(fd, kSchema, schema);
        constexpr std::size_t kReplayRows = 4096;
        std::vector<double> rowbuf;
        for (std::size_t p = 0; p < cached->partitions.size(); ++p) {
          const expr::Table& t = cached->partitions[p];
          const std::size_t ncols = t.num_cols();
          for (std::size_t r0 = 0; r0 < t.num_rows(); r0 += kReplayRows) {
            const std::size_t n = std::min(kReplayRows, t.num_rows() - r0);
            rowbuf.resize(n * ncols);
            for (std::size_t c = 0; c < ncols; ++c) {
              const std::vector<double>& col = t.column(c);
              for (std::size_t r = 0; r < n; ++r)
                rowbuf[r * ncols + c] = col[r0 + r];
            }
            Payload batch;
            batch.put<uint16_t>(static_cast<uint16_t>(p));
            batch.put<uint32_t>(static_cast<uint32_t>(n));
            batch.put<uint16_t>(static_cast<uint16_t>(ncols));
            batch.put_bytes(rowbuf.data(), rowbuf.size() * sizeof(double));
            send_frame(fd, kRowBatch, batch);
          }
        }
        finish(sched::Outcome::kCompleted);
        join_reader();
        queries_served_.fetch_add(1);
        Payload stats;
        stats.put_bytes(cached->replay_blob.data(),
                        cached->replay_blob.size());
        append_stats_tails(stats, ctx->id, ctx->queue_wait_seconds,
                           ctx->run_seconds, /*served_from_cache=*/true);
        send_frame(fd, kStats, stats);
        send_frame(fd, kEnd, Payload());
        return;
      }

      // Bind first: the schema frame goes out before execution so the
      // client can stream row batches straight into typed tables.  The
      // plan cache skips the bind and the per-node index runs on repeats
      // (keyed with the data version: a rewrite retires AFC lists that
      // embed file paths).
      std::shared_ptr<const CachedPlan> planned;
      if (plan_cache_ != nullptr) {
        const std::string plan_key = canon_sql + "|" + version_hex;
        planned = plan_cache_->find(plan_key);
        if (planned == nullptr) {
          auto fresh =
              std::make_shared<CachedPlan>(cluster_.query_service().submit(sql));
          fresh->node_plans = cluster_.plan_nodes(fresh->query, filter_);
          plan_cache_->insert(plan_key, fresh);
          planned = std::move(fresh);
        }
      } else {
        planned =
            std::make_shared<CachedPlan>(cluster_.query_service().submit(sql));
      }
      const expr::BoundQuery& q = planned->query;
      {
        Payload schema;
        std::vector<expr::Table::Column> cols = q.result_columns();
        schema.put<uint16_t>(static_cast<uint16_t>(cols.size()));
        for (const auto& c : cols) {
          schema.put<uint8_t>(static_cast<uint8_t>(c.type));
          schema.put<uint16_t>(static_cast<uint16_t>(c.name.size()));
          schema.put_bytes(c.name.data(), c.name.size());
        }
        send_frame(fd, kSchema, schema);
      }

      // Leaders tee every outgoing batch into per-consumer tables so the
      // result can be published to the cache (and to waiting followers).
      const bool record = flight != nullptr;
      std::vector<expr::Table> teed;
      if (record) {
        teed.assign(std::max<std::size_t>(1, part.num_consumers),
                    expr::Table(q.result_columns()));
      }

      // Stream: the data mover's network leg.  Batches go out as nodes
      // produce them; a send failure (client gone) makes execute_streaming
      // cancel the query and rethrow after its workers joined.
      QueryResult r = cluster_.execute_streaming(
          q,
          [&](const RowBatch& b) {
            if (b.num_rows() == 0) return;
            if (record && static_cast<std::size_t>(b.consumer) < teed.size())
              teed[b.consumer].append_rows(b.data.data(), b.num_rows());
            Payload batch;
            batch.put<uint16_t>(static_cast<uint16_t>(b.consumer));
            batch.put<uint32_t>(static_cast<uint32_t>(b.num_rows()));
            batch.put<uint16_t>(static_cast<uint16_t>(b.num_cols));
            batch.put_bytes(b.data.data(), b.data.size() * sizeof(double));
            send_frame(fd, kRowBatch, batch);
          },
          part, filter_,
          plan_cache_ != nullptr ? &planned->node_plans : nullptr,
          &ctx->token);

      std::string node_error = r.first_error();
      if (!node_error.empty()) {
        abort_flight();
        finish(classify_failure(ctx->token));
        join_reader();
        Payload err;
        err.put_string(node_error);
        send_frame(fd, kError, err);
        return;
      }

      // Serialize the node-stats section once: it goes out in this kStats
      // frame and (verbatim) in every future cache hit's.
      Payload nodestats;
      nodestats.put<uint32_t>(static_cast<uint32_t>(r.node_stats.size()));
      for (const auto& ns : r.node_stats) {
        nodestats.put<int32_t>(ns.node_id);
        nodestats.put<uint64_t>(ns.afcs);
        nodestats.put<uint64_t>(ns.bytes_read);
        nodestats.put<uint64_t>(ns.rows_matched);
        nodestats.put<double>(ns.busy_seconds);
      }

      if (record) {
        // Publish only what provably matches the keyed version: a rewrite
        // landing mid-execution may have produced torn rows, so recheck
        // before the entry becomes visible.  On mismatch followers fall
        // back to executing themselves.
        const std::string v_now =
            serve::DataVersion::compute(*plan_, serve_opts_.version_sidecar_dir)
                .hex();
        if (v_now == version_hex) {
          auto entry = std::make_shared<serve::ResultEntry>();
          entry->columns = q.result_columns();
          entry->partitions = std::move(teed);
          entry->replay_blob = nodestats.data();
          result_cache_->publish(flight, std::move(entry));
          flight = nullptr;
        } else {
          abort_flight();
        }
      }

      // Record the outcome (and the query's run time) before joining the
      // reader and before shipping stats that include it.
      finish(sched::Outcome::kCompleted);
      join_reader();
      queries_served_.fetch_add(1);

      Payload stats;
      stats.put_bytes(nodestats.data().data(), nodestats.data().size());
      append_stats_tails(stats, ctx->id, ctx->queue_wait_seconds,
                         ctx->run_seconds, /*served_from_cache=*/false);
      send_frame(fd, kStats, stats);
      send_frame(fd, kEnd, Payload());
    } catch (const Error& e) {
      abort_flight();
      finish(classify_failure(ctx->token));
      join_reader();
      Payload err;
      err.put_string(e.what());
      try {
        send_frame(fd, kError, err);
      } catch (const Error&) {
        // The connection is already gone.
      }
    }
  } catch (const Error&) {
    // Connection-level failure outside a query's lifecycle: nothing more
    // we can do; the client sees a closed socket.
  }
}

void QueryServer::append_stats_tails(wire::Payload& stats, uint64_t query_id,
                                     double queue_wait_seconds,
                                     double run_seconds,
                                     bool served_from_cache) const {
  sched::SchedulerMetrics m = scheduler_.metrics();
  // v2 sched tail.
  stats.put<uint64_t>(query_id);
  stats.put<double>(queue_wait_seconds);
  stats.put<double>(run_seconds);
  stats.put<uint64_t>(m.submitted);
  stats.put<uint64_t>(m.admitted);
  stats.put<uint64_t>(m.rejected);
  stats.put<uint64_t>(m.completed);
  stats.put<uint64_t>(m.failed);
  stats.put<uint64_t>(m.cancelled);
  stats.put<uint64_t>(m.deadline_exceeded);
  stats.put<uint64_t>(m.queue_depth);
  stats.put<uint64_t>(m.running);
  stats.put<uint64_t>(m.peak_running);
  stats.put<uint64_t>(m.peak_queue_depth);
  // v2.1 tail: the EWMA pacing hint, so well-behaved clients slow down
  // before the queue fills instead of discovering kRejected.
  stats.put<double>(scheduler_.retry_after_hint());
  // v2.2 serving tail: cache effectiveness, latency distributions, and the
  // per-tenant ledger.
  stats.put<uint8_t>(served_from_cache ? 1 : 0);
  serve::ResultCache::Stats rc = result_cache_stats();
  stats.put<uint64_t>(rc.lookups);
  stats.put<uint64_t>(rc.hits);
  stats.put<uint64_t>(rc.misses);
  stats.put<uint64_t>(rc.coalesced);
  stats.put<uint64_t>(rc.inserts);
  stats.put<uint64_t>(rc.evictions);
  stats.put<uint64_t>(rc.too_large);
  stats.put<uint64_t>(rc.poisoned);
  stats.put<uint64_t>(rc.entries);
  stats.put<uint64_t>(rc.bytes);
  PlanCache::Stats pc = plan_cache_stats();
  stats.put<uint64_t>(pc.hits);
  stats.put<uint64_t>(pc.misses);
  stats.put<uint64_t>(pc.entries);
  stats.put<uint64_t>(pc.capacity);
  auto put_hist = [&stats](const sched::LatencyHistogram& h) {
    stats.put<uint64_t>(h.count);
    stats.put<double>(h.sum_seconds);
    stats.put<uint16_t>(static_cast<uint16_t>(h.buckets.size()));
    for (uint64_t b : h.buckets) stats.put<uint64_t>(b);
  };
  put_hist(m.queue_wait);
  put_hist(m.run_time);
  stats.put<uint16_t>(static_cast<uint16_t>(m.tenants.size()));
  for (const auto& [id, t] : m.tenants) {
    stats.put_string(id);
    stats.put<double>(t.weight);
    stats.put<uint64_t>(t.submitted);
    stats.put<uint64_t>(t.admitted);
    stats.put<uint64_t>(t.rejected);
    stats.put<uint64_t>(t.completed);
    stats.put<uint64_t>(t.queued);
    stats.put<uint64_t>(t.running);
  }
}

// ---------------------------------------------------------------------------
// Client

std::string SchedInfo::pretty() const {
  if (!serving_valid) return "";
  char line[256];
  std::string out;
  std::snprintf(line, sizeof line,
                "result cache: %llu/%llu hits (%.0f%%), %llu coalesced, "
                "%zu entries / %.1f KiB, %llu evictions, %llu too-large\n",
                static_cast<unsigned long long>(result_cache.hits),
                static_cast<unsigned long long>(result_cache.lookups),
                result_cache.lookups
                    ? 100.0 * static_cast<double>(result_cache.hits) /
                          static_cast<double>(result_cache.lookups)
                    : 0.0,
                static_cast<unsigned long long>(result_cache.coalesced),
                result_cache.entries, result_cache.bytes / 1024.0,
                static_cast<unsigned long long>(result_cache.evictions),
                static_cast<unsigned long long>(result_cache.too_large));
  out += line;
  std::snprintf(line, sizeof line,
                "plan cache: %llu/%llu hits, %zu/%zu entries\n",
                static_cast<unsigned long long>(plan_cache.hits),
                static_cast<unsigned long long>(plan_cache.hits +
                                                plan_cache.misses),
                plan_cache.entries, plan_cache.capacity);
  out += line;
  std::snprintf(line, sizeof line,
                "queue wait p50/p99/p999: %.1f/%.1f/%.1f ms   "
                "run p50/p99/p999: %.1f/%.1f/%.1f ms\n",
                queue_wait_hist.quantile_seconds(0.50) * 1e3,
                queue_wait_hist.quantile_seconds(0.99) * 1e3,
                queue_wait_hist.quantile_seconds(0.999) * 1e3,
                run_time_hist.quantile_seconds(0.50) * 1e3,
                run_time_hist.quantile_seconds(0.99) * 1e3,
                run_time_hist.quantile_seconds(0.999) * 1e3);
  out += line;
  uint64_t total_completed = 0;
  for (const auto& [id, t] : tenants) total_completed += t.completed;
  for (const auto& [id, t] : tenants) {
    std::snprintf(
        line, sizeof line,
        "tenant %-12s w=%-4.3g completed %llu (%.0f%%)  running %llu  "
        "queued %llu  rejected %llu\n",
        id.empty() ? "(default)" : id.c_str(), t.weight,
        static_cast<unsigned long long>(t.completed),
        total_completed ? 100.0 * static_cast<double>(t.completed) /
                              static_cast<double>(total_completed)
                        : 0.0,
        static_cast<unsigned long long>(t.running),
        static_cast<unsigned long long>(t.queued),
        static_cast<unsigned long long>(t.rejected));
    out += line;
  }
  return out;
}

expr::Table RemoteResult::merged() const {
  expr::Table out = partitions.empty() ? expr::Table() : partitions[0];
  for (std::size_t i = 1; i < partitions.size(); ++i)
    out.append_table(partitions[i]);
  return out;
}

RemoteResult QueryClient::execute(const std::string& sql,
                                  const PartitionSpec& partition,
                                  const QueryOptions& opts) const {
  Socket sock(connect_with_timeout(host_, port_, connect_timeout_seconds_));

  Payload q;
  q.put<uint16_t>(static_cast<uint16_t>(partition.num_consumers));
  q.put<uint8_t>(static_cast<uint8_t>(partition.policy));
  q.put<int32_t>(partition.select_index);
  q.put<double>(partition.range_lo);
  q.put<double>(partition.range_hi);
  q.put_string(sql);
  // v2 tail (a v1 server's positional parse simply ignores it).
  q.put<double>(opts.deadline_seconds);
  q.put<uint8_t>(opts.priority);
  // v2.2 tail: the fair-share tenant id.
  q.put_string(opts.tenant);
  send_frame(sock.fd, kQuery, q);

  RemoteResult result;
  std::vector<expr::Table::Column> cols;
  std::vector<double> rowbuf;
  bool cancel_sent = false;
  for (;;) {
    auto [type, payload] =
        recv_frame_cancellable(sock.fd, opts.cancel, cancel_sent);
    switch (type) {
      case kQueued: {
        uint64_t id = payload.get<uint64_t>();
        uint32_t position = payload.get<uint32_t>();
        uint32_t depth = payload.get<uint32_t>();
        if (opts.on_queued) opts.on_queued(id, position, depth);
        break;
      }
      case kAdmitted: {
        uint64_t id = payload.get<uint64_t>();
        double wait = payload.get<double>();
        if (opts.on_admitted) opts.on_admitted(id, wait);
        break;
      }
      case kRejected: {
        double retry_after = payload.get<double>();
        std::string msg = payload.get_string();
        // v2.2: typed reject kind (absent from older servers).
        auto kind = sched::RejectKind::kQueueFull;
        if (payload.remaining() >= 1)
          kind = static_cast<sched::RejectKind>(payload.get<uint8_t>());
        if (kind == sched::RejectKind::kTenantQuota)
          throw TenantQuotaError("server: " + msg, retry_after);
        throw QueueFullError("server: " + msg, retry_after, kind);
      }
      case kSchema: {
        uint16_t n = payload.get<uint16_t>();
        cols.clear();
        for (uint16_t i = 0; i < n; ++i) {
          expr::Table::Column c;
          c.type = static_cast<DataType>(payload.get<uint8_t>());
          uint16_t len = payload.get<uint16_t>();
          c.name.assign(
              reinterpret_cast<const char*>(payload.raw(len)), len);
          cols.push_back(std::move(c));
        }
        result.partitions.assign(
            static_cast<std::size_t>(partition.num_consumers),
            expr::Table(cols));
        break;
      }
      case kRowBatch: {
        uint16_t consumer = payload.get<uint16_t>();
        uint32_t nrows = payload.get<uint32_t>();
        uint16_t ncols = payload.get<uint16_t>();
        if (consumer >= result.partitions.size())
          throw IoError("row batch for unknown consumer");
        std::size_t nvals = static_cast<std::size_t>(nrows) * ncols;
        rowbuf.resize(nvals);
        std::memcpy(rowbuf.data(), payload.raw(nvals * sizeof(double)),
                    nvals * sizeof(double));
        for (uint32_t r = 0; r < nrows; ++r)
          result.partitions[consumer].append_row(rowbuf.data() +
                                                 static_cast<std::size_t>(r) *
                                                     ncols);
        break;
      }
      case kStats: {
        uint32_t n = payload.get<uint32_t>();
        for (uint32_t i = 0; i < n; ++i) {
          NodeStats ns;
          ns.node_id = payload.get<int32_t>();
          ns.afcs = payload.get<uint64_t>();
          ns.bytes_read = payload.get<uint64_t>();
          ns.rows_matched = payload.get<uint64_t>();
          ns.busy_seconds = payload.get<double>();
          result.node_stats.push_back(ns);
        }
        if (payload.remaining() >= kSchedTailBytes) {
          SchedInfo& s = result.sched;
          s.valid = true;
          s.query_id = payload.get<uint64_t>();
          s.queue_wait_seconds = payload.get<double>();
          s.run_seconds = payload.get<double>();
          s.submitted = payload.get<uint64_t>();
          s.admitted = payload.get<uint64_t>();
          s.rejected = payload.get<uint64_t>();
          s.completed = payload.get<uint64_t>();
          s.failed = payload.get<uint64_t>();
          s.cancelled = payload.get<uint64_t>();
          s.deadline_exceeded = payload.get<uint64_t>();
          s.queue_depth = payload.get<uint64_t>();
          s.running = payload.get<uint64_t>();
          s.peak_running = payload.get<uint64_t>();
          s.peak_queue_depth = payload.get<uint64_t>();
          // v2.1: optional pacing hint (absent from v2 servers).
          if (payload.remaining() >= sizeof(double))
            s.retry_after_hint_seconds = payload.get<double>();
          // v2.2: serving tail (cache stats, histograms, tenant ledger).
          if (payload.remaining() >= 1) {
            s.serving_valid = true;
            s.served_from_cache = payload.get<uint8_t>() != 0;
            s.result_cache.lookups = payload.get<uint64_t>();
            s.result_cache.hits = payload.get<uint64_t>();
            s.result_cache.misses = payload.get<uint64_t>();
            s.result_cache.coalesced = payload.get<uint64_t>();
            s.result_cache.inserts = payload.get<uint64_t>();
            s.result_cache.evictions = payload.get<uint64_t>();
            s.result_cache.too_large = payload.get<uint64_t>();
            s.result_cache.poisoned = payload.get<uint64_t>();
            s.result_cache.entries =
                static_cast<std::size_t>(payload.get<uint64_t>());
            s.result_cache.bytes =
                static_cast<std::size_t>(payload.get<uint64_t>());
            s.plan_cache.hits = payload.get<uint64_t>();
            s.plan_cache.misses = payload.get<uint64_t>();
            s.plan_cache.entries =
                static_cast<std::size_t>(payload.get<uint64_t>());
            s.plan_cache.capacity =
                static_cast<std::size_t>(payload.get<uint64_t>());
            auto get_hist = [&payload](sched::LatencyHistogram& h) {
              h.count = payload.get<uint64_t>();
              h.sum_seconds = payload.get<double>();
              uint16_t nb = payload.get<uint16_t>();
              for (uint16_t i = 0; i < nb; ++i) {
                uint64_t v = payload.get<uint64_t>();
                if (i < h.buckets.size()) h.buckets[i] = v;
              }
            };
            get_hist(s.queue_wait_hist);
            get_hist(s.run_time_hist);
            uint16_t nt = payload.get<uint16_t>();
            for (uint16_t i = 0; i < nt; ++i) {
              std::string id = payload.get_string();
              SchedInfo::TenantCounters tc;
              tc.weight = payload.get<double>();
              tc.submitted = payload.get<uint64_t>();
              tc.admitted = payload.get<uint64_t>();
              tc.rejected = payload.get<uint64_t>();
              tc.completed = payload.get<uint64_t>();
              tc.queued = payload.get<uint64_t>();
              tc.running = payload.get<uint64_t>();
              s.tenants.emplace(std::move(id), tc);
            }
          }
        }
        break;
      }
      case kEnd:
        return result;
      case kError: {
        std::string msg = payload.get_string();
        if (opts.cancel && opts.cancel->cancelled())
          throw CancelledError("server: " + msg);
        throw QueryError("server: " + msg);
      }
      default:
        throw IoError("unexpected frame type from server");
    }
  }
}

}  // namespace adv::storm
