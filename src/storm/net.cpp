#include "storm/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.h"

namespace adv::storm {

namespace {

enum MsgType : uint8_t {
  kQuery = 0x01,
  kSchema = 0x02,
  kRowBatch = 0x03,
  kStats = 0x04,
  kEnd = 0x05,
  kError = 0x06,
};

// Byte-buffer writer/reader for frame payloads.
class Payload {
 public:
  Payload() = default;
  explicit Payload(std::vector<unsigned char> data) : data_(std::move(data)) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::size_t at = data_.size();
    data_.resize(at + sizeof v);
    std::memcpy(data_.data() + at, &v, sizeof v);
  }
  void put_bytes(const void* p, std::size_t n) {
    std::size_t at = data_.size();
    data_.resize(at + n);
    std::memcpy(data_.data() + at, p, n);
  }
  void put_string(const std::string& s) {
    put<uint32_t>(static_cast<uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

  template <typename T>
  T get() {
    T v;
    if (pos_ + sizeof v > data_.size())
      throw IoError("malformed network frame (truncated payload)");
    std::memcpy(&v, data_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }
  std::string get_string() {
    uint32_t n = get<uint32_t>();
    if (pos_ + n > data_.size())
      throw IoError("malformed network frame (truncated string)");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  const unsigned char* raw(std::size_t n) {
    if (pos_ + n > data_.size())
      throw IoError("malformed network frame (truncated block)");
    const unsigned char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  const std::vector<unsigned char>& data() const { return data_; }

 private:
  std::vector<unsigned char> data_;
  std::size_t pos_ = 0;
};

void write_all(int fd, const void* buf, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket send failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

void read_all(int fd, void* buf, std::size_t n) {
  unsigned char* p = static_cast<unsigned char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    ssize_t r = ::recv(fd, p + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket recv failed: ") + std::strerror(errno));
    }
    if (r == 0) throw IoError("connection closed mid-frame");
    off += static_cast<std::size_t>(r);
  }
}

void send_frame(int fd, MsgType type, const Payload& payload) {
  uint32_t len = static_cast<uint32_t>(payload.data().size());
  unsigned char header[5];
  std::memcpy(header, &len, 4);
  header[4] = static_cast<unsigned char>(type);
  write_all(fd, header, 5);
  if (len) write_all(fd, payload.data().data(), len);
}

std::pair<MsgType, Payload> recv_frame(int fd) {
  unsigned char header[5];
  read_all(fd, header, 5);
  uint32_t len;
  std::memcpy(&len, header, 4);
  if (len > (64u << 20))
    throw IoError("oversized network frame (" + std::to_string(len) + " bytes)");
  std::vector<unsigned char> data(len);
  if (len) read_all(fd, data.data(), len);
  return {static_cast<MsgType>(header[4]), Payload(std::move(data))};
}

// RAII socket.
struct Socket {
  int fd = -1;
  explicit Socket(int f) : fd(f) {}
  ~Socket() {
    if (fd >= 0) ::close(fd);
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
};

}  // namespace

// ---------------------------------------------------------------------------
// Server

QueryServer::QueryServer(std::shared_ptr<codegen::DataServicePlan> plan,
                         ClusterOptions opts, int port,
                         const afc::ChunkFilter* filter)
    : plan_(std::move(plan)), opts_(opts), filter_(filter) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("cannot create server socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    throw IoError(std::string("cannot bind query server: ") +
                  std::strerror(errno));
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw IoError("cannot listen on query server socket");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

QueryServer::~QueryServer() { shutdown(); }

void QueryServer::shutdown() {
  if (stopping_.exchange(true)) return;
  // Closing the listen socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  std::lock_guard<std::mutex> lk(conn_mu_);
  for (auto& t : connections_)
    if (t.joinable()) t.join();
}

void QueryServer::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_ || (errno != EINTR && errno != ECONNABORTED)) return;
      continue;
    }
    std::lock_guard<std::mutex> lk(conn_mu_);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void QueryServer::serve_connection(int raw_fd) {
  Socket sock(raw_fd);
  try {
    auto [type, payload] = recv_frame(sock.fd);
    if (type != kQuery) {
      Payload err;
      err.put_string("expected a query frame");
      send_frame(sock.fd, kError, err);
      return;
    }
    PartitionSpec part;
    part.num_consumers = payload.get<uint16_t>();
    part.policy = static_cast<PartitionSpec::Policy>(payload.get<uint8_t>());
    part.select_index = payload.get<int32_t>();
    part.range_lo = payload.get<double>();
    part.range_hi = payload.get<double>();
    std::string sql = payload.get_string();

    StormCluster cluster(plan_, opts_);
    QueryResult r;
    try {
      r = cluster.execute(sql, part, filter_);
    } catch (const Error& e) {
      Payload err;
      err.put_string(e.what());
      send_frame(sock.fd, kError, err);
      return;
    }
    if (!r.first_error().empty()) {
      Payload err;
      err.put_string(r.first_error());
      send_frame(sock.fd, kError, err);
      return;
    }
    queries_served_.fetch_add(1);

    // Schema.
    {
      Payload schema;
      const auto& cols = r.partitions[0].columns();
      schema.put<uint16_t>(static_cast<uint16_t>(cols.size()));
      for (const auto& c : cols) {
        schema.put<uint8_t>(static_cast<uint8_t>(c.type));
        schema.put<uint16_t>(static_cast<uint16_t>(c.name.size()));
        schema.put_bytes(c.name.data(), c.name.size());
      }
      send_frame(sock.fd, kSchema, schema);
    }
    // Row batches (re-batched per partition; the data mover's network leg).
    constexpr std::size_t kRowsPerFrame = 2048;
    for (std::size_t c = 0; c < r.partitions.size(); ++c) {
      const expr::Table& t = r.partitions[c];
      std::size_t ncols = t.num_cols();
      for (std::size_t begin = 0; begin < t.num_rows();
           begin += kRowsPerFrame) {
        std::size_t n = std::min(kRowsPerFrame, t.num_rows() - begin);
        Payload batch;
        batch.put<uint16_t>(static_cast<uint16_t>(c));
        batch.put<uint32_t>(static_cast<uint32_t>(n));
        batch.put<uint16_t>(static_cast<uint16_t>(ncols));
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t col = 0; col < ncols; ++col)
            batch.put<double>(t.at(begin + i, col));
        send_frame(sock.fd, kRowBatch, batch);
      }
    }
    // Per-node stats.
    {
      Payload stats;
      stats.put<uint32_t>(static_cast<uint32_t>(r.node_stats.size()));
      for (const auto& ns : r.node_stats) {
        stats.put<int32_t>(ns.node_id);
        stats.put<uint64_t>(ns.afcs);
        stats.put<uint64_t>(ns.bytes_read);
        stats.put<uint64_t>(ns.rows_matched);
        stats.put<double>(ns.busy_seconds);
      }
      send_frame(sock.fd, kStats, stats);
    }
    send_frame(sock.fd, kEnd, Payload());
  } catch (const Error&) {
    // Connection-level failure: nothing more we can do; the client sees a
    // closed socket.
  }
}

// ---------------------------------------------------------------------------
// Client

expr::Table RemoteResult::merged() const {
  expr::Table out = partitions.empty() ? expr::Table() : partitions[0];
  for (std::size_t i = 1; i < partitions.size(); ++i)
    out.append_table(partitions[i]);
  return out;
}

RemoteResult QueryClient::execute(const std::string& sql,
                                  const PartitionSpec& partition) const {
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  if (raw < 0) throw IoError("cannot create client socket");
  Socket sock(raw);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1)
    throw IoError("bad host address '" + host_ + "'");
  if (::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0)
    throw IoError("cannot connect to " + host_ + ":" + std::to_string(port_) +
                  ": " + std::strerror(errno));

  Payload q;
  q.put<uint16_t>(static_cast<uint16_t>(partition.num_consumers));
  q.put<uint8_t>(static_cast<uint8_t>(partition.policy));
  q.put<int32_t>(partition.select_index);
  q.put<double>(partition.range_lo);
  q.put<double>(partition.range_hi);
  q.put_string(sql);
  send_frame(sock.fd, kQuery, q);

  RemoteResult result;
  std::vector<expr::Table::Column> cols;
  for (;;) {
    auto [type, payload] = recv_frame(sock.fd);
    switch (type) {
      case kSchema: {
        uint16_t n = payload.get<uint16_t>();
        cols.clear();
        for (uint16_t i = 0; i < n; ++i) {
          expr::Table::Column c;
          c.type = static_cast<DataType>(payload.get<uint8_t>());
          uint16_t len = payload.get<uint16_t>();
          c.name.assign(
              reinterpret_cast<const char*>(payload.raw(len)), len);
          cols.push_back(std::move(c));
        }
        result.partitions.assign(
            static_cast<std::size_t>(partition.num_consumers),
            expr::Table(cols));
        break;
      }
      case kRowBatch: {
        uint16_t consumer = payload.get<uint16_t>();
        uint32_t nrows = payload.get<uint32_t>();
        uint16_t ncols = payload.get<uint16_t>();
        if (consumer >= result.partitions.size())
          throw IoError("row batch for unknown consumer");
        std::vector<double> row(ncols);
        for (uint32_t r = 0; r < nrows; ++r) {
          for (uint16_t c = 0; c < ncols; ++c) row[c] = payload.get<double>();
          result.partitions[consumer].append_row(row.data());
        }
        break;
      }
      case kStats: {
        uint32_t n = payload.get<uint32_t>();
        for (uint32_t i = 0; i < n; ++i) {
          NodeStats ns;
          ns.node_id = payload.get<int32_t>();
          ns.afcs = payload.get<uint64_t>();
          ns.bytes_read = payload.get<uint64_t>();
          ns.rows_matched = payload.get<uint64_t>();
          ns.busy_seconds = payload.get<double>();
          result.node_stats.push_back(ns);
        }
        break;
      }
      case kEnd:
        return result;
      case kError:
        throw QueryError("server: " + payload.get_string());
      default:
        throw IoError("unexpected frame type from server");
    }
  }
}

}  // namespace adv::storm
