// NodeDaemon — one storage node's shard served as an independent process.
//
// The paper's STORM ran its query/data-source/partition/mover services on
// a real Linux cluster; NodeDaemon is the data-source half promoted to a
// standalone server.  It owns one node's share of a dataset (the AFC
// planner restricted to `node_id`), and serves scatter queries from a
// DistCoordinator over the wire protocol's distribution frames (see
// storm/wire.h): local planning with zone-map pruning, local extraction
// through the kernel tiers (interp/vector/jit), partition generation, and
// row shipping all run inside the daemon, so a `kill -9` of one daemon
// takes down exactly one shard.
//
// Failover contract (the part the chaos harness leans on):
//   * The daemon scans its AFC list in deterministic plan order and sends
//     kProgress(k) only after every row of AFCs [0, k) has been flushed
//     to the socket.  The coordinator commits received rows at each
//     kProgress and discards anything newer on failure, so re-issuing the
//     query to a replica with start_afc = k can never duplicate or drop
//     a row — provided the replica's plan is identical, which kNodeHello's
//     plan fingerprint lets the coordinator verify before resuming.
//   * A dedicated heartbeat thread beats every heartbeat_interval even
//     mid-extraction, carrying monotonic progress counters; a daemon that
//     is alive but stuck keeps beating with frozen counters, which is how
//     the coordinator tells a straggler from a corpse.
//
// The class is usable in-process (the dq differential harness runs one
// per node on threads); tools/adv_node.cpp wraps it as the real daemon
// binary.  Fault injection arms per-process via ADV_FAULT_SEED/
// ADV_FAULT_SPEC, so a campaign armed in one daemon kills exactly that
// daemon's work — the basis of the multi-process chaos campaigns.
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <thread>

#include "storm/cluster.h"

namespace adv::storm {

struct NodeDaemonOptions {
  int node_id = 0;
  int port = 0;  // 0 = ephemeral; see NodeDaemon::port()
  // io_mode / kernel_mode / io_retry budget / batch_rows apply to the
  // daemon's local extraction exactly as they do in-process.
  ClusterOptions cluster;
  // Node-local chunk index (zone map) consulted during planning.  Replicas
  // of one shard must prune identically or their plan fingerprints will
  // differ and resume-after-failover will be refused.
  const afc::ChunkFilter* filter = nullptr;
  // Defaults applied when a kNodeQuery leaves the knobs zero.
  double heartbeat_interval_seconds = 0.05;
  uint32_t checkpoint_afcs = 1;
  // Test-only stall injection for the chaos harness's straggler scenario:
  // after `stall_after_afcs` AFCs of a query, extraction sleeps for
  // `stall_seconds` (polling the cancel token) while heartbeats continue —
  // a live process making no progress.  0 disables.
  uint64_t stall_after_afcs = 0;
  double stall_seconds = 0;
};

// Serves one node's shard on a TCP port until shutdown().  Each connection
// carries one scatter query on its own thread; concurrent queries admit
// freely (admission control lives at the coordinator/query-service layer,
// not per shard).
class NodeDaemon {
 public:
  // Binds to 127.0.0.1:port (0 = ephemeral).  Throws IoError on failure.
  NodeDaemon(std::shared_ptr<codegen::DataServicePlan> plan,
             NodeDaemonOptions opts);
  ~NodeDaemon();

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  int port() const { return port_; }
  int node_id() const { return opts_.node_id; }
  uint64_t queries_served() const { return queries_served_.load(); }

  // Deterministic drain: stop accepting, cancel in-flight queries, join
  // every connection thread.  Idempotent; also run by the destructor.
  void shutdown();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    // Fired by shutdown() so an in-flight extraction unwinds within one
    // batch instead of racing the socket teardown.
    CancelToken token;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  void serve_scatter(Connection* conn);
  void reap_finished_locked();

  std::shared_ptr<codegen::DataServicePlan> plan_;
  NodeDaemonOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> queries_served_{0};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace adv::storm
