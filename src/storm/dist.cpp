#include "storm/dist.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "agg/agg.h"
#include "common/stopwatch.h"
#include "sql/ast.h"
#include "storm/wire.h"

namespace adv::storm {

using namespace wire;

namespace {

using Clock = std::chrono::steady_clock;

bool retryable(ErrorKind k) {
  // kIo covers dead/vanished/silent daemons and transient transport
  // faults; kInternal covers daemon-side invariant trips (including a
  // replica whose plan diverged — a *different* replica may still match).
  // Everything else is deterministic: the same request will fail the same
  // way on every replica, so retrying only burns the failover budget.
  return k == ErrorKind::kIo || k == ErrorKind::kInternal;
}

[[noreturn]] void rethrow_kind(ErrorKind k, const std::string& msg) {
  switch (k) {
    case ErrorKind::kParse: throw QueryError(msg);  // position info is gone
    case ErrorKind::kValidation: throw ValidationError(msg);
    case ErrorKind::kQuery: throw QueryError(msg);
    case ErrorKind::kIo: throw IoError(msg);
    case ErrorKind::kCancelled: throw CancelledError(msg);
    case ErrorKind::kInternal: throw InternalError(msg);
    default: throw Error(msg);
  }
}

}  // namespace

struct DistCoordinator::ShardOutcome {
  // Rows committed at kProgress checkpoints, raw row-major doubles per
  // consumer; turned into expr::Tables only at the final node-order merge.
  std::vector<std::vector<double>> committed;
  // Pushdown queries ship partial-aggregate deltas (kAggBatch) instead of
  // rows; deltas follow the same stage-then-commit protocol, keyed to the
  // kProgress that follows each one.  Merged (exactly, in node order) only
  // at the final gather.
  std::vector<std::string> agg_committed;
  std::vector<std::string> agg_staged;
  std::size_t ncols = 0;
  // Output column names from kNodeHello's optional tail (empty when the
  // daemon predates it); lets the coordinator resolve SELECT * ORDER BY.
  std::vector<std::string> col_names;
  NodeStats stats;
  bool have_stats = false;
  bool failed = false;
  Casualty casualty;
  uint64_t committed_afcs = 0;
  uint64_t failovers = 0;
  uint64_t straggler_reissues = 0;
  uint64_t commits = 0;
};

DistCoordinator::DistCoordinator(std::vector<ShardConfig> shards,
                                 DistOptions opts)
    : shards_(std::move(shards)), opts_(std::move(opts)) {
  if (shards_.empty())
    throw ValidationError("dist coordinator: no shards configured");
  if (opts_.partition.num_consumers < 1)
    throw ValidationError("dist coordinator: num_consumers must be >= 1");
  for (const auto& s : shards_) {
    if (s.replicas.empty())
      throw ValidationError("dist coordinator: node " +
                            std::to_string(s.node_id) +
                            " has no replica endpoints");
    for (const auto& o : shards_)
      if (&o != &s && o.node_id == s.node_id)
        throw ValidationError("dist coordinator: node " +
                              std::to_string(s.node_id) +
                              " appears in the shard map twice");
  }
  ignore_sigpipe();
}

void DistCoordinator::run_shard(const std::string& sql,
                                const ShardConfig& shard,
                                ShardOutcome& out) const {
  const int nconsumers = opts_.partition.num_consumers;
  out.committed.assign(static_cast<std::size_t>(nconsumers), {});
  const std::size_t max_attempts =
      opts_.max_attempts_per_shard
          ? opts_.max_attempts_per_shard
          : std::max<std::size_t>(2, shard.replicas.size());

  uint64_t committed = 0;        // AFC prefix durable across attempts
  uint64_t fingerprint = 0;      // plan identity the resume is bound to
  bool have_fingerprint = false;
  std::string last_error = "no endpoint could be reached";
  ErrorKind last_kind = ErrorKind::kIo;
  // Uncommitted staging: rows received since the last kProgress.  Thrown
  // away whenever an attempt dies — the replica re-ships them.
  std::vector<std::vector<double>> staged(
      static_cast<std::size_t>(nconsumers));
  std::size_t attempts_used = 0;

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    attempts_used = attempt + 1;
    const ShardEndpoint& ep =
        shard.replicas[attempt % shard.replicas.size()];
    if (attempt > 0) {
      out.failovers++;
      if (opts_.on_failover)
        opts_.on_failover(shard.node_id, attempt, last_error);
    }
    for (auto& s : staged) s.clear();
    out.agg_staged.clear();
    bool straggler = false;
    bool fatal = false;
    try {
      Socket sock(
          connect_with_timeout(ep.host, ep.port,
                               opts_.connect_timeout_seconds));
      set_nodelay(sock.fd);

      Payload req;
      req.put<uint32_t>(static_cast<uint32_t>(shard.node_id));
      req.put<uint64_t>(committed);
      req.put<uint16_t>(static_cast<uint16_t>(nconsumers));
      req.put<uint8_t>(static_cast<uint8_t>(opts_.partition.policy));
      req.put<int32_t>(opts_.partition.select_index);
      req.put<double>(opts_.partition.range_lo);
      req.put<double>(opts_.partition.range_hi);
      req.put<uint64_t>(opts_.partition.block_size);
      req.put_string(sql);
      req.put<double>(opts_.deadline_seconds);
      req.put<double>(opts_.heartbeat_interval_seconds);
      req.put<uint32_t>(opts_.checkpoint_afcs);
      req.put<uint32_t>(opts_.agg_checkpoint_afcs);  // optional tail
      send_frame(sock.fd, kNodeQuery, req);

      auto [htype, hp] =
          recv_frame_timeout(sock.fd, opts_.liveness_timeout_seconds);
      if (htype == kError) {
        auto [msg, kind] = parse_error(hp);
        last_error = msg;
        last_kind = kind;
        if (!retryable(kind)) break;
        continue;
      }
      if (htype != kNodeHello)
        throw IoError("protocol error: expected kNodeHello, got frame type " +
                      std::to_string(htype));
      const uint32_t hello_node = hp.get<uint32_t>();
      hp.get<uint64_t>();  // total AFCs (informational)
      const uint64_t fp = hp.get<uint64_t>();
      const std::size_t ncols = hp.get<uint16_t>();
      std::vector<std::string> hello_names;
      if (hp.remaining() >= sizeof(uint16_t)) {
        const uint16_t nnames = hp.get<uint16_t>();
        hello_names.reserve(nnames);
        for (uint16_t c = 0; c < nnames; ++c)
          hello_names.push_back(hp.get_string());
      }
      if (hello_node != static_cast<uint32_t>(shard.node_id)) {
        last_error = "endpoint " + ep.host + ":" + std::to_string(ep.port) +
                     " serves node " + std::to_string(hello_node) +
                     ", not node " + std::to_string(shard.node_id);
        last_kind = ErrorKind::kQuery;
        break;
      }
      if (!have_fingerprint || committed == 0) {
        // First contact — or a full re-run, where nothing ties us to the
        // previous plan.  Adopt this replica's identity.
        fingerprint = fp;
        have_fingerprint = true;
        out.ncols = ncols;
        if (hello_names.size() == ncols) out.col_names = hello_names;
      } else if (fp != fingerprint) {
        // Resuming at committed > 0 against a plan that is not the one
        // the committed prefix came from would silently duplicate or drop
        // rows; refuse, and let another replica (which may match) consume
        // the next attempt.
        last_error =
            "replica at " + ep.host + ":" + std::to_string(ep.port) +
            " built a different plan (fingerprint mismatch); cannot resume "
            "at AFC " +
            std::to_string(committed) +
            " — replicas of one shard must serve identical data and prune "
            "with identical zone maps";
        last_kind = ErrorKind::kInternal;
        continue;
      }

      // Gather loop.  Liveness: every frame — rows, progress, heartbeat —
      // resets the timeout clock inside recv_frame_timeout; straggler
      // detection additionally requires the *progress counters* to move.
      Clock::time_point last_advance = Clock::now();
      uint64_t hb_afcs = 0, hb_rows = 0;
      bool hb_seen = false;
      for (;;) {
        auto [type, p] =
            recv_frame_timeout(sock.fd, opts_.liveness_timeout_seconds);
        if (type == kRowBatch) {
          const std::size_t consumer = p.get<uint16_t>();
          const std::size_t nrows = p.get<uint32_t>();
          const std::size_t nc = p.get<uint16_t>();
          if (consumer >= staged.size() || nc != out.ncols)
            throw IoError("malformed row batch from node " +
                          std::to_string(shard.node_id));
          const unsigned char* raw = p.raw(nrows * nc * sizeof(double));
          auto& dst = staged[consumer];
          const std::size_t at = dst.size();
          dst.resize(at + nrows * nc);
          std::memcpy(dst.data() + at, raw, nrows * nc * sizeof(double));
        } else if (type == kAggBatch) {
          const std::size_t n =
              static_cast<std::size_t>(p.get<uint64_t>());
          const unsigned char* raw = p.raw(n);
          out.agg_staged.emplace_back(reinterpret_cast<const char*>(raw), n);
        } else if (type == kProgress) {
          const uint64_t done = p.get<uint64_t>();
          for (std::size_t c = 0; c < staged.size(); ++c) {
            auto& dst = out.committed[c];
            dst.insert(dst.end(), staged[c].begin(), staged[c].end());
            staged[c].clear();
          }
          for (auto& d : out.agg_staged)
            out.agg_committed.push_back(std::move(d));
          out.agg_staged.clear();
          committed = done;
          out.committed_afcs = done;
          out.commits++;
          last_advance = Clock::now();
          if (opts_.on_commit) opts_.on_commit(shard.node_id, done);
        } else if (type == kHeartbeat) {
          const uint64_t a = p.get<uint64_t>();
          const uint64_t r = p.get<uint64_t>();
          if (!hb_seen || a != hb_afcs || r != hb_rows) {
            hb_seen = true;
            hb_afcs = a;
            hb_rows = r;
            last_advance = Clock::now();
          } else if (opts_.straggler_timeout_seconds > 0 &&
                     std::chrono::duration<double>(Clock::now() -
                                                   last_advance)
                             .count() > opts_.straggler_timeout_seconds) {
            straggler = true;
            throw IoError(
                "straggler: node " + std::to_string(shard.node_id) +
                " is alive but has made no progress for " +
                std::to_string(opts_.straggler_timeout_seconds) + "s");
          }
        } else if (type == kNodeStats) {
          NodeStats& ns = out.stats;
          ns.node_id = p.get<int32_t>();
          ns.busy_seconds = p.get<double>();
          ns.transfer_seconds = p.get<double>();
          ns.afcs = p.get<uint64_t>();
          ns.bytes_read = p.get<uint64_t>();
          ns.rows_scanned = p.get<uint64_t>();
          ns.rows_matched = p.get<uint64_t>();
          ns.bytes_sent = p.get<uint64_t>();
          ns.afcs_pruned = p.get<uint64_t>();
          ns.rows_pruned = p.get<uint64_t>();
          ns.bytes_skipped = p.get<uint64_t>();
          ns.io_retries = p.get<uint64_t>();
          ns.afcs_interp = p.get<uint64_t>();
          ns.afcs_vector = p.get<uint64_t>();
          ns.afcs_jit = p.get<uint64_t>();
          // Aggregation tail, absent from pre-pushdown daemons.
          if (p.remaining() >= 5 * sizeof(uint64_t)) {
            ns.groups_emitted = p.get<uint64_t>();
            ns.agg_bytes_shipped = p.get<uint64_t>();
            ns.agg_dense = p.get<uint64_t>();
            ns.agg_hash = p.get<uint64_t>();
            ns.agg_radix = p.get<uint64_t>();
          }
          out.have_stats = true;
        } else if (type == kEnd) {
          // Defensive: the daemon checkpoints its final AFC before kEnd,
          // so staging should be empty — but a complete stream is a
          // commit point by definition.
          for (std::size_t c = 0; c < staged.size(); ++c) {
            auto& dst = out.committed[c];
            dst.insert(dst.end(), staged[c].begin(), staged[c].end());
            staged[c].clear();
          }
          for (auto& d : out.agg_staged)
            out.agg_committed.push_back(std::move(d));
          out.agg_staged.clear();
          return;
        } else if (type == kError) {
          // The daemon's own verdict on the query.  Retryable kinds
          // consume another endpoint attempt; deterministic ones end the
          // shard now with the daemon's classification intact.
          auto [msg, kind] = parse_error(p);
          last_error = msg;
          last_kind = kind;
          fatal = !retryable(kind);
          break;
        } else {
          // Unknown frame from a newer daemon: skip (forward compat).
        }
      }
      if (fatal) break;
      continue;
    } catch (const IoError& e) {
      // Dead process (recv EOF / EPIPE), liveness timeout, connect
      // failure, straggler cut, malformed frame: all retryable transport
      // failures.  Re-issue on the next endpoint from the committed
      // prefix.
      last_error = e.what();
      last_kind = ErrorKind::kIo;
      if (straggler) out.straggler_reissues++;
      continue;
    }
  }

  out.failed = true;
  out.casualty.node_id = shard.node_id;
  out.casualty.kind = last_kind;
  out.casualty.error = last_error;
  out.casualty.attempts = attempts_used;
  out.casualty.committed_afcs = committed;
}

DistResult DistCoordinator::run(const std::string& sql) const {
  Stopwatch sw;
  // Parse once up front: a malformed query fails here, typed, instead of
  // as N identical daemon errors — and the parse decides whether the
  // gather merges rows (kRowBatch) or aggregate state (kAggBatch).
  const sql::SelectQuery sq = sql::parse_select(sql);
  const bool pushdown =
      sq.has_aggregates() || !sq.order_by.empty() || sq.limit >= 0;
  std::vector<ShardOutcome> outs(shards_.size());
  std::vector<std::thread> gather;
  gather.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i)
    gather.emplace_back(
        [this, &sql, i, &outs] { run_shard(sql, shards_[i], outs[i]); });
  for (auto& t : gather) t.join();

  DistResult r;
  std::size_t ncols = opts_.result_columns.size();
  for (const auto& o : outs) {
    r.failovers += o.failovers;
    r.straggler_reissues += o.straggler_reissues;
    r.commits += o.commits;
    if (!o.failed && ncols == 0) ncols = o.ncols;
  }
  std::vector<expr::Table::Column> cols = opts_.result_columns;
  if (cols.empty()) {
    // Prefer the daemon-announced names (kNodeHello tail): SELECT *
    // top-k needs real attribute names to resolve its ORDER BY keys.
    for (const auto& o : outs)
      if (!o.failed && o.col_names.size() == ncols) {
        for (const auto& n : o.col_names)
          cols.push_back({n, DataType::kFloat64});
        break;
      }
  }
  if (cols.empty())
    for (std::size_t c = 0; c < ncols; ++c)
      cols.push_back({"c" + std::to_string(c), DataType::kFloat64});

  // Merge in shard-map (node) order, so the gathered tables are a
  // deterministic function of the per-node row streams — independent of
  // gather-thread timing and of which replica ultimately served a shard.
  if (pushdown) {
    // What arrived was partial-aggregate state.  Merging is exact and
    // grouping-independent (docs/AGGREGATION.md), so node order here is a
    // convention, not a correctness requirement; casualties simply drop
    // out (partial results = aggregates over the surviving shards).  The
    // final rows are partitioned by output row index, matching the
    // in-process cluster bit for bit.
    std::vector<std::string> names;
    names.reserve(cols.size());
    for (const auto& c : cols) names.push_back(c.name);
    agg::MergeAcc acc(agg::finalize_spec(sq, names));
    for (auto& o : outs) {
      if (o.failed) {
        r.casualties.push_back(o.casualty);
        continue;
      }
      for (const auto& d : o.agg_committed) acc.merge_encoded(d);
      if (o.have_stats) r.node_stats.push_back(o.stats);
    }
    const std::size_t fncols = static_cast<std::size_t>(acc.spec().ncols);
    if (cols.size() != fncols) {
      cols.clear();
      for (std::size_t c = 0; c < fncols; ++c)
        cols.push_back({"c" + std::to_string(c), DataType::kFloat64});
    }
    if ((opts_.partition.policy == PartitionSpec::Policy::kHashAttr ||
         opts_.partition.policy == PartitionSpec::Policy::kRangeAttr) &&
        (opts_.partition.select_index < 0 ||
         static_cast<std::size_t>(opts_.partition.select_index) >= fncols))
      throw ValidationError(
          "partition select_index out of range for the query's " +
          std::to_string(fncols) + " output columns");
    r.partitions.assign(
        static_cast<std::size_t>(opts_.partition.num_consumers),
        expr::Table(cols));
    const std::vector<double> rows = acc.finalize_rows();
    const PartitionGenerationService partsvc(opts_.partition);
    const std::size_t nrows = fncols ? rows.size() / fncols : 0;
    for (std::size_t i = 0; i < nrows; ++i) {
      const double* row = rows.data() + i * fncols;
      const int dest = partsvc.destination(row, i);
      r.partitions[static_cast<std::size_t>(dest)].append_rows(row, 1);
    }
  } else {
    r.partitions.assign(
        static_cast<std::size_t>(opts_.partition.num_consumers),
        expr::Table(cols));
    for (auto& o : outs) {
      if (o.failed) {
        r.casualties.push_back(o.casualty);
        continue;
      }
      for (std::size_t c = 0; c < o.committed.size(); ++c)
        if (!o.committed[c].empty())
          r.partitions[c].append_rows(o.committed[c].data(),
                                      o.committed[c].size() / o.ncols);
      if (o.have_stats) r.node_stats.push_back(o.stats);
    }
  }
  r.wall_seconds = sw.elapsed_seconds();

  if (!r.casualties.empty() && !opts_.allow_partial_results) {
    const Casualty& c = r.casualties.front();
    rethrow_kind(c.kind, "node " + std::to_string(c.node_id) + " failed (" +
                             std::to_string(c.attempts) + " attempts): " +
                             c.error);
  }
  return r;
}

uint64_t DistResult::total_rows() const {
  uint64_t n = 0;
  for (const auto& p : partitions) n += p.num_rows();
  return n;
}

expr::Table DistResult::merged() const {
  expr::Table out = partitions.empty() ? expr::Table() : partitions[0];
  for (std::size_t i = 1; i < partitions.size(); ++i)
    out.append_table(partitions[i]);
  return out;
}

std::string DistResult::first_error() const {
  return casualties.empty() ? "" : casualties.front().error;
}

ErrorKind DistResult::first_error_kind() const {
  return casualties.empty() ? ErrorKind::kNone : casualties.front().kind;
}

std::vector<int> DistResult::failed_nodes() const {
  std::vector<int> out;
  for (const auto& c : casualties) out.push_back(c.node_id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace adv::storm
