// DistCoordinator — scatter/gather over real node daemons with failover.
//
// Completes the paper's deployment picture: where StormCluster simulates
// the node set in-process (one thread per node), DistCoordinator drives a
// set of adv_node daemons — separate OS processes, possibly separate
// hosts — over the wire protocol's distribution frames.  One query is
// scattered as per-node kNodeQuery requests; row batches from all nodes
// gather concurrently and merge into the same partition layout the
// in-process cluster produces, so results are differentially comparable
// (the dq harness does exactly that).
//
// Robustness model, per shard:
//   * Liveness: every frame (rows, progress, heartbeat) resets a liveness
//     clock; silence past `liveness_timeout_seconds` declares the daemon
//     dead.  A kill -9 usually announces itself sooner as a recv EOF.
//   * Exactly-once rows: batches are STAGED as they arrive and COMMITTED
//     only at kProgress(k) checkpoints.  On failure, staged-uncommitted
//     rows are discarded and the query re-issues on the next endpoint
//     with start_afc = committed prefix, which the daemon's checkpointed
//     streaming contract (see storm/node_daemon.h) guarantees is
//     gap- and duplicate-free.  Plan fingerprints from kNodeHello gate
//     the resume: a replica whose plan diverged is refused (kInternal).
//   * Stragglers: heartbeats that keep arriving with frozen progress
//     counters past `straggler_timeout_seconds` get the connection cut
//     and the shard re-issued — a live-but-stuck daemon is treated like a
//     dead one, minus the wait for a liveness timeout.
//   * Retry budget: endpoints (primary, then replicas, round robin) are
//     tried up to `max_attempts_per_shard` times; only retryable error
//     kinds (kIo, kInternal) consume further attempts, anything else
//     (kQuery, kValidation, kCancelled...) fails the shard immediately.
//   * Partial results: with `allow_partial_results`, shards that exhaust
//     their budget become typed Casualty entries and the gather returns
//     what the surviving nodes produced; otherwise run() throws the first
//     casualty's error.  Never a hang, never a duplicated row.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storm/cluster.h"

namespace adv::storm {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

// One node's shard and the daemons serving it.  replicas[0] is the
// primary; later entries are failover targets serving the same data (and,
// for resume to work, pruning with the same zone-map sidecar).
struct ShardConfig {
  int node_id = 0;
  std::vector<ShardEndpoint> replicas;
};

struct DistOptions {
  PartitionSpec partition;
  // Passed through to wire::connect_with_timeout per attempt; <= 0 blocks
  // indefinitely (not recommended for failover configurations).
  double connect_timeout_seconds = 2.0;
  // Per-node server-side deadline shipped in kNodeQuery; <= 0 = none.
  double deadline_seconds = 0;
  // Daemon heartbeat cadence; the liveness timeout should comfortably
  // exceed it (a handful of missed beats, not one).
  double heartbeat_interval_seconds = 0.05;
  double liveness_timeout_seconds = 2.0;
  // 0 disables straggler re-issue (frozen daemons then only die by
  // deadline or liveness timeout).
  double straggler_timeout_seconds = 0;
  // kProgress commit granularity requested of the daemon (in AFCs).
  uint32_t checkpoint_afcs = 1;
  // Checkpoint cadence for aggregation-pushdown queries, where what ships
  // at each checkpoint is a partial-aggregate DELTA (kAggBatch) instead of
  // row batches.  0 = one delta at the end of the scan (aggregate state is
  // tiny, so fine-grained checkpoints buy failover granularity, not
  // bandwidth).  See docs/AGGREGATION.md.
  uint32_t agg_checkpoint_afcs = 0;
  // Endpoint connections tried per shard before it becomes a casualty.
  // 0 = one attempt per configured replica, minimum 2 (a lone replica is
  // still allowed one reconnect — kill -9 mid-stream with no standby
  // should fail over to a fresh process of the same daemon if one
  // returns, and fail typed if not).
  std::size_t max_attempts_per_shard = 0;
  bool allow_partial_results = false;
  // Result column metadata for the gathered tables.  Optional: when
  // empty, columns are synthesized as c0..cN-1 from the daemon's
  // announced width (values, and therefore differential comparisons, are
  // unaffected).
  std::vector<expr::Table::Column> result_columns;

  // Test/chaos hooks, called from gather threads (keep them cheap and
  // thread-safe).  on_commit fires after AFC prefix `committed` of
  // `node_id` is committed; on_failover fires when a shard re-issues,
  // with the attempt number and the casualty-to-be that caused it.
  std::function<void(int node_id, uint64_t committed)> on_commit;
  std::function<void(int node_id, std::size_t attempt,
                     const std::string& why)>
      on_failover;
};

// A shard that exhausted its failover budget (or hit a non-retryable
// error), with the classification the caller can dispatch on.
struct Casualty {
  int node_id = 0;
  ErrorKind kind = ErrorKind::kOther;
  std::string error;
  std::size_t attempts = 0;   // endpoint connections consumed
  uint64_t committed_afcs = 0;  // progress salvaged before giving up
};

struct DistResult {
  std::vector<expr::Table> partitions;   // one per consumer
  std::vector<NodeStats> node_stats;     // surviving shards, node order
  std::vector<Casualty> casualties;      // empty on full success
  double wall_seconds = 0;
  uint64_t failovers = 0;            // re-issues that were attempted
  uint64_t straggler_reissues = 0;   // subset of the above
  uint64_t commits = 0;              // kProgress checkpoints committed

  bool partial() const { return !casualties.empty(); }
  uint64_t total_rows() const;
  // Concatenation of all partitions (same shape as QueryResult::merged()).
  expr::Table merged() const;
  std::string first_error() const;
  ErrorKind first_error_kind() const;
  std::vector<int> failed_nodes() const;
};

class DistCoordinator {
 public:
  DistCoordinator(std::vector<ShardConfig> shards, DistOptions opts);

  // Scatters `sql` to every shard, gathers concurrently, merges in node
  // order (so the output is independent of gather-thread timing).  Throws
  // ValidationError for a malformed shard map; throws the first shard
  // casualty's typed error unless allow_partial_results.
  DistResult run(const std::string& sql) const;

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct ShardOutcome;
  void run_shard(const std::string& sql, const ShardConfig& shard,
                 ShardOutcome& out) const;

  std::vector<ShardConfig> shards_;
  DistOptions opts_;
};

}  // namespace adv::storm
