// Networked query service: the client-facing half of the STORM middleware.
//
// The paper's clients submit SQL to the query service over the network and
// the data mover streams selected rows back to the client's processors.
// QueryServer serves one dataset over TCP (loopback or LAN); QueryClient
// connects, submits a query, and receives partitioned row batches.
//
// Wire protocol (little-endian):
//   frame  := u32 payload_length, u8 type, payload
//   types:
//     0x01 kQuery     payload = u16 num_consumers, u8 policy,
//                               i32 select_index, f64 range_lo, f64 range_hi,
//                               u32 sql_length, sql bytes
//     0x02 kSchema    payload = u16 ncols, then per column:
//                               u8 type, u16 name_length, name bytes
//     0x03 kRowBatch  payload = u16 consumer, u32 nrows, u16 ncols,
//                               nrows*ncols f64 values
//     0x04 kStats     payload = u32 nnodes, per node: i32 node, u64 afcs,
//                               u64 bytes_read, u64 rows_matched,
//                               f64 busy_seconds
//     0x05 kEnd       payload = empty
//     0x06 kError     payload = u32 length, message bytes
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storm/cluster.h"

namespace adv::storm {

// Serves one dataset on a TCP port.  Each connection is handled on its own
// thread; queries on different connections execute concurrently.
class QueryServer {
 public:
  // Binds to 127.0.0.1:`port` (0 = ephemeral).  Throws IoError on failure.
  QueryServer(std::shared_ptr<codegen::DataServicePlan> plan,
              ClusterOptions opts = {}, int port = 0,
              const afc::ChunkFilter* filter = nullptr);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // The bound port.
  int port() const { return port_; }
  uint64_t queries_served() const { return queries_served_.load(); }

  // Stops accepting and joins all threads (also done by the destructor).
  void shutdown();

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::shared_ptr<codegen::DataServicePlan> plan_;
  ClusterOptions opts_;
  const afc::ChunkFilter* filter_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> queries_served_{0};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

// Result of a remote query.
struct RemoteResult {
  std::vector<expr::Table> partitions;
  std::vector<NodeStats> node_stats;

  uint64_t total_rows() const {
    uint64_t n = 0;
    for (const auto& p : partitions) n += p.num_rows();
    return n;
  }
  expr::Table merged() const;
};

// Blocking client.  One query per call; the connection is opened and closed
// per query (the paper's clients are batch analysis programs).
class QueryClient {
 public:
  QueryClient(std::string host, int port)
      : host_(std::move(host)), port_(port) {}

  // Throws QueryError with the server's message on query failure, IoError
  // on connection problems.
  RemoteResult execute(const std::string& sql,
                       const PartitionSpec& partition = {}) const;

 private:
  std::string host_;
  int port_;
};

}  // namespace adv::storm
