// Networked query service: the client-facing half of the STORM middleware.
//
// The paper's clients submit SQL to the query service over the network and
// the data mover streams selected rows back to the client's processors.
// QueryServer serves one dataset over TCP (loopback or LAN); QueryClient
// connects, submits a query, and receives partitioned row batches.
//
// Every connection passes through the sched::QueryScheduler admission
// controller before touching the shared StormCluster: at most
// `max_concurrent_queries` execute at once, up to `max_queue_depth` more
// wait in a priority/FIFO queue, and anything beyond that is rejected
// with a retry-after hint.  Results stream back batch-by-batch as nodes
// produce them, and a per-connection control reader lets the client
// cancel a running (or queued) query mid-stream — see docs/SERVING.md.
//
// Wire protocol v2 (little-endian):
//   frame  := u32 payload_length, u8 type, payload
//   types:
//     0x01 kQuery     payload = u16 num_consumers, u8 policy,
//                               i32 select_index, f64 range_lo, f64 range_hi,
//                               u32 sql_length, sql bytes,
//                               [v2 tail: f64 deadline_seconds, u8 priority]
//                               [v2.2 tail: u32 tenant_length, tenant bytes —
//                                the fair-share account; absent = the
//                                default tenant]
//     0x02 kSchema    payload = u16 ncols, then per column:
//                               u8 type, u16 name_length, name bytes
//     0x03 kRowBatch  payload = u16 consumer, u32 nrows, u16 ncols,
//                               nrows*ncols f64 values
//     0x04 kStats     payload = u32 nnodes, per node: i32 node, u64 afcs,
//                               u64 bytes_read, u64 rows_matched,
//                               f64 busy_seconds
//                               [v2 tail: u64 query_id, f64 queue_wait_s,
//                                f64 run_s, u64 submitted, u64 admitted,
//                                u64 rejected, u64 completed, u64 failed,
//                                u64 cancelled, u64 deadline_exceeded,
//                                u64 queue_depth, u64 running,
//                                u64 peak_running, u64 peak_queue_depth]
//                               [v2.1 tail: f64 retry_after_hint_seconds —
//                                the scheduler's EWMA-derived pacing hint,
//                                so clients back off before being rejected]
//                               [v2.2 tail: u8 served_from_cache,
//                                10 x u64 result-cache counters (lookups,
//                                hits, misses, coalesced, inserts,
//                                evictions, too_large, poisoned, entries,
//                                bytes), 4 x u64 plan-cache counters (hits,
//                                misses, entries, capacity), two latency
//                                histograms (queue wait, run time; each =
//                                u64 count, f64 sum_seconds, u16 nbuckets,
//                                nbuckets x u64), u16 ntenants, per tenant:
//                                u32 id_length, id bytes, f64 weight,
//                                u64 submitted, admitted, rejected,
//                                completed, queued, running]
//     0x05 kEnd       payload = empty
//     0x06 kError     payload = u32 length, message bytes
//     0x07 kCancel    client -> server: abandon the in-flight query
//     0x08 kQueued    payload = u64 query_id, u32 position, u32 depth
//     0x09 kAdmitted  payload = u64 query_id, f64 queue_wait_seconds
//     0x0A kRejected  payload = f64 retry_after_seconds,
//                               u32 length, message bytes
//                               [v2.2 tail: u8 reject_kind
//                                (sched::RejectKind) — tells a quota'd
//                                tenant apart from a genuinely full server]
//
// v1 interop: the kQuery tail and the kStats tails are optional — an older
// peer simply never sends or reads them (payload parsing is positional,
// trailing bytes are ignored).  The distribution frames (0x10+, node
// daemons and the scatter/gather coordinator) are documented in
// storm/wire.h and docs/DISTRIBUTION.md.
#pragma once

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "sched/scheduler.h"
#include "serve/data_version.h"
#include "serve/plan_cache.h"
#include "serve/result_cache.h"
#include "storm/cluster.h"

namespace adv::storm {

namespace wire {
class Payload;
}

// Serves one dataset on a TCP port.  Each connection is handled on its own
// thread; queries on different connections pass through one shared
// admission scheduler and execute on one shared StormCluster.
class QueryServer {
 public:
  // Binds to 127.0.0.1:`port` (0 = ephemeral).  Throws IoError on failure.
  QueryServer(std::shared_ptr<codegen::DataServicePlan> plan,
              ClusterOptions opts = {}, int port = 0,
              const afc::ChunkFilter* filter = nullptr,
              sched::SchedulerOptions sched_opts = {},
              serve::ServeOptions serve_opts = serve::ServeOptions{});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // The bound port.
  int port() const { return port_; }
  uint64_t queries_served() const { return queries_served_.load(); }
  sched::SchedulerMetrics scheduler_metrics() const {
    return scheduler_.metrics();
  }
  // Zero-value stats when the respective cache is disabled.
  serve::ResultCache::Stats result_cache_stats() const {
    return result_cache_ ? result_cache_->stats()
                         : serve::ResultCache::Stats{};
  }
  PlanCache::Stats plan_cache_stats() const {
    return plan_cache_ ? plan_cache_->stats() : PlanCache::Stats{};
  }
  // The dataset's current version as the server computes it (tests use it
  // to prove that an in-place rewrite changes the cache key).
  serve::DataVersion data_version() const {
    return serve::DataVersion::compute(*plan_, serve_opts_.version_sidecar_dir);
  }

  // Deterministic graceful drain (also done by the destructor):
  //   1. stop accepting (listen socket shut down, acceptor joined),
  //   2. drain the scheduler — queued queries are cancelled, running ones
  //      finish and stream their results,
  //   3. shut down every remaining connection socket (unblocks idle
  //      connections parked in recv) and join all connection threads.
  void shutdown();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    // True once a query frame arrived: shutdown() leaves busy connections
    // alone (the scheduler drain settles their fate and they exit on their
    // own, with the cancel/error frame delivered intact) and only forces
    // idle ones — parked in recv awaiting a query — off their sockets.
    std::atomic<bool> busy{false};
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  void serve_query(Connection* conn);
  void reap_finished_locked();
  // Appends the kStats v2 sched tail + v2.1 hint + v2.2 serving tail.
  void append_stats_tails(wire::Payload& stats, uint64_t query_id,
                          double queue_wait_seconds, double run_seconds,
                          bool served_from_cache) const;

  std::shared_ptr<codegen::DataServicePlan> plan_;
  const afc::ChunkFilter* filter_;
  StormCluster cluster_;
  sched::QueryScheduler scheduler_;
  const serve::ServeOptions serve_opts_;
  std::unique_ptr<serve::ResultCache> result_cache_;  // null = disabled
  std::unique_ptr<PlanCache> plan_cache_;             // null = disabled
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> queries_served_{0};
  std::thread acceptor_;
  std::mutex conn_mu_;
  // std::list: node addresses stay valid while threads run, so shutdown
  // can collect Connection* under the lock and join outside it.
  std::list<std::unique_ptr<Connection>> connections_;
};

// Scheduler-side view of one served query plus a snapshot of the server's
// aggregate scheduler metrics, parsed from the kStats v2 tail.  `valid` is
// false when the server spoke protocol v1.
struct SchedInfo {
  bool valid = false;
  uint64_t query_id = 0;
  double queue_wait_seconds = 0;
  double run_seconds = 0;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t queue_depth = 0;
  uint64_t running = 0;
  uint64_t peak_running = 0;
  uint64_t peak_queue_depth = 0;
  // The scheduler's current EWMA retry-after estimate (seconds a new
  // submission would be told to wait if rejected right now).  Callers use
  // it to pace their next query instead of hot-looping into kRejected;
  // 0 when the server has free capacity or predates the v2.1 tail.
  double retry_after_hint_seconds = 0;

  // --- v2.2 serving tail (serving_valid = false on older servers) ---
  bool serving_valid = false;
  // This query's rows came out of the server's result cache (no
  // extraction ran).
  bool served_from_cache = false;
  serve::ResultCache::Stats result_cache;
  PlanCache::Stats plan_cache;
  // Server-wide scheduler latency distributions (all queries, all
  // tenants), for p50/p99/p999 readouts on the client side.
  sched::LatencyHistogram queue_wait_hist;
  sched::LatencyHistogram run_time_hist;
  // Per-tenant counters, keyed by tenant id ("" = default tenant).
  struct TenantCounters {
    double weight = 1.0;
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t queued = 0;
    uint64_t running = 0;
  };
  std::map<std::string, TenantCounters> tenants;

  // One-screen operator summary of the serving tail (cache hit rates,
  // latency quantiles, per-tenant shares); "" when serving_valid is false.
  std::string pretty() const;
};

// Result of a remote query.
struct RemoteResult {
  std::vector<expr::Table> partitions;
  std::vector<NodeStats> node_stats;
  SchedInfo sched;

  uint64_t total_rows() const {
    uint64_t n = 0;
    for (const auto& p : partitions) n += p.num_rows();
    return n;
  }
  expr::Table merged() const;
};

// The server's admission queue was full (or it is draining).  Carries the
// server's retry-after hint and, from v2.2 servers, the typed reject kind.
class QueueFullError : public QueryError {
 public:
  QueueFullError(const std::string& msg, double retry_after,
                 sched::RejectKind kind = sched::RejectKind::kQueueFull)
      : QueryError(msg), retry_after_seconds(retry_after), kind(kind) {}

  double retry_after_seconds = 0;
  sched::RejectKind kind = sched::RejectKind::kQueueFull;
};

// The submission tripped a per-tenant quota (max_running / max_queued),
// not global capacity: retrying elsewhere won't help, pacing will.
class TenantQuotaError : public QueueFullError {
 public:
  TenantQuotaError(const std::string& msg, double retry_after)
      : QueueFullError(msg, retry_after, sched::RejectKind::kTenantQuota) {}
};

// Per-query client-side options.
struct QueryOptions {
  // Server-enforced deadline; <= 0 uses the server's default (if any).
  double deadline_seconds = 0;
  // 0 = low, 1 = normal, 2 = high (clamped server-side).
  uint8_t priority = 1;
  // Fair-share tenant id; "" = the default tenant.  A v1/v2 server ignores
  // it (the field rides in the kQuery v2.2 tail).
  std::string tenant;
  // Client-side cancellation: when this token fires while the query is in
  // flight, the client sends one kCancel frame and keeps reading until the
  // server terminates the stream; execute() then throws CancelledError.
  CancelToken* cancel = nullptr;
  // Progress hooks, invoked on the calling thread as the server reports
  // queue state (may never fire when the query is admitted immediately).
  std::function<void(uint64_t query_id, std::size_t position,
                     std::size_t depth)>
      on_queued;
  std::function<void(uint64_t query_id, double queue_wait_seconds)>
      on_admitted;
};

// Blocking client.  One query per call; the connection is opened and closed
// per query (the paper's clients are batch analysis programs).
class QueryClient {
 public:
  // `connect_timeout_seconds` bounds the TCP connect (a dead or
  // blackholed server fails with IoError instead of hanging in the
  // kernel's SYN retries); <= 0 keeps the OS default blocking connect.
  QueryClient(std::string host, int port, double connect_timeout_seconds = 0)
      : host_(std::move(host)),
        port_(port),
        connect_timeout_seconds_(connect_timeout_seconds) {}

  // Throws QueryError with the server's message on query failure,
  // QueueFullError when admission rejected it, CancelledError when
  // `opts.cancel` fired, IoError on connection problems.
  RemoteResult execute(const std::string& sql,
                       const PartitionSpec& partition = {},
                       const QueryOptions& opts = {}) const;

 private:
  std::string host_;
  int port_;
  double connect_timeout_seconds_ = 0;
};

}  // namespace adv::storm
