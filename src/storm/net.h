// Networked query service: the client-facing half of the STORM middleware.
//
// The paper's clients submit SQL to the query service over the network and
// the data mover streams selected rows back to the client's processors.
// QueryServer serves one dataset over TCP (loopback or LAN); QueryClient
// connects, submits a query, and receives partitioned row batches.
//
// Every connection passes through the sched::QueryScheduler admission
// controller before touching the shared StormCluster: at most
// `max_concurrent_queries` execute at once, up to `max_queue_depth` more
// wait in a priority/FIFO queue, and anything beyond that is rejected
// with a retry-after hint.  Results stream back batch-by-batch as nodes
// produce them, and a per-connection control reader lets the client
// cancel a running (or queued) query mid-stream — see docs/SERVING.md.
//
// Wire protocol v2 (little-endian):
//   frame  := u32 payload_length, u8 type, payload
//   types:
//     0x01 kQuery     payload = u16 num_consumers, u8 policy,
//                               i32 select_index, f64 range_lo, f64 range_hi,
//                               u32 sql_length, sql bytes,
//                               [v2 tail: f64 deadline_seconds, u8 priority]
//     0x02 kSchema    payload = u16 ncols, then per column:
//                               u8 type, u16 name_length, name bytes
//     0x03 kRowBatch  payload = u16 consumer, u32 nrows, u16 ncols,
//                               nrows*ncols f64 values
//     0x04 kStats     payload = u32 nnodes, per node: i32 node, u64 afcs,
//                               u64 bytes_read, u64 rows_matched,
//                               f64 busy_seconds
//                               [v2 tail: u64 query_id, f64 queue_wait_s,
//                                f64 run_s, u64 submitted, u64 admitted,
//                                u64 rejected, u64 completed, u64 failed,
//                                u64 cancelled, u64 deadline_exceeded,
//                                u64 queue_depth, u64 running,
//                                u64 peak_running, u64 peak_queue_depth]
//                               [v2.1 tail: f64 retry_after_hint_seconds —
//                                the scheduler's EWMA-derived pacing hint,
//                                so clients back off before being rejected]
//     0x05 kEnd       payload = empty
//     0x06 kError     payload = u32 length, message bytes
//     0x07 kCancel    client -> server: abandon the in-flight query
//     0x08 kQueued    payload = u64 query_id, u32 position, u32 depth
//     0x09 kAdmitted  payload = u64 query_id, f64 queue_wait_seconds
//     0x0A kRejected  payload = f64 retry_after_seconds,
//                               u32 length, message bytes
//
// v1 interop: the kQuery tail and the kStats tails are optional — an older
// peer simply never sends or reads them (payload parsing is positional,
// trailing bytes are ignored).  The distribution frames (0x10+, node
// daemons and the scatter/gather coordinator) are documented in
// storm/wire.h and docs/DISTRIBUTION.md.
#pragma once

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "sched/scheduler.h"
#include "storm/cluster.h"

namespace adv::storm {

// Serves one dataset on a TCP port.  Each connection is handled on its own
// thread; queries on different connections pass through one shared
// admission scheduler and execute on one shared StormCluster.
class QueryServer {
 public:
  // Binds to 127.0.0.1:`port` (0 = ephemeral).  Throws IoError on failure.
  QueryServer(std::shared_ptr<codegen::DataServicePlan> plan,
              ClusterOptions opts = {}, int port = 0,
              const afc::ChunkFilter* filter = nullptr,
              sched::SchedulerOptions sched_opts = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // The bound port.
  int port() const { return port_; }
  uint64_t queries_served() const { return queries_served_.load(); }
  sched::SchedulerMetrics scheduler_metrics() const {
    return scheduler_.metrics();
  }

  // Deterministic graceful drain (also done by the destructor):
  //   1. stop accepting (listen socket shut down, acceptor joined),
  //   2. drain the scheduler — queued queries are cancelled, running ones
  //      finish and stream their results,
  //   3. shut down every remaining connection socket (unblocks idle
  //      connections parked in recv) and join all connection threads.
  void shutdown();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    // True once a query frame arrived: shutdown() leaves busy connections
    // alone (the scheduler drain settles their fate and they exit on their
    // own, with the cancel/error frame delivered intact) and only forces
    // idle ones — parked in recv awaiting a query — off their sockets.
    std::atomic<bool> busy{false};
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  void serve_query(Connection* conn);
  void reap_finished_locked();

  std::shared_ptr<codegen::DataServicePlan> plan_;
  const afc::ChunkFilter* filter_;
  StormCluster cluster_;
  sched::QueryScheduler scheduler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> queries_served_{0};
  std::thread acceptor_;
  std::mutex conn_mu_;
  // std::list: node addresses stay valid while threads run, so shutdown
  // can collect Connection* under the lock and join outside it.
  std::list<std::unique_ptr<Connection>> connections_;
};

// Scheduler-side view of one served query plus a snapshot of the server's
// aggregate scheduler metrics, parsed from the kStats v2 tail.  `valid` is
// false when the server spoke protocol v1.
struct SchedInfo {
  bool valid = false;
  uint64_t query_id = 0;
  double queue_wait_seconds = 0;
  double run_seconds = 0;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t queue_depth = 0;
  uint64_t running = 0;
  uint64_t peak_running = 0;
  uint64_t peak_queue_depth = 0;
  // The scheduler's current EWMA retry-after estimate (seconds a new
  // submission would be told to wait if rejected right now).  Callers use
  // it to pace their next query instead of hot-looping into kRejected;
  // 0 when the server has free capacity or predates the v2.1 tail.
  double retry_after_hint_seconds = 0;
};

// Result of a remote query.
struct RemoteResult {
  std::vector<expr::Table> partitions;
  std::vector<NodeStats> node_stats;
  SchedInfo sched;

  uint64_t total_rows() const {
    uint64_t n = 0;
    for (const auto& p : partitions) n += p.num_rows();
    return n;
  }
  expr::Table merged() const;
};

// The server's admission queue was full (or it is draining).  Carries the
// server's retry-after hint.
class QueueFullError : public QueryError {
 public:
  QueueFullError(const std::string& msg, double retry_after)
      : QueryError(msg), retry_after_seconds(retry_after) {}

  double retry_after_seconds = 0;
};

// Per-query client-side options.
struct QueryOptions {
  // Server-enforced deadline; <= 0 uses the server's default (if any).
  double deadline_seconds = 0;
  // 0 = low, 1 = normal, 2 = high (clamped server-side).
  uint8_t priority = 1;
  // Client-side cancellation: when this token fires while the query is in
  // flight, the client sends one kCancel frame and keeps reading until the
  // server terminates the stream; execute() then throws CancelledError.
  CancelToken* cancel = nullptr;
  // Progress hooks, invoked on the calling thread as the server reports
  // queue state (may never fire when the query is admitted immediately).
  std::function<void(uint64_t query_id, std::size_t position,
                     std::size_t depth)>
      on_queued;
  std::function<void(uint64_t query_id, double queue_wait_seconds)>
      on_admitted;
};

// Blocking client.  One query per call; the connection is opened and closed
// per query (the paper's clients are batch analysis programs).
class QueryClient {
 public:
  // `connect_timeout_seconds` bounds the TCP connect (a dead or
  // blackholed server fails with IoError instead of hanging in the
  // kernel's SYN retries); <= 0 keeps the OS default blocking connect.
  QueryClient(std::string host, int port, double connect_timeout_seconds = 0)
      : host_(std::move(host)),
        port_(port),
        connect_timeout_seconds_(connect_timeout_seconds) {}

  // Throws QueryError with the server's message on query failure,
  // QueueFullError when admission rejected it, CancelledError when
  // `opts.cancel` fired, IoError on connection problems.
  RemoteResult execute(const std::string& sql,
                       const PartitionSpec& partition = {},
                       const QueryOptions& opts = {}) const;

 private:
  std::string host_;
  int port_;
  double connect_timeout_seconds_ = 0;
};

}  // namespace adv::storm
