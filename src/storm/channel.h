// Bounded multi-producer single-consumer channel used by the data mover to
// ship row batches from virtual nodes to client consumers.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace adv::storm {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 64) : capacity_(capacity) {}

  // Blocks while the channel is full.  Returns false if the channel was
  // closed (item dropped).
  bool push(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_space_.wait(lk, [&] { return closed_ || q_.size() < capacity_; });
    if (closed_) return false;
    q_.push_back(std::move(item));
    cv_data_.notify_one();
    return true;
  }

  // Blocks until an item arrives or the channel is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_data_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    cv_space_.notify_one();
    return item;
  }

  // Producers are done; consumers drain what remains.
  void close() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    cv_data_.notify_all();
    cv_space_.notify_all();
  }

 private:
  std::size_t capacity_;
  std::deque<T> q_;
  std::mutex mu_;
  std::condition_variable cv_data_, cv_space_;
  bool closed_ = false;
};

}  // namespace adv::storm
