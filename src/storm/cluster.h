// StormCluster — the virtual parallel machine.
//
// One worker thread per storage node.  Each node runs the generated index
// function restricted to its own files, extracts and filters rows with the
// generated extraction function, partitions them across the client's
// consumers, and ships batches through the data mover.  The client (the
// caller) assembles per-consumer tables.
//
// Timing: the host may have fewer cores than the virtual cluster has
// nodes, so per-node *busy time* is measured around each node's compute,
// and the reported `makespan_seconds` = max over nodes (what wall-clock
// time would be on a real cluster with one CPU per node).  `wall_seconds`
// is the actual host wall time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storm/services.h"

namespace adv::storm {

struct NodeStats {
  int node_id = 0;
  double busy_seconds = 0;          // compute + local I/O
  double transfer_seconds = 0;      // simulated network time
  uint64_t afcs = 0;
  uint64_t bytes_read = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t bytes_sent = 0;
  std::string error;  // non-empty when the node failed
};

struct QueryResult {
  std::vector<expr::Table> partitions;  // one per consumer
  std::vector<NodeStats> node_stats;
  double makespan_seconds = 0;  // max over nodes of busy+transfer
  double wall_seconds = 0;
  double plan_seconds = 0;      // query bind + global sanity checks

  uint64_t total_rows() const;
  uint64_t total_bytes_read() const;
  // Concatenation of all partitions.
  expr::Table merged() const;
  // First error reported by any node ("" when none).
  std::string first_error() const;
};

struct ClusterOptions {
  TransferModel transfer;           // network model (default: not modeled)
  std::size_t batch_rows = 4096;    // rows per shipped batch
  bool parallel_nodes = true;       // false: run nodes sequentially
};

class StormCluster {
 public:
  StormCluster(std::shared_ptr<codegen::DataServicePlan> plan,
               ClusterOptions opts = {});

  int num_nodes() const;
  const QueryService& query_service() const { return query_service_; }

  // Executes a query across all virtual nodes.  Throws QueryError /
  // ParseError for malformed queries; per-node runtime failures (I/O) are
  // reported in NodeStats::error instead of aborting other nodes.
  QueryResult execute(const std::string& sql,
                      const PartitionSpec& partition = {},
                      const afc::ChunkFilter* filter = nullptr);
  QueryResult execute(const expr::BoundQuery& q,
                      const PartitionSpec& partition = {},
                      const afc::ChunkFilter* filter = nullptr);

  // Streaming execution: row batches are handed to `sink` as nodes produce
  // them instead of being materialized into tables (the callback runs on
  // the client thread; batches from different nodes interleave).  The
  // returned QueryResult carries stats only — its partitions are empty.
  using BatchSink = std::function<void(const RowBatch&)>;
  QueryResult execute_streaming(const expr::BoundQuery& q,
                                const BatchSink& sink,
                                const PartitionSpec& partition = {},
                                const afc::ChunkFilter* filter = nullptr);

 private:
  std::shared_ptr<codegen::DataServicePlan> plan_;
  ClusterOptions opts_;
  QueryService query_service_;
};

}  // namespace adv::storm
