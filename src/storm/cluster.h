// StormCluster — the virtual parallel machine.
//
// One worker thread per storage node.  Each node runs the generated index
// function restricted to its own files, then extracts, filters, partitions,
// and ships its AFC list — in parallel across a shared intra-node thread
// pool when `threads_per_node` > 1: the AFC list is split into contiguous
// ranges, each range is scanned by a worker with its own Extractor and its
// own per-consumer pending batches (no shared mutable state), and batches
// flow straight into the data-mover channel.  Rows are numbered by their
// scan position in the node's AFC list, so a row's destination consumer
// under kRoundRobin/kBlockCyclic is identical whether the node scans with
// 1 thread or 64 (see docs/PIPELINE.md for the ordering contract).  The
// client (the caller) assembles per-consumer tables.
//
// Aggregation / top-k pushdown (docs/AGGREGATION.md): for queries where
// BoundQuery::is_pushdown() holds, workers fold matched rows into local
// aggregate state instead of shipping them.  Worker states merge into one
// per-node state, the serialized node states merge at the client (exactly —
// results are byte-identical for any thread count or merge order), and the
// *final* rows are partitioned by their output row index and handed to the
// sink, so every consumer-facing path works unchanged.
//
// Timing: the host may have fewer cores than the virtual cluster has
// nodes, so per-node *busy time* is measured around each node's compute,
// and the reported `makespan_seconds` = max over nodes (what wall-clock
// time would be on a real cluster with one CPU per node).  `wall_seconds`
// is the actual host wall time.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/kernel_mode.h"
#include "common/thread_pool.h"
#include "kernels/jit.h"
#include "storm/services.h"

namespace adv::storm {

struct NodeStats {
  int node_id = 0;
  double busy_seconds = 0;          // compute + local I/O
  double transfer_seconds = 0;      // simulated network time
  uint64_t afcs = 0;
  uint64_t bytes_read = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t bytes_sent = 0;
  // Work the chunk filter (zone map / min-max index) removed before this
  // node's extraction started: AFCs dropped, rows never scanned, bytes
  // never read.
  uint64_t afcs_pruned = 0;
  uint64_t rows_pruned = 0;
  uint64_t bytes_skipped = 0;
  // Transient read faults healed by the bounded per-AFC retry (the node
  // still succeeded; the count is how many extra attempts it took).
  uint64_t io_retries = 0;
  // Which kernel tier extracted this node's AFCs (one count per AFC); a
  // jit request that fell back shows up as afcs_vector > 0, afcs_jit == 0.
  uint64_t afcs_interp = 0;
  uint64_t afcs_vector = 0;
  uint64_t afcs_jit = 0;
  // Aggregation pushdown (docs/AGGREGATION.md): groups (or buffered top-k
  // rows) this node emitted, the serialized partial-aggregate state size
  // that crossed the node boundary in place of rows, and how many range
  // workers ended on each physical aggregation strategy (a hash worker
  // that upgraded itself mid-scan counts as radix).
  uint64_t groups_emitted = 0;
  uint64_t agg_bytes_shipped = 0;
  uint64_t agg_dense = 0;
  uint64_t agg_hash = 0;
  uint64_t agg_radix = 0;
  std::string error;  // non-empty when the node failed
  // Category of `error`, so callers can distinguish an I/O casualty (retry
  // the query, fail over) from a cancelled query or a query-shape bug
  // without parsing message text.
  ErrorKind error_kind = ErrorKind::kNone;
};

struct QueryResult {
  std::vector<expr::Table> partitions;  // one per consumer
  std::vector<NodeStats> node_stats;
  double makespan_seconds = 0;  // max over nodes of busy+transfer
  double wall_seconds = 0;
  double plan_seconds = 0;      // query bind + global sanity checks

  uint64_t total_rows() const;
  uint64_t total_bytes_read() const;
  uint64_t total_afcs_pruned() const;
  uint64_t total_rows_pruned() const;
  uint64_t total_bytes_skipped() const;
  uint64_t total_io_retries() const;
  uint64_t total_afcs_interp() const;
  uint64_t total_afcs_vector() const;
  uint64_t total_afcs_jit() const;
  uint64_t total_groups_emitted() const;
  uint64_t total_agg_bytes_shipped() const;
  // Concatenation of all partitions.
  expr::Table merged() const;
  // First error reported by any node ("" when none).
  std::string first_error() const;
  // Kind of the first node error (kNone when every node succeeded).
  ErrorKind first_error_kind() const;
  // Node ids that reported an error, in node order.
  std::vector<int> failed_nodes() const;
};

struct ClusterOptions {
  TransferModel transfer;           // network model (default: not modeled)
  std::size_t batch_rows = 4096;    // rows per shipped batch
  bool parallel_nodes = true;       // false: run nodes sequentially
  // Extraction workers sharing one pool across all nodes of this cluster;
  // 0 = env ADV_THREADS_PER_NODE, defaulting to hardware_concurrency;
  // 1 = scan each node's AFC list inline.
  std::size_t threads_per_node = 0;
  // kAuto honors env ADV_IO_MODE ("mmap"/"pread"), defaulting to mmap.
  IoMode io_mode = IoMode::kAuto;
  // Transient-read recovery: an AFC whose extraction dies with an IoError
  // is retried up to `io_retry_limit` more times (exponential backoff
  // starting at `io_retry_backoff_us`), provided none of its rows were
  // already shipped — a flaky pread heals invisibly, a hard fault still
  // fails the node after the budget.  0 disables retry.
  std::size_t io_retry_limit = 2;
  uint64_t io_retry_backoff_us = 100;
  // Extraction kernel tier; kAuto honors env ADV_KERNEL_MODE ("interp" /
  // "vector" / "jit"), defaulting to vector.  jit compiles one specialized
  // module per (plan, query) and falls back to vector when the system
  // compiler is unavailable or the predicate calls a UDF.
  KernelMode kernel_mode = KernelMode::kAuto;
  // Admission heuristic: a node splits its AFC list into at most
  // total_rows / min_rows_per_worker parallel ranges, so each range worker
  // amortizes its setup (extractor scratch, pread buffers, per-consumer
  // pending batches) over a meaningful row count and par-* configs never
  // lose to seq-* on small post-pruning scans.  0 = env
  // ADV_MIN_ROWS_PER_WORKER, defaulting to 64Ki rows.
  uint64_t min_rows_per_worker = 0;
};

class StormCluster {
 public:
  StormCluster(std::shared_ptr<codegen::DataServicePlan> plan,
               ClusterOptions opts = {});

  int num_nodes() const;
  const QueryService& query_service() const { return query_service_; }

  // Executes a query across all virtual nodes.  Throws QueryError /
  // ParseError for malformed queries; per-node runtime failures (I/O) are
  // reported in NodeStats::error instead of aborting other nodes.
  //
  // `cancel` (optional) is the query's cooperative cancellation token: it
  // is polled inside the per-node AFC planner, before every AFC and every
  // extraction batch, and on the row-shipping path, so a fired token (an
  // explicit cancel or an expired deadline) releases this cluster's pool
  // workers within one extraction batch.  Cancellation surfaces as the
  // affected nodes' NodeStats::error; concurrently executing queries with
  // other tokens are unaffected.  The token is also *fired by* the
  // cluster when a streaming sink throws (the consumer is gone), so
  // producers stop instead of scanning for a dead connection.
  QueryResult execute(const std::string& sql,
                      const PartitionSpec& partition = {},
                      const afc::ChunkFilter* filter = nullptr,
                      CancelToken* cancel = nullptr);
  QueryResult execute(const expr::BoundQuery& q,
                      const PartitionSpec& partition = {},
                      const afc::ChunkFilter* filter = nullptr,
                      CancelToken* cancel = nullptr);

  // Streaming execution: row batches are handed to `sink` as nodes produce
  // them instead of being materialized into tables (the callback runs on
  // the client thread; batches from different nodes interleave).  The
  // returned QueryResult carries stats only — its partitions are empty.
  // A sink exception cancels the query (when it has a token), drains the
  // remaining batches, and is rethrown once every node worker joined.
  // `node_modules` (optional, one entry per node, null entries allowed)
  // supplies precompiled jit modules matching `node_plans` — the plan
  // cache's warm path.  Without it, jit mode compiles per node on first
  // use (served by the process-wide JitCache afterwards).
  using BatchSink = std::function<void(const RowBatch&)>;
  QueryResult execute_streaming(const expr::BoundQuery& q,
                                const BatchSink& sink,
                                const PartitionSpec& partition = {},
                                const afc::ChunkFilter* filter = nullptr,
                                const std::vector<afc::PlanResult>*
                                    node_plans = nullptr,
                                CancelToken* cancel = nullptr,
                                const std::vector<std::shared_ptr<
                                    const kernels::JitModule>>*
                                    node_modules = nullptr);

  // Executes against precomputed per-node plans (node_plans[n] is the
  // index-function result for node n, with any chunk filter already
  // applied), skipping the per-node planning step entirely.  This is the
  // plan-cache fast path: a cached hit replays the exact AFC lists the
  // cold run produced.
  QueryResult execute_planned(const expr::BoundQuery& q,
                              const std::vector<afc::PlanResult>& node_plans,
                              const PartitionSpec& partition = {},
                              CancelToken* cancel = nullptr,
                              const std::vector<std::shared_ptr<
                                  const kernels::JitModule>>*
                                  node_modules = nullptr);

  // Runs the per-node index function for every node (as execute() would)
  // and returns the plans, one per node.
  std::vector<afc::PlanResult> plan_nodes(
      const expr::BoundQuery& q, const afc::ChunkFilter* filter = nullptr);

  // Lazily-built pool shared by all node workers (and all concurrent
  // queries) of this cluster; null while threads_per_node resolves to 1.
  // Public so open-time index builds can reuse the same workers.
  ThreadPool* extraction_pool();

 private:
  std::shared_ptr<codegen::DataServicePlan> plan_;
  ClusterOptions opts_;
  QueryService query_service_;
  std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace adv::storm
