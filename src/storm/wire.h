// Shared wire codec for the STORM network protocol (v2 + distribution).
//
// One frame grammar serves three peers: QueryServer/QueryClient (the
// client-facing query service, src/storm/net.cpp), NodeDaemon (a
// per-shard storage-node server process, src/storm/node_daemon.cpp), and
// DistCoordinator (the scatter/gather side, src/storm/dist.cpp).  Keeping
// the codec in one place is what makes the interop guarantees testable:
// every peer parses payloads positionally and ignores unknown trailing
// bytes, so a newer peer's extra fields degrade gracefully, and every
// peer answers an unexpected frame type with a typed kError instead of
// hanging.
//
//   frame := u32 payload_length (LE), u8 type, payload
//
// Client/server types 0x01..0x0A are documented in storm/net.h.  The
// distribution types (coordinator <-> node daemon) are:
//
//   0x10 kNodeQuery  coordinator -> daemon: execute this node's share.
//                    payload = u32 node_id, u64 start_afc,
//                              u16 num_consumers, u8 policy,
//                              i32 select_index, f64 range_lo, f64 range_hi,
//                              u64 block_size, u32 sql_len, sql bytes,
//                              f64 deadline_seconds,
//                              f64 heartbeat_interval_seconds,
//                              u32 checkpoint_afcs
//   0x11 kNodeHello  daemon -> coordinator: the node-local plan is built.
//                    payload = u32 node_id, u64 total_afcs,
//                              u64 plan_fingerprint, u16 ncols,
//                    + optional tail: u16 nnames, nnames × (u32 len,
//                    bytes) — the output column names, so a schema-less
//                    coordinator can resolve SELECT * ORDER BY keys
//   0x12 kProgress   daemon -> coordinator: every row of the AFC prefix
//                    [0, afcs_done) has been flushed to the socket.  The
//                    coordinator's commit point: rows received since the
//                    previous kProgress become durable, and a failover
//                    resumes at start_afc = afcs_done with no duplicates.
//                    payload = u64 afcs_done
//   0x13 kHeartbeat  daemon -> coordinator: liveness + progress beacon,
//                    sent from a dedicated thread even mid-extraction.
//                    payload = u64 afcs_started, u64 rows_shipped,
//                              u64 beat_index
//   0x14 kNodeStats  daemon -> coordinator: the node's full NodeStats,
//                    sent once before kEnd.  Aggregation counters
//                    (groups_emitted, agg_bytes_shipped, strategy counts)
//                    ride as an optional 5×u64 tail.
//   0x15 kAggBatch   daemon -> coordinator: serialized partial-aggregate
//                    DELTA state (agg::encode format) covering the rows of
//                    the AFC window since the previous checkpoint, sent in
//                    place of kRowBatch frames for pushdown queries
//                    (docs/AGGREGATION.md).  The kProgress that follows is
//                    its commit point: a staged delta whose kProgress never
//                    arrives is discarded, and the failover replica
//                    regenerates exactly that window — aggregate state is
//                    never double-counted.
//                    payload = u64 nbytes, state bytes
//
// kNodeQuery payloads optionally carry a trailing u32 agg_checkpoint_afcs
// (pushdown checkpoint cadence; 0 or missing = one final checkpoint).
// kError payloads optionally carry a trailing u8 ErrorKind after the
// message string (daemons always send it; older peers ignore it, and a
// missing tail parses as ErrorKind::kOther).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/error.h"

namespace adv::storm::wire {

enum MsgType : uint8_t {
  kQuery = 0x01,
  kSchema = 0x02,
  kRowBatch = 0x03,
  kStats = 0x04,
  kEnd = 0x05,
  kError = 0x06,
  kCancel = 0x07,
  kQueued = 0x08,
  kAdmitted = 0x09,
  kRejected = 0x0A,
  // Distribution (coordinator <-> node daemon).
  kNodeQuery = 0x10,
  kNodeHello = 0x11,
  kProgress = 0x12,
  kHeartbeat = 0x13,
  kNodeStats = 0x14,
  kAggBatch = 0x15,
};

// Byte-buffer writer/reader for frame payloads.  Reads are positional and
// bounds-checked; unread trailing bytes are how optional protocol tails
// are detected (remaining()).
class Payload {
 public:
  Payload() = default;
  explicit Payload(std::vector<unsigned char> data) : data_(std::move(data)) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::size_t at = data_.size();
    data_.resize(at + sizeof v);
    std::memcpy(data_.data() + at, &v, sizeof v);
  }
  void put_bytes(const void* p, std::size_t n) {
    std::size_t at = data_.size();
    data_.resize(at + n);
    std::memcpy(data_.data() + at, p, n);
  }
  void put_string(const std::string& s) {
    put<uint32_t>(static_cast<uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

  template <typename T>
  T get() {
    T v;
    if (pos_ + sizeof v > data_.size())
      throw IoError("malformed network frame (truncated payload)");
    std::memcpy(&v, data_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }
  std::string get_string() {
    uint32_t n = get<uint32_t>();
    if (pos_ + n > data_.size())
      throw IoError("malformed network frame (truncated string)");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  const unsigned char* raw(std::size_t n) {
    if (pos_ + n > data_.size())
      throw IoError("malformed network frame (truncated block)");
    const unsigned char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  // Unread bytes left in the payload — how optional protocol tails are
  // detected (an older peer simply stops before them).
  std::size_t remaining() const { return data_.size() - pos_; }

  const std::vector<unsigned char>& data() const { return data_; }

 private:
  std::vector<unsigned char> data_;
  std::size_t pos_ = 0;
};

// Loop-until-done send/recv with EINTR absorption; sends use MSG_NOSIGNAL
// so a peer vanishing mid-write surfaces as an IoError (EPIPE), never a
// process-killing SIGPIPE.  Both route through faultz injection hooks.
void write_all(int fd, const void* buf, std::size_t n);
void read_all(int fd, void* buf, std::size_t n);

void send_frame(int fd, MsgType type, const Payload& payload);
std::pair<MsgType, Payload> recv_frame(int fd);

// Receive that watches a CancelToken while blocked: polls the socket in
// 20 ms ticks, and when the token fires sends one kCancel frame, then
// keeps receiving — the server terminates the stream with kError.
std::pair<MsgType, Payload> recv_frame_cancellable(int fd,
                                                   const CancelToken* cancel,
                                                   bool& cancel_sent);

// Receive bounded by a poll timeout: throws IoError("receive timed out...")
// when no frame header byte arrives within `timeout_seconds` (<= 0 blocks
// forever).  Used by the coordinator so a silent peer can never hang a
// gather thread.
std::pair<MsgType, Payload> recv_frame_timeout(int fd, double timeout_seconds);

// Sends a typed error frame; failures are swallowed (the peer may already
// be gone — there is nobody left to tell).
void send_error(int fd, const std::string& msg,
                ErrorKind kind = ErrorKind::kOther) noexcept;

// Parses a kError payload: message plus the optional trailing kind byte
// (ErrorKind::kOther when the peer predates the tail).
std::pair<std::string, ErrorKind> parse_error(Payload& payload);

void set_nodelay(int fd);

// Makes SIGPIPE harmless process-wide (idempotent).  Every server
// entrypoint calls this as belt-and-braces on top of MSG_NOSIGNAL: a peer
// vanishing mid-write must surface as an IoError, never kill the process.
void ignore_sigpipe();

// Blocking-connect with a bounded wait: non-blocking connect + poll +
// SO_ERROR, restored to blocking mode on success.  `timeout_seconds` <= 0
// means wait indefinitely.  Returns the connected fd; throws IoError on
// refusal, timeout, or a bad address.
int connect_with_timeout(const std::string& host, int port,
                         double timeout_seconds);

// RAII socket.
struct Socket {
  int fd = -1;
  Socket() = default;
  explicit Socket(int f) : fd(f) {}
  ~Socket() { reset(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& o) noexcept : fd(o.fd) { o.fd = -1; }
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      reset();
      fd = o.fd;
      o.fd = -1;
    }
    return *this;
  }
  void reset();
  int release() {
    int f = fd;
    fd = -1;
    return f;
  }
};

// 64-bit FNV-1a, the repo's standard content hash (jit source hashes, zone
// map sidecar checksums) — here for plan fingerprints.
inline uint64_t fnv1a64(const void* data, std::size_t n,
                        uint64_t h = 1469598103934665603ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace adv::storm::wire
