#include "storm/node_daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>

#include "agg/agg.h"
#include "codegen/emit.h"
#include "common/env.h"
#include "common/error.h"
#include "common/stopwatch.h"
#include "faultz/faultz.h"
#include "storm/wire.h"

namespace adv::storm {

using namespace wire;

namespace {

// Structural fingerprint of a node-local plan: every field that determines
// the rows and their scan-position numbering.  Two daemons produce the
// same fingerprint iff a resume at any AFC index lands on identical rows,
// so the coordinator checks it before re-issuing a partially-shipped
// query to a replica (differing zone-map sidecars are the typical cause
// of divergence).
uint64_t plan_fingerprint(const afc::PlanResult& pr) {
  uint64_t h = 1469598103934665603ull;
  auto mix_u64 = [&h](uint64_t v) { h = fnv1a64(&v, sizeof v, h); };
  for (const auto& g : pr.groups)
    for (const auto& f : g.files) h = fnv1a64(f.data(), f.size(), h);
  mix_u64(pr.afcs.size());
  for (const auto& a : pr.afcs) {
    mix_u64(static_cast<uint64_t>(a.group));
    mix_u64(a.num_rows);
    mix_u64(static_cast<uint64_t>(a.row_first));
    for (uint64_t off : a.offsets) mix_u64(off);
  }
  return h;
}

// Partitions matched rows into per-consumer pending batches and ships full
// batches as kRowBatch frames.  Mirrors the in-process PartitionSink —
// same scan-position numbering, same begin/rollback retry contract — with
// the data-mover channel replaced by the socket (sends serialized with the
// heartbeat thread via `send_mu`).
class WireSink final : public codegen::RowSink {
 public:
  WireSink(int fd, std::mutex& send_mu, std::size_t ncols, int nconsumers,
           const PartitionGenerationService& partsvc, std::size_t batch_rows,
           std::atomic<uint64_t>& rows_shipped, const CancelToken* cancel)
      : fd_(fd),
        send_mu_(send_mu),
        ncols_(ncols),
        partsvc_(partsvc),
        batch_rows_(batch_rows),
        rows_shipped_(rows_shipped),
        cancel_(cancel),
        pending_(static_cast<std::size_t>(nconsumers)),
        mark_(static_cast<std::size_t>(nconsumers)) {
    for (auto& b : pending_) b.reserve(batch_rows_ * ncols_);
  }

  uint64_t bytes_sent() const { return bytes_sent_; }

  void begin_afc(uint64_t base_seq) {
    base_seq_ = base_seq;
    for (std::size_t c = 0; c < pending_.size(); ++c)
      mark_[c] = pending_[c].size();
    flushed_since_mark_ = false;
  }

  // Same no-duplicate-rows contract as the in-process sink: false once any
  // batch left for the socket since the mark — those rows are beyond
  // recall, so the caller must fail (and the coordinator's commit protocol
  // takes over recovery).
  bool rollback_afc() {
    if (flushed_since_mark_) return false;
    for (std::size_t c = 0; c < pending_.size(); ++c)
      pending_[c].resize(mark_[c]);
    return true;
  }

  void on_row(const double* vals, uint64_t scan_index) override {
    int dest = partsvc_.destination(vals, base_seq_ + scan_index);
    auto& b = pending_[static_cast<std::size_t>(dest)];
    b.insert(b.end(), vals, vals + ncols_);
    if (b.size() >= batch_rows_ * ncols_) flush(dest);
  }

  void on_rows(const double* rows, std::size_t ncols, std::size_t nrows,
               const uint64_t* scan_index) override {
    if (pending_.size() == 1 &&
        partsvc_.spec().policy == PartitionSpec::Policy::kSingle) {
      auto& b = pending_[0];
      b.insert(b.end(), rows, rows + nrows * ncols);
      if (b.size() >= batch_rows_ * ncols_) flush(0);
      return;
    }
    for (std::size_t i = 0; i < nrows; ++i)
      on_row(rows + i * ncols, scan_index[i]);
  }

  void flush_all() {
    for (std::size_t c = 0; c < pending_.size(); ++c)
      flush(static_cast<int>(c));
  }

 private:
  void flush(int c) {
    auto& b = pending_[static_cast<std::size_t>(c)];
    if (b.empty()) return;
    flushed_since_mark_ = true;
    if (cancel_) cancel_->check();
    Payload batch;
    batch.put<uint16_t>(static_cast<uint16_t>(c));
    batch.put<uint32_t>(static_cast<uint32_t>(b.size() / ncols_));
    batch.put<uint16_t>(static_cast<uint16_t>(ncols_));
    batch.put_bytes(b.data(), b.size() * sizeof(double));
    {
      std::lock_guard<std::mutex> lk(send_mu_);
      send_frame(fd_, kRowBatch, batch);
    }
    bytes_sent_ += b.size() * sizeof(double);
    rows_shipped_.fetch_add(b.size() / ncols_, std::memory_order_relaxed);
    b.clear();
  }

  int fd_;
  std::mutex& send_mu_;
  std::size_t ncols_;
  const PartitionGenerationService& partsvc_;
  std::size_t batch_rows_;
  std::atomic<uint64_t>& rows_shipped_;
  const CancelToken* cancel_;
  std::vector<std::vector<double>> pending_;
  std::vector<std::size_t> mark_;
  bool flushed_since_mark_ = false;
  uint64_t base_seq_ = 0;
  uint64_t bytes_sent_ = 0;
};

void put_node_stats(Payload& p, const NodeStats& ns) {
  p.put<int32_t>(ns.node_id);
  p.put<double>(ns.busy_seconds);
  p.put<double>(ns.transfer_seconds);
  p.put<uint64_t>(ns.afcs);
  p.put<uint64_t>(ns.bytes_read);
  p.put<uint64_t>(ns.rows_scanned);
  p.put<uint64_t>(ns.rows_matched);
  p.put<uint64_t>(ns.bytes_sent);
  p.put<uint64_t>(ns.afcs_pruned);
  p.put<uint64_t>(ns.rows_pruned);
  p.put<uint64_t>(ns.bytes_skipped);
  p.put<uint64_t>(ns.io_retries);
  p.put<uint64_t>(ns.afcs_interp);
  p.put<uint64_t>(ns.afcs_vector);
  p.put<uint64_t>(ns.afcs_jit);
  // Aggregation tail (optional for older coordinators).
  p.put<uint64_t>(ns.groups_emitted);
  p.put<uint64_t>(ns.agg_bytes_shipped);
  p.put<uint64_t>(ns.agg_dense);
  p.put<uint64_t>(ns.agg_hash);
  p.put<uint64_t>(ns.agg_radix);
}

}  // namespace

NodeDaemon::NodeDaemon(std::shared_ptr<codegen::DataServicePlan> plan,
                       NodeDaemonOptions opts)
    : plan_(std::move(plan)), opts_(opts) {
  if (opts_.node_id < 0 || opts_.node_id >= plan_->model().num_nodes())
    throw ValidationError("node daemon: node_id " +
                          std::to_string(opts_.node_id) +
                          " outside the dataset's " +
                          std::to_string(plan_->model().num_nodes()) +
                          " nodes");
  ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("cannot create node daemon socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    throw IoError(std::string("cannot bind node daemon: ") +
                  std::strerror(errno));
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw IoError("cannot listen on node daemon socket");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

NodeDaemon::~NodeDaemon() { shutdown(); }

void NodeDaemon::shutdown() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Cancel in-flight queries and unblock their sockets; each serving
  // thread unwinds within one extraction batch, answers with a typed
  // kError if it still can, and exits.
  std::vector<Connection*> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto& c : connections_) {
      c->token.cancel();
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
      conns.push_back(c.get());
    }
  }
  for (Connection* c : conns)
    if (c->thread.joinable()) c->thread.join();
  std::lock_guard<std::mutex> lk(conn_mu_);
  connections_.clear();
}

void NodeDaemon::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_ || (errno != EINTR && errno != ECONNABORTED)) return;
      continue;
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    set_nodelay(fd);
    std::lock_guard<std::mutex> lk(conn_mu_);
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* cp = conn.get();
    connections_.push_back(std::move(conn));
    cp->thread = std::thread([this, cp] { serve_connection(cp); });
  }
}

void NodeDaemon::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void NodeDaemon::serve_connection(Connection* conn) {
  serve_scatter(conn);
  std::lock_guard<std::mutex> lk(conn_mu_);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true);
}

void NodeDaemon::serve_scatter(Connection* conn) {
  const int fd = conn->fd;
  CancelToken& token = conn->token;
  std::mutex send_mu;  // serializes row batches, progress, and heartbeats
  try {
    auto [type, payload] = recv_frame(fd);
    if (type != kNodeQuery) {
      // Forward-compat contract: an old-style client (or anything else)
      // gets a typed error, never a hang.  kQuery marks it non-retryable —
      // reconnecting with the same frame cannot succeed.
      send_error(fd,
                 "this endpoint serves per-node scatter queries "
                 "(kNodeQuery); connect a DistCoordinator, not a "
                 "QueryClient (see docs/DISTRIBUTION.md)",
                 ErrorKind::kQuery);
      return;
    }

    // ---- Parse the scatter request. -----------------------------------
    const int32_t want_node = static_cast<int32_t>(payload.get<uint32_t>());
    const uint64_t start_afc = payload.get<uint64_t>();
    PartitionSpec part;
    part.num_consumers = payload.get<uint16_t>();
    part.policy = static_cast<PartitionSpec::Policy>(payload.get<uint8_t>());
    part.select_index = payload.get<int32_t>();
    part.range_lo = payload.get<double>();
    part.range_hi = payload.get<double>();
    part.block_size = payload.get<uint64_t>();
    const std::string sql = payload.get_string();
    const double deadline_seconds = payload.get<double>();
    double hb_interval = payload.get<double>();
    uint32_t checkpoint_afcs = payload.get<uint32_t>();
    // Optional tail: pushdown checkpoint cadence (0 / absent = one final
    // checkpoint — aggregate state is tiny, so per-AFC deltas are waste).
    const uint32_t agg_checkpoint_afcs =
        payload.remaining() >= sizeof(uint32_t) ? payload.get<uint32_t>() : 0;
    if (want_node != opts_.node_id) {
      send_error(fd,
                 "daemon serves node " + std::to_string(opts_.node_id) +
                     ", not node " + std::to_string(want_node) +
                     " (misconfigured shard map)",
                 ErrorKind::kQuery);
      return;
    }
    if (hb_interval <= 0) hb_interval = opts_.heartbeat_interval_seconds;
    hb_interval = std::max(hb_interval, 0.005);
    if (checkpoint_afcs == 0) checkpoint_afcs = opts_.checkpoint_afcs;
    if (checkpoint_afcs == 0) checkpoint_afcs = 1;
    token.set_deadline_after(deadline_seconds);

    // Control reader: a kCancel frame or a disconnect fires the token for
    // the rest of the query's life (same pattern as QueryServer).
    std::thread reader([fd, &token] {
      try {
        for (;;) {
          auto [t, p] = recv_frame(fd);
          if (t == kCancel) {
            token.cancel();
            return;
          }
        }
      } catch (const Error&) {
        token.cancel();
      }
    });
    bool reader_joined = false;
    auto join_reader = [&]() noexcept {
      if (reader_joined) return;
      reader_joined = true;
      ::shutdown(fd, SHUT_RD);
      reader.join();
    };

    // Heartbeat thread state; started only once the plan is announced.
    std::atomic<uint64_t> afcs_started{0};
    std::atomic<uint64_t> rows_shipped{0};
    std::mutex hb_mu;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::thread heartbeat;
    auto stop_heartbeat = [&]() noexcept {
      {
        std::lock_guard<std::mutex> lk(hb_mu);
        hb_stop = true;
      }
      hb_cv.notify_all();
      if (heartbeat.joinable()) heartbeat.join();
    };

    NodeStats stats;
    stats.node_id = opts_.node_id;
    Stopwatch busy;
    try {
      // A daemon worker dying at query start: the node-death campaign
      // generalized across the process boundary.  The catch below answers
      // with a typed kError — the daemon process itself survives.
      faultz::maybe_throw_io(faultz::Site::kNodeRun,
                             "storm node worker died");

      // ---- Node-local planning (zone-map pruning included). -----------
      expr::BoundQuery q = plan_->bind(sql);
      afc::PlannerOptions popts;
      popts.filter = opts_.filter;
      popts.only_node = opts_.node_id;
      popts.cancel = &token;
      afc::PlanResult pr = plan_->index_fn(q, popts);
      const std::size_t nafcs = pr.afcs.size();
      stats.afcs = nafcs;
      stats.afcs_pruned = pr.stats.afcs_filtered_by_index;
      stats.rows_pruned = pr.stats.rows_pruned;
      stats.bytes_skipped = pr.stats.bytes_skipped;

      if (start_afc > nafcs)
        throw QueryError("resume point " + std::to_string(start_afc) +
                         " beyond the plan's " + std::to_string(nafcs) +
                         " AFCs (replica plans diverged?)");
      if (part.num_consumers < 1)
        throw QueryError("PartitionSpec.num_consumers must be >= 1");

      // Pushdown queries announce the *final output* width: the coordinator
      // merges aggregate state, not rows, and its gathered tables have the
      // result schema (docs/AGGREGATION.md).
      const bool pushdown = q.is_pushdown();
      const std::size_t ncols =
          pushdown ? q.result_columns().size() : q.select_slots().size();
      Payload hello;
      hello.put<uint32_t>(static_cast<uint32_t>(opts_.node_id));
      hello.put<uint64_t>(nafcs);
      hello.put<uint64_t>(plan_fingerprint(pr));
      hello.put<uint16_t>(static_cast<uint16_t>(ncols));
      // Optional tail: the output column names, so a schema-less
      // coordinator can name its gathered tables and resolve ORDER BY
      // for SELECT * top-k queries (older coordinators ignore it).
      const std::vector<expr::Table::Column> rcols = q.result_columns();
      if (rcols.size() == ncols) {
        hello.put<uint16_t>(static_cast<uint16_t>(ncols));
        for (const auto& c : rcols) hello.put_string(c.name);
      }
      {
        std::lock_guard<std::mutex> lk(send_mu);
        send_frame(fd, kNodeHello, hello);
      }

      heartbeat = std::thread([&] {
        uint64_t beat = 0;
        std::unique_lock<std::mutex> lk(hb_mu);
        while (!hb_stop) {
          hb_cv.wait_for(lk, std::chrono::duration<double>(hb_interval),
                         [&] { return hb_stop; });
          if (hb_stop) return;
          Payload hb;
          hb.put<uint64_t>(afcs_started.load(std::memory_order_relaxed));
          hb.put<uint64_t>(rows_shipped.load(std::memory_order_relaxed));
          hb.put<uint64_t>(++beat);
          try {
            std::lock_guard<std::mutex> slk(send_mu);
            send_frame(fd, kHeartbeat, hb);
          } catch (const Error&) {
            return;  // peer gone; the scan path will notice on its next send
          }
        }
      });

      // ---- Extraction: deterministic plan order, checkpointed. --------
      std::vector<codegen::GroupBinding> bindings;
      bindings.reserve(pr.groups.size());
      for (const auto& g : pr.groups)
        bindings.push_back(codegen::bind_group(g, q, plan_->schema()));

      const KernelMode mode = resolve_kernel_mode(opts_.cluster.kernel_mode);
      std::shared_ptr<const kernels::JitModule> jit_mod;
      if (mode == KernelMode::kJit && !pr.groups.empty() &&
          codegen::can_jit_query(q)) {
        jit_mod = kernels::JitCache::instance().get_or_compile(
            codegen::emit_extract_cpp(pr, q));
        if (jit_mod &&
            jit_mod->num_groups() == static_cast<int>(pr.groups.size())) {
          for (std::size_t g = 0; g < bindings.size(); ++g)
            bindings[g].jit_fn = jit_mod->group_fn(static_cast<int>(g));
        }
      }

      std::vector<uint64_t> base(nafcs + 1, 0);
      for (std::size_t i = 0; i < nafcs; ++i)
        base[i + 1] = base[i] + pr.afcs[i].num_rows;

      codegen::ExtractorOptions xopts;
      xopts.io_mode = opts_.cluster.io_mode;
      xopts.cancel = &token;
      xopts.kernel_mode = mode;
      codegen::Extractor extractor(xopts);
      PartitionGenerationService partsvc(part);
      WireSink sink(fd, send_mu, ncols, part.num_consumers, partsvc,
                    opts_.cluster.batch_rows, rows_shipped, &token);
      std::optional<agg::StrategyChoice> agg_choice;
      std::unique_ptr<agg::PushdownSink> psink;
      if (pushdown) {
        agg_choice = agg::choose_strategy(
            q, pr, dynamic_cast<const afc::ChunkBoundsSource*>(opts_.filter));
        psink = std::make_unique<agg::PushdownSink>(q, *agg_choice);
      }
      // Pushdown checkpoint cadence: aggregate state is O(groups), so the
      // default is a single delta at the end; a coordinator that wants
      // finer failover granularity requests it via the kNodeQuery tail.
      const uint64_t ckpt_window =
          pushdown ? (agg_checkpoint_afcs > 0
                          ? agg_checkpoint_afcs
                          : (nafcs > 0 ? static_cast<uint64_t>(nafcs) : 1))
                   : checkpoint_afcs;
      uint64_t agg_bytes = 0, agg_groups = 0;
      agg::Strategy agg_strat = agg::Strategy::kDense;
      bool agg_strat_seen = false;

      codegen::ExtractStats xstats;
      auto checkpoint = [&](std::size_t done_afcs) {
        Payload prog;
        prog.put<uint64_t>(done_afcs);
        if (psink) {
          // The dist tier's partial-aggregate hand-off; kAggMerge makes a
          // daemon dying right here reproducible (the chaos harness
          // asserts the failover replica never double-counts the window).
          faultz::maybe_throw_io(faultz::Site::kAggMerge,
                                 "partial-aggregate merge failed");
          psink->finish();
          if (const agg::AggTable* t = psink->table()) {
            agg_groups += t->ngroups();
            if (!agg_strat_seen || t->strategy() > agg_strat)
              agg_strat = t->strategy();
            agg_strat_seen = true;
          } else {
            agg_groups += psink->topk()->nrows();
          }
          std::string delta;
          psink->encode(delta);
          // Fresh sink: the next window's state is a pure delta, so the
          // coordinator's commit-or-discard staging is exact.
          psink = std::make_unique<agg::PushdownSink>(q, *agg_choice);
          agg_bytes += delta.size();
          Payload ab;
          ab.put<uint64_t>(delta.size());
          ab.put_bytes(delta.data(), delta.size());
          std::lock_guard<std::mutex> lk(send_mu);
          send_frame(fd, kAggBatch, ab);
          send_frame(fd, kProgress, prog);
          return;
        }
        sink.flush_all();
        std::lock_guard<std::mutex> lk(send_mu);
        send_frame(fd, kProgress, prog);
      };

      for (std::size_t i = start_afc; i < nafcs; ++i) {
        token.check();
        afcs_started.store(i + 1, std::memory_order_relaxed);
        if (opts_.stall_after_afcs > 0 &&
            i - start_afc == opts_.stall_after_afcs) {
          // Chaos-harness straggler: alive (heartbeats continue, counters
          // frozen) but making no progress.
          auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(opts_.stall_seconds));
          while (std::chrono::steady_clock::now() < until) {
            token.check();
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        }
        const afc::Afc& a = pr.afcs[i];
        // Same bounded transient-read retry as the in-process node runner,
        // valid only while no row of this AFC left for the socket.
        for (std::size_t attempt = 0;; ++attempt) {
          if (psink)
            psink->begin_afc();
          else
            sink.begin_afc(base[i]);
          try {
            xstats += extractor.extract(
                pr.groups[static_cast<std::size_t>(a.group)], a,
                bindings[static_cast<std::size_t>(a.group)], q,
                psink ? static_cast<codegen::RowSink&>(*psink) : sink);
            break;
          } catch (const IoError&) {
            if (attempt >= opts_.cluster.io_retry_limit ||
                !(psink ? psink->rollback_afc() : sink.rollback_afc()))
              throw;
            ++stats.io_retries;
            std::this_thread::sleep_for(std::chrono::microseconds(
                opts_.cluster.io_retry_backoff_us << attempt));
          }
        }
        if ((i + 1 - start_afc) % ckpt_window == 0 || i + 1 == nafcs)
          checkpoint(i + 1);
      }
      if (start_afc == nafcs) checkpoint(nafcs);  // nothing left to ship

      stats.bytes_read = xstats.bytes_read;
      stats.rows_scanned = xstats.rows_scanned;
      stats.rows_matched = xstats.rows_matched;
      stats.afcs_interp = xstats.afcs_interp;
      stats.afcs_vector = xstats.afcs_vector;
      stats.afcs_jit = xstats.afcs_jit;
      stats.bytes_sent = pushdown ? agg_bytes : sink.bytes_sent();
      stats.groups_emitted = agg_groups;
      stats.agg_bytes_shipped = agg_bytes;
      if (pushdown && agg_strat_seen) {
        if (agg_strat == agg::Strategy::kDense)
          ++stats.agg_dense;
        else if (agg_strat == agg::Strategy::kHash)
          ++stats.agg_hash;
        else
          ++stats.agg_radix;
      }
      stats.busy_seconds = busy.elapsed_seconds();

      stop_heartbeat();
      join_reader();
      Payload sp;
      put_node_stats(sp, stats);
      send_frame(fd, kNodeStats, sp);
      // Count before the kEnd flush: once the coordinator sees kEnd the
      // query must already be observable as served (tests rely on it).
      queries_served_.fetch_add(1);
      send_frame(fd, kEnd, Payload());
    } catch (const std::exception& e) {
      stop_heartbeat();
      join_reader();
      send_error(fd, e.what(), classify_error(e));
    }
  } catch (const Error&) {
    // Connection-level failure before/outside a query: nothing to answer.
  }
}

}  // namespace adv::storm
