// The STORM service suite (paper §2.3).
//
// STORM is "architected as a suite of loosely coupled services"; the
// classes here mirror that decomposition on the virtual cluster:
//   * QueryService              — entry point: parse + bind + validate.
//   * IndexingService           — wraps the dataset's chunk index (minmax /
//                                 R-tree) behind the planner's ChunkFilter.
//   * DataSourceService         — runs the generated index and extraction
//                                 functions on one node.
//   * FilteringService          — user-defined filters; executed inside the
//                                 extraction loop via the UDF registry, and
//                                 surfaced here for registration.
//   * PartitionGenerationService— maps each result row to a destination
//                                 consumer of the client program.
//   * DataMoverService          — moves selected row batches to consumers,
//                                 accounting simulated transfer time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codegen/plan.h"
#include "expr/udf.h"
#include "storm/channel.h"

namespace adv::storm {

// A batch of result rows in flight from a node to a consumer.
struct RowBatch {
  int source_node = 0;
  int consumer = 0;
  std::size_t num_cols = 0;
  std::vector<double> data;  // row-major

  std::size_t num_rows() const {
    return num_cols == 0 ? 0 : data.size() / num_cols;
  }
  uint64_t bytes() const { return data.size() * sizeof(double); }
};

// ---------------------------------------------------------------------------

class QueryService {
 public:
  explicit QueryService(std::shared_ptr<codegen::DataServicePlan> plan)
      : plan_(std::move(plan)) {}

  // Parses, binds, and validates a query against the served dataset.
  expr::BoundQuery submit(const std::string& sql) const {
    return plan_->bind(sql);
  }

  const codegen::DataServicePlan& plan() const { return *plan_; }

 private:
  std::shared_ptr<codegen::DataServicePlan> plan_;
};

// ---------------------------------------------------------------------------

class FilteringService {
 public:
  // Registers an application-specific filter function usable in WHERE
  // clauses (the paper's Filter(<Data Element>) operation).
  static void register_filter(const std::string& name, int arity,
                              expr::UdfFn fn) {
    expr::UdfRegistry::register_udf(name, arity, fn);
  }
};

// ---------------------------------------------------------------------------

class IndexingService {
 public:
  IndexingService() = default;
  explicit IndexingService(const afc::ChunkFilter* filter)
      : filter_(filter) {}

  const afc::ChunkFilter* filter() const { return filter_; }

 private:
  const afc::ChunkFilter* filter_ = nullptr;
};

// ---------------------------------------------------------------------------

// How result rows are distributed over the client program's consumers
// (the paper's partition generation service lets the server implement the
// client's data distribution).
struct PartitionSpec {
  enum class Policy : uint8_t {
    kSingle,       // everything to consumer 0
    kRoundRobin,   // per-node round robin
    kHashAttr,     // hash of one attribute
    kRangeAttr,    // linear range split of one attribute
    kBlockCyclic,  // blocks of `block_size` rows dealt round-robin (the
                   // distribution HPC client programs typically use)
  };

  Policy policy = Policy::kSingle;
  int num_consumers = 1;
  int select_index = -1;  // position in the SELECT list (kHash/kRange)
  double range_lo = 0, range_hi = 1;  // kRangeAttr
  uint64_t block_size = 64;           // kBlockCyclic
};

class PartitionGenerationService {
 public:
  PartitionGenerationService(const PartitionSpec& spec)
      : spec_(spec) {}

  // Destination consumer of a row (values in SELECT order).  `row_seq` is
  // the row's scan-position sequence within its node — the prefix-sum
  // numbering assigned by run_node — so kRoundRobin/kBlockCyclic deal by
  // scan position and a row's destination is invariant to how many
  // extraction workers the node uses.  Stateless and safe to call from
  // any number of threads.
  int destination(const double* row, uint64_t row_seq) const;

  int num_consumers() const { return spec_.num_consumers; }
  const PartitionSpec& spec() const { return spec_; }

 private:
  PartitionSpec spec_;
};

// ---------------------------------------------------------------------------

// Models the network between server nodes and client consumers.  The
// simulation never sleeps; it accounts the time a transfer would take so
// experiments can report transfer-inclusive times deterministically.
struct TransferModel {
  double bandwidth_bytes_per_sec = 0;  // 0 = not modeled
  double latency_sec = 0;

  double transfer_seconds(uint64_t bytes) const {
    if (bandwidth_bytes_per_sec <= 0) return 0;
    return latency_sec +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

class DataMoverService {
 public:
  DataMoverService(std::shared_ptr<Channel<RowBatch>> channel,
                   TransferModel model)
      : channel_(std::move(channel)), model_(model) {}

  // Ships a batch to its consumer; returns the simulated transfer seconds.
  // Thread-safe: every extraction worker of every node ships through one
  // mover, serialized only by the channel's internal lock.
  double send(RowBatch batch) {
    double t = model_.transfer_seconds(batch.bytes());
    channel_->push(std::move(batch));
    return t;
  }

 private:
  std::shared_ptr<Channel<RowBatch>> channel_;
  TransferModel model_;
};

}  // namespace adv::storm
