#include "storm/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "faultz/faultz.h"

namespace adv::storm::wire {

void write_all(int fd, const void* buf, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = faultz::inj_send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket send failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

void read_all(int fd, void* buf, std::size_t n) {
  unsigned char* p = static_cast<unsigned char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    ssize_t r = faultz::inj_recv(fd, p + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket recv failed: ") + std::strerror(errno));
    }
    if (r == 0) throw IoError("connection closed mid-frame");
    off += static_cast<std::size_t>(r);
  }
}

void send_frame(int fd, MsgType type, const Payload& payload) {
  uint32_t len = static_cast<uint32_t>(payload.data().size());
  unsigned char header[5];
  std::memcpy(header, &len, 4);
  header[4] = static_cast<unsigned char>(type);
  write_all(fd, header, 5);
  if (len) write_all(fd, payload.data().data(), len);
}

std::pair<MsgType, Payload> recv_frame(int fd) {
  unsigned char header[5];
  read_all(fd, header, 5);
  uint32_t len;
  std::memcpy(&len, header, 4);
  if (len > (64u << 20))
    throw IoError("oversized network frame (" + std::to_string(len) +
                  " bytes)");
  std::vector<unsigned char> data(len);
  if (len) read_all(fd, data.data(), len);
  return {static_cast<MsgType>(header[4]), Payload(std::move(data))};
}

std::pair<MsgType, Payload> recv_frame_cancellable(int fd,
                                                   const CancelToken* cancel,
                                                   bool& cancel_sent) {
  if (!cancel) return recv_frame(fd);
  for (;;) {
    if (!cancel_sent && cancel->cancelled()) {
      cancel_sent = true;
      send_frame(fd, kCancel, Payload());
    }
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    int rc = ::poll(&p, 1, 20);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket poll failed: ") + std::strerror(errno));
    }
    if (rc > 0) return recv_frame(fd);
  }
}

std::pair<MsgType, Payload> recv_frame_timeout(int fd,
                                               double timeout_seconds) {
  if (timeout_seconds <= 0) return recv_frame(fd);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0)
      throw IoError("receive timed out after " +
                    std::to_string(timeout_seconds) + "s");
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    int rc = ::poll(&p, 1, static_cast<int>(std::min<long long>(
                               left.count(), 50)));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket poll failed: ") + std::strerror(errno));
    }
    if (rc > 0) return recv_frame(fd);
  }
}

void send_error(int fd, const std::string& msg, ErrorKind kind) noexcept {
  try {
    Payload err;
    err.put_string(msg);
    err.put<uint8_t>(static_cast<uint8_t>(kind));
    send_frame(fd, kError, err);
  } catch (...) {
    // The peer is already gone; nothing left to tell.
  }
}

std::pair<std::string, ErrorKind> parse_error(Payload& payload) {
  std::string msg = payload.get_string();
  ErrorKind kind = ErrorKind::kOther;
  if (payload.remaining() >= 1) {
    uint8_t k = payload.get<uint8_t>();
    if (k <= static_cast<uint8_t>(ErrorKind::kOther))
      kind = static_cast<ErrorKind>(k);
  }
  return {std::move(msg), kind};
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void ignore_sigpipe() {
  // signal() is async-signal-safe enough for an idempotent SIG_IGN install;
  // MSG_NOSIGNAL already covers the codec's own sends, this covers any
  // other write path a daemon process might take.
  ::signal(SIGPIPE, SIG_IGN);
}

int connect_with_timeout(const std::string& host, int port,
                         double timeout_seconds) {
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  if (raw < 0) throw IoError("cannot create client socket");
  Socket sock(raw);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw IoError("bad host address '" + host + "'");

  if (timeout_seconds <= 0) {
    int rc;
    do {
      rc = ::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
      throw IoError("cannot connect to " + host + ":" + std::to_string(port) +
                    ": " + std::strerror(errno));
    set_nodelay(sock.fd);
    return sock.release();
  }

  int flags = ::fcntl(sock.fd, F_GETFL, 0);
  ::fcntl(sock.fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR)
    throw IoError("cannot connect to " + host + ":" + std::to_string(port) +
                  ": " + std::strerror(errno));
  if (rc != 0) {
    pollfd p{};
    p.fd = sock.fd;
    p.events = POLLOUT;
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    for (;;) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0)
        throw IoError("connect to " + host + ":" + std::to_string(port) +
                      " timed out after " + std::to_string(timeout_seconds) +
                      "s");
      int pr = ::poll(&p, 1, static_cast<int>(left.count()));
      if (pr < 0) {
        if (errno == EINTR) continue;
        throw IoError(std::string("connect poll failed: ") +
                      std::strerror(errno));
      }
      if (pr > 0) break;
    }
    int err = 0;
    socklen_t elen = sizeof err;
    if (::getsockopt(sock.fd, SOL_SOCKET, SO_ERROR, &err, &elen) != 0 ||
        err != 0)
      throw IoError("cannot connect to " + host + ":" + std::to_string(port) +
                    ": " + std::strerror(err ? err : errno));
  }
  ::fcntl(sock.fd, F_SETFL, flags);
  set_nodelay(sock.fd);
  return sock.release();
}

void Socket::reset() {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace adv::storm::wire
