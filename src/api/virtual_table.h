// VirtualTable — the one-class front door to a virtualized dataset.
//
// Bundles descriptor compilation, optional chunk-index construction or
// loading, a plan cache for repeated queries, and cluster execution behind
// a minimal interface:
//
//   auto vt = adv::codegen::VirtualTable::open(descriptor_text,
//                                              "IparsData", data_root);
//   adv::expr::Table rows = vt.query(
//       "SELECT * FROM IparsData WHERE TIME BETWEEN 10 AND 20");
//
// For anything more controlled (partitioning, transfer models, per-node
// stats, emitted code), drop down to DataServicePlan / StormCluster.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "serve/plan_cache.h"
#include "codegen/plan.h"
#include "index/minmax.h"
#include "storm/cluster.h"
#include "zonemap/zonemap.h"

namespace adv {

class VirtualTable {
 public:
  struct Options {
    // Build the min/max chunk index over the DATAINDEX attributes at open
    // time (one scan).  Ignored when the dataset declares none.
    bool build_index = false;
    // Load a previously saved index instead (path to an .advidx file).
    std::string index_path;
    // Directory holding the zone-map sidecar (<dataset>.zm.{heap,idx,meta}).
    // When set, a fresh sidecar is loaded at open time; entries for data
    // files rewritten since the build are dropped (stale metadata falls
    // back to full scans, never wrong answers).
    std::string zonemap_dir;
    // Build the zone map at open time (one parallel scan over every chunk,
    // reusing the cluster's extraction pool).  With zonemap_dir set the
    // build runs only when no fresh sidecar loads, and the result is saved
    // there; without it the zone map stays in memory.
    bool build_zonemap = false;
    // Cached plans for repeated queries (0 disables the cache).
    std::size_t plan_cache_capacity = 16;
    // Verify file presence/sizes at open time; throws IoError listing the
    // first problem when the check fails.
    bool verify = false;
    // Graceful degradation: when some (but not all) nodes fail, return the
    // surviving nodes' rows instead of throwing.  The failures stay visible
    // in the result (NodeStats::error / error_kind, failed_nodes()), so
    // callers opting in can tell a complete answer from a partial one.
    // Cancellation still throws — a cancelled query has no answer to give.
    bool partial_results = false;
    storm::ClusterOptions cluster;
  };

  // Opens from descriptor text (native or XML, auto-detected).
  static VirtualTable open(const std::string& descriptor_text,
                           const std::string& dataset_name,
                           const std::string& root_path,
                           const Options& options);
  static VirtualTable open(const std::string& descriptor_text,
                           const std::string& dataset_name,
                           const std::string& root_path) {
    return open(descriptor_text, dataset_name, root_path, Options());
  }

  const meta::Schema& schema() const { return plan_->schema(); }
  int num_nodes() const { return cluster_->num_nodes(); }
  uint64_t total_candidate_rows() const;
  bool has_index() const { return index_.has_value(); }
  bool has_zonemap() const { return zonemap_.has_value(); }

  // Executes a query across the virtual cluster and returns merged rows.
  // `cancel` (optional) is a cooperative cancellation token threaded down
  // through the AFC planner and extraction workers.
  //
  // Node failures rethrow typed by the failing node's error kind:
  // CancelledError for a fired token / expired deadline, QueryError for a
  // query-shape problem, IoError for everything storage-related.  With
  // Options::partial_results set, a query where at least one node
  // succeeded returns the surviving rows instead (inspect
  // query_detailed()'s result for the casualty list).
  expr::Table query(const std::string& sql,
                    CancelToken* cancel = nullptr) const;

  // Full result with per-node statistics and optional partitioning.
  storm::QueryResult query_detailed(
      const std::string& sql, const storm::PartitionSpec& partition = {},
      CancelToken* cancel = nullptr) const;

  // The chunk filter queries run with: the zone map when present, else the
  // min/max index, else null.
  const afc::ChunkFilter* chunk_filter() const;

  // Cache key for `sql`: descriptor hash + the query's canonical printed
  // form (so formatting-only differences share an entry).  Exposed for
  // tests.
  std::string plan_key(const std::string& sql) const;

  // The underlying pieces, for advanced use.
  const codegen::DataServicePlan& plan() const { return *plan_; }
  storm::StormCluster& cluster() const { return *cluster_; }
  const index::MinMaxIndex* index() const {
    return index_ ? &*index_ : nullptr;
  }
  const zonemap::ZoneMap* zone_map() const {
    return zonemap_ ? &*zonemap_ : nullptr;
  }
  PlanCache* plan_cache() const { return plan_cache_.get(); }
  PlanCache::Stats plan_cache_stats() const {
    return plan_cache_ ? plan_cache_->stats() : PlanCache::Stats{};
  }

 private:
  VirtualTable() = default;

  std::shared_ptr<codegen::DataServicePlan> plan_;
  std::shared_ptr<storm::StormCluster> cluster_;
  std::optional<index::MinMaxIndex> index_;
  std::optional<zonemap::ZoneMap> zonemap_;
  std::shared_ptr<PlanCache> plan_cache_;
  uint64_t descriptor_hash_ = 0;
  bool partial_results_ = false;
  // Resolved at open from Options::cluster.kernel_mode; jit makes the plan
  // cache precompile one module per node on the miss path.
  KernelMode kernel_mode_ = KernelMode::kVector;
};

}  // namespace adv
