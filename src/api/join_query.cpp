#include "api/join_query.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "afc/implicit_domain.h"
#include "api/virtual_table.h"
#include "common/error.h"
#include "common/string_util.h"

namespace adv {

namespace {

// One resolved attribute reference: which side and which schema slot.
struct AttrRef {
  int side = 0;
  int attr = 0;           // schema index on that side
  std::string name;       // unqualified schema spelling
};

struct Analyzer {
  const sql::SelectQuery& q;
  const codegen::DataServicePlan* plans[2];  // FROM order
  std::string aliases[2];

  // Resolves `name` ("attr" or "alias.attr") to a side + schema slot.
  AttrRef resolve(const std::string& name) const {
    std::size_t dot = name.find('.');
    if (dot != std::string::npos) {
      std::string alias = name.substr(0, dot);
      std::string attr = name.substr(dot + 1);
      for (int s = 0; s < 2; ++s) {
        if (!iequals(alias, aliases[s])) continue;
        int idx = plans[s]->schema().find(attr);
        if (idx < 0)
          throw QueryError("dataset '" + q.tables[s].table +
                           "' (alias " + aliases[s] +
                           ") has no attribute '" + attr + "'");
        return {s, idx, attr};
      }
      throw QueryError("unknown table alias '" + alias + "' in '" + name +
                       "' — FROM binds " + aliases[0] + " and " + aliases[1]);
    }
    int found[2] = {plans[0]->schema().find(name),
                    plans[1]->schema().find(name)};
    if (found[0] >= 0 && found[1] >= 0)
      throw QueryError("attribute '" + name +
                       "' exists in both datasets; qualify it as " +
                       aliases[0] + "." + name + " or " + aliases[1] + "." +
                       name);
    if (found[0] >= 0) return {0, found[0], name};
    if (found[1] >= 0) return {1, found[1], name};
    throw QueryError("unknown attribute '" + name + "' in join query");
  }
};

void collect_scalar_attrs(const sql::ScalarPtr& s,
                          std::vector<std::string>& out) {
  if (!s) return;
  switch (s->kind) {
    case sql::Scalar::Kind::kAttr: out.push_back(s->name); break;
    case sql::Scalar::Kind::kCall:
      for (const auto& a : s->args) collect_scalar_attrs(a, out);
      break;
    case sql::Scalar::Kind::kArith:
      collect_scalar_attrs(s->lhs, out);
      collect_scalar_attrs(s->rhs, out);
      break;
    case sql::Scalar::Kind::kLiteral: break;
  }
}

void collect_attrs(const sql::BoolExprPtr& e, std::vector<std::string>& out) {
  if (!e) return;
  switch (e->kind) {
    case sql::BoolExpr::Kind::kCmp:
      collect_scalar_attrs(e->lhs, out);
      collect_scalar_attrs(e->rhs, out);
      break;
    case sql::BoolExpr::Kind::kIn: out.push_back(e->attr); break;
    case sql::BoolExpr::Kind::kAnd:
    case sql::BoolExpr::Kind::kOr:
      collect_attrs(e->a, out);
      collect_attrs(e->b, out);
      break;
    case sql::BoolExpr::Kind::kNot: collect_attrs(e->a, out); break;
  }
}

// Rewrites every attribute reference to its unqualified schema spelling.
sql::ScalarPtr strip_scalar(const sql::ScalarPtr& s, const Analyzer& az) {
  if (!s) return s;
  switch (s->kind) {
    case sql::Scalar::Kind::kAttr:
      return sql::Scalar::make_attr(az.resolve(s->name).name);
    case sql::Scalar::Kind::kCall: {
      std::vector<sql::ScalarPtr> args;
      for (const auto& a : s->args) args.push_back(strip_scalar(a, az));
      return sql::Scalar::make_call(s->name, std::move(args));
    }
    case sql::Scalar::Kind::kArith:
      return sql::Scalar::make_arith(s->op, strip_scalar(s->lhs, az),
                                     strip_scalar(s->rhs, az));
    case sql::Scalar::Kind::kLiteral: return s;
  }
  return s;
}

sql::BoolExprPtr strip_qualifiers(const sql::BoolExprPtr& e,
                                  const Analyzer& az) {
  if (!e) return e;
  switch (e->kind) {
    case sql::BoolExpr::Kind::kCmp:
      return sql::BoolExpr::make_cmp(e->cmp, strip_scalar(e->lhs, az),
                                     strip_scalar(e->rhs, az));
    case sql::BoolExpr::Kind::kIn:
      return sql::BoolExpr::make_in(az.resolve(e->attr).name, e->in_values);
    case sql::BoolExpr::Kind::kAnd:
      return sql::BoolExpr::make_and(strip_qualifiers(e->a, az),
                                     strip_qualifiers(e->b, az));
    case sql::BoolExpr::Kind::kOr:
      return sql::BoolExpr::make_or(strip_qualifiers(e->a, az),
                                    strip_qualifiers(e->b, az));
    case sql::BoolExpr::Kind::kNot:
      return sql::BoolExpr::make_not(strip_qualifiers(e->a, az));
  }
  return e;
}

// Flattens top-level AND into conjuncts (the split boundary: everything
// under an OR/NOT stays one conjunct).
void flatten_and(const sql::BoolExprPtr& e,
                 std::vector<sql::BoolExprPtr>& out) {
  if (!e) return;
  if (e->kind == sql::BoolExpr::Kind::kAnd) {
    flatten_and(e->a, out);
    flatten_and(e->b, out);
    return;
  }
  out.push_back(e);
}

sql::BoolExprPtr fold_and(const std::vector<sql::BoolExprPtr>& conjuncts) {
  sql::BoolExprPtr e;
  for (const auto& c : conjuncts)
    e = e ? sql::BoolExpr::make_and(e, c) : c;
  return e;
}

// The set of sides a conjunct touches (0, 1, or both).
std::pair<bool, bool> sides_of(const sql::BoolExprPtr& e,
                               const Analyzer& az) {
  std::vector<std::string> attrs;
  collect_attrs(e, attrs);
  bool touches[2] = {false, false};
  for (const auto& a : attrs) touches[az.resolve(a).side] = true;
  return {touches[0], touches[1]};
}

int64_t key_int(double v) { return std::llround(v); }

}  // namespace

expr::Table execute_join(const sql::SelectQuery& q,
                         const codegen::DataServicePlan& a,
                         const codegen::DataServicePlan& b,
                         const JoinSideExec& exec, JoinStats* stats) {
  if (q.tables.size() != 2)
    throw QueryError("execute_join requires exactly two datasets in FROM, "
                     "got " + std::to_string(q.tables.size()));
  if (q.has_aggregates() || !q.order_by.empty() || q.limit >= 0)
    throw QueryError("aggregates, GROUP BY, ORDER BY, and LIMIT are not "
                     "supported over joins (docs/LAYOUTS.md non-goals); "
                     "join first, then aggregate client-side");
  if (iequals(q.tables[0].alias, q.tables[1].alias))
    throw QueryError("duplicate table alias '" + q.tables[0].alias +
                     "' — the two FROM entries need distinct aliases");

  // Match the FROM entries to the two plans by dataset (or schema) name.
  auto matches = [](const std::string& t,
                    const codegen::DataServicePlan& p) {
    return iequals(t, p.model().dataset_name()) ||
           iequals(t, p.schema().name);
  };
  Analyzer az{q, {nullptr, nullptr}, {q.tables[0].alias, q.tables[1].alias}};
  if (matches(q.tables[0].table, a) && matches(q.tables[1].table, b)) {
    az.plans[0] = &a;
    az.plans[1] = &b;
  } else if (matches(q.tables[0].table, b) && matches(q.tables[1].table, a)) {
    az.plans[0] = &b;
    az.plans[1] = &a;
  } else {
    throw QueryError("FROM names '" + q.tables[0].table + "' and '" +
                     q.tables[1].table + "' but the supplied plans serve '" +
                     a.model().dataset_name() + "' and '" +
                     b.model().dataset_name() + "'");
  }

  // Split the WHERE: cross-side conjuncts must be key equality; everything
  // else belongs to exactly one side.
  std::vector<sql::BoolExprPtr> conjuncts;
  flatten_and(q.where, conjuncts);
  std::vector<std::pair<AttrRef, AttrRef>> keys;  // (side-0 ref, side-1 ref)
  std::vector<sql::BoolExprPtr> side_preds[2];
  for (const auto& c : conjuncts) {
    auto [l, r] = sides_of(c, az);
    if (l && r) {
      const bool is_key_shape =
          c->kind == sql::BoolExpr::Kind::kCmp &&
          c->cmp == sql::CmpOp::kEq &&
          c->lhs->kind == sql::Scalar::Kind::kAttr &&
          c->rhs->kind == sql::Scalar::Kind::kAttr;
      if (!is_key_shape)
        throw QueryError("cross-dataset predicate '" + c->to_string() +
                         "' is not supported: only equality of implicit "
                         "attributes (alias.A = alias.B) can span datasets");
      AttrRef x = az.resolve(c->lhs->name);
      AttrRef y = az.resolve(c->rhs->name);
      if (x.side == y.side)
        throw QueryError("join condition '" + c->to_string() +
                         "' compares two attributes of the same dataset");
      if (x.side == 1) std::swap(x, y);
      keys.emplace_back(x, y);
    } else {
      // Single-side (or attribute-free) conjunct: push into that side.
      side_preds[r ? 1 : 0].push_back(strip_qualifiers(c, az));
    }
  }
  if (keys.empty())
    throw QueryError("two-dataset queries must join on at least one shared "
                     "implicit attribute (e.g. " + az.aliases[0] + ".TIME = " +
                     az.aliases[1] + ".TIME); cross products are not "
                     "supported");
  for (const auto& [x, y] : keys) {
    for (int s = 0; s < 2; ++s) {
      const AttrRef& ref = s == 0 ? x : y;
      if (!afc::is_implicit_attr(az.plans[s]->model(), ref.attr))
        throw QueryError("join key '" + ref.name + "' is not an implicit "
                         "attribute of dataset '" + q.tables[s].table +
                         "': join keys must be derivable from file names "
                         "and loop bounds (afc/implicit_domain.h)");
    }
  }

  // Resolve the projection before any scanning so shape errors surface
  // even on empty results.  SELECT * = all side-0 columns then all side-1
  // columns, each named alias.attr.
  std::vector<AttrRef> proj;
  std::vector<std::string> proj_names;
  if (q.select_all()) {
    for (int s = 0; s < 2; ++s) {
      const meta::Schema& schema = az.plans[s]->schema();
      for (std::size_t i = 0; i < schema.size(); ++i) {
        proj.push_back({s, static_cast<int>(i), schema.at(i).name});
        proj_names.push_back(az.aliases[s] + "." + schema.at(i).name);
      }
    }
  } else {
    for (const auto& item : q.items) {
      proj.push_back(az.resolve(item.attr));
      proj_names.push_back(item.attr);
    }
  }
  std::vector<expr::Table::Column> out_cols;
  for (std::size_t i = 0; i < proj.size(); ++i) {
    const AttrRef& ref = proj[i];
    out_cols.push_back(
        {proj_names[i],
         az.plans[ref.side]->schema()
             .at(static_cast<std::size_t>(ref.attr))
             .type});
  }

  if (stats) {
    *stats = JoinStats{};
    for (const auto& [x, y] : keys)
      stats->key_attrs.push_back(x.name + "=" + y.name);
  }

  // Mutual pruning: intersect the two sides' implicit key domains and push
  // the intersection into both side queries.  Bail out of pruning (not of
  // the join) if either domain is too large to enumerate.
  bool empty_intersection = false;
  for (const auto& [x, y] : keys) {
    auto dl = afc::implicit_attr_domain(az.plans[0]->model(), x.attr);
    auto dr = afc::implicit_attr_domain(az.plans[1]->model(), y.attr);
    if (!dl || !dr) continue;
    std::vector<int64_t> both;
    std::set_intersection(dl->begin(), dl->end(), dr->begin(), dr->end(),
                          std::back_inserter(both));
    if (stats) {
      stats->pruned = true;
      stats->keys_intersected += both.size();
    }
    if (both.empty()) {
      empty_intersection = true;
      break;
    }
    for (int s = 0; s < 2; ++s) {
      const std::string& name = s == 0 ? x.name : y.name;
      sql::BoolExprPtr push;
      if (both.size() <= 256) {
        std::vector<Value> vals;
        for (int64_t v : both) vals.push_back(Value(v));
        push = sql::BoolExpr::make_in(name, std::move(vals));
      } else {
        auto attr_s = sql::Scalar::make_attr(name);
        push = sql::BoolExpr::make_and(
            sql::BoolExpr::make_cmp(sql::CmpOp::kGe, attr_s,
                                    sql::Scalar::make_literal(
                                        Value(both.front()))),
            sql::BoolExpr::make_cmp(sql::CmpOp::kLe, attr_s,
                                    sql::Scalar::make_literal(
                                        Value(both.back()))));
      }
      side_preds[s].push_back(std::move(push));
    }
  }
  if (empty_intersection) return expr::Table(std::move(out_cols));

  // Side queries: SELECT * + side predicates + pushdown.
  expr::Table side_tables[2];
  for (int s = 0; s < 2; ++s) {
    sql::SelectQuery sq;
    sq.table = az.plans[s]->model().dataset_name();
    sq.tables.push_back({sq.table, sq.table});
    sq.where = fold_and(side_preds[s]);
    std::string sql = sq.to_string();
    if (stats) (s == 0 ? stats->left_sql : stats->right_sql) = sql;
    side_tables[s] = exec(s, sql);
  }
  if (stats) {
    stats->left_rows = side_tables[0].num_rows();
    stats->right_rows = side_tables[1].num_rows();
  }

  // SELECT * side results come back in schema order; map each projected
  // and key attr to its column by name (robust to future reordering).
  auto col_of = [&](int side, const std::string& name) {
    const auto& cols = side_tables[side].columns();
    for (std::size_t i = 0; i < cols.size(); ++i)
      if (cols[i].name == name) return i;
    throw QueryError("side result for '" + q.tables[side].table +
                     "' is missing column '" + name + "'");
  };

  // Hash-merge: bucket side-0 rows by key tuple, probe with side-1 rows,
  // emit the per-key cross product.
  std::vector<std::size_t> key_cols[2];
  for (const auto& [x, y] : keys) {
    key_cols[0].push_back(col_of(0, x.name));
    key_cols[1].push_back(col_of(1, y.name));
  }
  std::map<std::vector<int64_t>, std::vector<std::size_t>> buckets;
  std::vector<int64_t> key(keys.size());
  for (std::size_t row = 0; row < side_tables[0].num_rows(); ++row) {
    for (std::size_t k = 0; k < keys.size(); ++k)
      key[k] = key_int(side_tables[0].at(row, key_cols[0][k]));
    buckets[key].push_back(row);
  }

  std::vector<std::size_t> proj_col(proj.size());
  for (std::size_t i = 0; i < proj.size(); ++i)
    proj_col[i] = col_of(proj[i].side, proj[i].name);

  expr::Table out(std::move(out_cols));
  std::vector<double> row_vals(proj.size());
  for (std::size_t rrow = 0; rrow < side_tables[1].num_rows(); ++rrow) {
    for (std::size_t k = 0; k < keys.size(); ++k)
      key[k] = key_int(side_tables[1].at(rrow, key_cols[1][k]));
    auto it = buckets.find(key);
    if (it == buckets.end()) continue;
    for (std::size_t lrow : it->second) {
      for (std::size_t i = 0; i < proj.size(); ++i)
        row_vals[i] = proj[i].side == 0
                          ? side_tables[0].at(lrow, proj_col[i])
                          : side_tables[1].at(rrow, proj_col[i]);
      out.append_row(row_vals.data());
    }
  }
  if (stats) stats->joined_rows = out.num_rows();
  return out;
}

expr::Table join_query(const VirtualTable& left, const VirtualTable& right,
                       const std::string& sql, JoinStats* stats) {
  sql::SelectQuery q = sql::parse_select(sql);
  if (!q.is_join())
    throw QueryError("join_query expects two datasets in FROM; got a "
                     "single-table query — use VirtualTable::query");
  // Sides follow FROM order; route each to the VirtualTable serving that
  // dataset (execute_join validates the name match).
  auto exec = [&](int side, const std::string& side_sql) {
    const std::string& t = q.tables[static_cast<std::size_t>(side)].table;
    const VirtualTable& vt =
        iequals(t, left.plan().model().dataset_name()) ||
                iequals(t, left.schema().name)
            ? left
            : right;
    return vt.query(side_sql);
  };
  return execute_join(q, left.plan(), right.plan(), exec, stats);
}

}  // namespace adv
