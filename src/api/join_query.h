// Cross-dataset equi-joins on shared implicit attributes.
//
//   SELECT * FROM IparsData I, TitanST T
//   WHERE I.TIME = T.TIME AND I.SOIL >= 0.9 AND T.LAT <= 3
//
// This is deliberately NOT a general join engine (docs/LAYOUTS.md lists
// the non-goals).  The supported shape is: exactly two datasets, joined on
// equality of attributes that are *implicit* on both sides — derivable
// from file names and loop idents alone (afc/implicit_domain.h).  The
// remaining conjuncts must each touch only one side and are pushed into
// that side's scan unchanged.
//
// Execution is a planner-level pass plus a merge:
//   1. Split the WHERE into join keys (cross-side equality) and per-side
//      predicates; reject anything else with a typed QueryError.
//   2. Mutual interval pruning: enumerate each side's implicit-key domain,
//      intersect, and push the intersection into both side queries as an
//      IN list (small sets) or a BETWEEN range (large sets).  An empty
//      intersection returns an empty table without scanning anything.
//   3. Run both side queries (SELECT * + side predicates + pushdown)
//      through the caller-supplied executor — in-process, clustered, or
//      distributed; results flow through the ordinary extraction paths.
//   4. Hash-merge on the key tuple and emit the cross product per key,
//      projected onto the original select list.
//
// The pruning is an optimization only: the merge re-checks key equality
// row by row, so a side that could not enumerate its domain (cap
// exceeded) still joins correctly, just without pushdown.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "codegen/plan.h"
#include "expr/table.h"
#include "sql/ast.h"

namespace adv {

class VirtualTable;

struct JoinStats {
  std::vector<std::string> key_attrs;  // unqualified shared key names
  // Values in the pruned key intersection; meaningful when pruned is true.
  std::size_t keys_intersected = 0;
  bool pruned = false;  // pushdown filters were injected into both sides
  std::string left_sql, right_sql;  // the side queries actually executed
  uint64_t left_rows = 0, right_rows = 0;
  uint64_t joined_rows = 0;
};

// Executes one side's SQL.  `side` is 0 for the first FROM entry, 1 for
// the second; `sql` is a single-table SELECT against that side's dataset.
using JoinSideExec =
    std::function<expr::Table(int side, const std::string& sql)>;

// Analyzes, prunes, executes, and merges a two-dataset query.  `a` and `b`
// are the compiled plans for the two datasets named in q's FROM list (in
// either order; matched by dataset name).  Throws QueryError on any
// unsupported shape: not exactly two tables, duplicate aliases, aggregates
// / GROUP BY / ORDER BY / LIMIT over a join, a cross-side predicate that
// is not plain attribute equality, a join key that is not implicit on both
// sides, or no join key at all.
expr::Table execute_join(const sql::SelectQuery& q,
                         const codegen::DataServicePlan& a,
                         const codegen::DataServicePlan& b,
                         const JoinSideExec& exec,
                         JoinStats* stats = nullptr);

// Convenience: parses `sql` and runs both sides through VirtualTable
// queries (each side keeps its own zone map, plan cache, and cluster).
expr::Table join_query(const VirtualTable& left, const VirtualTable& right,
                       const std::string& sql, JoinStats* stats = nullptr);

}  // namespace adv
