#include "api/virtual_table.h"

#include "common/string_util.h"
#include "metadata/xml.h"

namespace adv {

VirtualTable VirtualTable::open(const std::string& descriptor_text,
                                const std::string& dataset_name,
                                const std::string& root_path,
                                const Options& options) {
  VirtualTable vt;
  std::size_t i = descriptor_text.find_first_not_of(" \t\r\n");
  meta::Descriptor desc =
      (i != std::string::npos && descriptor_text[i] == '<')
          ? meta::parse_descriptor_xml(descriptor_text)
          : meta::parse_descriptor(descriptor_text);
  vt.plan_ = std::make_shared<codegen::DataServicePlan>(std::move(desc),
                                                        dataset_name,
                                                        root_path);
  if (options.verify) {
    auto problems = vt.plan_->verify_files();
    if (!problems.empty())
      throw IoError("VirtualTable::open: " + problems.front() +
                    (problems.size() > 1
                         ? format(" (and %zu more)", problems.size() - 1)
                         : ""));
  }
  if (!options.index_path.empty()) {
    vt.index_ = index::MinMaxIndex::load(options.index_path);
  } else if (options.build_index) {
    const meta::DatasetDecl* decl =
        vt.plan_->model().descriptor().find_dataset(dataset_name);
    if (decl && !decl->dataindex.empty())
      vt.index_ = index::MinMaxIndex::build(*vt.plan_);
  }
  vt.cluster_ =
      std::make_shared<storm::StormCluster>(vt.plan_, options.cluster);
  return vt;
}

uint64_t VirtualTable::total_candidate_rows() const {
  expr::BoundQuery q =
      plan_->bind("SELECT * FROM " + plan_->model().dataset_name());
  return plan_->index_fn(q).candidate_rows();
}

expr::Table VirtualTable::query(const std::string& sql) const {
  return query_detailed(sql).merged();
}

storm::QueryResult VirtualTable::query_detailed(
    const std::string& sql, const storm::PartitionSpec& partition) const {
  storm::QueryResult r =
      cluster_->execute(sql, partition, index_ ? &*index_ : nullptr);
  std::string err = r.first_error();
  if (!err.empty()) throw IoError("query failed on a node: " + err);
  return r;
}

}  // namespace adv
