#include "api/virtual_table.h"

#include "codegen/emit.h"
#include "common/string_util.h"
#include "metadata/xml.h"
#include "sql/ast.h"

namespace adv {

namespace {

uint64_t fnv1a(const std::string& s, uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

VirtualTable VirtualTable::open(const std::string& descriptor_text,
                                const std::string& dataset_name,
                                const std::string& root_path,
                                const Options& options) {
  VirtualTable vt;
  std::size_t i = descriptor_text.find_first_not_of(" \t\r\n");
  meta::Descriptor desc =
      (i != std::string::npos && descriptor_text[i] == '<')
          ? meta::parse_descriptor_xml(descriptor_text)
          : meta::parse_descriptor(descriptor_text);
  vt.plan_ = std::make_shared<codegen::DataServicePlan>(std::move(desc),
                                                        dataset_name,
                                                        root_path);
  vt.descriptor_hash_ =
      fnv1a(root_path, fnv1a(dataset_name, fnv1a(descriptor_text)));
  if (options.verify) {
    auto problems = vt.plan_->verify_files();
    if (!problems.empty())
      throw IoError("VirtualTable::open: " + problems.front() +
                    (problems.size() > 1
                         ? format(" (and %zu more)", problems.size() - 1)
                         : ""));
  }
  if (!options.index_path.empty()) {
    vt.index_ = index::MinMaxIndex::load(options.index_path);
  } else if (options.build_index) {
    const meta::DatasetDecl* decl =
        vt.plan_->model().descriptor().find_dataset(dataset_name);
    if (decl && !decl->dataindex.empty())
      vt.index_ = index::MinMaxIndex::build(*vt.plan_);
  }
  vt.cluster_ =
      std::make_shared<storm::StormCluster>(vt.plan_, options.cluster);
  if (!options.zonemap_dir.empty())
    vt.zonemap_ = zonemap::ZoneMap::load(options.zonemap_dir, *vt.plan_);
  // build_zonemap guarantees a fully fresh map: rebuild when the sidecar is
  // missing, unreadable, or has entries dropped for files that changed.
  if (options.build_zonemap &&
      (!vt.zonemap_ || vt.zonemap_->num_stale_files() > 0)) {
    zonemap::ZoneMap::BuildOptions zopts;
    zopts.io_mode = options.cluster.io_mode;
    vt.zonemap_ = zonemap::ZoneMap::build(
        *vt.plan_, vt.cluster_->extraction_pool(), zopts);
    if (!options.zonemap_dir.empty())
      vt.zonemap_->save(options.zonemap_dir, *vt.plan_);
  }
  if (options.plan_cache_capacity > 0)
    vt.plan_cache_ =
        std::make_shared<PlanCache>(options.plan_cache_capacity);
  vt.partial_results_ = options.partial_results;
  vt.kernel_mode_ = resolve_kernel_mode(options.cluster.kernel_mode);
  return vt;
}

uint64_t VirtualTable::total_candidate_rows() const {
  expr::BoundQuery q =
      plan_->bind("SELECT * FROM " + plan_->model().dataset_name());
  return plan_->index_fn(q).candidate_rows();
}

const afc::ChunkFilter* VirtualTable::chunk_filter() const {
  if (zonemap_) return &*zonemap_;
  if (index_) return &*index_;
  return nullptr;
}

std::string VirtualTable::plan_key(const std::string& sql) const {
  return format("%016llx|",
                static_cast<unsigned long long>(descriptor_hash_)) +
         sql::parse_select(sql).to_string();
}

expr::Table VirtualTable::query(const std::string& sql,
                                CancelToken* cancel) const {
  return query_detailed(sql, {}, cancel).merged();
}

storm::QueryResult VirtualTable::query_detailed(
    const std::string& sql, const storm::PartitionSpec& partition,
    CancelToken* cancel) const {
  storm::QueryResult r;
  if (plan_cache_) {
    const std::string key = plan_key(sql);
    std::shared_ptr<const CachedPlan> entry = plan_cache_->find(key);
    if (!entry) {
      auto fresh = std::make_shared<CachedPlan>(plan_->bind(sql));
      fresh->node_plans =
          cluster_->plan_nodes(fresh->query, chunk_filter());
      // In jit mode, compile once on the miss and cache the modules with
      // the plan: warm hits skip emit + compile + dlopen entirely.  A
      // failed compile caches null entries, so run_node falls back to the
      // vector tier without retrying the compiler per query.
      if (kernel_mode_ == KernelMode::kJit &&
          codegen::can_jit_query(fresh->query)) {
        fresh->jit_modules.reserve(fresh->node_plans.size());
        for (const auto& pr : fresh->node_plans)
          fresh->jit_modules.push_back(
              pr.groups.empty()
                  ? nullptr
                  : kernels::JitCache::instance().get_or_compile(
                        codegen::emit_extract_cpp(pr, fresh->query)));
      }
      plan_cache_->insert(key, fresh);
      entry = std::move(fresh);
    }
    r = cluster_->execute_planned(
        entry->query, entry->node_plans, partition, cancel,
        entry->jit_modules.empty() ? nullptr : &entry->jit_modules);
  } else {
    r = cluster_->execute(sql, partition, chunk_filter(), cancel);
  }
  std::string err = r.first_error();
  if (err.empty()) return r;

  ErrorKind kind = r.first_error_kind();
  // Partial-results mode: as long as one node answered and the query was
  // not cancelled, hand back what survived; the per-node errors stay in
  // the result for the caller to inspect.
  if (partial_results_ && kind != ErrorKind::kCancelled &&
      r.failed_nodes().size() < r.node_stats.size())
    return r;

  const std::string msg = "query failed on a node: " + err;
  switch (kind) {
    case ErrorKind::kCancelled: throw CancelledError(msg);
    case ErrorKind::kParse: throw ParseError(msg, 0, 0);
    case ErrorKind::kValidation: throw ValidationError(msg);
    case ErrorKind::kQuery: throw QueryError(msg);
    case ErrorKind::kInternal: throw InternalError(msg);
    default: throw IoError(msg);
  }
}

}  // namespace adv
