// Object model of the meta-data description language (paper §3).
//
// A descriptor has three components:
//   I.   Dataset schema description  — the virtual relational table view.
//   II.  Dataset storage description — nodes/directories holding the data.
//   III. Dataset layout description  — nested DATASET declarations with
//        DATATYPE / DATAINDEX / DATASPACE / DATA / LOOP clauses describing
//        the physical organization of every file.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "metadata/arith.h"

namespace adv::meta {

// ---------------------------------------------------------------------------
// Component I: schema.

struct Attribute {
  std::string name;
  DataType type = DataType::kFloat32;
};

struct Schema {
  std::string name;
  std::vector<Attribute> attrs;

  // Index of attribute `attr_name` or -1.
  int find(const std::string& attr_name) const;
  const Attribute& at(std::size_t i) const { return attrs[i]; }
  std::size_t size() const { return attrs.size(); }

  // Bytes of one fully-materialized row (sum of attribute sizes).
  std::size_t row_bytes() const;
};

// ---------------------------------------------------------------------------
// Component II: storage.

// One DIR[i] entry: `node_name` identifies the cluster node the directory
// lives on, `path` is the directory path relative to the dataset root.
struct StorageDir {
  std::string node_name;
  std::string path;
};

struct Storage {
  std::string dataset_name;  // section header, e.g. [IparsData]
  std::string schema_name;   // DatasetDescription = IPARS
  std::vector<StorageDir> dirs;

  // Distinct node names in order of first appearance; the virtual cluster
  // maps these onto virtual node ids.
  std::vector<std::string> node_names() const;
};

// ---------------------------------------------------------------------------
// Component III: layout.

// One element of a DATASPACE: either a run of consecutive scalar fields or a
// LOOP with a nested body.
struct LayoutNode {
  enum class Kind : uint8_t { kFields, kLoop };

  Kind kind = Kind::kFields;

  // kFields: names of consecutively stored attributes.
  std::vector<std::string> fields;

  // kLoop:
  std::string loop_ident;
  LoopRange range;
  std::vector<LayoutNode> body;
  // Column-major record loop (`LOOP E lo:hi:step COLMAJOR { ... }`): each
  // field of the body is stored as its own contiguous array over the loop
  // span (attribute-contiguous, ArrayBridge-style) instead of interleaved
  // per record.  Valid only on record loops (body is fields exclusively).
  bool colmajor = false;

  static LayoutNode make_fields(std::vector<std::string> names);
  static LayoutNode make_loop(std::string ident, LoopRange r,
                              std::vector<LayoutNode> body,
                              bool colmajor = false);
};

// A segment of a file-name pattern such as `DIR[$DIRID]/DATA$REL`.
struct PatternSeg {
  enum class Kind : uint8_t { kLiteral, kDirRef, kVarRef };

  Kind kind = Kind::kLiteral;
  std::string literal;      // kLiteral
  ArithExprPtr dir_index;   // kDirRef: expression inside DIR[...]
  std::string var;          // kVarRef: variable name after '$'
};

// Variable enumerated by a file pattern (e.g. `REL = 0:3:1`); ranges must be
// constant expressions.
struct PatternBinding {
  std::string var;
  LoopRange range;
};

struct FilePattern {
  std::vector<PatternSeg> segs;
  std::vector<PatternBinding> bindings;

  // Original raw spelling (for diagnostics and pretty-printing).
  std::string raw;
};

// One DATASET declaration.  Leaf datasets carry a DATASPACE and file
// patterns; inner datasets carry children.
struct DatasetDecl {
  std::string name;
  std::string datatype;                  // referenced schema ("" = inherited)
  std::vector<Attribute> local_attrs;    // extra attributes declared inline
  std::vector<std::string> dataindex;    // DATAINDEX { REL TIME }
  std::vector<LayoutNode> dataspace;     // leaf only
  std::vector<FilePattern> files;        // leaf only
  std::vector<DatasetDecl> children;     // inner only
  std::vector<std::string> child_order;  // names listed in DATA { DATASET .. }

  bool is_leaf() const { return children.empty(); }
};

// ---------------------------------------------------------------------------
// The full descriptor.

struct Descriptor {
  std::vector<Schema> schemas;
  std::vector<Storage> storages;
  std::vector<DatasetDecl> datasets;

  const Schema* find_schema(const std::string& name) const;
  const Storage* find_storage(const std::string& dataset_name) const;
  const DatasetDecl* find_dataset(const std::string& name) const;

  // Resolves the schema governing dataset `d` (its own datatype or the one
  // declared by the storage section / enclosing dataset).  Throws
  // ValidationError if unresolved.
  const Schema& schema_of(const DatasetDecl& d) const;
};

// Parses a descriptor from text.  Throws ParseError / ValidationError.
Descriptor parse_descriptor(const std::string& text);

// Validates cross-references and the structural restrictions the AFC model
// requires (see layout/); throws ValidationError with a precise message.
// parse_descriptor() already calls this; exposed for tests and for
// descriptors constructed programmatically.
void validate(const Descriptor& d);

// Pretty-prints a descriptor in the canonical syntax (round-trips through
// parse_descriptor).
std::string to_text(const Descriptor& d);

}  // namespace adv::meta
