#include "metadata/model.h"

#include <algorithm>

namespace adv::meta {

int Schema::find(const std::string& attr_name) const {
  for (std::size_t i = 0; i < attrs.size(); ++i)
    if (attrs[i].name == attr_name) return static_cast<int>(i);
  return -1;
}

std::size_t Schema::row_bytes() const {
  std::size_t total = 0;
  for (const auto& a : attrs) total += size_of(a.type);
  return total;
}

std::vector<std::string> Storage::node_names() const {
  std::vector<std::string> out;
  for (const auto& d : dirs) {
    if (std::find(out.begin(), out.end(), d.node_name) == out.end())
      out.push_back(d.node_name);
  }
  return out;
}

LayoutNode LayoutNode::make_fields(std::vector<std::string> names) {
  LayoutNode n;
  n.kind = Kind::kFields;
  n.fields = std::move(names);
  return n;
}

LayoutNode LayoutNode::make_loop(std::string ident, LoopRange r,
                                 std::vector<LayoutNode> body, bool colmajor) {
  LayoutNode n;
  n.kind = Kind::kLoop;
  n.loop_ident = std::move(ident);
  n.range = std::move(r);
  n.body = std::move(body);
  n.colmajor = colmajor;
  return n;
}

const Schema* Descriptor::find_schema(const std::string& name) const {
  for (const auto& s : schemas)
    if (s.name == name) return &s;
  return nullptr;
}

const Storage* Descriptor::find_storage(const std::string& dataset_name) const {
  for (const auto& s : storages)
    if (s.dataset_name == dataset_name) return &s;
  return nullptr;
}

namespace {
const DatasetDecl* find_in(const DatasetDecl& d, const std::string& name) {
  if (d.name == name) return &d;
  for (const auto& c : d.children)
    if (const DatasetDecl* r = find_in(c, name)) return r;
  return nullptr;
}
}  // namespace

const DatasetDecl* Descriptor::find_dataset(const std::string& name) const {
  for (const auto& d : datasets)
    if (const DatasetDecl* r = find_in(d, name)) return r;
  return nullptr;
}

const Schema& Descriptor::schema_of(const DatasetDecl& d) const {
  std::string schema_name = d.datatype;
  if (schema_name.empty()) {
    // Fall back to the storage section for a top-level dataset.
    if (const Storage* st = find_storage(d.name)) schema_name = st->schema_name;
  }
  if (schema_name.empty())
    throw ValidationError("dataset '" + d.name +
                          "' has no DATATYPE and no storage section declaring "
                          "a schema");
  const Schema* s = find_schema(schema_name);
  if (!s)
    throw ValidationError("dataset '" + d.name + "' references unknown schema '" +
                          schema_name + "'");
  return *s;
}

}  // namespace adv::meta
