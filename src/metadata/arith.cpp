#include "metadata/arith.h"

#include <algorithm>

namespace adv::meta {

ArithExprPtr ArithExpr::constant(int64_t v) {
  auto e = std::shared_ptr<ArithExpr>(new ArithExpr());
  e->kind_ = Kind::kConst;
  e->const_ = v;
  return e;
}

ArithExprPtr ArithExpr::variable(std::string name) {
  auto e = std::shared_ptr<ArithExpr>(new ArithExpr());
  e->kind_ = Kind::kVar;
  e->var_ = std::move(name);
  return e;
}

ArithExprPtr ArithExpr::binary(char op, ArithExprPtr lhs, ArithExprPtr rhs) {
  auto e = std::shared_ptr<ArithExpr>(new ArithExpr());
  e->kind_ = Kind::kBinary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

int64_t ArithExpr::eval(const VarEnv& env) const {
  switch (kind_) {
    case Kind::kConst:
      return const_;
    case Kind::kVar:
      return env.get(var_);
    case Kind::kBinary: {
      int64_t a = lhs_->eval(env);
      int64_t b = rhs_->eval(env);
      switch (op_) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/':
          if (b == 0) throw ValidationError("division by zero in layout expression");
          return a / b;
        case '%':
          if (b == 0) throw ValidationError("modulo by zero in layout expression");
          return a % b;
      }
      throw InternalError("ArithExpr: bad operator");
    }
  }
  throw InternalError("ArithExpr: bad kind");
}

bool ArithExpr::is_constant() const {
  switch (kind_) {
    case Kind::kConst: return true;
    case Kind::kVar: return false;
    case Kind::kBinary: return lhs_->is_constant() && rhs_->is_constant();
  }
  return false;
}

void ArithExpr::collect_vars(std::vector<std::string>& out) const {
  switch (kind_) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      if (std::find(out.begin(), out.end(), var_) == out.end())
        out.push_back(var_);
      return;
    case Kind::kBinary:
      lhs_->collect_vars(out);
      rhs_->collect_vars(out);
      return;
  }
}

std::string ArithExpr::to_string() const {
  switch (kind_) {
    case Kind::kConst:
      return std::to_string(const_);
    case Kind::kVar:
      return "$" + var_;
    case Kind::kBinary:
      return "(" + lhs_->to_string() + op_ + rhs_->to_string() + ")";
  }
  return "?";
}

namespace {

ArithExprPtr parse_expr(TokenCursor& cur);

ArithExprPtr parse_factor(TokenCursor& cur) {
  const Token& t = cur.peek();
  if (t.kind == TokKind::kInt) {
    cur.next();
    return ArithExpr::constant(t.int_value);
  }
  if (t.is_punct("-")) {
    cur.next();
    return ArithExpr::binary('-', ArithExpr::constant(0), parse_factor(cur));
  }
  if (t.is_punct("$")) {
    cur.next();
    const Token& name = cur.expect_any_ident("variable name after '$'");
    return ArithExpr::variable(name.text);
  }
  if (t.kind == TokKind::kIdent) {
    cur.next();
    return ArithExpr::variable(t.text);
  }
  if (t.is_punct("(")) {
    cur.next();
    ArithExprPtr e = parse_expr(cur);
    cur.expect_punct(")");
    return e;
  }
  cur.fail("expected integer, variable, or '(' in arithmetic expression");
}

ArithExprPtr parse_term(TokenCursor& cur) {
  ArithExprPtr e = parse_factor(cur);
  for (;;) {
    if (cur.peek().is_punct("*")) {
      cur.next();
      e = ArithExpr::binary('*', e, parse_factor(cur));
    } else if (cur.peek().is_punct("/")) {
      cur.next();
      e = ArithExpr::binary('/', e, parse_factor(cur));
    } else if (cur.peek().is_punct("%")) {
      cur.next();
      e = ArithExpr::binary('%', e, parse_factor(cur));
    } else {
      return e;
    }
  }
}

ArithExprPtr parse_expr(TokenCursor& cur) {
  ArithExprPtr e = parse_term(cur);
  for (;;) {
    if (cur.peek().is_punct("+")) {
      cur.next();
      e = ArithExpr::binary('+', e, parse_term(cur));
    } else if (cur.peek().is_punct("-")) {
      cur.next();
      e = ArithExpr::binary('-', e, parse_term(cur));
    } else {
      return e;
    }
  }
}

}  // namespace

ArithExprPtr parse_arith(TokenCursor& cur) { return parse_expr(cur); }

ArithExprPtr parse_arith(const std::string& text) {
  TokenCursor cur(tokenize(text));
  ArithExprPtr e = parse_expr(cur);
  if (!cur.at_end()) cur.fail("trailing input after arithmetic expression");
  return e;
}

int64_t LoopRange::count(const VarEnv& env) const {
  int64_t l = lo->eval(env);
  int64_t h = hi->eval(env);
  int64_t s = step ? step->eval(env) : 1;
  if (s <= 0) throw ValidationError("loop step must be positive");
  if (h < l) return 0;
  return (h - l) / s + 1;
}

std::string LoopRange::to_string() const {
  std::string out = lo->to_string() + ":" + hi->to_string();
  if (step) out += ":" + step->to_string();
  return out;
}

LoopRange parse_range(TokenCursor& cur) {
  LoopRange r;
  r.lo = parse_arith(cur);
  cur.expect_punct(":");
  r.hi = parse_arith(cur);
  if (cur.accept_punct(":")) {
    r.step = parse_arith(cur);
  } else {
    r.step = ArithExpr::constant(1);
  }
  return r;
}

}  // namespace adv::meta
