#include "metadata/xml.h"

#include <cctype>
#include <cstring>
#include <functional>
#include <sstream>

#include "common/lexer.h"
#include "common/string_util.h"

namespace adv::meta {

// ---------------------------------------------------------------------------
// Generic XML parsing.

namespace {

class XmlScanner {
 public:
  explicit XmlScanner(const std::string& s) : in_(s) {}

  XmlNode parse_document() {
    skip_prolog();
    XmlNode root = parse_element();
    skip_misc();
    if (!done()) fail("trailing content after root element");
    return root;
  }

 private:
  bool done() const { return pos_ >= in_.size(); }
  char cur() const { return in_[pos_]; }
  bool match(const char* s) const {
    return in_.compare(pos_, std::strlen(s), s) == 0;
  }

  void advance(std::size_t n = 1) {
    for (std::size_t i = 0; i < n && pos_ < in_.size(); ++i) {
      if (in_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("XML: " + msg, line_, col_);
  }

  void skip_ws() {
    while (!done() && std::isspace(static_cast<unsigned char>(cur())))
      advance();
  }

  void skip_comment() {
    // at "<!--"
    advance(4);
    while (!done() && !match("-->")) advance();
    if (done()) fail("unterminated comment");
    advance(3);
  }

  void skip_prolog() {
    skip_ws();
    if (match("<?")) {
      while (!done() && !match("?>")) advance();
      if (done()) fail("unterminated XML declaration");
      advance(2);
    }
    skip_misc();
  }

  void skip_misc() {
    for (;;) {
      skip_ws();
      if (match("<!--")) {
        skip_comment();
        continue;
      }
      return;
    }
  }

  std::string parse_name() {
    std::size_t start = pos_;
    while (!done() && (std::isalnum(static_cast<unsigned char>(cur())) ||
                       cur() == '_' || cur() == '-' || cur() == ':' ||
                       cur() == '.'))
      advance();
    if (pos_ == start) fail("expected a name");
    return in_.substr(start, pos_ - start);
  }

  std::string decode_entities(const std::string& s) {
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out.push_back(s[i]);
        continue;
      }
      std::size_t semi = s.find(';', i);
      if (semi == std::string::npos) fail("unterminated entity");
      std::string ent = s.substr(i + 1, semi - i - 1);
      if (ent == "lt") out.push_back('<');
      else if (ent == "gt") out.push_back('>');
      else if (ent == "amp") out.push_back('&');
      else if (ent == "quot") out.push_back('"');
      else if (ent == "apos") out.push_back('\'');
      else fail("unknown entity '&" + ent + ";'");
      i = semi;
    }
    return out;
  }

  XmlNode parse_element() {
    if (done() || cur() != '<') fail("expected '<'");
    advance();
    XmlNode node;
    node.name = parse_name();
    // Attributes.
    for (;;) {
      skip_ws();
      if (done()) fail("unterminated element <" + node.name + ">");
      if (cur() == '>' || match("/>")) break;
      std::string key = parse_name();
      skip_ws();
      if (done() || cur() != '=') fail("expected '=' after attribute name");
      advance();
      skip_ws();
      if (done() || (cur() != '"' && cur() != '\''))
        fail("expected quoted attribute value");
      char quote = cur();
      advance();
      std::size_t start = pos_;
      while (!done() && cur() != quote) advance();
      if (done()) fail("unterminated attribute value");
      node.attributes.emplace_back(
          key, decode_entities(in_.substr(start, pos_ - start)));
      advance();
    }
    if (match("/>")) {
      advance(2);
      return node;
    }
    advance();  // '>'

    // Content.
    for (;;) {
      if (done()) fail("unterminated element <" + node.name + ">");
      if (match("<!--")) {
        skip_comment();
        continue;
      }
      if (match("<![CDATA[")) {
        advance(9);
        std::size_t start = pos_;
        while (!done() && !match("]]>")) advance();
        if (done()) fail("unterminated CDATA section");
        node.text += in_.substr(start, pos_ - start);
        advance(3);
        continue;
      }
      if (match("</")) {
        advance(2);
        std::string closing = parse_name();
        if (closing != node.name)
          fail("mismatched closing tag </" + closing + "> for <" +
               node.name + ">");
        skip_ws();
        if (done() || cur() != '>') fail("expected '>' in closing tag");
        advance();
        return node;
      }
      if (cur() == '<') {
        node.children.push_back(parse_element());
        continue;
      }
      std::size_t start = pos_;
      while (!done() && cur() != '<') advance();
      node.text += decode_entities(in_.substr(start, pos_ - start));
    }
  }

  const std::string& in_;
  std::size_t pos_ = 0;
  int line_ = 1, col_ = 1;
};

std::string encode_entities(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void write_node(std::ostringstream& os, const XmlNode& n, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << '<' << n.name;
  for (const auto& [k, v] : n.attributes)
    os << ' ' << k << "=\"" << encode_entities(v) << '"';
  std::string text = trim(n.text);
  if (n.children.empty() && text.empty()) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (!text.empty()) os << encode_entities(text);
  if (!n.children.empty()) {
    os << '\n';
    for (const auto& c : n.children) write_node(os, c, indent + 1);
    os << pad;
  }
  os << "</" << n.name << ">\n";
}

}  // namespace

std::string XmlNode::attr(const std::string& key,
                          const std::string& def) const {
  for (const auto& [k, v] : attributes)
    if (k == key) return v;
  return def;
}

bool XmlNode::has_attr(const std::string& key) const {
  for (const auto& [k, v] : attributes)
    if (k == key) return true;
  return false;
}

const XmlNode* XmlNode::child(const std::string& name) const {
  for (const auto& c : children)
    if (c.name == name) return &c;
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    const std::string& name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children)
    if (c.name == name) out.push_back(&c);
  return out;
}

XmlNode parse_xml(const std::string& text) {
  XmlScanner s(text);
  return s.parse_document();
}

std::string to_xml_text(const XmlNode& node) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\"?>\n";
  write_node(os, node, 0);
  return os.str();
}

// ---------------------------------------------------------------------------
// Descriptor <-> XML.

namespace {

LoopRange range_from_string(const std::string& s) {
  TokenCursor cur(tokenize(s));
  LoopRange r = parse_range(cur);
  if (!cur.at_end())
    throw ValidationError("trailing input in range '" + s + "'");
  return r;
}

std::vector<std::string> names_from_text(const std::string& text) {
  std::vector<std::string> out;
  std::string word;
  for (char c : text + " ") {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!word.empty()) out.push_back(word);
      word.clear();
    } else {
      word.push_back(c);
    }
  }
  return out;
}

LayoutNode layout_from_xml(const XmlNode& n);

std::vector<LayoutNode> layout_children(const XmlNode& n) {
  std::vector<LayoutNode> out;
  for (const auto& c : n.children) out.push_back(layout_from_xml(c));
  return out;
}

LayoutNode layout_from_xml(const XmlNode& n) {
  if (n.name == "loop") {
    if (!n.has_attr("ident") || !n.has_attr("range"))
      throw ValidationError("XML <loop> needs ident and range attributes");
    std::string order = n.attr("order", "rowmajor");
    if (order != "rowmajor" && order != "colmajor")
      throw ValidationError("XML <loop order=\"" + order +
                            "\">: order must be rowmajor or colmajor");
    return LayoutNode::make_loop(n.attr("ident"),
                                 range_from_string(n.attr("range")),
                                 layout_children(n), order == "colmajor");
  }
  if (n.name == "fields")
    return LayoutNode::make_fields(names_from_text(n.text));
  throw ValidationError("unexpected XML element <" + n.name +
                        "> inside <dataspace>");
}

DatasetDecl dataset_from_xml(const XmlNode& n) {
  DatasetDecl d;
  d.name = n.attr("name");
  d.datatype = n.attr("datatype");
  if (const XmlNode* di = n.child("dataindex"))
    d.dataindex = names_from_text(di->text);
  if (const XmlNode* dt = n.child("datatype")) {
    for (const XmlNode* a : dt->children_named("attribute"))
      d.local_attrs.push_back(
          {a->attr("name"), parse_data_type(a->attr("type"))});
  }
  if (const XmlNode* space = n.child("dataspace"))
    d.dataspace = layout_children(*space);
  if (const XmlNode* data = n.child("data")) {
    for (const XmlNode* f : data->children_named("file")) {
      FilePattern fp;
      fp.raw = f->attr("pattern");
      if (fp.raw.empty())
        throw ValidationError("XML <file> needs a pattern attribute");
      // Reuse the text-syntax pattern parser via a round trip through the
      // canonical descriptor form of a single-file DATA clause.
      std::string shim = "[S_]\nA_ = int\n[D_]\nDatasetDescription = S_\n"
                         "DIR[0] = n/d\nDATASET \"D_\" { DATASPACE { LOOP "
                         "I_ 1:1:1 { A_ } } DATA { \"" + fp.raw + "\"";
      for (const XmlNode* b : f->children_named("bind"))
        shim += " " + b->attr("var") + " = " + b->attr("range");
      shim += " } }";
      Descriptor tmp;
      try {
        tmp = parse_descriptor(shim);
      } catch (const Error& e) {
        throw ValidationError("XML <file pattern=\"" + fp.raw +
                              "\"> does not parse: " + e.what());
      }
      FilePattern parsed = tmp.datasets[0].files[0];
      fp.segs = parsed.segs;
      fp.bindings = parsed.bindings;
      d.files.push_back(std::move(fp));
    }
  }
  for (const XmlNode* c : n.children_named("dataset")) {
    d.children.push_back(dataset_from_xml(*c));
    d.child_order.push_back(d.children.back().name);
  }
  return d;
}

}  // namespace

Descriptor parse_descriptor_xml(const std::string& xml_text) {
  XmlNode root = parse_xml(xml_text);
  if (root.name != "descriptor")
    throw ValidationError("XML root element must be <descriptor>, got <" +
                          root.name + ">");
  Descriptor d;
  for (const XmlNode* s : root.children_named("schema")) {
    Schema sc;
    sc.name = s->attr("name");
    for (const XmlNode* a : s->children_named("attribute"))
      sc.attrs.push_back({a->attr("name"), parse_data_type(a->attr("type"))});
    d.schemas.push_back(std::move(sc));
  }
  for (const XmlNode* s : root.children_named("storage")) {
    Storage st;
    st.dataset_name = s->attr("dataset");
    st.schema_name = s->attr("schema");
    auto dirs = s->children_named("dir");
    st.dirs.resize(dirs.size());
    for (const XmlNode* dir : dirs) {
      std::size_t idx = static_cast<std::size_t>(
          std::stoul(dir->attr("index", "0")));
      if (idx >= st.dirs.size())
        throw ValidationError("XML <dir index> out of range in storage [" +
                              st.dataset_name + "]");
      std::string path = dir->attr("path");
      std::size_t slash = path.find('/');
      st.dirs[idx] = {slash == std::string::npos ? path
                                                 : path.substr(0, slash),
                      path};
    }
    d.storages.push_back(std::move(st));
  }
  for (const XmlNode* ds : root.children_named("dataset"))
    d.datasets.push_back(dataset_from_xml(*ds));

  // Inherit datatypes exactly like the text parser.
  for (auto& ds : d.datasets) {
    std::string top = ds.datatype;
    if (top.empty())
      if (const Storage* st = d.find_storage(ds.name)) top = st->schema_name;
    std::function<void(DatasetDecl&, const std::string&)> propagate =
        [&](DatasetDecl& dd, const std::string& inherited) {
          if (dd.datatype.empty()) dd.datatype = inherited;
          for (auto& c : dd.children) propagate(c, dd.datatype);
        };
    propagate(ds, top);
  }
  validate(d);
  return d;
}

namespace {

XmlNode layout_to_xml(const LayoutNode& n) {
  XmlNode x;
  if (n.kind == LayoutNode::Kind::kFields) {
    x.name = "fields";
    x.text = join(n.fields, " ");
    return x;
  }
  x.name = "loop";
  x.attributes = {{"ident", n.loop_ident}, {"range", n.range.to_string()}};
  if (n.colmajor) x.attributes.push_back({"order", "colmajor"});
  for (const auto& b : n.body) x.children.push_back(layout_to_xml(b));
  return x;
}

std::string pattern_to_string(const FilePattern& fp) {
  std::string out;
  for (const auto& seg : fp.segs) {
    switch (seg.kind) {
      case PatternSeg::Kind::kLiteral: out += seg.literal; break;
      case PatternSeg::Kind::kDirRef:
        out += "DIR[" + seg.dir_index->to_string() + "]";
        break;
      case PatternSeg::Kind::kVarRef: out += "$" + seg.var; break;
    }
  }
  return out;
}

XmlNode dataset_to_xml(const DatasetDecl& d) {
  XmlNode x;
  x.name = "dataset";
  x.attributes = {{"name", d.name}};
  if (!d.datatype.empty()) x.attributes.push_back({"datatype", d.datatype});
  if (!d.local_attrs.empty()) {
    XmlNode dt;
    dt.name = "datatype";
    for (const auto& a : d.local_attrs) {
      XmlNode at;
      at.name = "attribute";
      at.attributes = {{"name", a.name}, {"type", to_string(a.type)}};
      dt.children.push_back(std::move(at));
    }
    x.children.push_back(std::move(dt));
  }
  if (!d.dataindex.empty()) {
    XmlNode di;
    di.name = "dataindex";
    di.text = join(d.dataindex, " ");
    x.children.push_back(std::move(di));
  }
  if (!d.dataspace.empty()) {
    XmlNode space;
    space.name = "dataspace";
    for (const auto& n : d.dataspace)
      space.children.push_back(layout_to_xml(n));
    x.children.push_back(std::move(space));
  }
  if (!d.files.empty()) {
    XmlNode data;
    data.name = "data";
    for (const auto& fp : d.files) {
      XmlNode f;
      f.name = "file";
      f.attributes = {{"pattern", pattern_to_string(fp)}};
      for (const auto& b : fp.bindings) {
        XmlNode bind;
        bind.name = "bind";
        bind.attributes = {{"var", b.var}, {"range", b.range.to_string()}};
        f.children.push_back(std::move(bind));
      }
      data.children.push_back(std::move(f));
    }
    x.children.push_back(std::move(data));
  }
  for (const auto& c : d.children) x.children.push_back(dataset_to_xml(c));
  return x;
}

}  // namespace

std::string to_xml(const Descriptor& d) {
  XmlNode root;
  root.name = "descriptor";
  for (const auto& s : d.schemas) {
    XmlNode sc;
    sc.name = "schema";
    sc.attributes = {{"name", s.name}};
    for (const auto& a : s.attrs) {
      XmlNode at;
      at.name = "attribute";
      at.attributes = {{"name", a.name}, {"type", to_string(a.type)}};
      sc.children.push_back(std::move(at));
    }
    root.children.push_back(std::move(sc));
  }
  for (const auto& st : d.storages) {
    XmlNode s;
    s.name = "storage";
    s.attributes = {{"dataset", st.dataset_name}, {"schema", st.schema_name}};
    for (std::size_t i = 0; i < st.dirs.size(); ++i) {
      XmlNode dir;
      dir.name = "dir";
      dir.attributes = {{"index", std::to_string(i)},
                        {"path", st.dirs[i].path}};
      s.children.push_back(std::move(dir));
    }
    root.children.push_back(std::move(s));
  }
  for (const auto& ds : d.datasets)
    root.children.push_back(dataset_to_xml(ds));
  return to_xml_text(root);
}

}  // namespace adv::meta
