// Semantic validation of a parsed descriptor.
//
// Beyond cross-reference checks, this enforces the structural restrictions
// the AFC extraction model relies on (see layout/loop_nest.h):
//   * a DATASPACE is a tree of LOOPs; *schema* attributes appear only
//     inside a loop whose body contains fields exclusively (a "record
//     loop"); file-local (DATATYPE-declared) fields may additionally appear
//     next to loops or at top level as chunk/file headers the extractor
//     skips;
//   * a loop identifier is not reused along one nesting path (sibling reuse,
//     as in per-variable arrays that each loop over GRID, is fine);
//   * loop bounds reference only file-pattern binding variables, never
//     enclosing loop identifiers (no triangular loop nests);
//   * file-pattern binding ranges are constant.
#include <functional>
#include <set>
#include <string>

#include "metadata/model.h"

namespace adv::meta {

namespace {

class Validator {
 public:
  explicit Validator(const Descriptor& d) : d_(d) {}

  void run() {
    std::set<std::string> schema_names;
    for (const auto& s : d_.schemas) {
      if (!schema_names.insert(s.name).second)
        fail("duplicate schema [" + s.name + "]");
      if (s.attrs.empty()) fail("schema [" + s.name + "] has no attributes");
      std::set<std::string> attr_names;
      for (const auto& a : s.attrs)
        if (!attr_names.insert(a.name).second)
          fail("schema [" + s.name + "] declares attribute '" + a.name +
               "' twice");
    }

    std::set<std::string> storage_names;
    for (const auto& st : d_.storages) {
      if (!storage_names.insert(st.dataset_name).second)
        fail("duplicate storage section [" + st.dataset_name + "]");
      if (!d_.find_schema(st.schema_name))
        fail("storage section [" + st.dataset_name +
             "] references unknown schema '" + st.schema_name + "'");
      if (st.dirs.empty())
        fail("storage section [" + st.dataset_name + "] lists no DIR entries");
    }

    std::set<std::string> dataset_names;
    for (const auto& ds : d_.datasets) check_dataset(ds, dataset_names);
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ValidationError(msg);
  }

  void check_dataset(const DatasetDecl& ds,
                     std::set<std::string>& seen_names) {
    if (ds.name.empty()) fail("dataset with empty name");
    if (!seen_names.insert(ds.name).second)
      fail("duplicate dataset name '" + ds.name + "'");

    const Schema& schema = d_.schema_of(ds);  // throws when unresolvable

    // Known attribute names for this dataset: schema plus local DATATYPE
    // declarations.
    std::set<std::string> known;
    for (const auto& a : schema.attrs) known.insert(a.name);
    for (const auto& a : ds.local_attrs) {
      if (!known.insert(a.name).second)
        fail("dataset '" + ds.name + "': local attribute '" + a.name +
             "' shadows a schema attribute");
    }

    for (const auto& idx : ds.dataindex) {
      if (!known.count(idx))
        fail("dataset '" + ds.name + "': DATAINDEX attribute '" + idx +
             "' is not in the schema");
    }

    if (ds.is_leaf()) {
      if (ds.dataspace.empty())
        fail("leaf dataset '" + ds.name + "' has no DATASPACE");
      if (ds.files.empty())
        fail("leaf dataset '" + ds.name + "' has no files in DATA");
      check_files(ds);
      check_dataspace(ds, known);
    } else {
      if (!ds.dataspace.empty())
        fail("dataset '" + ds.name +
             "' has both nested datasets and a DATASPACE");
      if (!ds.files.empty())
        fail("dataset '" + ds.name +
             "' has both nested datasets and file patterns in DATA");
      // When DATA lists child names, they must match the nested blocks.
      if (!ds.child_order.empty()) {
        std::set<std::string> child_names;
        for (const auto& c : ds.children) child_names.insert(c.name);
        for (const auto& n : ds.child_order)
          if (!child_names.count(n))
            fail("dataset '" + ds.name + "': DATA lists dataset '" + n +
                 "' but no nested DATASET block defines it");
      }
      for (const auto& c : ds.children) check_dataset(c, seen_names);
    }
  }

  void check_files(const DatasetDecl& ds) {
    const Storage* st = storage_for(ds);
    for (const auto& fp : ds.files) {
      std::set<std::string> bound;
      for (const auto& b : fp.bindings) {
        if (!bound.insert(b.var).second)
          fail("dataset '" + ds.name + "': file pattern binds variable '" +
               b.var + "' twice");
        for (const ArithExprPtr& e : {b.range.lo, b.range.hi, b.range.step}) {
          if (e && !e->is_constant())
            fail("dataset '" + ds.name + "': binding range for '" + b.var +
                 "' must be constant");
        }
        VarEnv empty;
        if (b.range.count(empty) <= 0)
          fail("dataset '" + ds.name + "': binding range for '" + b.var +
               "' is empty");
      }
      for (const auto& seg : fp.segs) {
        if (seg.kind == PatternSeg::Kind::kVarRef && !bound.count(seg.var))
          fail("dataset '" + ds.name + "': file pattern '" + fp.raw +
               "' references unbound variable '$" + seg.var + "'");
        if (seg.kind == PatternSeg::Kind::kDirRef) {
          if (!st)
            fail("dataset '" + ds.name + "': file pattern '" + fp.raw +
                 "' uses DIR[...] but no storage section describes this "
                 "dataset");
          std::vector<std::string> vars;
          seg.dir_index->collect_vars(vars);
          for (const auto& v : vars)
            if (!bound.count(v))
              fail("dataset '" + ds.name + "': DIR index in pattern '" +
                   fp.raw + "' references unbound variable '$" + v + "'");
          // When the index is constant, it must be a valid DIR entry.
          if (vars.empty()) {
            VarEnv empty;
            int64_t idx = seg.dir_index->eval(empty);
            if (idx < 0 || static_cast<std::size_t>(idx) >= st->dirs.size())
              fail("dataset '" + ds.name + "': DIR[" + std::to_string(idx) +
                   "] is out of range (storage lists " +
                   std::to_string(st->dirs.size()) + " directories)");
          }
        }
      }
    }
  }

  // The storage section of the outermost dataset that contains `ds`.
  const Storage* storage_for(const DatasetDecl& ds) const {
    for (const auto& top : d_.datasets) {
      if (contains(top, ds.name))
        if (const Storage* st = d_.find_storage(top.name)) return st;
    }
    return nullptr;
  }

  static bool contains(const DatasetDecl& d, const std::string& name) {
    if (d.name == name) return true;
    for (const auto& c : d.children)
      if (contains(c, name)) return true;
    return false;
  }

  void check_dataspace(const DatasetDecl& ds,
                       const std::set<std::string>& known_attrs) {
    // Variables every file pattern of this leaf binds — the only variables
    // loop bounds may reference.
    std::set<std::string> common_vars;
    bool first = true;
    for (const auto& fp : ds.files) {
      std::set<std::string> vars;
      for (const auto& b : fp.bindings) vars.insert(b.var);
      if (first) {
        common_vars = vars;
        first = false;
      } else {
        std::set<std::string> inter;
        for (const auto& v : common_vars)
          if (vars.count(v)) inter.insert(v);
        common_vars = inter;
      }
    }

    // Top level: loops, plus optional file-local header fields (schema
    // attributes outside any loop would be unreachable rows).
    {
      std::set<std::string> local;
      for (const auto& a : ds.local_attrs) local.insert(a.name);
      for (const auto& item : ds.dataspace) {
        if (item.kind != LayoutNode::Kind::kFields) continue;
        for (const auto& f : item.fields) {
          if (!known_attrs.count(f))
            fail("dataset '" + ds.name + "': DATASPACE references unknown "
                 "attribute '" + f + "'");
          if (!local.count(f))
            fail("dataset '" + ds.name + "': schema attribute '" + f +
                 "' appears at DATASPACE top level; only file-local "
                 "(DATATYPE-declared) header fields may appear outside "
                 "loops");
        }
      }
    }

    // A binding variable fixed by the file name must not reappear as a loop
    // identifier: the file name would pin one value while the loop varies
    // it — contradictory meta-data.
    std::set<std::string> loop_idents;
    std::function<void(const LayoutNode&)> collect =
        [&](const LayoutNode& n) {
          if (n.kind != LayoutNode::Kind::kLoop) return;
          loop_idents.insert(n.loop_ident);
          for (const auto& b : n.body) collect(b);
        };
    for (const auto& item : ds.dataspace) collect(item);
    for (const auto& fp : ds.files)
      for (const auto& b : fp.bindings)
        if (loop_idents.count(b.var))
          fail("dataset '" + ds.name + "': file pattern binds variable '" +
               b.var + "' which is also a loop identifier in the DATASPACE "
               "(the file name would fix a value the loop varies)");

    std::set<std::string> path_idents;
    for (const auto& item : ds.dataspace) {
      if (item.kind != LayoutNode::Kind::kLoop) continue;  // header run
      check_loop(ds, item, known_attrs, common_vars, path_idents);
    }
  }

  void check_loop(const DatasetDecl& ds, const LayoutNode& loop,
                  const std::set<std::string>& known_attrs,
                  const std::set<std::string>& bound_vars,
                  std::set<std::string>& path_idents) {
    if (loop.kind != LayoutNode::Kind::kLoop)
      throw InternalError("check_loop on non-loop node");
    if (path_idents.count(loop.loop_ident))
      fail("dataset '" + ds.name + "': loop identifier '" + loop.loop_ident +
           "' is nested inside a loop with the same identifier");

    for (const ArithExprPtr& e :
         {loop.range.lo, loop.range.hi, loop.range.step}) {
      if (!e) continue;
      std::vector<std::string> vars;
      e->collect_vars(vars);
      for (const auto& v : vars) {
        if (path_idents.count(v))
          fail("dataset '" + ds.name + "': bounds of loop '" +
               loop.loop_ident +
               "' reference enclosing loop identifier '$" + v +
               "' (triangular loop nests are not supported)");
        if (!bound_vars.count(v))
          fail("dataset '" + ds.name + "': bounds of loop '" +
               loop.loop_ident + "' reference variable '$" + v +
               "' which is not bound by every file pattern of this dataset");
      }
    }

    if (loop.body.empty())
      fail("dataset '" + ds.name + "': loop '" + loop.loop_ident +
           "' has an empty body");

    bool has_fields = false, has_loops = false;
    for (const auto& item : loop.body) {
      if (item.kind == LayoutNode::Kind::kFields) has_fields = true;
      else has_loops = true;
    }
    if (loop.colmajor && has_loops)
      fail("dataset '" + ds.name + "': COLMAJOR loop '" + loop.loop_ident +
           "' contains nested loops; column-major storage applies only to "
           "record loops (a body of fields exclusively)");
    if (has_fields && has_loops) {
      // Mixed body: allowed only when every field is a file-local
      // (non-schema) attribute — per-chunk headers/padding the extractor
      // skips.  Schema attributes here would be unreachable by the
      // aligned-chunk model.
      std::set<std::string> local;
      for (const auto& a : ds.local_attrs) local.insert(a.name);
      for (const auto& item : loop.body) {
        if (item.kind != LayoutNode::Kind::kFields) continue;
        for (const auto& f : item.fields) {
          if (!known_attrs.count(f))
            fail("dataset '" + ds.name + "': DATASPACE references unknown "
                 "attribute '" + f + "'");
          if (!local.count(f))
            fail("dataset '" + ds.name + "': loop '" + loop.loop_ident +
                 "' mixes schema attribute '" + f + "' with nested loops; "
                 "only file-local (DATATYPE-declared) header fields may "
                 "appear alongside loops");
        }
      }
      has_fields = false;  // treat as a structure loop below
    }

    if (has_fields) {
      for (const auto& item : loop.body)
        for (const auto& f : item.fields)
          if (!known_attrs.count(f))
            fail("dataset '" + ds.name + "': DATASPACE references unknown "
                 "attribute '" + f + "'");
    } else {
      path_idents.insert(loop.loop_ident);
      for (const auto& item : loop.body) {
        if (item.kind != LayoutNode::Kind::kLoop) continue;  // header run
        check_loop(ds, item, known_attrs, bound_vars, path_idents);
      }
      path_idents.erase(loop.loop_ident);
    }
  }

  const Descriptor& d_;
};

}  // namespace

void validate(const Descriptor& d) { Validator(d).run(); }

}  // namespace adv::meta
