// Parser for the meta-data description language.
//
// The descriptor text has a line-oriented half (components I and II: schema
// and storage sections, `[Name]` headers with `key = value` lines) followed
// by a token-oriented half (component III: nested DATASET declarations).
// The split point is the first line that begins with the DATASET keyword.
#include <cctype>

#include "common/lexer.h"
#include "common/string_util.h"
#include "metadata/model.h"

namespace adv::meta {

namespace {

// --------------------------------------------------------------------------
// Sections (components I and II).

// Removes `// ...`, `# ...` and single-line `{* ... *}` comments.
std::string strip_line_comments(const std::string& line) {
  std::string out;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#') break;
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (line[i] == '{' && i + 1 < line.size() && line[i + 1] == '*') {
      std::size_t close = line.find("*}", i + 2);
      if (close == std::string::npos) break;  // comment runs to end of line
      i = close + 1;
      continue;
    }
    out.push_back(line[i]);
  }
  return out;
}

bool is_layout_start(const std::string& trimmed) {
  if (trimmed.size() < 7) return false;
  std::string head = to_upper(trimmed.substr(0, 7));
  if (head != "DATASET") return false;
  if (trimmed.size() == 7) return true;
  char c = trimmed[7];
  return std::isspace(static_cast<unsigned char>(c)) || c == '"' || c == '{';
}

// Parses `DIR[<int>]` and returns the index, or -1 when `key` is not a DIR
// entry.
int parse_dir_key(const std::string& key) {
  std::string k = to_upper(trim(key));
  if (!starts_with(k, "DIR")) return -1;
  std::size_t lb = k.find('[');
  std::size_t rb = k.find(']');
  if (lb == std::string::npos || rb == std::string::npos || rb < lb) return -1;
  std::string num = trim(k.substr(lb + 1, rb - lb - 1));
  if (num.empty()) return -1;
  for (char c : num)
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
  return std::stoi(num);
}

struct SectionParseResult {
  std::vector<Schema> schemas;
  std::vector<Storage> storages;
};

SectionParseResult parse_sections(const std::vector<std::string>& lines,
                                  int first_line_number) {
  SectionParseResult out;

  // Accumulate raw (key, value) pairs per section, then classify.
  struct RawSection {
    std::string name;
    int line;
    std::vector<std::pair<std::string, std::string>> entries;
    std::vector<int> entry_lines;
  };
  std::vector<RawSection> sections;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    int lineno = first_line_number + static_cast<int>(i);
    std::string line = trim(strip_line_comments(lines[i]));
    if (line.empty()) continue;
    if (line.front() == '[') {
      std::size_t close = line.find(']');
      if (close == std::string::npos)
        throw ParseError("missing ']' in section header", lineno, 1);
      std::string name = trim(line.substr(1, close - 1));
      if (name.empty())
        throw ParseError("empty section name", lineno, 1);
      sections.push_back({name, lineno, {}, {}});
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw ParseError("expected 'key = value' line in descriptor section: '" +
                           line + "'",
                       lineno, 1);
    if (sections.empty())
      throw ParseError("entry before any [Section] header", lineno, 1);
    sections.back().entries.emplace_back(trim(line.substr(0, eq)),
                                         trim(line.substr(eq + 1)));
    sections.back().entry_lines.push_back(lineno);
  }

  for (const auto& sec : sections) {
    bool is_storage = false;
    for (const auto& [k, v] : sec.entries) {
      if (iequals(k, "DatasetDescription")) {
        is_storage = true;
        break;
      }
    }
    if (is_storage) {
      Storage st;
      st.dataset_name = sec.name;
      std::vector<std::pair<int, StorageDir>> dirs;
      for (std::size_t e = 0; e < sec.entries.size(); ++e) {
        const auto& [k, v] = sec.entries[e];
        if (iequals(k, "DatasetDescription")) {
          st.schema_name = v;
          continue;
        }
        int idx = parse_dir_key(k);
        if (idx < 0)
          throw ParseError("unknown storage entry '" + k + "' in section [" +
                               sec.name + "]",
                           sec.entry_lines[e], 1);
        StorageDir d;
        d.path = v;
        std::size_t slash = v.find('/');
        d.node_name = slash == std::string::npos ? v : v.substr(0, slash);
        dirs.emplace_back(idx, std::move(d));
      }
      // DIR indices must form 0..n-1 (any order in the text).
      std::size_t n = dirs.size();
      st.dirs.resize(n);
      std::vector<bool> seen(n, false);
      for (auto& [idx, d] : dirs) {
        if (static_cast<std::size_t>(idx) >= n || seen[idx])
          throw ValidationError("storage section [" + sec.name +
                                "]: DIR indices must be 0..n-1 without gaps "
                                "or duplicates");
        seen[idx] = true;
        st.dirs[idx] = std::move(d);
      }
      out.storages.push_back(std::move(st));
    } else {
      Schema sc;
      sc.name = sec.name;
      for (const auto& [k, v] : sec.entries) {
        Attribute a;
        a.name = k;
        a.type = parse_data_type(v);
        sc.attrs.push_back(std::move(a));
      }
      out.schemas.push_back(std::move(sc));
    }
  }
  return out;
}

// --------------------------------------------------------------------------
// Layout (component III).

std::size_t token_raw_length(const Token& t) {
  if (t.kind == TokKind::kString) return t.text.size() + 2;
  return t.text.size();
}

bool tokens_adjacent(const Token& a, const Token& b) {
  return a.line == b.line &&
         static_cast<std::size_t>(b.column) ==
             static_cast<std::size_t>(a.column) + token_raw_length(a);
}

// Re-assembles the raw text of an unquoted file-name pattern from adjacent
// tokens (whitespace ends the pattern except inside `[...]`).
std::string collect_pattern_raw(TokenCursor& cur) {
  if (cur.peek().kind == TokKind::kString) return cur.next().text;
  std::string raw;
  int depth = 0;
  Token prev = cur.next();
  raw += prev.text;
  if (prev.is_punct("[")) ++depth;
  for (;;) {
    const Token& t = cur.peek();
    if (t.kind == TokKind::kEnd) break;
    if (depth == 0 && !tokens_adjacent(prev, t)) break;
    if (depth == 0 && t.is_punct("}")) break;
    if (t.is_punct("[")) ++depth;
    if (t.is_punct("]")) --depth;
    raw += t.text;
    prev = cur.next();
  }
  return raw;
}

// Parses the raw pattern text into segments: literals, `DIR[expr]`
// references and `$VAR` substitutions.
std::vector<PatternSeg> parse_pattern_segs(const std::string& raw, int line,
                                           int column) {
  std::vector<PatternSeg> segs;
  std::string literal;
  auto flush_literal = [&] {
    if (!literal.empty()) {
      PatternSeg s;
      s.kind = PatternSeg::Kind::kLiteral;
      s.literal = literal;
      segs.push_back(std::move(s));
      literal.clear();
    }
  };
  std::size_t i = 0;
  auto word_boundary = [&](std::size_t pos) {
    if (pos == 0) return true;
    char p = raw[pos - 1];
    return !(std::isalnum(static_cast<unsigned char>(p)) || p == '_');
  };
  while (i < raw.size()) {
    if (raw[i] == '$') {
      flush_literal();
      std::size_t j = i + 1;
      while (j < raw.size() && (std::isalnum(static_cast<unsigned char>(raw[j])) ||
                                raw[j] == '_'))
        ++j;
      if (j == i + 1)
        throw ParseError("'$' must be followed by a variable name in file "
                         "pattern '" + raw + "'",
                         line, column);
      PatternSeg s;
      s.kind = PatternSeg::Kind::kVarRef;
      s.var = raw.substr(i + 1, j - i - 1);
      segs.push_back(std::move(s));
      i = j;
      continue;
    }
    // `DIR[` at a word boundary starts a directory reference.
    if (word_boundary(i) && raw.size() - i >= 4 &&
        iequals(raw.substr(i, 4), "DIR[")) {
      flush_literal();
      int depth = 1;
      std::size_t j = i + 4;
      while (j < raw.size() && depth > 0) {
        if (raw[j] == '[') ++depth;
        if (raw[j] == ']') --depth;
        ++j;
      }
      if (depth != 0)
        throw ParseError("unbalanced DIR[...] in file pattern '" + raw + "'",
                         line, column);
      PatternSeg s;
      s.kind = PatternSeg::Kind::kDirRef;
      s.dir_index = parse_arith(raw.substr(i + 4, j - i - 5));
      segs.push_back(std::move(s));
      i = j;
      continue;
    }
    literal.push_back(raw[i]);
    ++i;
  }
  flush_literal();
  if (segs.empty())
    throw ParseError("empty file pattern", line, column);
  return segs;
}

class LayoutParser {
 public:
  explicit LayoutParser(TokenCursor& cur) : cur_(cur) {}

  std::vector<DatasetDecl> parse_all() {
    std::vector<DatasetDecl> out;
    while (!cur_.at_end()) {
      cur_.expect_ident("DATASET");
      out.push_back(parse_dataset_body());
    }
    return out;
  }

 private:
  DatasetDecl parse_dataset_body() {
    DatasetDecl d;
    const Token& name = cur_.peek();
    if (name.kind == TokKind::kString || name.kind == TokKind::kIdent) {
      d.name = name.text;
      cur_.next();
    } else {
      cur_.fail("expected dataset name after DATASET");
    }
    cur_.expect_punct("{");
    while (!cur_.accept_punct("}")) {
      if (cur_.accept_ident("DATATYPE")) {
        parse_datatype(d);
      } else if (cur_.accept_ident("DATAINDEX")) {
        parse_dataindex(d);
      } else if (cur_.accept_ident("DATASPACE")) {
        cur_.expect_punct("{");
        d.dataspace = parse_layout_items();
      } else if (cur_.accept_ident("DATA")) {
        parse_data(d);
      } else if (cur_.accept_ident("DATASET")) {
        d.children.push_back(parse_dataset_body());
      } else {
        cur_.fail("expected DATATYPE, DATAINDEX, DATASPACE, DATA, or DATASET "
                  "inside dataset declaration, found '" + cur_.peek().text +
                  "'");
      }
    }
    return d;
  }

  void parse_datatype(DatasetDecl& d) {
    cur_.expect_punct("{");
    while (!cur_.accept_punct("}")) {
      const Token& first = cur_.expect_any_ident("schema name or attribute");
      if (cur_.accept_punct("=")) {
        // Inline attribute declaration: NAME = <type idents>.
        Attribute a;
        a.name = first.text;
        std::string type_name;
        // Consume type identifiers until the next `NAME =` or `}`.
        while (cur_.peek().kind == TokKind::kIdent &&
               !cur_.peek(1).is_punct("=")) {
          if (!type_name.empty()) type_name += ' ';
          type_name += cur_.next().text;
        }
        if (type_name.empty())
          cur_.fail("expected type name after '=' in DATATYPE");
        a.type = parse_data_type(type_name);
        d.local_attrs.push_back(std::move(a));
      } else {
        if (!d.datatype.empty())
          cur_.fail("multiple schema names in DATATYPE clause");
        d.datatype = first.text;
      }
    }
  }

  void parse_dataindex(DatasetDecl& d) {
    cur_.expect_punct("{");
    while (!cur_.accept_punct("}")) {
      const Token& a = cur_.expect_any_ident("attribute name in DATAINDEX");
      d.dataindex.push_back(a.text);
      cur_.accept_punct(",");
    }
  }

  std::vector<LayoutNode> parse_layout_items() {
    std::vector<LayoutNode> items;
    std::vector<std::string> run;
    auto flush_run = [&] {
      if (!run.empty()) {
        items.push_back(LayoutNode::make_fields(std::move(run)));
        run.clear();
      }
    };
    while (!cur_.accept_punct("}")) {
      if (cur_.peek().is_ident("LOOP")) {
        flush_run();
        cur_.next();
        const Token& ident = cur_.expect_any_ident("loop identifier");
        LoopRange r = parse_range(cur_);
        bool colmajor = false;
        if (cur_.peek().is_ident("COLMAJOR")) {
          cur_.next();
          colmajor = true;
        }
        cur_.expect_punct("{");
        std::vector<LayoutNode> body = parse_layout_items();
        items.push_back(LayoutNode::make_loop(ident.text, std::move(r),
                                              std::move(body), colmajor));
      } else if (cur_.peek().kind == TokKind::kIdent) {
        run.push_back(cur_.next().text);
      } else {
        cur_.fail("expected attribute name, LOOP, or '}' in DATASPACE, found "
                  "'" + cur_.peek().text + "'");
      }
    }
    flush_run();
    return items;
  }

  void parse_data(DatasetDecl& d) {
    cur_.expect_punct("{");
    while (!cur_.accept_punct("}")) {
      if (cur_.peek().is_ident("DATASET")) {
        cur_.next();
        const Token& name = cur_.peek();
        if (name.kind != TokKind::kIdent && name.kind != TokKind::kString)
          cur_.fail("expected dataset name after DATASET in DATA clause");
        d.child_order.push_back(name.text);
        cur_.next();
        continue;
      }
      // File pattern followed by optional variable bindings.
      FilePattern fp;
      int line = cur_.peek().line, column = cur_.peek().column;
      fp.raw = collect_pattern_raw(cur_);
      fp.segs = parse_pattern_segs(fp.raw, line, column);
      while (cur_.peek().kind == TokKind::kIdent &&
             cur_.peek(1).is_punct("=")) {
        PatternBinding b;
        b.var = cur_.next().text;
        cur_.expect_punct("=");
        b.range = parse_range(cur_);
        fp.bindings.push_back(std::move(b));
      }
      d.files.push_back(std::move(fp));
    }
  }

  TokenCursor& cur_;
};

// Propagates the parent's datatype to children that do not declare one.
void propagate_datatype(DatasetDecl& d, const std::string& inherited) {
  if (d.datatype.empty()) d.datatype = inherited;
  for (auto& c : d.children) propagate_datatype(c, d.datatype);
}

}  // namespace

Descriptor parse_descriptor(const std::string& text) {
  // Split into the section half and the layout half.
  std::vector<std::string> lines = split(text, '\n');
  std::size_t layout_begin = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string t = trim(strip_line_comments(lines[i]));
    if (is_layout_start(t)) {
      layout_begin = i;
      break;
    }
  }

  Descriptor d;
  std::vector<std::string> section_lines(lines.begin(),
                                         lines.begin() + layout_begin);
  SectionParseResult sections = parse_sections(section_lines, 1);
  d.schemas = std::move(sections.schemas);
  d.storages = std::move(sections.storages);

  if (layout_begin < lines.size()) {
    // Re-join layout text, padding with blank lines so token line numbers
    // match the original descriptor.
    std::string layout_text(layout_begin, '\n');
    for (std::size_t i = layout_begin; i < lines.size(); ++i) {
      layout_text += lines[i];
      layout_text += '\n';
    }
    TokenCursor cur(tokenize(layout_text));
    LayoutParser lp(cur);
    d.datasets = lp.parse_all();
  }

  // Resolve inherited datatypes: a top-level dataset with no DATATYPE takes
  // the schema its storage section declares; children inherit from parents.
  for (auto& ds : d.datasets) {
    std::string top = ds.datatype;
    if (top.empty()) {
      if (const Storage* st = d.find_storage(ds.name)) top = st->schema_name;
    }
    propagate_datatype(ds, top);
  }

  validate(d);
  return d;
}

}  // namespace adv::meta
