// Integer arithmetic expressions over layout variables.
//
// The descriptor language uses these for loop bounds and directory indices,
// e.g. `LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1`.  Expressions are
// immutable after parsing and shared by pointer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/lexer.h"

namespace adv::meta {

// Variable environment: values for `$NAME` references.
class VarEnv {
 public:
  VarEnv() = default;

  void set(const std::string& name, int64_t value) { vars_[name] = value; }

  bool has(const std::string& name) const { return vars_.count(name) > 0; }

  int64_t get(const std::string& name) const {
    auto it = vars_.find(name);
    if (it == vars_.end())
      throw ValidationError("unbound layout variable '$" + name + "'");
    return it->second;
  }

  const std::map<std::string, int64_t>& vars() const { return vars_; }

 private:
  std::map<std::string, int64_t> vars_;
};

class ArithExpr;
using ArithExprPtr = std::shared_ptr<const ArithExpr>;

class ArithExpr {
 public:
  enum class Kind : uint8_t { kConst, kVar, kBinary };

  static ArithExprPtr constant(int64_t v);
  static ArithExprPtr variable(std::string name);
  static ArithExprPtr binary(char op, ArithExprPtr lhs, ArithExprPtr rhs);

  Kind kind() const { return kind_; }
  int64_t constant_value() const { return const_; }
  const std::string& var_name() const { return var_; }
  char op() const { return op_; }
  const ArithExprPtr& lhs() const { return lhs_; }
  const ArithExprPtr& rhs() const { return rhs_; }

  // Evaluates with the given variable bindings; throws ValidationError on an
  // unbound variable or division by zero.
  int64_t eval(const VarEnv& env) const;

  // True when the expression references no variables.
  bool is_constant() const;

  // Collects referenced variable names into `out` (deduplicated by caller).
  void collect_vars(std::vector<std::string>& out) const;

  std::string to_string() const;

 private:
  ArithExpr() = default;

  Kind kind_ = Kind::kConst;
  int64_t const_ = 0;
  std::string var_;
  char op_ = '+';
  ArithExprPtr lhs_, rhs_;
};

// Parses an arithmetic expression from the cursor.
// Grammar: expr := term (('+'|'-') term)* ;
//          term := factor (('*'|'/'|'%') factor)* ;
//          factor := INT | '$' IDENT | IDENT | '(' expr ')' | '-' factor
// Bare identifiers are treated like `$IDENT` (the paper writes `DIRID` and
// `$DIRID` interchangeably).
ArithExprPtr parse_arith(TokenCursor& cur);

// Parses an expression from a standalone string (used by the file-name
// pattern parser for `DIR[...]` indices).
ArithExprPtr parse_arith(const std::string& text);

// Inclusive range `lo:hi:step` (step defaults to 1 when omitted).
struct LoopRange {
  ArithExprPtr lo, hi, step;

  // Number of iterations for the bound environment (0 when empty).
  int64_t count(const VarEnv& env) const;

  std::string to_string() const;
};

// Parses `expr ':' expr (':' expr)?`.
LoopRange parse_range(TokenCursor& cur);

}  // namespace adv::meta
