// Canonical pretty-printer for descriptors.  to_text(parse_descriptor(t))
// re-parses to an equivalent descriptor (round-trip property tested in
// tests/metadata_test.cpp).
#include <sstream>

#include "metadata/model.h"

namespace adv::meta {

namespace {

void print_layout_items(std::ostringstream& os,
                        const std::vector<LayoutNode>& items, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const auto& item : items) {
    if (item.kind == LayoutNode::Kind::kFields) {
      os << pad;
      for (std::size_t i = 0; i < item.fields.size(); ++i) {
        if (i) os << ' ';
        os << item.fields[i];
      }
      os << '\n';
    } else {
      os << pad << "LOOP " << item.loop_ident << ' '
         << item.range.to_string() << (item.colmajor ? " COLMAJOR" : "")
         << " {\n";
      print_layout_items(os, item.body, indent + 1);
      os << pad << "}\n";
    }
  }
}

std::string pattern_to_text(const FilePattern& fp) {
  std::string out = "\"";
  for (const auto& seg : fp.segs) {
    switch (seg.kind) {
      case PatternSeg::Kind::kLiteral:
        out += seg.literal;
        break;
      case PatternSeg::Kind::kDirRef:
        out += "DIR[" + seg.dir_index->to_string() + "]";
        break;
      case PatternSeg::Kind::kVarRef:
        out += "$" + seg.var;
        break;
    }
  }
  out += "\"";
  for (const auto& b : fp.bindings)
    out += " " + b.var + " = " + b.range.to_string();
  return out;
}

void print_dataset(std::ostringstream& os, const DatasetDecl& d, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << "DATASET \"" << d.name << "\" {\n";
  std::string pad1(static_cast<std::size_t>(indent + 1) * 2, ' ');
  if (!d.datatype.empty() || !d.local_attrs.empty()) {
    os << pad1 << "DATATYPE { ";
    if (!d.datatype.empty()) os << d.datatype << ' ';
    for (const auto& a : d.local_attrs)
      os << a.name << " = " << to_string(a.type) << ' ';
    os << "}\n";
  }
  if (!d.dataindex.empty()) {
    os << pad1 << "DATAINDEX {";
    for (const auto& i : d.dataindex) os << ' ' << i;
    os << " }\n";
  }
  if (!d.dataspace.empty()) {
    os << pad1 << "DATASPACE {\n";
    print_layout_items(os, d.dataspace, indent + 2);
    os << pad1 << "}\n";
  }
  if (!d.files.empty()) {
    os << pad1 << "DATA {\n";
    for (const auto& fp : d.files)
      os << pad1 << "  " << pattern_to_text(fp) << '\n';
    os << pad1 << "}\n";
  }
  if (!d.children.empty()) {
    os << pad1 << "DATA {";
    for (const auto& c : d.children) os << " DATASET " << c.name;
    os << " }\n";
    for (const auto& c : d.children) print_dataset(os, c, indent + 1);
  }
  os << pad << "}\n";
}

}  // namespace

std::string to_text(const Descriptor& d) {
  std::ostringstream os;
  for (const auto& s : d.schemas) {
    os << '[' << s.name << "]\n";
    for (const auto& a : s.attrs)
      os << a.name << " = " << to_string(a.type) << '\n';
    os << '\n';
  }
  for (const auto& st : d.storages) {
    os << '[' << st.dataset_name << "]\n";
    os << "DatasetDescription = " << st.schema_name << '\n';
    for (std::size_t i = 0; i < st.dirs.size(); ++i)
      os << "DIR[" << i << "] = " << st.dirs[i].path << '\n';
    os << '\n';
  }
  for (const auto& ds : d.datasets) print_dataset(os, ds, 0);
  return os.str();
}

}  // namespace adv::meta
