// Minimal XML subset used for machine-independent descriptor interchange
// (paper §3.1: "the description language we have developed can easily be
// embedded in an XML file").
//
// Supported: elements with attributes, text content, CDATA sections,
// comments, XML declarations, and the five standard entities.  Not
// supported (not needed): namespaces, DTDs, processing instructions beyond
// the declaration.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metadata/model.h"

namespace adv::meta {

struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  std::string text;  // concatenated character data (entities resolved)

  // First attribute value by name, or `def`.
  std::string attr(const std::string& key, const std::string& def = "") const;
  bool has_attr(const std::string& key) const;

  // First child element with the given name, or nullptr.
  const XmlNode* child(const std::string& name) const;
  // All child elements with the given name.
  std::vector<const XmlNode*> children_named(const std::string& name) const;
};

// Parses one XML document and returns the root element.
// Throws ParseError with position information on malformed input.
XmlNode parse_xml(const std::string& text);

// Serializes a node tree (pretty-printed, 2-space indent).
std::string to_xml_text(const XmlNode& node);

// ---------------------------------------------------------------------------
// Descriptor <-> XML.
//
// The XML descriptor format mirrors the three components:
//
//   <descriptor>
//     <schema name="IPARS">
//       <attribute name="REL" type="short int"/>
//     </schema>
//     <storage dataset="IparsData" schema="IPARS">
//       <dir index="0" path="osu0/ipars"/>
//     </storage>
//     <dataset name="IparsData" datatype="IPARS">
//       <dataindex>REL TIME</dataindex>
//       <dataset name="ipars1">
//         <dataspace>
//           <loop ident="GRID" range="($DIRID*100+1):(($DIRID+1)*100):1">
//             <fields>X Y Z</fields>
//           </loop>
//         </dataspace>
//         <data>
//           <file pattern="DIR[$DIRID]/COORDS">
//             <bind var="DIRID" range="0:3:1"/>
//           </file>
//         </data>
//       </dataset>
//     </dataset>
//   </descriptor>

// Parses an XML descriptor document (root element <descriptor>) into the
// same validated model parse_descriptor produces.
Descriptor parse_descriptor_xml(const std::string& xml_text);

// Serializes a descriptor as XML (round-trips through
// parse_descriptor_xml).
std::string to_xml(const Descriptor& d);

}  // namespace adv::meta
