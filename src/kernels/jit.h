// Per-plan JIT kernels: the `jit` tier of the extraction engine.
//
// The codegen layer (src/codegen/emit.cpp) emits one specialized C++
// translation unit per (descriptor hash, canonical SQL, chunk layout) —
// constants folded, field offsets hard-coded, the predicate inlined as a
// plain C++ expression.  This module owns everything after that string
// exists: hashing it, compiling it with the system compiler into a shared
// object, dlopen-ing the result, and caching the loaded module both
// in-memory (per process) and on disk (across processes, keyed by source
// hash so identical layouts dedupe across datasets).
//
// Compilation failure is never an error for the query: get_or_compile
// returns nullptr and the extractor falls back to the vector tier.  The
// faultz site `jit.compile` forces that path deterministically, and
// ADV_JIT_CXX=/nonexistent simulates a machine with no compiler.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace adv::kernels {

// ABI of a generated per-group extract+filter function.  One call processes
// `nrows` consecutive rows of an AFC batch: `srcs[c]` points at the batch
// base of chunk c, `loop_values` are the AFC's enumeration-loop values,
// `row_first` is the row-attribute value of the batch's first row.  Matching
// rows are written in SELECT order to out[m*ncols] (ncols is baked into the
// generated code) with their in-batch row index in sel[m]; returns the
// match count.
using JitExtractFn = long long (*)(const unsigned char* const* srcs,
                                   unsigned long long nrows,
                                   const long long* loop_values,
                                   long long row_first, double* out,
                                   unsigned int* sel);

// A loaded shared object holding one generated function per plan group.
// Immutable; shared_ptr ownership keeps the dlopen handle alive for as long
// as any query still holds extraction bindings into it.
class JitModule {
 public:
  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  int num_groups() const { return num_groups_; }
  // Generated function for plan group `g` (0-based), or nullptr when out of
  // range.
  JitExtractFn group_fn(int g) const;

  // dlopens `so_path` and resolves the advjit entry points.  Returns
  // nullptr (with `error` set) on any failure.
  static std::shared_ptr<const JitModule> open(const std::string& so_path,
                                               std::string& error);

 private:
  JitModule() = default;
  void* handle_ = nullptr;
  int num_groups_ = 0;
  JitExtractFn (*group_fn_)(int) = nullptr;
};

struct JitStats {
  uint64_t memory_hits = 0;  // served from the in-process module map
  uint64_t disk_hits = 0;    // dlopen-ed a previously compiled .so
  uint64_t compiles = 0;     // invoked the system compiler successfully
  uint64_t failures = 0;     // compile/load failed (callers fell back)
};

// Process-wide cache of compiled modules, keyed by a hash of the generated
// source.  Thread-safe; concurrent requests for the same source serialize on
// the cache lock, so a module is compiled at most once per process.
class JitCache {
 public:
  static JitCache& instance();

  // Returns the module for `source`, compiling and/or loading as needed.
  // Lookup order: in-memory map, then the on-disk cache directory
  // (ADV_JIT_CACHE_DIR, default a per-uid directory under /tmp), then a
  // fresh compile with ADV_JIT_CXX (default "c++").  Returns nullptr when
  // the compiler is unavailable or compilation fails — never throws for
  // those; the caller must fall back to the vector tier.
  std::shared_ptr<const JitModule> get_or_compile(const std::string& source);

  // True when the configured compiler responds to --version.  Cached per
  // compiler string; used by tests to skip compile-dependent assertions.
  static bool compiler_available();

  JitStats stats() const;
  // Drops the in-memory module map (disk cache untouched).  Lets tests
  // prove the disk-reload path; live shared_ptrs keep their modules valid.
  void clear_memory();

 private:
  JitCache() = default;
  struct Impl;
  Impl& impl() const;
};

// FNV-1a over the generated source; also the on-disk cache key
// (advjit-<hex>.so).  Exposed for tests.
uint64_t jit_source_hash(const std::string& source);

}  // namespace adv::kernels
