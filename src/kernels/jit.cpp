#include "kernels/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#include "common/env.h"
#include "faultz/faultz.h"

namespace adv::kernels {

namespace fs = std::filesystem;

uint64_t jit_source_hash(const std::string& source) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : source) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

JitModule::~JitModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

JitExtractFn JitModule::group_fn(int g) const {
  if (g < 0 || g >= num_groups_ || group_fn_ == nullptr) return nullptr;
  return group_fn_(g);
}

std::shared_ptr<const JitModule> JitModule::open(const std::string& so_path,
                                                 std::string& error) {
  void* h = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) {
    const char* e = ::dlerror();
    error = e != nullptr ? e : "dlopen failed";
    return nullptr;
  }
  auto ngroups = reinterpret_cast<int (*)()>(::dlsym(h, "advjit_num_groups"));
  auto groupfn = reinterpret_cast<JitExtractFn (*)(int)>(
      ::dlsym(h, "advjit_group_fn"));
  if (ngroups == nullptr || groupfn == nullptr) {
    error = "missing advjit entry points in " + so_path;
    ::dlclose(h);
    return nullptr;
  }
  auto mod = std::shared_ptr<JitModule>(new JitModule());
  mod->handle_ = h;
  mod->num_groups_ = ngroups();
  mod->group_fn_ = groupfn;
  return mod;
}

namespace {

std::string cache_dir() {
  std::string dir = env_str("ADV_JIT_CACHE_DIR", "");
  if (dir.empty()) {
    dir = (fs::temp_directory_path() /
           ("advjit-cache-" + std::to_string(::getuid())))
              .string();
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  return dir;
}

std::string compiler() { return env_str("ADV_JIT_CXX", "c++"); }

bool probe_compiler(const std::string& cxx) {
  std::string cmd = cxx + " --version >/dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

}  // namespace

struct JitCache::Impl {
  mutable std::mutex mu;
  std::map<uint64_t, std::shared_ptr<const JitModule>> modules;
  JitStats stats;
  std::atomic<uint64_t> tmp_counter{0};
};

JitCache::Impl& JitCache::impl() const {
  static Impl impl;
  return impl;
}

JitCache& JitCache::instance() {
  static JitCache cache;
  return cache;
}

bool JitCache::compiler_available() {
  // Probe once per compiler string: the answer cannot change mid-process
  // unless the environment does, and tests flip ADV_JIT_CXX to simulate a
  // compiler-less machine.
  static std::mutex mu;
  static std::map<std::string, bool> probed;
  std::string cxx = compiler();
  std::lock_guard<std::mutex> lock(mu);
  auto it = probed.find(cxx);
  if (it == probed.end()) it = probed.emplace(cxx, probe_compiler(cxx)).first;
  return it->second;
}

JitStats JitCache::stats() const {
  std::lock_guard<std::mutex> lock(impl().mu);
  return impl().stats;
}

void JitCache::clear_memory() {
  std::lock_guard<std::mutex> lock(impl().mu);
  impl().modules.clear();
}

std::shared_ptr<const JitModule> JitCache::get_or_compile(
    const std::string& source) {
  Impl& im = impl();
  uint64_t key = jit_source_hash(source);
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.modules.find(key);
  if (it != im.modules.end()) {
    ++im.stats.memory_hits;
    return it->second;
  }

  // The fault check sits before the disk lookup so an armed jit.compile
  // campaign forces the fallback even when a cached .so already exists.
  if (faultz::FaultPlan::instance().should_fire(faultz::Site::kJitCompile)) {
    ++im.stats.failures;
    return nullptr;
  }

  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(key));
  std::string dir = cache_dir();
  std::string so_path = dir + "/advjit-" + hex + ".so";

  std::string error;
  std::error_code ec;
  if (fs::exists(so_path, ec)) {
    auto mod = JitModule::open(so_path, error);
    if (mod != nullptr) {
      ++im.stats.disk_hits;
      im.modules.emplace(key, mod);
      return mod;
    }
    // A stale or truncated .so falls through to recompilation.
    fs::remove(so_path, ec);
  }

  if (!compiler_available()) {
    ++im.stats.failures;
    return nullptr;
  }

  uint64_t uniq = im.tmp_counter.fetch_add(1);
  std::string stem = dir + "/advjit-" + hex + "-" +
                     std::to_string(::getpid()) + "-" + std::to_string(uniq);
  std::string cpp_path = stem + ".cpp";
  std::string tmp_so = stem + ".so";
  {
    std::ofstream out(cpp_path, std::ios::trunc);
    out << source;
    if (!out.good()) {
      ++im.stats.failures;
      return nullptr;
    }
  }
  std::string cmd = compiler() + " -std=c++17 -O2 -shared -fPIC -o '" +
                    tmp_so + "' '" + cpp_path + "' >/dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  fs::remove(cpp_path, ec);
  if (rc != 0) {
    fs::remove(tmp_so, ec);
    ++im.stats.failures;
    return nullptr;
  }
  // rename() is atomic within the directory, so concurrent processes racing
  // on the same key each publish a complete .so.
  fs::rename(tmp_so, so_path, ec);
  if (ec) {
    fs::remove(tmp_so, ec);
    ++im.stats.failures;
    return nullptr;
  }
  auto mod = JitModule::open(so_path, error);
  if (mod == nullptr) {
    ++im.stats.failures;
    return nullptr;
  }
  ++im.stats.compiles;
  im.modules.emplace(key, mod);
  return mod;
}

}  // namespace adv::kernels
