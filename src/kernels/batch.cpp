#include "kernels/batch.h"

#include <cstring>

#include "common/error.h"

namespace adv::kernels {

namespace {

template <typename T>
void decode_typed(const unsigned char* base, std::size_t stride,
                  std::size_t n, double* out, std::size_t out_stride) {
  for (std::size_t i = 0; i < n; ++i) {
    T v;
    std::memcpy(&v, base + i * stride, sizeof v);
    out[i * out_stride] = static_cast<double>(v);
  }
}

template <typename T>
void gather_typed(const unsigned char* base, std::size_t stride,
                  const uint32_t* sel, std::size_t nsel, double* out,
                  std::size_t out_stride) {
  for (std::size_t j = 0; j < nsel; ++j) {
    T v;
    std::memcpy(&v, base + sel[j] * stride, sizeof v);
    out[j * out_stride] = static_cast<double>(v);
  }
}

}  // namespace

void decode_column(DataType t, const unsigned char* base, std::size_t stride,
                   std::size_t n, double* out, std::size_t out_stride) {
  switch (t) {
    case DataType::kInt8:
      return decode_typed<int8_t>(base, stride, n, out, out_stride);
    case DataType::kInt16:
      return decode_typed<int16_t>(base, stride, n, out, out_stride);
    case DataType::kInt32:
      return decode_typed<int32_t>(base, stride, n, out, out_stride);
    case DataType::kInt64:
      return decode_typed<int64_t>(base, stride, n, out, out_stride);
    case DataType::kFloat32:
      return decode_typed<float>(base, stride, n, out, out_stride);
    case DataType::kFloat64:
      return decode_typed<double>(base, stride, n, out, out_stride);
  }
}

void decode_gather(DataType t, const unsigned char* base, std::size_t stride,
                   const uint32_t* sel, std::size_t nsel, double* out,
                   std::size_t out_stride) {
  switch (t) {
    case DataType::kInt8:
      return gather_typed<int8_t>(base, stride, sel, nsel, out, out_stride);
    case DataType::kInt16:
      return gather_typed<int16_t>(base, stride, sel, nsel, out, out_stride);
    case DataType::kInt32:
      return gather_typed<int32_t>(base, stride, sel, nsel, out, out_stride);
    case DataType::kInt64:
      return gather_typed<int64_t>(base, stride, sel, nsel, out, out_stride);
    case DataType::kFloat32:
      return gather_typed<float>(base, stride, sel, nsel, out, out_stride);
    case DataType::kFloat64:
      return gather_typed<double>(base, stride, sel, nsel, out, out_stride);
  }
}

const double* eval_scalar_batch(const expr::CompiledScalar& s,
                                const double* const* cols, std::size_t n,
                                BatchArena& arena) {
  using K = expr::CompiledScalar::Kind;
  switch (s.kind) {
    case K::kSlot:
      return cols[static_cast<std::size_t>(s.slot)];
    case K::kConst: {
      double* o = arena.scratch_col(n);
      for (std::size_t i = 0; i < n; ++i) o[i] = s.cval;
      return o;
    }
    case K::kArith: {
      const double* a = eval_scalar_batch(s.args[0], cols, n, arena);
      const double* b = eval_scalar_batch(s.args[1], cols, n, arena);
      double* o = arena.scratch_col(n);
      switch (s.op) {
        case '+': for (std::size_t i = 0; i < n; ++i) o[i] = a[i] + b[i]; break;
        case '-': for (std::size_t i = 0; i < n; ++i) o[i] = a[i] - b[i]; break;
        case '*': for (std::size_t i = 0; i < n; ++i) o[i] = a[i] * b[i]; break;
        case '/': for (std::size_t i = 0; i < n; ++i) o[i] = a[i] / b[i]; break;
        default:
          throw InternalError("eval_scalar_batch: unknown arith op");
      }
      return o;
    }
    case K::kCall: {
      // UDF fallback: opaque function pointer, so the call stays scalar —
      // argument columns are batched, the function runs once per row with
      // the same argv the interpreter would pass (bit-identical results).
      const std::size_t na = s.args.size();
      const double* argcols[16];
      for (std::size_t j = 0; j < na; ++j)
        argcols[j] = eval_scalar_batch(s.args[j], cols, n, arena);
      double* o = arena.scratch_col(n);
      double argv[16];
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < na; ++j) argv[j] = argcols[j][i];
        o[i] = s.udf->fn(argv, na);
      }
      return o;
    }
  }
  throw InternalError("eval_scalar_batch: unknown scalar kind");
}

void eval_mask(const expr::CompiledBool& p, const double* const* cols,
               std::size_t n, uint8_t* out, BatchArena& arena) {
  using K = expr::CompiledBool::Kind;
  switch (p.kind) {
    case K::kTrue:
      std::memset(out, 1, n);
      return;
    case K::kCmp: {
      const double* a = eval_scalar_batch(p.lhs, cols, n, arena);
      const double* b = eval_scalar_batch(p.rhs, cols, n, arena);
      switch (p.cmp) {
        case sql::CmpOp::kLt:
          for (std::size_t i = 0; i < n; ++i) out[i] = a[i] < b[i];
          break;
        case sql::CmpOp::kLe:
          for (std::size_t i = 0; i < n; ++i) out[i] = a[i] <= b[i];
          break;
        case sql::CmpOp::kGt:
          for (std::size_t i = 0; i < n; ++i) out[i] = a[i] > b[i];
          break;
        case sql::CmpOp::kGe:
          for (std::size_t i = 0; i < n; ++i) out[i] = a[i] >= b[i];
          break;
        case sql::CmpOp::kEq:
          for (std::size_t i = 0; i < n; ++i) out[i] = a[i] == b[i];
          break;
        case sql::CmpOp::kNe:
          for (std::size_t i = 0; i < n; ++i) out[i] = a[i] != b[i];
          break;
      }
      return;
    }
    case K::kIn: {
      // IN lowers to one equality-mask pass per set member, OR-combined.
      // in_set is small (SQL literal lists), so value-outer keeps the inner
      // loop a vectorizable compare-accumulate over the column.
      const double* c = cols[static_cast<std::size_t>(p.slot)];
      std::memset(out, 0, n);
      for (double v : p.in_set)
        for (std::size_t i = 0; i < n; ++i)
          out[i] |= static_cast<uint8_t>(c[i] == v);
      return;
    }
    case K::kAnd: {
      eval_mask(p.kids[0], cols, n, out, arena);
      uint8_t* tmp = arena.scratch_mask(n);
      for (std::size_t k = 1; k < p.kids.size(); ++k) {
        eval_mask(p.kids[k], cols, n, tmp, arena);
        for (std::size_t i = 0; i < n; ++i) out[i] &= tmp[i];
      }
      return;
    }
    case K::kOr: {
      eval_mask(p.kids[0], cols, n, out, arena);
      uint8_t* tmp = arena.scratch_mask(n);
      for (std::size_t k = 1; k < p.kids.size(); ++k) {
        eval_mask(p.kids[k], cols, n, tmp, arena);
        for (std::size_t i = 0; i < n; ++i) out[i] |= tmp[i];
      }
      return;
    }
    case K::kNot: {
      eval_mask(p.kids[0], cols, n, out, arena);
      for (std::size_t i = 0; i < n; ++i) out[i] ^= 1;
      return;
    }
  }
  throw InternalError("eval_mask: unknown predicate kind");
}

std::size_t gather_selected(const uint8_t* mask, std::size_t n,
                            uint32_t* sel) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sel[k] = static_cast<uint32_t>(i);
    k += (mask[i] != 0);
  }
  return k;
}

}  // namespace adv::kernels
