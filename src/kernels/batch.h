// Columnar batch kernels: the `vector` tier of the extraction engine.
//
// The extractor decodes one AFC batch into column-major buffers (one
// contiguous double array per predicate-read slot), evaluates the compiled
// predicate as branch-free column passes — each comparison produces a
// byte mask, AND/OR/NOT combine masks, IN lowers to equality-mask ORs —
// gathers the surviving row indices, and materializes output rows
// batch-at-a-time.  Every loop here is a tight, branch-free pass the
// compiler can auto-vectorize; the only scalar escape hatch is a UDF call,
// which runs per-row inside the batch (UDFs are opaque function pointers).
//
// Bit-exactness contract: for every row, the mask the passes compute is
// exactly CompiledBool::eval of that row.  And/Or short-circuit in the
// interpreter, but every subexpression is pure (IEEE arithmetic and pure
// UDFs — no traps, no side effects), so evaluating all branches for all
// rows cannot change any row's decision or its bits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "expr/predicate.h"

namespace adv::kernels {

// Grow-only buffer arena reused across batches and AFCs by one extraction
// worker.  Named buffers (per-slot columns, mask, selection vector, scan
// sequence, row-major output staging) keep their capacity for the worker's
// lifetime; scratch buffers back intermediate expression columns and are
// recycled per batch via reset_scratch() without freeing.
class BatchArena {
 public:
  // Per-slot decode column (slot-indexed, grows on demand).
  double* col(std::size_t slot, std::size_t n) {
    if (cols_.size() <= slot) cols_.resize(slot + 1);
    if (cols_[slot].size() < n) cols_[slot].resize(n);
    return cols_[slot].data();
  }
  uint8_t* mask(std::size_t n) {
    if (mask_.size() < n) mask_.resize(n);
    return mask_.data();
  }
  uint32_t* sel(std::size_t n) {
    if (sel_.size() < n) sel_.resize(n);
    return sel_.data();
  }
  uint64_t* seq(std::size_t n) {
    if (seq_.size() < n) seq_.resize(n);
    return seq_.data();
  }
  double* out(std::size_t n) {
    if (out_.size() < n) out_.resize(n);
    return out_.data();
  }

  // Scratch columns/masks for expression evaluation.  reset_scratch() makes
  // all of them reusable without releasing memory, so a steady-state batch
  // allocates nothing.
  void reset_scratch() { dused_ = 0; mused_ = 0; }
  double* scratch_col(std::size_t n) {
    if (dscratch_.size() <= dused_) dscratch_.resize(dused_ + 1);
    auto& v = dscratch_[dused_++];
    if (v.size() < n) v.resize(n);
    return v.data();
  }
  uint8_t* scratch_mask(std::size_t n) {
    if (mscratch_.size() <= mused_) mscratch_.resize(mused_ + 1);
    auto& v = mscratch_[mused_++];
    if (v.size() < n) v.resize(n);
    return v.data();
  }

 private:
  std::vector<std::vector<double>> cols_;
  std::vector<uint8_t> mask_;
  std::vector<uint32_t> sel_;
  std::vector<uint64_t> seq_;
  std::vector<double> out_;
  std::vector<std::vector<double>> dscratch_;
  std::size_t dused_ = 0;
  std::vector<std::vector<uint8_t>> mscratch_;
  std::size_t mused_ = 0;
};

// Decodes n consecutive fixed-stride fields of type `t` starting at `base`
// into out[0], out[out_stride], ... — the type switch sits outside the
// loop, so each instantiation is a tight memcpy-and-widen pass.
void decode_column(DataType t, const unsigned char* base, std::size_t stride,
                   std::size_t n, double* out, std::size_t out_stride = 1);

// Gathering variant: decodes the fields at row indices sel[0..nsel) only.
// Used to materialize SELECT-only fields for surviving rows straight into
// the row-major output block (out_stride = number of output columns).
void decode_gather(DataType t, const unsigned char* base, std::size_t stride,
                   const uint32_t* sel, std::size_t nsel, double* out,
                   std::size_t out_stride);

// Evaluates a compiled scalar over the batch.  `cols[slot]` must hold the
// decoded column for every slot the expression reads.  Returns a pointer
// to n doubles — cols[slot] itself for a plain slot reference (zero-copy),
// an arena scratch column otherwise.  kCall (UDF) is the scalar fallback:
// argument columns are batched, the call itself runs per row.
const double* eval_scalar_batch(const expr::CompiledScalar& s,
                                const double* const* cols, std::size_t n,
                                BatchArena& arena);

// Evaluates a compiled predicate over the batch into out[0..n) (1 = row
// matches).  Must agree bit-exactly with CompiledBool::eval per row.
void eval_mask(const expr::CompiledBool& p, const double* const* cols,
               std::size_t n, uint8_t* out, BatchArena& arena);

// Compacts the mask into row indices; returns the survivor count.  The
// loop is branch-free (the store always happens; the cursor advances
// conditionally), so selectivity does not cost mispredictions.
std::size_t gather_selected(const uint8_t* mask, std::size_t n,
                            uint32_t* sel);

}  // namespace adv::kernels
