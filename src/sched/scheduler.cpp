#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>

namespace adv::sched {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Queued waiters poll their token at this granularity; it bounds how long
// a cancel/deadline of a *queued* query can go unnoticed (running queries
// poll at extraction-batch granularity instead).
constexpr auto kWaitPoll = std::chrono::milliseconds(5);

}  // namespace

void LatencyHistogram::add(double seconds) {
  count++;
  sum_seconds += seconds;
  double ms = seconds * 1e3;
  std::size_t b = 0;
  while (b + 1 < kBuckets && ms >= 1.0) {
    ms /= 2;
    b++;
  }
  buckets[b]++;
}

QueryScheduler::QueryScheduler(SchedulerOptions opts) : opts_(opts) {}

std::size_t QueryScheduler::queued_locked() const {
  std::size_t n = 0;
  for (const Queue& q : queues_) n += q.size();
  return n;
}

double QueryScheduler::retry_after_locked() const {
  // Expected time until a slot frees for a retry: the backlog ahead of a
  // hypothetical new arrival, paced by the average observed run time
  // spread over the concurrency.  Before any query finished, fall back to
  // a nominal 50 ms per backlogged query.
  double per_query = ewma_run_seconds_ > 0 ? ewma_run_seconds_ : 0.05;
  std::size_t conc = std::max<std::size_t>(1, opts_.max_concurrent_queries);
  double backlog = static_cast<double>(queued_locked() + 1);
  return std::max(1e-3, per_query * backlog / static_cast<double>(conc));
}

double QueryScheduler::retry_after_hint() const {
  std::lock_guard<std::mutex> lk(mu_);
  // With a free run slot there is nothing to wait for: a submission now
  // would be admitted immediately, so the polite-backoff hint is zero.
  if (opts_.max_concurrent_queries == 0 ||
      (running_ < opts_.max_concurrent_queries && queued_locked() == 0))
    return 0;
  return retry_after_locked();
}

void QueryScheduler::admit_next_locked() {
  while (opts_.max_concurrent_queries == 0 ||
         running_ < opts_.max_concurrent_queries) {
    std::shared_ptr<QueryContext> next;
    for (std::size_t p = kPriorities; p-- > 0;) {
      if (!queues_[p].empty()) {
        next = std::move(queues_[p].front());
        queues_[p].pop_front();
        break;
      }
    }
    if (!next) break;
    // A query cancelled (or deadlined) while queued that nobody is
    // waiting on any more: account for it and skip the slot.
    if (next->token.cancelled()) {
      record_abandoned_locked(*next);
      next->state = QueryContext::State::kDequeued;
      continue;
    }
    next->state = QueryContext::State::kRunning;
    next->admitted_at = Clock::now();
    next->queue_wait_seconds = seconds_since(next->enqueued_at);
    metrics_.admitted++;
    metrics_.queue_wait.add(next->queue_wait_seconds);
    running_++;
    metrics_.peak_running = std::max(metrics_.peak_running, running_);
  }
  metrics_.running = running_;
  metrics_.queue_depth = queued_locked();
  cv_.notify_all();
}

bool QueryScheduler::remove_queued_locked(
    const std::shared_ptr<QueryContext>& ctx) {
  Queue& q = queues_[level(ctx->priority)];
  auto it = std::find(q.begin(), q.end(), ctx);
  if (it == q.end()) return false;
  q.erase(it);
  metrics_.queue_depth = queued_locked();
  return true;
}

void QueryScheduler::record_abandoned_locked(const QueryContext& ctx) {
  if (ctx.token.cancel_requested())
    metrics_.cancelled++;
  else
    metrics_.deadline_exceeded++;
}

QueryScheduler::Admission QueryScheduler::submit(uint8_t priority,
                                                 double deadline_seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  metrics_.submitted++;
  Admission adm;
  if (draining_) {
    metrics_.rejected++;
    adm.reject_reason = "server is draining";
    adm.retry_after_seconds = retry_after_locked();
    return adm;
  }
  // Reject only when the query would actually have to wait: a free run
  // slot admits immediately regardless of max_queue_depth (notably
  // max_queue_depth = 0, "never queue").  The queue is non-empty only
  // while every slot is taken — admit_next_locked() drains it whenever
  // one frees — so slot_free implies the queue check is moot.
  bool slot_free = opts_.max_concurrent_queries == 0 ||
                   running_ < opts_.max_concurrent_queries;
  if (!slot_free && queued_locked() >= opts_.max_queue_depth) {
    metrics_.rejected++;
    adm.reject_reason = "admission queue full";
    adm.retry_after_seconds = retry_after_locked();
    return adm;
  }

  auto ctx = std::make_shared<QueryContext>();
  ctx->id = next_id_++;
  ctx->priority = priority;
  double deadline =
      deadline_seconds > 0 ? deadline_seconds : opts_.default_deadline_seconds;
  ctx->token.set_deadline_after(deadline);
  ctx->enqueued_at = Clock::now();

  // Queue position: everything at a strictly higher level plus the FIFO
  // tail of its own level runs first.
  std::size_t ahead = queues_[level(priority)].size();
  for (std::size_t p = level(priority) + 1; p < kPriorities; ++p)
    ahead += queues_[p].size();
  queues_[level(priority)].push_back(ctx);
  metrics_.queue_depth = queued_locked();
  metrics_.peak_queue_depth =
      std::max(metrics_.peak_queue_depth, metrics_.queue_depth);

  admit_next_locked();

  adm.ctx = ctx;
  adm.queued = ctx->state != QueryContext::State::kRunning;
  adm.queue_position = ahead;
  adm.queue_depth = queued_locked();
  return adm;
}

bool QueryScheduler::wait_admitted(
    const std::shared_ptr<QueryContext>& ctx) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (ctx->state == QueryContext::State::kRunning) return true;
    if (ctx->state == QueryContext::State::kDequeued) return false;
    if (ctx->token.cancelled()) {
      if (remove_queued_locked(ctx)) record_abandoned_locked(*ctx);
      ctx->state = QueryContext::State::kDequeued;
      cv_.notify_all();
      return false;
    }
    // Timed wait: the token may fire from a thread that has no handle on
    // this scheduler (the connection's control reader, a deadline), so
    // poll it rather than requiring every canceller to notify us.
    cv_.wait_for(lk, kWaitPoll);
  }
}

void QueryScheduler::finish(const std::shared_ptr<QueryContext>& ctx,
                            Outcome outcome) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ctx->state != QueryContext::State::kRunning) return;  // defensive
  ctx->state = QueryContext::State::kDequeued;
  ctx->run_seconds = seconds_since(ctx->admitted_at);
  running_--;
  metrics_.run_time.add(ctx->run_seconds);
  ewma_run_seconds_ = ewma_run_seconds_ == 0
                          ? ctx->run_seconds
                          : 0.8 * ewma_run_seconds_ + 0.2 * ctx->run_seconds;
  switch (outcome) {
    case Outcome::kCompleted: metrics_.completed++; break;
    case Outcome::kFailed: metrics_.failed++; break;
    case Outcome::kCancelled: metrics_.cancelled++; break;
    case Outcome::kDeadlineExceeded: metrics_.deadline_exceeded++; break;
  }
  admit_next_locked();
}

void QueryScheduler::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  // Dequeue everything still waiting; their wait_admitted() (if anyone is
  // in it) observes kDequeued and returns false.
  for (Queue& q : queues_) {
    for (auto& ctx : q) {
      ctx->token.cancel();
      record_abandoned_locked(*ctx);
      ctx->state = QueryContext::State::kDequeued;
    }
    q.clear();
  }
  metrics_.queue_depth = 0;
  cv_.notify_all();
  cv_.wait(lk, [this] { return running_ == 0; });
}

SchedulerMetrics QueryScheduler::metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  SchedulerMetrics m = metrics_;
  m.queue_depth = queued_locked();
  m.running = running_;
  return m;
}

}  // namespace adv::sched
