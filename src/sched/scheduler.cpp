#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>

namespace adv::sched {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Queued waiters poll their token at this granularity; it bounds how long
// a cancel/deadline of a *queued* query can go unnoticed (running queries
// poll at extraction-batch granularity instead).
constexpr auto kWaitPoll = std::chrono::milliseconds(5);

}  // namespace

void LatencyHistogram::add(double seconds) {
  count++;
  sum_seconds += seconds;
  double ms = seconds * 1e3;
  std::size_t b = 0;
  while (b + 1 < kBuckets && ms >= 1.0) {
    ms /= 2;
    b++;
  }
  buckets[b]++;
}

double LatencyHistogram::quantile_seconds(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t want = static_cast<uint64_t>(std::ceil(q * count));
  if (want == 0) want = 1;
  uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= want) return std::ldexp(1e-3, static_cast<int>(b));
  }
  return std::ldexp(1e-3, static_cast<int>(kBuckets));
}

QueryScheduler::QueryScheduler(SchedulerOptions opts) : opts_(opts) {}

QueryScheduler::TenantState& QueryScheduler::tenant_locked(
    const std::string& id) {
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return it->second;
  TenantState st;
  auto oit = opts_.tenants.find(id);
  st.opts = oit != opts_.tenants.end() ? oit->second : opts_.default_tenant;
  if (st.opts.weight <= 0) st.opts.weight = 1.0;
  st.metrics.weight = st.opts.weight;
  return tenants_.emplace(id, std::move(st)).first->second;
}

std::size_t QueryScheduler::queued_locked() const { return queued_total_; }

double QueryScheduler::decayed_ewma_locked() const {
  if (ewma_run_seconds_ <= 0) return 0;
  double hl = opts_.retry_hint_halflife_seconds;
  if (hl <= 0 || last_finish_ == Clock::time_point{}) return ewma_run_seconds_;
  // Halve per half-life of finish-free idleness: a hint computed right
  // after a burst matches the burst, one computed minutes later is ~0.
  return ewma_run_seconds_ * std::exp2(-seconds_since(last_finish_) / hl);
}

double QueryScheduler::retry_after_locked() const {
  // Expected time until a slot frees for a retry: the backlog ahead of a
  // hypothetical new arrival, paced by the average observed run time
  // spread over the concurrency.  Before any query finished, fall back to
  // a nominal 50 ms per backlogged query.
  double ewma = decayed_ewma_locked();
  double per_query = ewma > 0 ? ewma : 0.05;
  std::size_t conc = std::max<std::size_t>(1, opts_.max_concurrent_queries);
  double backlog = static_cast<double>(queued_locked() + 1);
  return std::max(1e-3, per_query * backlog / static_cast<double>(conc));
}

double QueryScheduler::retry_after_hint() const {
  std::lock_guard<std::mutex> lk(mu_);
  // With a free run slot there is nothing to wait for: a submission now
  // would be admitted immediately, so the polite-backoff hint is zero.
  if (opts_.max_concurrent_queries == 0 ||
      (running_ < opts_.max_concurrent_queries && queued_locked() == 0))
    return 0;
  return retry_after_locked();
}

void QueryScheduler::admit_next_locked() {
  while (opts_.max_concurrent_queries == 0 ||
         running_ < opts_.max_concurrent_queries) {
    // Strict priority first: only the highest non-empty level competes.
    // Within the level, weighted fair share picks the eligible tenant
    // (under its running cap) with the least virtual time; ties break on
    // tenant id so the order is deterministic.
    TenantState* best = nullptr;
    std::size_t best_level = 0;
    for (std::size_t p = kPriorities; p-- > 0 && !best;) {
      for (auto& [id, st] : tenants_) {
        if (st.queues[p].empty()) continue;
        if (st.opts.max_running > 0 && st.running >= st.opts.max_running)
          continue;  // quota-capped: its backlog must not block this level
        if (!best || st.vtime < best->vtime) {
          best = &st;
          best_level = p;
        }
      }
    }
    if (!best) break;
    std::shared_ptr<QueryContext> next = std::move(best->queues[best_level].front());
    best->queues[best_level].pop_front();
    best->queued--;
    queued_total_--;
    // A query cancelled (or deadlined) while queued that nobody is
    // waiting on any more: account for it and skip the slot.
    if (next->token.cancelled()) {
      record_abandoned_locked(*next);
      next->state = QueryContext::State::kDequeued;
      continue;
    }
    next->state = QueryContext::State::kRunning;
    next->admitted_at = Clock::now();
    next->queue_wait_seconds = seconds_since(next->enqueued_at);
    metrics_.admitted++;
    metrics_.queue_wait.add(next->queue_wait_seconds);
    best->metrics.admitted++;
    best->metrics.queue_wait.add(next->queue_wait_seconds);
    best->running++;
    best->vtime += 1.0 / best->opts.weight;
    vclock_ = std::max(vclock_, best->vtime);
    running_++;
    metrics_.peak_running = std::max(metrics_.peak_running, running_);
  }
  metrics_.running = running_;
  metrics_.queue_depth = queued_locked();
  cv_.notify_all();
}

bool QueryScheduler::remove_queued_locked(
    const std::shared_ptr<QueryContext>& ctx) {
  TenantState& st = tenant_locked(ctx->tenant);
  Queue& q = st.queues[level(ctx->priority)];
  auto it = std::find(q.begin(), q.end(), ctx);
  if (it == q.end()) return false;
  q.erase(it);
  st.queued--;
  queued_total_--;
  metrics_.queue_depth = queued_locked();
  return true;
}

void QueryScheduler::record_abandoned_locked(const QueryContext& ctx) {
  TenantState& st = tenant_locked(ctx.tenant);
  if (ctx.token.cancel_requested()) {
    metrics_.cancelled++;
    st.metrics.cancelled++;
  } else {
    metrics_.deadline_exceeded++;
    st.metrics.deadline_exceeded++;
  }
}

QueryScheduler::Admission QueryScheduler::submit(uint8_t priority,
                                                 double deadline_seconds,
                                                 const std::string& tenant) {
  std::lock_guard<std::mutex> lk(mu_);
  metrics_.submitted++;
  TenantState& st = tenant_locked(tenant);
  st.metrics.submitted++;
  Admission adm;
  if (draining_) {
    metrics_.rejected++;
    st.metrics.rejected++;
    adm.reject_reason = "server is draining";
    adm.reject_kind = RejectKind::kDraining;
    adm.retry_after_seconds = retry_after_locked();
    return adm;
  }
  // Reject only when the query would actually have to wait: a free run
  // slot admits a quota-eligible query immediately regardless of
  // max_queue_depth (notably max_queue_depth = 0, "never queue").  With
  // fair share the queue can be non-empty while slots are free — every
  // queued tenant at its running cap — and an eligible arrival still runs
  // straight away.
  bool slot_free = opts_.max_concurrent_queries == 0 ||
                   running_ < opts_.max_concurrent_queries;
  bool tenant_eligible =
      st.opts.max_running == 0 || st.running < st.opts.max_running;
  bool would_wait = !slot_free || !tenant_eligible;
  if (would_wait && st.opts.max_queued > 0 && st.queued >= st.opts.max_queued) {
    metrics_.rejected++;
    st.metrics.rejected++;
    adm.reject_reason = "tenant quota exceeded (" +
                        (tenant.empty() ? std::string("default tenant")
                                        : "tenant " + tenant) +
                        ": max_queued=" + std::to_string(st.opts.max_queued) +
                        ")";
    adm.reject_kind = RejectKind::kTenantQuota;
    adm.retry_after_seconds = retry_after_locked();
    return adm;
  }
  if (would_wait && queued_locked() >= opts_.max_queue_depth) {
    metrics_.rejected++;
    st.metrics.rejected++;
    adm.reject_reason = "admission queue full";
    adm.reject_kind = RejectKind::kQueueFull;
    adm.retry_after_seconds = retry_after_locked();
    return adm;
  }

  auto ctx = std::make_shared<QueryContext>();
  ctx->id = next_id_++;
  ctx->priority = priority;
  ctx->tenant = tenant;
  double deadline =
      deadline_seconds > 0 ? deadline_seconds : opts_.default_deadline_seconds;
  ctx->token.set_deadline_after(deadline);
  ctx->enqueued_at = Clock::now();

  // Fair-share clock catch-up: a tenant going active after an idle spell
  // resumes at the current clock, not at its stale vtime, so it competes
  // fairly from now on instead of winning every slot until it "caught up".
  if (!st.active()) st.vtime = std::max(st.vtime, vclock_);

  // Queue position: everything at a strictly higher level plus the FIFO
  // tail of its own level runs first (fair-share interleaving within the
  // level makes this an estimate, as the protocol documents).
  std::size_t ahead = 0;
  for (const auto& [id, t] : tenants_) {
    ahead += t.queues[level(priority)].size();
    for (std::size_t p = level(priority) + 1; p < kPriorities; ++p)
      ahead += t.queues[p].size();
  }
  st.queues[level(priority)].push_back(ctx);
  st.queued++;
  queued_total_++;
  metrics_.queue_depth = queued_locked();
  metrics_.peak_queue_depth =
      std::max(metrics_.peak_queue_depth, metrics_.queue_depth);

  admit_next_locked();

  adm.ctx = ctx;
  adm.queued = ctx->state != QueryContext::State::kRunning;
  adm.queue_position = ahead;
  adm.queue_depth = queued_locked();
  return adm;
}

bool QueryScheduler::wait_admitted(
    const std::shared_ptr<QueryContext>& ctx) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (ctx->state == QueryContext::State::kRunning) return true;
    if (ctx->state == QueryContext::State::kDequeued) return false;
    if (ctx->token.cancelled()) {
      if (remove_queued_locked(ctx)) record_abandoned_locked(*ctx);
      ctx->state = QueryContext::State::kDequeued;
      cv_.notify_all();
      return false;
    }
    // Timed wait: the token may fire from a thread that has no handle on
    // this scheduler (the connection's control reader, a deadline), so
    // poll it rather than requiring every canceller to notify us.
    cv_.wait_for(lk, kWaitPoll);
  }
}

void QueryScheduler::finish(const std::shared_ptr<QueryContext>& ctx,
                            Outcome outcome) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ctx->state != QueryContext::State::kRunning) return;  // defensive
  ctx->state = QueryContext::State::kDequeued;
  ctx->run_seconds = seconds_since(ctx->admitted_at);
  running_--;
  TenantState& st = tenant_locked(ctx->tenant);
  st.running--;
  metrics_.run_time.add(ctx->run_seconds);
  st.metrics.run_time.add(ctx->run_seconds);
  ewma_run_seconds_ = ewma_run_seconds_ == 0
                          ? ctx->run_seconds
                          : 0.8 * ewma_run_seconds_ + 0.2 * ctx->run_seconds;
  last_finish_ = Clock::now();
  switch (outcome) {
    case Outcome::kCompleted:
      metrics_.completed++;
      st.metrics.completed++;
      break;
    case Outcome::kFailed:
      metrics_.failed++;
      st.metrics.failed++;
      break;
    case Outcome::kCancelled:
      metrics_.cancelled++;
      st.metrics.cancelled++;
      break;
    case Outcome::kDeadlineExceeded:
      metrics_.deadline_exceeded++;
      st.metrics.deadline_exceeded++;
      break;
  }
  admit_next_locked();
}

void QueryScheduler::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  // Dequeue everything still waiting; their wait_admitted() (if anyone is
  // in it) observes kDequeued and returns false.
  for (auto& [id, st] : tenants_) {
    for (Queue& q : st.queues) {
      for (auto& ctx : q) {
        ctx->token.cancel();
        record_abandoned_locked(*ctx);
        ctx->state = QueryContext::State::kDequeued;
      }
      q.clear();
    }
    st.queued = 0;
  }
  queued_total_ = 0;
  metrics_.queue_depth = 0;
  cv_.notify_all();
  cv_.wait(lk, [this] { return running_ == 0; });
}

SchedulerMetrics QueryScheduler::metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  SchedulerMetrics m = metrics_;
  m.queue_depth = queued_locked();
  m.running = running_;
  for (const auto& [id, st] : tenants_) {
    TenantMetrics tm = st.metrics;
    tm.queued = st.queued;
    tm.running = st.running;
    m.tenants[id] = std::move(tm);
  }
  return m;
}

}  // namespace adv::sched
