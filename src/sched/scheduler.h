// Query admission control and lifecycle scheduling for the STORM query
// service.
//
// The paper's STORM middleware serves many concurrent analysis clients
// over one shared virtual cluster.  QueryScheduler sits between the
// network front end (storm::QueryServer) and execution
// (storm::StormCluster): every query is submitted here first, and the
// scheduler decides — under one lock — whether it runs now, waits in a
// bounded queue, or is rejected with a retry-after hint.
//
//   submit()         admission: run / queue / reject
//   wait_admitted()  blocks a queued query until a slot frees, its
//                    CancelToken fires, or its deadline expires
//   finish()         releases the slot, records the outcome, admits the
//                    next queued query
//   drain()          graceful shutdown: stop admitting, cancel the queue,
//                    wait for running queries to finish
//
// Ordering is FIFO within a priority level; levels (0 = low, 1 = normal,
// 2 = high) are served strictly highest-first.  Each admitted query gets
// a QueryContext carrying its CancelToken (threaded down through the AFC
// planner, the extraction workers, and the row-shipping path) and its
// per-query timings.  Aggregate metrics — admitted/rejected/cancelled/
// deadline-exceeded counts, peak concurrency, queue-wait and run-time
// histograms — are served by metrics() and surfaced to remote clients in
// the wire protocol's kStats frame (see docs/SERVING.md).
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "common/cancel.h"

namespace adv::sched {

struct SchedulerOptions {
  // Queries executing at once; 0 = unlimited (admission never queues).
  std::size_t max_concurrent_queries = 4;
  // Queries waiting beyond the running ones; submissions past this are
  // rejected with a retry-after hint.
  std::size_t max_queue_depth = 16;
  // Deadline applied to queries that arrive without one; 0 = none.
  double default_deadline_seconds = 0;
};

// How a query's lifecycle ended, for the outcome counters.
enum class Outcome : uint8_t {
  kCompleted,
  kFailed,            // node or connection error
  kCancelled,         // client kCancel / disconnect
  kDeadlineExceeded,
};

// Log-scale latency histogram: bucket k counts samples in
// [2^(k-1), 2^k) milliseconds (bucket 0 takes everything under 1 ms, the
// last bucket everything from ~16 s up).
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 16;
  std::array<uint64_t, kBuckets> buckets{};
  uint64_t count = 0;
  double sum_seconds = 0;

  void add(double seconds);
  double mean_seconds() const { return count ? sum_seconds / count : 0; }
};

struct SchedulerMetrics {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;           // queue full or draining
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;          // explicit cancel, queued or running
  uint64_t deadline_exceeded = 0;  // deadline fired, queued or running
  std::size_t queue_depth = 0;     // current
  std::size_t running = 0;         // current
  std::size_t peak_running = 0;
  std::size_t peak_queue_depth = 0;
  LatencyHistogram queue_wait;     // admitted queries only
  LatencyHistogram run_time;       // finished queries only
};

class QueryScheduler;

// Per-query lifecycle state.  Created by QueryScheduler::submit() and
// shared between the scheduler and the serving thread; the CancelToken is
// additionally shared with whatever fires it (the connection's control
// reader, a deadline, drain()).
struct QueryContext {
  uint64_t id = 0;
  uint8_t priority = 1;
  CancelToken token;
  double queue_wait_seconds = 0;  // set at admission
  double run_seconds = 0;         // set at finish

 private:
  friend class QueryScheduler;
  enum class State : uint8_t { kQueued, kRunning, kDequeued };
  State state = State::kQueued;
  std::chrono::steady_clock::time_point enqueued_at{};
  std::chrono::steady_clock::time_point admitted_at{};
};

class QueryScheduler {
 public:
  explicit QueryScheduler(SchedulerOptions opts = {});

  struct Admission {
    std::shared_ptr<QueryContext> ctx;  // null when rejected
    bool queued = false;                // admitted later, not immediately
    std::size_t queue_position = 0;     // queries ahead at submit time
    std::size_t queue_depth = 0;        // total queued at submit time
    double retry_after_seconds = 0;     // rejection hint
    std::string reject_reason;          // non-empty when rejected
  };

  // Admission decision.  A rejected submission carries a retry-after hint
  // derived from the average run time of recently finished queries and
  // the current backlog.  `deadline_seconds` <= 0 falls back to
  // SchedulerOptions::default_deadline_seconds.
  Admission submit(uint8_t priority = 1, double deadline_seconds = 0);

  // Blocks until `ctx` is admitted (true) or leaves the queue without
  // running (false: token cancelled, deadline expired, or drain()).  A
  // query admitted at submit() returns true immediately.
  bool wait_admitted(const std::shared_ptr<QueryContext>& ctx);

  // Releases the slot of a running query, records its outcome and run
  // time, and admits the next queued query.  Must be called exactly once
  // per admitted query; never for one wait_admitted() returned false for.
  void finish(const std::shared_ptr<QueryContext>& ctx, Outcome outcome);

  // Graceful shutdown: rejects future submissions, cancels every queued
  // query (their wait_admitted() returns false), and blocks until all
  // running queries called finish().  Idempotent.
  void drain();

  SchedulerMetrics metrics() const;
  const SchedulerOptions& options() const { return opts_; }

  // The current EWMA-derived retry-after estimate — what a rejected
  // submission would be told right now.  Surfaced to clients in the kStats
  // v2.1 tail so they can pace politely instead of hot-looping into
  // kRejected; 0 when a new arrival would run immediately.
  double retry_after_hint() const;

 private:
  static constexpr std::size_t kPriorities = 3;
  using Queue = std::deque<std::shared_ptr<QueryContext>>;

  static std::size_t level(uint8_t priority) {
    return priority >= kPriorities ? kPriorities - 1 : priority;
  }
  std::size_t queued_locked() const;
  void admit_next_locked();
  bool remove_queued_locked(const std::shared_ptr<QueryContext>& ctx);
  void record_abandoned_locked(const QueryContext& ctx);
  double retry_after_locked() const;

  const SchedulerOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<Queue, kPriorities> queues_;
  std::size_t running_ = 0;
  bool draining_ = false;
  uint64_t next_id_ = 1;
  double ewma_run_seconds_ = 0;  // retry-after hint basis
  SchedulerMetrics metrics_;
};

}  // namespace adv::sched
