// Query admission control and lifecycle scheduling for the STORM query
// service.
//
// The paper's STORM middleware serves many concurrent analysis clients
// over one shared virtual cluster.  QueryScheduler sits between the
// network front end (storm::QueryServer) and execution
// (storm::StormCluster): every query is submitted here first, and the
// scheduler decides — under one lock — whether it runs now, waits in a
// bounded queue, or is rejected with a retry-after hint.
//
//   submit()         admission: run / queue / reject
//   wait_admitted()  blocks a queued query until a slot frees, its
//                    CancelToken fires, or its deadline expires
//   finish()         releases the slot, records the outcome, admits the
//                    next queued query
//   drain()          graceful shutdown: stop admitting, cancel the queue,
//                    wait for running queries to finish
//
// Multi-tenant QoS (docs/SERVING.md §7): every query carries a tenant id
// (the default tenant "" when the client sends none).  Run slots are
// shared across tenants by *weighted fair share*: each tenant accrues
// virtual time 1/weight per admitted query, and a freed slot goes to the
// eligible tenant with the least virtual time, so under saturation tenant
// throughput converges to the weight ratio regardless of how many
// connections each tenant opens.  Strict priority (0 = low, 1 = normal,
// 2 = high; FIFO within a level) still applies *above* fairness: a level
// is only considered once every higher level is empty, and fair share
// picks among the tenants queued at that level.  Per-tenant quotas bound
// concurrently running queries (max_running) and queued backlog
// (max_queued); exceeding one rejects with RejectKind::kTenantQuota so a
// greedy tenant is told apart from a genuinely full server.
//
// Each admitted query gets a QueryContext carrying its CancelToken
// (threaded down through the AFC planner, the extraction workers, and the
// row-shipping path) and its per-query timings.  Aggregate metrics —
// admitted/rejected/cancelled/deadline-exceeded counts, peak concurrency,
// queue-wait and run-time histograms, and the same broken out per tenant
// — are served by metrics() and surfaced to remote clients in the wire
// protocol's kStats frame (see docs/SERVING.md).
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/cancel.h"

namespace adv::sched {

// Per-tenant fair-share weight and quotas.  A tenant without an explicit
// entry in SchedulerOptions::tenants uses default_tenant.
struct TenantOptions {
  // Fair-share weight: under saturation a tenant's completed-query share
  // converges to weight / (sum of active tenants' weights).  Values <= 0
  // are treated as 1.
  double weight = 1.0;
  // Queries of this tenant executing at once; 0 = no per-tenant cap (the
  // global max_concurrent_queries still applies).
  std::size_t max_running = 0;
  // Queries of this tenant waiting in the queue; submissions past this are
  // rejected with RejectKind::kTenantQuota.  0 = no per-tenant bound.
  std::size_t max_queued = 0;
};

struct SchedulerOptions {
  // Queries executing at once; 0 = unlimited (admission never queues).
  std::size_t max_concurrent_queries = 4;
  // Queries waiting beyond the running ones; submissions past this are
  // rejected with a retry-after hint.
  std::size_t max_queue_depth = 16;
  // Deadline applied to queries that arrive without one; 0 = none.
  double default_deadline_seconds = 0;
  // Per-tenant overrides, keyed by tenant id; tenants not listed here get
  // `default_tenant`.
  std::map<std::string, TenantOptions> tenants;
  TenantOptions default_tenant;
  // Half-life of the retry-after hint while the scheduler sits idle: the
  // EWMA run time behind the hint halves every this-many seconds without a
  // finish, so clients polling kStats after a burst ends are not told to
  // back off against an idle server.  <= 0 disables the decay.
  double retry_hint_halflife_seconds = 5.0;
};

// How a query's lifecycle ended, for the outcome counters.
enum class Outcome : uint8_t {
  kCompleted,
  kFailed,            // node or connection error
  kCancelled,         // client kCancel / disconnect
  kDeadlineExceeded,
};

// Why a submission was rejected (wire kRejected carries it as a tail byte
// so clients can throw a typed error).
enum class RejectKind : uint8_t {
  kNone = 0,
  kQueueFull = 1,     // global admission queue full
  kDraining = 2,      // server shutting down
  kTenantQuota = 3,   // per-tenant max_running/max_queued exceeded
};

// Log-scale latency histogram: bucket k counts samples in
// [2^(k-1), 2^k) milliseconds (bucket 0 takes everything under 1 ms, the
// last bucket everything from ~16 s up).
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 16;
  std::array<uint64_t, kBuckets> buckets{};
  uint64_t count = 0;
  double sum_seconds = 0;

  void add(double seconds);
  double mean_seconds() const { return count ? sum_seconds / count : 0; }
  // Approximate quantile (0 <= q <= 1) in seconds: the upper edge of the
  // bucket holding the q-th sample — an upper bound within a factor of 2,
  // good enough for operator-facing p50/p99 readouts.
  double quantile_seconds(double q) const;
};

struct TenantMetrics {
  double weight = 1.0;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;           // queue full, quota, or draining
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  std::size_t queued = 0;          // current
  std::size_t running = 0;         // current
  LatencyHistogram queue_wait;
  LatencyHistogram run_time;
};

struct SchedulerMetrics {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;           // queue full or draining
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;          // explicit cancel, queued or running
  uint64_t deadline_exceeded = 0;  // deadline fired, queued or running
  std::size_t queue_depth = 0;     // current
  std::size_t running = 0;         // current
  std::size_t peak_running = 0;
  std::size_t peak_queue_depth = 0;
  LatencyHistogram queue_wait;     // admitted queries only
  LatencyHistogram run_time;       // finished queries only
  // Per-tenant breakdown, keyed by tenant id ("" = the default tenant).
  std::map<std::string, TenantMetrics> tenants;
};

class QueryScheduler;

// Per-query lifecycle state.  Created by QueryScheduler::submit() and
// shared between the scheduler and the serving thread; the CancelToken is
// additionally shared with whatever fires it (the connection's control
// reader, a deadline, drain()).
struct QueryContext {
  uint64_t id = 0;
  uint8_t priority = 1;
  std::string tenant;             // "" = default tenant
  CancelToken token;
  double queue_wait_seconds = 0;  // set at admission
  double run_seconds = 0;         // set at finish
 private:
  friend class QueryScheduler;
  enum class State : uint8_t { kQueued, kRunning, kDequeued };
  State state = State::kQueued;
  std::chrono::steady_clock::time_point enqueued_at{};
  std::chrono::steady_clock::time_point admitted_at{};
};

class QueryScheduler {
 public:
  explicit QueryScheduler(SchedulerOptions opts = {});

  struct Admission {
    std::shared_ptr<QueryContext> ctx;  // null when rejected
    bool queued = false;                // admitted later, not immediately
    std::size_t queue_position = 0;     // queries ahead at submit time
    std::size_t queue_depth = 0;        // total queued at submit time
    double retry_after_seconds = 0;     // rejection hint
    std::string reject_reason;          // non-empty when rejected
    RejectKind reject_kind = RejectKind::kNone;
  };

  // Admission decision.  A rejected submission carries a retry-after hint
  // derived from the average run time of recently finished queries and
  // the current backlog.  `deadline_seconds` <= 0 falls back to
  // SchedulerOptions::default_deadline_seconds.  `tenant` selects the
  // fair-share account and quota set ("" = default tenant).
  Admission submit(uint8_t priority = 1, double deadline_seconds = 0,
                   const std::string& tenant = std::string());

  // Blocks until `ctx` is admitted (true) or leaves the queue without
  // running (false: token cancelled, deadline expired, or drain()).  A
  // query admitted at submit() returns true immediately.
  bool wait_admitted(const std::shared_ptr<QueryContext>& ctx);

  // Releases the slot of a running query, records its outcome and run
  // time, and admits the next queued query.  Must be called exactly once
  // per admitted query; never for one wait_admitted() returned false for.
  void finish(const std::shared_ptr<QueryContext>& ctx, Outcome outcome);

  // Graceful shutdown: rejects future submissions, cancels every queued
  // query (their wait_admitted() returns false), and blocks until all
  // running queries called finish().  Idempotent.
  void drain();

  SchedulerMetrics metrics() const;
  const SchedulerOptions& options() const { return opts_; }

  // The current EWMA-derived retry-after estimate — what a rejected
  // submission would be told right now.  Surfaced to clients in the kStats
  // v2.1 tail so they can pace politely instead of hot-looping into
  // kRejected; 0 when a new arrival would run immediately.  The EWMA basis
  // halves every retry_hint_halflife_seconds without a finish, so the
  // hint decays toward zero once the queue drains instead of freezing at
  // the last burst's run times.
  double retry_after_hint() const;

 private:
  static constexpr std::size_t kPriorities = 3;
  using Queue = std::deque<std::shared_ptr<QueryContext>>;

  // All mutable per-tenant state, created lazily on first submit.
  struct TenantState {
    TenantOptions opts;
    double vtime = 0;  // accrued 1/weight per admission (fair-share clock)
    std::size_t running = 0;
    std::size_t queued = 0;
    std::array<Queue, kPriorities> queues;
    TenantMetrics metrics;

    bool active() const { return running > 0 || queued > 0; }
  };

  static std::size_t level(uint8_t priority) {
    return priority >= kPriorities ? kPriorities - 1 : priority;
  }
  TenantState& tenant_locked(const std::string& id);
  std::size_t queued_locked() const;
  void admit_next_locked();
  bool remove_queued_locked(const std::shared_ptr<QueryContext>& ctx);
  void record_abandoned_locked(const QueryContext& ctx);
  double retry_after_locked() const;
  double decayed_ewma_locked() const;

  const SchedulerOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, TenantState> tenants_;
  std::size_t running_ = 0;
  std::size_t queued_total_ = 0;
  bool draining_ = false;
  uint64_t next_id_ = 1;
  double ewma_run_seconds_ = 0;  // retry-after hint basis
  // Fair-share clock floor: the vtime of the most recent admission.  A
  // tenant going active after an idle spell starts here instead of at its
  // stale (possibly zero) vtime, so it cannot monopolize the slots to
  // "catch up" on time it spent away.
  double vclock_ = 0;
  // When the EWMA was last refreshed by a finish — the decay anchor.
  std::chrono::steady_clock::time_point last_finish_{};
  SchedulerMetrics metrics_;
};

}  // namespace adv::sched
