#include "sql/ast.h"

#include <sstream>

namespace adv::sql {

const char* to_string(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
  }
  return "?";
}

ScalarPtr Scalar::make_literal(Value v) {
  auto s = std::make_shared<Scalar>();
  s->kind = Kind::kLiteral;
  s->literal = v;
  return s;
}

ScalarPtr Scalar::make_attr(std::string name) {
  auto s = std::make_shared<Scalar>();
  s->kind = Kind::kAttr;
  s->name = std::move(name);
  return s;
}

ScalarPtr Scalar::make_call(std::string name, std::vector<ScalarPtr> args) {
  auto s = std::make_shared<Scalar>();
  s->kind = Kind::kCall;
  s->name = std::move(name);
  s->args = std::move(args);
  return s;
}

ScalarPtr Scalar::make_arith(char op, ScalarPtr lhs, ScalarPtr rhs) {
  auto s = std::make_shared<Scalar>();
  s->kind = Kind::kArith;
  s->op = op;
  s->lhs = std::move(lhs);
  s->rhs = std::move(rhs);
  return s;
}

std::string Scalar::to_string() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.to_string();
    case Kind::kAttr:
      return name;
    case Kind::kCall: {
      std::string out = name + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->to_string();
      }
      return out + ")";
    }
    case Kind::kArith:
      return "(" + lhs->to_string() + " " + op + " " + rhs->to_string() + ")";
  }
  return "?";
}

BoolExprPtr BoolExpr::make_cmp(CmpOp op, ScalarPtr lhs, ScalarPtr rhs) {
  auto e = std::make_shared<BoolExpr>();
  e->kind = Kind::kCmp;
  e->cmp = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

BoolExprPtr BoolExpr::make_in(std::string attr, std::vector<Value> values) {
  auto e = std::make_shared<BoolExpr>();
  e->kind = Kind::kIn;
  e->attr = std::move(attr);
  e->in_values = std::move(values);
  return e;
}

BoolExprPtr BoolExpr::make_and(BoolExprPtr a, BoolExprPtr b) {
  auto e = std::make_shared<BoolExpr>();
  e->kind = Kind::kAnd;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

BoolExprPtr BoolExpr::make_or(BoolExprPtr a, BoolExprPtr b) {
  auto e = std::make_shared<BoolExpr>();
  e->kind = Kind::kOr;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

BoolExprPtr BoolExpr::make_not(BoolExprPtr a) {
  auto e = std::make_shared<BoolExpr>();
  e->kind = Kind::kNot;
  e->a = std::move(a);
  return e;
}

std::string BoolExpr::to_string() const {
  switch (kind) {
    case Kind::kCmp:
      return lhs->to_string() + " " + sql::to_string(cmp) + " " +
             rhs->to_string();
    case Kind::kIn: {
      std::string out = attr + " IN (";
      for (std::size_t i = 0; i < in_values.size(); ++i) {
        if (i) out += ", ";
        out += in_values[i].to_string();
      }
      return out + ")";
    }
    case Kind::kAnd:
      return "(" + a->to_string() + " AND " + b->to_string() + ")";
    case Kind::kOr:
      return "(" + a->to_string() + " OR " + b->to_string() + ")";
    case Kind::kNot:
      return "NOT (" + a->to_string() + ")";
  }
  return "?";
}

const char* to_string(AggFn fn) {
  switch (fn) {
    case AggFn::kNone: return "";
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
    case AggFn::kAvg: return "AVG";
  }
  return "?";
}

std::string SelectItem::to_string() const {
  if (fn == AggFn::kNone) return attr;
  std::string out = sql::to_string(fn);
  out += "(";
  out += star ? "*" : arg->to_string();
  return out + ")";
}

bool SelectQuery::has_aggregates() const {
  if (!group_by.empty()) return true;
  for (const auto& it : items)
    if (it.fn != AggFn::kNone) return true;
  return false;
}

std::string SelectQuery::to_string() const {
  std::ostringstream os;
  os << "SELECT ";
  if (select_all()) {
    os << "*";
  } else if (!items.empty()) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) os << ", ";
      os << items[i].to_string();
    }
  } else {
    for (std::size_t i = 0; i < select_attrs.size(); ++i) {
      if (i) os << ", ";
      os << select_attrs[i];
    }
  }
  os << " FROM ";
  if (tables.empty()) {
    os << table;
  } else {
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (i) os << ", ";
      os << tables[i].table;
      if (!tables[i].alias.empty() && tables[i].alias != tables[i].table)
        os << ' ' << tables[i].alias;
    }
  }
  if (where) os << " WHERE " << where->to_string();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      if (i) os << ", ";
      os << group_by[i];
    }
  }
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (std::size_t i = 0; i < order_by.size(); ++i) {
      if (i) os << ", ";
      os << order_by[i].key.to_string();
      if (order_by[i].desc) os << " DESC";
    }
  }
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

}  // namespace adv::sql
