// Recursive-descent parser for the SQL subset.
//
// Grammar (keywords case-insensitive):
//   select    := SELECT select_list FROM table_ref (',' table_ref)*
//                [WHERE or_expr]
//                [GROUP BY attr (',' attr)*]
//                [ORDER BY order_item (',' order_item)*]
//                [LIMIT INT] [';']
//   table_ref := IDENT [IDENT]                      (dataset [alias])
//   select_list := '*' | select_item (',' select_item)*
//   select_item := AGG '(' '*' ')' | AGG '(' scalar ')' | attr
//   order_item := select_item [ASC | DESC]
//   attr      := IDENT ['.' IDENT]                  (optional table alias)
//   AGG       := COUNT | SUM | MIN | MAX | AVG   ('*' only under COUNT)
//   or_expr   := and_expr (OR and_expr)*
//   and_expr  := not_expr (AND not_expr)*
//   not_expr  := NOT not_expr | primary
//   primary   := scalar cmp scalar
//              | IDENT IN '(' literal (',' literal)* ')'
//              | scalar BETWEEN literal AND literal
//              | '(' or_expr ')'
//   scalar    := term (('+'|'-') term)*
//   term      := factor (('*'|'/') factor)*
//   factor    := NUMBER | IDENT | IDENT '(' scalar (',' scalar)* ')'
//              | '(' scalar ')' | '-' factor
#include "common/lexer.h"
#include "common/string_util.h"
#include "sql/ast.h"

namespace adv::sql {

namespace {

bool is_keyword(const Token& t) {
  static const char* kw[] = {"select", "from", "where", "and",   "or",
                             "not",    "between", "in", "asc",   "desc",
                             "group",  "by",      "order", "limit"};
  if (t.kind != TokKind::kIdent) return false;
  for (const char* k : kw)
    if (iequals(t.text, k)) return true;
  return false;
}

// Aggregate function names are not reserved: "MIN" is an attribute unless
// followed by '(' in a select / ORDER BY item.
AggFn agg_fn_from_name(const std::string& name) {
  if (iequals(name, "count")) return AggFn::kCount;
  if (iequals(name, "sum")) return AggFn::kSum;
  if (iequals(name, "min")) return AggFn::kMin;
  if (iequals(name, "max")) return AggFn::kMax;
  if (iequals(name, "avg")) return AggFn::kAvg;
  return AggFn::kNone;
}

class Parser {
 public:
  explicit Parser(TokenCursor& cur) : cur_(cur) {}

  SelectQuery parse() {
    SelectQuery q;
    cur_.expect_ident("SELECT");
    if (!cur_.accept_punct("*")) {
      q.items.push_back(parse_select_item());
      while (cur_.accept_punct(",")) q.items.push_back(parse_select_item());
      bool any_agg = false;
      for (const auto& it : q.items) any_agg = any_agg || it.fn != AggFn::kNone;
      // Plain lists keep select_attrs populated for existing callers.
      if (!any_agg)
        for (const auto& it : q.items) q.select_attrs.push_back(it.attr);
    }
    cur_.expect_ident("FROM");
    q.tables.push_back(parse_table_ref());
    while (cur_.accept_punct(",")) q.tables.push_back(parse_table_ref());
    q.table = q.tables[0].table;
    if (cur_.accept_ident("WHERE")) q.where = parse_or();
    if (cur_.accept_ident("GROUP")) {
      cur_.expect_ident("BY");
      q.group_by.push_back(parse_attr_name());
      while (cur_.accept_punct(",")) q.group_by.push_back(parse_attr_name());
    }
    if (cur_.accept_ident("ORDER")) {
      cur_.expect_ident("BY");
      q.order_by.push_back(parse_order_item());
      while (cur_.accept_punct(",")) q.order_by.push_back(parse_order_item());
    }
    if (cur_.accept_ident("LIMIT")) {
      const Token& t = cur_.peek();
      if (t.kind != TokKind::kInt || t.int_value < 0)
        cur_.fail("expected non-negative integer after LIMIT, found '" +
                  t.text + "'");
      q.limit = t.int_value;
      cur_.next();
    }
    cur_.accept_punct(";");
    if (!cur_.at_end())
      cur_.fail("unexpected trailing input after query: '" +
                cur_.peek().text + "'");
    return q;
  }

 private:
  SelectItem parse_select_item() {
    SelectItem it;
    const Token t = cur_.peek();
    if (t.kind == TokKind::kIdent && !is_keyword(t) &&
        agg_fn_from_name(t.text) != AggFn::kNone) {
      std::size_t save = cur_.pos();
      cur_.next();
      if (cur_.accept_punct("(")) {
        it.fn = agg_fn_from_name(t.text);
        if (cur_.accept_punct("*")) {
          if (it.fn != AggFn::kCount)
            cur_.fail(std::string(sql::to_string(it.fn)) +
                      "(*) is not valid — only COUNT(*) takes '*'");
          it.star = true;
        } else {
          it.arg = parse_scalar();
        }
        cur_.expect_punct(")");
        return it;
      }
      cur_.set_pos(save);
    }
    it.attr = parse_attr_name();
    return it;
  }

  OrderItem parse_order_item() {
    OrderItem o;
    o.key = parse_select_item();
    if (cur_.accept_ident("DESC")) o.desc = true;
    else cur_.accept_ident("ASC");
    return o;
  }

  TableRef parse_table_ref() {
    TableRef ref;
    ref.table = cur_.expect_any_ident("dataset name after FROM").text;
    const Token& t = cur_.peek();
    if (t.kind == TokKind::kIdent && !is_keyword(t)) {
      ref.alias = t.text;
      cur_.next();
    } else {
      ref.alias = ref.table;
    }
    return ref;
  }

  // IDENT or IDENT '.' IDENT (qualified by a table alias).
  std::string parse_attr_name() {
    const Token& t = cur_.peek();
    if (t.kind != TokKind::kIdent || is_keyword(t))
      cur_.fail("expected attribute name, found '" + t.text + "'");
    cur_.next();
    std::string name = t.text;
    if (cur_.accept_punct(".")) {
      const Token& f = cur_.peek();
      if (f.kind != TokKind::kIdent || is_keyword(f))
        cur_.fail("expected attribute name after '" + name + ".', found '" +
                  f.text + "'");
      cur_.next();
      name += "." + f.text;
    }
    return name;
  }

  BoolExprPtr parse_or() {
    BoolExprPtr e = parse_and();
    while (cur_.accept_ident("OR")) e = BoolExpr::make_or(e, parse_and());
    return e;
  }

  BoolExprPtr parse_and() {
    BoolExprPtr e = parse_not();
    while (cur_.accept_ident("AND")) e = BoolExpr::make_and(e, parse_not());
    return e;
  }

  BoolExprPtr parse_not() {
    if (cur_.accept_ident("NOT")) return BoolExpr::make_not(parse_not());
    return parse_primary();
  }

  BoolExprPtr parse_primary() {
    // `(` is ambiguous: a parenthesized boolean or a parenthesized scalar on
    // the left of a comparison.  Try the comparison interpretation first and
    // backtrack on failure.
    if (cur_.peek().is_punct("(")) {
      std::size_t save = cur_.pos();
      try {
        return parse_comparison();
      } catch (const ParseError&) {
        cur_.set_pos(save);
      }
      cur_.expect_punct("(");
      BoolExprPtr e = parse_or();
      cur_.expect_punct(")");
      return e;
    }
    return parse_comparison();
  }

  BoolExprPtr parse_comparison() {
    ScalarPtr lhs = parse_scalar();
    const Token& t = cur_.peek();
    if (t.is_ident("IN")) {
      if (lhs->kind != Scalar::Kind::kAttr)
        cur_.fail("IN requires an attribute on its left-hand side");
      cur_.next();
      cur_.expect_punct("(");
      std::vector<Value> vals;
      vals.push_back(parse_literal());
      while (cur_.accept_punct(",")) vals.push_back(parse_literal());
      cur_.expect_punct(")");
      return BoolExpr::make_in(lhs->name, std::move(vals));
    }
    if (t.is_ident("BETWEEN")) {
      cur_.next();
      Value lo = parse_literal();
      cur_.expect_ident("AND");
      Value hi = parse_literal();
      // A BETWEEN x AND y  ==  A >= x AND A <= y.
      return BoolExpr::make_and(
          BoolExpr::make_cmp(CmpOp::kGe, lhs, Scalar::make_literal(lo)),
          BoolExpr::make_cmp(CmpOp::kLe, lhs, Scalar::make_literal(hi)));
    }
    CmpOp op;
    if (t.is_punct("<")) op = CmpOp::kLt;
    else if (t.is_punct("<=")) op = CmpOp::kLe;
    else if (t.is_punct(">")) op = CmpOp::kGt;
    else if (t.is_punct(">=")) op = CmpOp::kGe;
    else if (t.is_punct("=") || t.is_punct("==")) op = CmpOp::kEq;
    else if (t.is_punct("<>") || t.is_punct("!=")) op = CmpOp::kNe;
    else {
      cur_.fail("expected comparison operator, IN, or BETWEEN, found '" +
                t.text + "'");
    }
    cur_.next();
    ScalarPtr rhs = parse_scalar();
    return BoolExpr::make_cmp(op, lhs, rhs);
  }

  Value parse_literal() {
    bool neg = cur_.accept_punct("-");
    const Token& t = cur_.peek();
    if (t.kind == TokKind::kInt) {
      cur_.next();
      return Value(neg ? -t.int_value : t.int_value);
    }
    if (t.kind == TokKind::kFloat) {
      cur_.next();
      return Value(neg ? -t.float_value : t.float_value);
    }
    cur_.fail("expected numeric literal, found '" + t.text + "'");
  }

  ScalarPtr parse_scalar() {
    ScalarPtr e = parse_term();
    for (;;) {
      if (cur_.peek().is_punct("+")) {
        cur_.next();
        e = Scalar::make_arith('+', e, parse_term());
      } else if (cur_.peek().is_punct("-")) {
        cur_.next();
        e = Scalar::make_arith('-', e, parse_term());
      } else {
        return e;
      }
    }
  }

  ScalarPtr parse_term() {
    ScalarPtr e = parse_factor();
    for (;;) {
      if (cur_.peek().is_punct("*")) {
        cur_.next();
        e = Scalar::make_arith('*', e, parse_factor());
      } else if (cur_.peek().is_punct("/")) {
        cur_.next();
        e = Scalar::make_arith('/', e, parse_factor());
      } else {
        return e;
      }
    }
  }

  ScalarPtr parse_factor() {
    const Token& t = cur_.peek();
    if (t.kind == TokKind::kInt) {
      cur_.next();
      return Scalar::make_literal(Value(t.int_value));
    }
    if (t.kind == TokKind::kFloat) {
      cur_.next();
      return Scalar::make_literal(Value(t.float_value));
    }
    if (t.is_punct("-")) {
      cur_.next();
      ScalarPtr inner = parse_factor();
      // Fold a negated numeric literal into a literal.
      if (inner->kind == Scalar::Kind::kLiteral) {
        const Value& v = inner->literal;
        return Scalar::make_literal(v.is_int() ? Value(-v.as_int())
                                               : Value(-v.as_double()));
      }
      return Scalar::make_arith('-', Scalar::make_literal(Value(int64_t{0})),
                                inner);
    }
    if (t.is_punct("(")) {
      cur_.next();
      ScalarPtr e = parse_scalar();
      cur_.expect_punct(")");
      return e;
    }
    if (t.kind == TokKind::kIdent && !is_keyword(t)) {
      cur_.next();
      if (cur_.accept_punct("(")) {
        // Function call, possibly zero-argument.
        std::vector<ScalarPtr> args;
        if (!cur_.accept_punct(")")) {
          args.push_back(parse_scalar());
          while (cur_.accept_punct(",")) args.push_back(parse_scalar());
          cur_.expect_punct(")");
        }
        return Scalar::make_call(t.text, std::move(args));
      }
      std::string name = t.text;
      if (cur_.accept_punct(".")) {
        const Token& f = cur_.peek();
        if (f.kind != TokKind::kIdent || is_keyword(f))
          cur_.fail("expected attribute name after '" + name +
                    ".', found '" + f.text + "'");
        cur_.next();
        name += "." + f.text;
      }
      return Scalar::make_attr(name);
    }
    cur_.fail("expected scalar expression, found '" + t.text + "'");
  }

  TokenCursor& cur_;
};

}  // namespace

SelectQuery parse_select(const std::string& text) {
  TokenCursor cur(tokenize(text));
  Parser p(cur);
  return p.parse();
}

}  // namespace adv::sql
