// Abstract syntax of the SQL subset (paper Figure 1):
//
//   SELECT <data elements | *>
//   FROM <dataset name>
//   WHERE <expression> AND Filter(<data element>)
//
// Supported WHERE forms: comparisons between scalar expressions (attributes,
// numeric literals, arithmetic, user-defined function calls), IN lists,
// BETWEEN, AND / OR / NOT.  Joins, aggregates and GROUP BY are intentionally
// not supported — the tool provides subsetting only (paper §2.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace adv::sql {

enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

const char* to_string(CmpOp op);

struct Scalar;
using ScalarPtr = std::shared_ptr<const Scalar>;

// Scalar-valued expression.
struct Scalar {
  enum class Kind : uint8_t { kLiteral, kAttr, kCall, kArith };

  Kind kind = Kind::kLiteral;
  Value literal;                  // kLiteral
  std::string name;               // kAttr: attribute; kCall: function name
  std::vector<ScalarPtr> args;    // kCall arguments
  char op = '+';                  // kArith
  ScalarPtr lhs, rhs;             // kArith

  static ScalarPtr make_literal(Value v);
  static ScalarPtr make_attr(std::string name);
  static ScalarPtr make_call(std::string name, std::vector<ScalarPtr> args);
  static ScalarPtr make_arith(char op, ScalarPtr lhs, ScalarPtr rhs);

  std::string to_string() const;
};

struct BoolExpr;
using BoolExprPtr = std::shared_ptr<const BoolExpr>;

// Boolean-valued predicate.
struct BoolExpr {
  enum class Kind : uint8_t { kCmp, kIn, kAnd, kOr, kNot };

  Kind kind = Kind::kCmp;
  CmpOp cmp = CmpOp::kLt;         // kCmp
  ScalarPtr lhs, rhs;             // kCmp
  std::string attr;               // kIn: attribute name
  std::vector<Value> in_values;   // kIn
  BoolExprPtr a, b;               // kAnd / kOr (b unused by kNot)

  static BoolExprPtr make_cmp(CmpOp op, ScalarPtr lhs, ScalarPtr rhs);
  static BoolExprPtr make_in(std::string attr, std::vector<Value> values);
  static BoolExprPtr make_and(BoolExprPtr a, BoolExprPtr b);
  static BoolExprPtr make_or(BoolExprPtr a, BoolExprPtr b);
  static BoolExprPtr make_not(BoolExprPtr a);

  std::string to_string() const;
};

// A parsed SELECT statement.
struct SelectQuery {
  std::vector<std::string> select_attrs;  // empty means SELECT *
  std::string table;
  BoolExprPtr where;  // null when there is no WHERE clause

  bool select_all() const { return select_attrs.empty(); }

  std::string to_string() const;
};

// Parses one SELECT statement (a trailing ';' is allowed).
// Throws ParseError on malformed input.
SelectQuery parse_select(const std::string& text);

}  // namespace adv::sql
