// Abstract syntax of the SQL subset (paper Figure 1):
//
//   SELECT <data elements | *>
//   FROM <dataset name>
//   WHERE <expression> AND Filter(<data element>)
//
// Supported WHERE forms: comparisons between scalar expressions (attributes,
// numeric literals, arithmetic, user-defined function calls), IN lists,
// BETWEEN, AND / OR / NOT.  Beyond the paper's subsetting-only surface
// (§2.1), the select list also accepts aggregates (COUNT/SUM/MIN/MAX/AVG)
// with GROUP BY, and ORDER BY ... LIMIT top-k — evaluated inside the
// extraction workers (docs/AGGREGATION.md).  FROM accepts up to two
// datasets with optional aliases; attributes may be qualified as
// `alias.attr`, and two-dataset queries are equi-joins on shared implicit
// attributes (docs/LAYOUTS.md §joins, api/join_query.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace adv::sql {

enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

const char* to_string(CmpOp op);

struct Scalar;
using ScalarPtr = std::shared_ptr<const Scalar>;

// Scalar-valued expression.
struct Scalar {
  enum class Kind : uint8_t { kLiteral, kAttr, kCall, kArith };

  Kind kind = Kind::kLiteral;
  Value literal;                  // kLiteral
  std::string name;               // kAttr: attribute; kCall: function name
  std::vector<ScalarPtr> args;    // kCall arguments
  char op = '+';                  // kArith
  ScalarPtr lhs, rhs;             // kArith

  static ScalarPtr make_literal(Value v);
  static ScalarPtr make_attr(std::string name);
  static ScalarPtr make_call(std::string name, std::vector<ScalarPtr> args);
  static ScalarPtr make_arith(char op, ScalarPtr lhs, ScalarPtr rhs);

  std::string to_string() const;
};

struct BoolExpr;
using BoolExprPtr = std::shared_ptr<const BoolExpr>;

// Boolean-valued predicate.
struct BoolExpr {
  enum class Kind : uint8_t { kCmp, kIn, kAnd, kOr, kNot };

  Kind kind = Kind::kCmp;
  CmpOp cmp = CmpOp::kLt;         // kCmp
  ScalarPtr lhs, rhs;             // kCmp
  std::string attr;               // kIn: attribute name
  std::vector<Value> in_values;   // kIn
  BoolExprPtr a, b;               // kAnd / kOr (b unused by kNot)

  static BoolExprPtr make_cmp(CmpOp op, ScalarPtr lhs, ScalarPtr rhs);
  static BoolExprPtr make_in(std::string attr, std::vector<Value> values);
  static BoolExprPtr make_and(BoolExprPtr a, BoolExprPtr b);
  static BoolExprPtr make_or(BoolExprPtr a, BoolExprPtr b);
  static BoolExprPtr make_not(BoolExprPtr a);

  std::string to_string() const;
};

enum class AggFn : uint8_t { kNone, kCount, kSum, kMin, kMax, kAvg };

const char* to_string(AggFn fn);

// One SELECT-list entry: a plain attribute (fn == kNone) or an aggregate
// over a scalar expression.  COUNT(*) has star == true and a null arg.
struct SelectItem {
  AggFn fn = AggFn::kNone;
  std::string attr;  // fn == kNone: the attribute name
  ScalarPtr arg;     // aggregate argument (null for COUNT(*))
  bool star = false;

  std::string to_string() const;
};

// One ORDER BY entry: a plain attribute or an aggregate that must match a
// select-list item (matched by canonical spelling at bind time).
struct OrderItem {
  SelectItem key;
  bool desc = false;
};

// One FROM-list entry.  `alias` defaults to the dataset name when the query
// does not spell one.
struct TableRef {
  std::string table;
  std::string alias;
};

// A parsed SELECT statement.
struct SelectQuery {
  std::vector<std::string> select_attrs;  // empty means SELECT *
  // Full select list when the query spells one out (parallel to
  // select_attrs for plain lists; select_attrs stays empty when any item
  // is an aggregate).
  std::vector<SelectItem> items;
  std::string table;             // tables[0].table, kept for existing callers
  std::vector<TableRef> tables;  // the full FROM list (size 1 or 2)
  BoolExprPtr where;  // null when there is no WHERE clause
  std::vector<std::string> group_by;  // empty when there is no GROUP BY
  std::vector<OrderItem> order_by;    // empty when there is no ORDER BY
  int64_t limit = -1;                 // -1 when there is no LIMIT

  bool select_all() const { return select_attrs.empty() && items.empty(); }

  // True when FROM names more than one dataset (an implicit-attribute
  // equi-join; executed by api/join_query, not by the single-table binder).
  bool is_join() const { return tables.size() > 1; }

  // True when the query aggregates: any aggregate select item or a GROUP BY
  // clause (GROUP BY over plain attributes is distinct-style grouping).
  bool has_aggregates() const;

  std::string to_string() const;
};

// Parses one SELECT statement (a trailing ';' is allowed).
// Throws ParseError on malformed input.
SelectQuery parse_select(const std::string& text);

}  // namespace adv::sql
