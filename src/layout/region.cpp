#include "layout/region.h"

#include "common/error.h"

namespace adv::layout {

namespace {

DataType type_of(const std::string& attr, const meta::Schema& schema,
                 const std::vector<meta::Attribute>& local_attrs) {
  int idx = schema.find(attr);
  if (idx >= 0) return schema.at(static_cast<std::size_t>(idx)).type;
  for (const auto& a : local_attrs)
    if (a.name == attr) return a.type;
  throw ValidationError("layout references unknown attribute '" + attr + "'");
}

EvalRange eval_range(const meta::LoopRange& r, const meta::VarEnv& env) {
  EvalRange out;
  out.lo = r.lo->eval(env);
  out.hi = r.hi->eval(env);
  out.step = r.step ? r.step->eval(env) : 1;
  if (out.step <= 0)
    throw ValidationError("loop step must be positive (got " +
                          std::to_string(out.step) + ")");
  return out;
}

struct Walker {
  const meta::Schema& schema;
  const std::vector<meta::Attribute>& local_attrs;
  const meta::VarEnv& env;
  std::vector<Region> regions;

  // Returns the byte size of `node` and appends regions found inside it.
  // `path` carries enclosing structure loops; `base` the running offset.
  uint64_t walk(const meta::LayoutNode& node, std::vector<PathLoop>& path,
                uint64_t base) {
    if (node.kind == meta::LayoutNode::Kind::kFields) {
      // A field run at structure level: per-chunk header/padding bytes
      // (validated to be file-local attributes).  Contributes size only.
      uint64_t bytes = 0;
      for (const auto& name : node.fields)
        bytes += size_of(type_of(name, schema, local_attrs));
      return bytes;
    }

    EvalRange range = eval_range(node.range, env);

    // Classify the loop body: a record loop holds fields only; any loop in
    // the body makes this a structure loop (whose naked field runs are
    // headers).
    bool has_fields = false, has_loops = false;
    for (const auto& item : node.body) {
      if (item.kind == meta::LayoutNode::Kind::kFields) has_fields = true;
      else has_loops = true;
    }
    if (has_loops) {
      if (node.colmajor)
        throw ValidationError("COLMAJOR loop '" + node.loop_ident +
                              "' contains nested loops");
      has_fields = false;
    }

    if (has_fields && node.colmajor) {
      // Column-major record loop: each field is stored as its own
      // contiguous array over the record span.  Lower to one region per
      // field — a single-field record of size_of(type) bytes whose base is
      // offset past the preceding arrays — so the planner, zone map, and
      // all kernel tiers see ordinary aligned chunks (that happen to share
      // the record loop) and unread columns cost zero I/O.
      uint64_t span = static_cast<uint64_t>(range.count());
      uint64_t off = 0;
      for (const auto& item : node.body) {
        if (item.kind != meta::LayoutNode::Kind::kFields)
          throw ValidationError("loop '" + node.loop_ident +
                                "' mixes fields and loops");
        for (const auto& name : item.fields) {
          Region r;
          r.path = path;
          r.record_ident = node.loop_ident;
          r.record_range = range;
          r.base_offset = base + off;
          Field f;
          f.attr = name;
          f.type = type_of(name, schema, local_attrs);
          f.intra_offset = 0;
          r.record_bytes = static_cast<uint32_t>(size_of(f.type));
          off += span * size_of(f.type);
          r.fields.push_back(std::move(f));
          regions.push_back(std::move(r));
        }
      }
      return off;
    }

    if (has_fields) {
      // Record loop: body is field runs only.
      Region r;
      r.path = path;
      r.record_ident = node.loop_ident;
      r.record_range = range;
      r.base_offset = base;
      uint32_t off = 0;
      for (const auto& item : node.body) {
        if (item.kind != meta::LayoutNode::Kind::kFields)
          throw ValidationError("loop '" + node.loop_ident +
                                "' mixes fields and loops");
        for (const auto& name : item.fields) {
          Field f;
          f.attr = name;
          f.type = type_of(name, schema, local_attrs);
          f.intra_offset = off;
          off += static_cast<uint32_t>(size_of(f.type));
          r.fields.push_back(std::move(f));
        }
      }
      r.record_bytes = off;
      uint64_t total = r.chunk_bytes();
      regions.push_back(std::move(r));
      return total;
    }

    // Structure loop: first compute the body size (one iteration), then
    // record the regions inside with this loop on their path.
    // Walk children once, accumulating intra-iteration offsets.
    PathLoop pl;
    pl.ident = node.loop_ident;
    pl.range = range;
    pl.stride = 0;  // patched below once the body size is known

    path.push_back(pl);
    std::size_t first_region = regions.size();
    uint64_t body_bytes = 0;
    for (const auto& item : node.body)
      body_bytes += walk(item, path, base + body_bytes);
    path.pop_back();

    // Patch the stride of this loop in every region discovered inside it.
    std::size_t depth = path.size();
    for (std::size_t i = first_region; i < regions.size(); ++i)
      regions[i].path[depth].stride = body_bytes;

    return body_bytes * static_cast<uint64_t>(range.count());
  }
};

}  // namespace

const Field* Region::find_field(const std::string& attr) const {
  for (const auto& f : fields)
    if (f.attr == attr) return &f;
  return nullptr;
}

std::vector<Region> analyze_regions(
    const std::vector<meta::LayoutNode>& dataspace,
    const meta::Schema& schema,
    const std::vector<meta::Attribute>& local_attrs,
    const meta::VarEnv& env) {
  Walker w{schema, local_attrs, env, {}};
  std::vector<PathLoop> path;
  uint64_t base = 0;
  for (const auto& node : dataspace) base += w.walk(node, path, base);
  return std::move(w.regions);
}

uint64_t dataspace_bytes(const std::vector<meta::LayoutNode>& dataspace,
                         const meta::Schema& schema,
                         const std::vector<meta::Attribute>& local_attrs,
                         const meta::VarEnv& env) {
  Walker w{schema, local_attrs, env, {}};
  std::vector<PathLoop> path;
  uint64_t total = 0;
  for (const auto& node : dataspace) total += w.walk(node, path, total);
  return total;
}

}  // namespace adv::layout
