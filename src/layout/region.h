// Loop-nest analysis of a leaf dataset's DATASPACE.
//
// A validated DATASPACE is a tree whose inner loops ("structure loops")
// contain only loops and whose innermost loops ("record loops") contain only
// scalar fields.  For one concrete file (a bound variable environment), this
// module flattens the tree into *regions*: one region per record loop, with
//
//   * the path of enclosing structure loops, each with its evaluated bounds
//     and its byte stride (the size of one iteration of its body),
//   * the base byte offset of the region (sum of preceding siblings),
//   * the record loop's bounds, the byte size of one record, and the field
//     list with intra-record offsets.
//
// The byte offset of the chunk produced by a region under structure-loop
// values v_1..v_k is
//     base + sum_i ((v_i - lo_i) / step_i) * stride_i ,
// and the chunk holds span(record loop) rows of record_bytes each.  This is
// exactly the {File_i, Offset_i, Num_Bytes_i} shape of the paper's aligned
// file chunks (§4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "metadata/model.h"

namespace adv::layout {

// Evaluated inclusive range.
struct EvalRange {
  int64_t lo = 0;
  int64_t hi = -1;
  int64_t step = 1;

  int64_t count() const { return hi < lo ? 0 : (hi - lo) / step + 1; }
  bool contains(int64_t v) const {
    return v >= lo && v <= hi && (v - lo) % step == 0;
  }
  bool operator==(const EvalRange&) const = default;
};

// One structure loop on the path to a record loop.
struct PathLoop {
  std::string ident;
  EvalRange range;
  uint64_t stride = 0;  // bytes advanced per iteration of this loop
};

// One scalar field inside a record.
struct Field {
  std::string attr;
  DataType type = DataType::kFloat32;
  uint32_t intra_offset = 0;  // byte offset within the record
};

// One record loop and its surroundings, fully evaluated for one file.
struct Region {
  std::vector<PathLoop> path;  // outermost first; excludes the record loop
  std::string record_ident;
  EvalRange record_range;
  uint32_t record_bytes = 0;
  uint64_t base_offset = 0;  // offset of the region at all-loop-lower-bounds
  std::vector<Field> fields;

  uint64_t num_rows() const {
    return static_cast<uint64_t>(record_range.count());
  }

  // Bytes the region occupies per full iteration of its record loop.
  uint64_t chunk_bytes() const { return num_rows() * record_bytes; }

  // Finds a field by attribute name; nullptr when not stored here.
  const Field* find_field(const std::string& attr) const;
};

// Flattens `dataspace` for one variable environment.  `lookup_type` resolves
// attribute names to types (schema plus local DATATYPE declarations).
// Throws ValidationError when the dataspace violates the structural
// restrictions (which validated descriptors cannot).
std::vector<Region> analyze_regions(
    const std::vector<meta::LayoutNode>& dataspace,
    const meta::Schema& schema,
    const std::vector<meta::Attribute>& local_attrs,
    const meta::VarEnv& env);

// Total byte size of the file described by `dataspace` under `env`.
uint64_t dataspace_bytes(const std::vector<meta::LayoutNode>& dataspace,
                         const meta::Schema& schema,
                         const std::vector<meta::Attribute>& local_attrs,
                         const meta::VarEnv& env);

}  // namespace adv::layout
