// Scalar data types of virtual-table attributes and the runtime Value that
// carries one attribute of one row.
//
// The meta-data description language (paper §3) declares each schema
// attribute with a C-like type ("short int", "float", ...).  Those map onto
// the fixed-width DataType enum below; every on-disk field is stored in
// native little-endian byte order with exactly size_of(type) bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <variant>

#include "common/error.h"

namespace adv {

enum class DataType : uint8_t {
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kFloat32,
  kFloat64,
};

// Number of bytes one field of this type occupies on disk and in memory.
constexpr std::size_t size_of(DataType t) {
  switch (t) {
    case DataType::kInt8: return 1;
    case DataType::kInt16: return 2;
    case DataType::kInt32: return 4;
    case DataType::kInt64: return 8;
    case DataType::kFloat32: return 4;
    case DataType::kFloat64: return 8;
  }
  return 0;  // unreachable
}

constexpr bool is_integral(DataType t) {
  return t == DataType::kInt8 || t == DataType::kInt16 ||
         t == DataType::kInt32 || t == DataType::kInt64;
}

constexpr bool is_floating(DataType t) { return !is_integral(t); }

// Canonical spelling used when printing schemas and generating code.
std::string to_string(DataType t);

// Parses the descriptor-language type names: "char", "short", "short int",
// "int", "long", "long int", "float", "double", plus the explicit-width
// aliases "int8".."int64", "float32", "float64".  Throws ValidationError on
// an unknown name.
DataType parse_data_type(const std::string& name);

// A single attribute value at runtime.  Integral types widen to int64_t,
// floating types to double; the declared DataType is kept alongside wherever
// the distinction matters (on-disk size, codegen).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }

  int64_t as_int() const {
    if (is_int()) return std::get<int64_t>(v_);
    return static_cast<int64_t>(std::get<double>(v_));
  }
  double as_double() const {
    if (is_double()) return std::get<double>(v_);
    return static_cast<double>(std::get<int64_t>(v_));
  }

  // Numeric comparison with the usual int/double promotion.
  friend bool operator==(const Value& a, const Value& b) {
    if (a.is_int() && b.is_int()) return a.as_int() == b.as_int();
    return a.as_double() == b.as_double();
  }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.is_int() && b.is_int()) return a.as_int() < b.as_int();
    return a.as_double() < b.as_double();
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return b <= a; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  std::string to_string() const;

 private:
  std::variant<int64_t, double> v_;
};

// Decodes one field of type `t` from `bytes` (which must hold at least
// size_of(t) bytes, little-endian / native x86 layout).
Value decode_value(DataType t, const unsigned char* bytes);

// Fast path used by the extraction loop: decodes directly to double.
inline double decode_double(DataType t, const unsigned char* bytes) {
  switch (t) {
    case DataType::kInt8: {
      int8_t v;
      std::memcpy(&v, bytes, sizeof v);
      return static_cast<double>(v);
    }
    case DataType::kInt16: {
      int16_t v;
      std::memcpy(&v, bytes, sizeof v);
      return static_cast<double>(v);
    }
    case DataType::kInt32: {
      int32_t v;
      std::memcpy(&v, bytes, sizeof v);
      return static_cast<double>(v);
    }
    case DataType::kInt64: {
      int64_t v;
      std::memcpy(&v, bytes, sizeof v);
      return static_cast<double>(v);
    }
    case DataType::kFloat32: {
      float v;
      std::memcpy(&v, bytes, sizeof v);
      return static_cast<double>(v);
    }
    case DataType::kFloat64: {
      double v;
      std::memcpy(&v, bytes, sizeof v);
      return v;
    }
  }
  return 0.0;
}

// Encodes a double as type `t` (inverse of decode_double for in-range
// values).  Used by the dataset generators.
inline void encode_double(DataType t, double v, unsigned char* out) {
  switch (t) {
    case DataType::kInt8: {
      int8_t x = static_cast<int8_t>(v);
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kInt16: {
      int16_t x = static_cast<int16_t>(v);
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kInt32: {
      int32_t x = static_cast<int32_t>(v);
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kInt64: {
      int64_t x = static_cast<int64_t>(v);
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kFloat32: {
      float x = static_cast<float>(v);
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kFloat64: {
      std::memcpy(out, &v, sizeof v);
      return;
    }
  }
}

// Encodes `v` as type `t` into `out` (size_of(t) bytes written).
void encode_value(DataType t, const Value& v, unsigned char* out);

}  // namespace adv
