#include "common/kernel_mode.h"

#include "common/env.h"

namespace adv {

KernelMode resolve_kernel_mode(KernelMode configured) {
  if (configured != KernelMode::kAuto) return configured;
  KernelMode m;
  if (kernel_mode_from_name(env_str("ADV_KERNEL_MODE", ""), m) &&
      m != KernelMode::kAuto) {
    return m;
  }
  return KernelMode::kVector;
}

const char* to_string(KernelMode m) {
  switch (m) {
    case KernelMode::kAuto: return "auto";
    case KernelMode::kInterp: return "interp";
    case KernelMode::kVector: return "vector";
    case KernelMode::kJit: return "jit";
  }
  return "auto";
}

bool kernel_mode_from_name(const std::string& name, KernelMode& out) {
  if (name == "auto") out = KernelMode::kAuto;
  else if (name == "interp") out = KernelMode::kInterp;
  else if (name == "vector") out = KernelMode::kVector;
  else if (name == "jit") out = KernelMode::kJit;
  else return false;
  return true;
}

}  // namespace adv
