// Small string helpers shared by the parsers and pretty-printers.
#pragma once

#include <string>
#include <vector>

namespace adv {

std::string to_lower(std::string s);
std::string to_upper(std::string s);

// Case-insensitive equality (ASCII).
bool iequals(const std::string& a, const std::string& b);

std::string trim(const std::string& s);

std::vector<std::string> split(const std::string& s, char sep);

// Joins with `sep` between elements.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-readable byte count ("1.5 MB").
std::string human_bytes(uint64_t bytes);

}  // namespace adv
