#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace adv {

std::string to_lower(std::string s) {
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string to_upper(std::string s) {
  for (char& c : s)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string human_bytes(uint64_t bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace adv
