// RAII file handles and buffered readers/writers over POSIX descriptors.
//
// The data-extraction hot path reads aligned file chunks with positioned
// reads (pread), so a single FileHandle can be shared by code that walks
// several chunks of the same file without seek-state interference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.h"

namespace adv {

// Read-only file opened with open(2).  Move-only.
class FileHandle {
 public:
  FileHandle() = default;
  // Opens `path` for reading; throws IoError on failure.
  explicit FileHandle(const std::string& path);
  ~FileHandle();

  FileHandle(FileHandle&& o) noexcept;
  FileHandle& operator=(FileHandle&& o) noexcept;
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Size of the file in bytes (fstat).
  uint64_t size() const;

  // Reads exactly `n` bytes at absolute `offset` into `out`.
  // Throws IoError on short read or error.
  void pread_exact(void* out, std::size_t n, uint64_t offset) const;

  // Reads up to `n` bytes at `offset`; returns the number of bytes read
  // (0 at EOF).  Throws IoError only on a hard error.
  std::size_t pread_some(void* out, std::size_t n, uint64_t offset) const;

 private:
  int fd_ = -1;
  std::string path_;
};

// Append-only buffered writer used by the dataset generators and minidb
// loader.  Flushes on destruction; call close() to surface late errors.
class BufferedWriter {
 public:
  explicit BufferedWriter(const std::string& path,
                          std::size_t buffer_bytes = 1 << 20);
  ~BufferedWriter();

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  void write(const void* data, std::size_t n);

  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(&v, sizeof v);
  }

  uint64_t bytes_written() const { return bytes_written_; }

  // Flushes and closes; throws IoError if the final flush fails.
  void close();

 private:
  void flush();

  int fd_ = -1;
  std::string path_;
  std::vector<unsigned char> buf_;
  std::size_t used_ = 0;
  uint64_t bytes_written_ = 0;
};

// Whole-file helpers.
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);
uint64_t file_size(const std::string& path);
bool file_exists(const std::string& path);

// Total size in bytes of all regular files under `dir` (recursive).
uint64_t directory_bytes(const std::filesystem::path& dir);

}  // namespace adv
