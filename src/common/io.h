// RAII file handles and buffered readers/writers over POSIX descriptors.
//
// The data-extraction hot path reads aligned file chunks either through a
// read-only memory mapping (the default: extraction decodes straight out of
// the page cache, no copy into a user buffer) or with positioned reads
// (pread, the fallback).  A single FileHandle can be shared by code that
// walks several chunks of the same file without seek-state interference,
// and a process-wide FileCache shares handles across threads so concurrent
// extraction workers do not reopen (and remap) the same files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace adv {

// How extraction reads chunk bytes from data files.
enum class IoMode : uint8_t {
  kAuto,   // resolve from env ADV_IO_MODE ("mmap"/"pread"), default mmap
  kMmap,   // read-only mapping with sequential readahead advice
  kPread,  // positioned reads into per-worker buffers
};

// Resolves kAuto against the ADV_IO_MODE environment variable; other
// values pass through unchanged.
IoMode resolve_io_mode(IoMode mode);

// Read-only file opened with open(2), optionally memory-mapped.  Move-only.
class FileHandle {
 public:
  // Identity + freshness of the file a handle was opened against.  mtime is
  // kept at nanosecond resolution where the platform records it: a same-size
  // rewrite within the same wall-clock second still changes mtime_ns, so
  // FileCache staleness checks catch it (a whole-second mtime would not).
  struct FileId {
    uint64_t dev = 0;
    uint64_t ino = 0;
    uint64_t size = 0;
    int64_t mtime_ns = 0;

    bool operator==(const FileId&) const = default;
  };

  // FileId of the file currently at `path` (stat).  Throws IoError when the
  // path cannot be stat'ed.
  static FileId stat_id(const std::string& path);

  FileHandle() = default;
  // Opens `path` for reading; throws IoError on failure.
  explicit FileHandle(const std::string& path);
  ~FileHandle();

  FileHandle(FileHandle&& o) noexcept;
  FileHandle& operator=(FileHandle&& o) noexcept;
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Size of the file in bytes (fstat).
  uint64_t size() const;

  // Identity captured at open time (fstat on the descriptor), used by
  // FileCache to detect in-place rewrites.
  const FileId& id() const { return id_; }

  // Maps the whole file read-only with POSIX_MADV_SEQUENTIAL |
  // POSIX_MADV_WILLNEED readahead advice.  Returns true on success; false
  // when the file is empty or the platform refuses the mapping (callers
  // fall back to pread).  Idempotent, but NOT thread-safe: map before
  // publishing the handle to other threads (FileCache does this).
  bool map();

  // Base pointer of the mapping, or nullptr when not mapped.  The mapping
  // is immutable and safe to read from any thread.
  const unsigned char* mapped_data() const { return map_; }
  uint64_t mapped_size() const { return map_size_; }

  // Pointer to `n` bytes at `offset` inside the mapping; throws IoError
  // when not mapped or the range runs past end-of-file (the moral
  // equivalent of pread_exact's short-read error).
  const unsigned char* mapped_range(std::size_t n, uint64_t offset) const;

  // Reads exactly `n` bytes at absolute `offset` into `out`.
  // Throws IoError on short read or error.
  void pread_exact(void* out, std::size_t n, uint64_t offset) const;

  // Reads up to `n` bytes at `offset`; returns the number of bytes read
  // (0 at EOF).  Throws IoError only on a hard error.
  std::size_t pread_some(void* out, std::size_t n, uint64_t offset) const;

 private:
  int fd_ = -1;
  std::string path_;
  FileId id_{};
  unsigned char* map_ = nullptr;
  uint64_t map_size_ = 0;
};

// Process-wide cache of shared read-only FileHandles, keyed by path.  All
// extraction workers of all virtual nodes funnel through it, so a file
// scanned by N threads is opened (and mapped) once instead of N times.
// Handles are returned as shared_ptr<const FileHandle>: FileHandle's read
// API is const and thread-safe, and a handle stays alive while any worker
// still holds it even if the cache evicts it meanwhile.
class FileCache {
 public:
  // The process-wide instance.
  static FileCache& instance();

  explicit FileCache(std::size_t capacity = 512) : capacity_(capacity) {}

  // Returns the cached handle for `path`, opening (and, when `mode`
  // resolves to kMmap, mapping) it on first use.  A handle opened without
  // a mapping is upgraded in place when a kMmap request arrives later.  A
  // cache hit is revalidated against the file's current FileId
  // (dev/inode/size/nanosecond mtime): a rewritten file — even same-size,
  // same-second — gets a fresh handle instead of stale cached bytes.
  // Throws IoError when the file cannot be opened.
  std::shared_ptr<const FileHandle> open(const std::string& path,
                                         IoMode mode = IoMode::kAuto);

  // Drops every cached handle (in-flight shared_ptrs stay valid).  Call
  // after rewriting data files so stale handles are not served.
  void clear();

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::unordered_map<std::string, std::shared_ptr<const FileHandle>> cache_;
};

// Append-only buffered writer used by the dataset generators and minidb
// loader.  Flushes on destruction; call close() to surface late errors.
class BufferedWriter {
 public:
  explicit BufferedWriter(const std::string& path,
                          std::size_t buffer_bytes = 1 << 20);
  ~BufferedWriter();

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  void write(const void* data, std::size_t n);

  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(&v, sizeof v);
  }

  uint64_t bytes_written() const { return bytes_written_; }

  // Flushes and closes; throws IoError if the final flush fails.
  void close();

 private:
  void flush();

  int fd_ = -1;
  std::string path_;
  std::vector<unsigned char> buf_;
  std::size_t used_ = 0;
  uint64_t bytes_written_ = 0;
};

// Whole-file helpers.
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);
uint64_t file_size(const std::string& path);
bool file_exists(const std::string& path);

// Total size in bytes of all regular files under `dir` (recursive).
uint64_t directory_bytes(const std::filesystem::path& dir);

}  // namespace adv
