// Kernel-engine selection for the extraction hot path.
//
// The extractor runs one of three inner-loop engines per AFC (see
// docs/KERNELS.md):
//   interp  row-at-a-time interpreted decode + predicate eval (the
//           original engine; also the dq differential reference)
//   vector  columnar batch decode + branch-free mask predicate passes
//   jit     per-plan C++ emitted, compiled, dlopen'ed extract+filter
//           kernels, falling back to `vector` when no compiler is
//           available, compilation fails, or the predicate uses a UDF
// kAuto resolves through the ADV_KERNEL_MODE environment variable
// ("interp" | "vector" | "jit"), defaulting to vector.
#pragma once

#include <cstdint>
#include <string>

namespace adv {

enum class KernelMode : uint8_t { kAuto, kInterp, kVector, kJit };

// Resolves kAuto via ADV_KERNEL_MODE; any explicit mode passes through.
KernelMode resolve_kernel_mode(KernelMode configured = KernelMode::kAuto);

// Spec name ("auto" | "interp" | "vector" | "jit").
const char* to_string(KernelMode m);

// Parses a spec name; returns false (out untouched) on an unknown name.
bool kernel_mode_from_name(const std::string& name, KernelMode& out);

}  // namespace adv
