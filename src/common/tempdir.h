// RAII temporary directory for tests, examples, and benchmarks.
#pragma once

#include <filesystem>
#include <string>

namespace adv {

// Creates a unique directory under $TMPDIR (default /tmp) on construction
// and removes it recursively on destruction.
class TempDir {
 public:
  // `tag` becomes part of the directory name for easier debugging.
  explicit TempDir(const std::string& tag = "advirt");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

  // Path of an entry inside the directory.
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

  // Creates a subdirectory (and parents) and returns its path.
  std::string subdir(const std::string& name) const;

  // Disarm: keep the directory on destruction (for debugging).
  void keep() { keep_ = true; }

 private:
  std::filesystem::path path_;
  bool keep_ = false;
};

}  // namespace adv
