// Error hierarchy used across the advirt library.
//
// The library reports unrecoverable conditions (malformed descriptors,
// malformed SQL, I/O failures, internal invariant violations) via exceptions
// derived from adv::Error.  Call sites that want to probe for failure (tests,
// the STORM query service returning errors to remote clients) catch
// adv::Error and inspect what().
#pragma once

#include <stdexcept>
#include <string>

namespace adv {

// Root of all advirt exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

// Lexical or syntactic error in a meta-data descriptor or SQL query text.
// Carries the 1-based line/column where the problem was detected.
class ParseError : public Error {
 public:
  ParseError(const std::string& msg, int line, int column)
      : Error(msg + " (at line " + std::to_string(line) + ", column " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

// Semantic error: the input parsed but is inconsistent (unknown attribute,
// mismatched loop ranges, a layout the AFC model cannot serve, ...).
class ValidationError : public Error {
 public:
  using Error::Error;
};

// Error binding or executing a query (unknown table, type mismatch in a
// predicate, unknown user-defined function, ...).
class QueryError : public Error {
 public:
  using Error::Error;
};

// Filesystem / device error.  Wraps errno-style detail in the message.
class IoError : public Error {
 public:
  using Error::Error;
};

// Internal invariant violation: indicates a bug in advirt itself.
class InternalError : public Error {
 public:
  using Error::Error;
};

// A cooperatively-cancelled operation unwinding (explicit CancelToken
// cancel or an expired deadline).  Not a failure of the work itself: the
// STORM node runner reports it as the node's error string and the query
// service maps it back to the client's cancel/deadline outcome.
class CancelledError : public Error {
 public:
  using Error::Error;
};

// Throws InternalError when `cond` is false.  Used for invariants that
// must hold regardless of user input.
inline void check_internal(bool cond, const std::string& what) {
  if (!cond) throw InternalError("internal invariant violated: " + what);
}

// Coarse classification of an error, for carrying failure categories across
// layers that cannot keep the exception object alive (per-node stats, wire
// frames, scheduler outcomes).
enum class ErrorKind {
  kNone = 0,   // no error
  kParse,
  kValidation,
  kQuery,
  kIo,
  kCancelled,
  kInternal,
  kOther,      // not an adv::Error (std::exception from below)
};

inline const char* error_kind_name(ErrorKind k) {
  switch (k) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kValidation: return "validation";
    case ErrorKind::kQuery: return "query";
    case ErrorKind::kIo: return "io";
    case ErrorKind::kCancelled: return "cancelled";
    case ErrorKind::kInternal: return "internal";
    case ErrorKind::kOther: return "other";
  }
  return "?";
}

// Maps a caught exception to its kind.  Ordered most-derived-first so a
// CancelledError is never misreported as a generic Error.
inline ErrorKind classify_error(const std::exception& e) {
  if (dynamic_cast<const CancelledError*>(&e)) return ErrorKind::kCancelled;
  if (dynamic_cast<const ParseError*>(&e)) return ErrorKind::kParse;
  if (dynamic_cast<const ValidationError*>(&e)) return ErrorKind::kValidation;
  if (dynamic_cast<const QueryError*>(&e)) return ErrorKind::kQuery;
  if (dynamic_cast<const IoError*>(&e)) return ErrorKind::kIo;
  if (dynamic_cast<const InternalError*>(&e)) return ErrorKind::kInternal;
  if (dynamic_cast<const Error*>(&e)) return ErrorKind::kOther;
  return ErrorKind::kOther;
}

}  // namespace adv
