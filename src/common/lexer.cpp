#include "common/lexer.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace adv {

bool Token::is_ident(const std::string& name) const {
  return kind == TokKind::kIdent && iequals(text, name);
}

namespace {

// Longest-match-first punctuation table.
const char* kMultiPunct[] = {">=", "<=", "<>", "!=", "==", "&&", "||"};
const char* kSinglePunct = "{}[]()<>=+-*/%,:;.$!&|";

struct Scanner {
  const std::string& in;
  std::size_t pos = 0;
  int line = 1;
  int col = 1;

  explicit Scanner(const std::string& s) : in(s) {}

  bool done() const { return pos >= in.size(); }
  char cur() const { return in[pos]; }
  char lookahead(std::size_t k = 1) const {
    return pos + k < in.size() ? in[pos + k] : '\0';
  }

  void advance() {
    if (in[pos] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++pos;
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (!done() && std::isspace(static_cast<unsigned char>(cur())))
        advance();
      if (done()) return;
      // Line comments: "//" or "#".
      if (cur() == '#' || (cur() == '/' && lookahead() == '/')) {
        while (!done() && cur() != '\n') advance();
        continue;
      }
      // Block comment: "{*" ... "*}".
      if (cur() == '{' && lookahead() == '*') {
        int start_line = line, start_col = col;
        advance();
        advance();
        for (;;) {
          if (done())
            throw ParseError("unterminated {* comment", start_line, start_col);
          if (cur() == '*' && lookahead() == '}') {
            advance();
            advance();
            break;
          }
          advance();
        }
        continue;
      }
      return;
    }
  }
};

}  // namespace

std::vector<Token> tokenize(const std::string& input) {
  std::vector<Token> out;
  Scanner s(input);
  for (;;) {
    s.skip_ws_and_comments();
    Token t;
    t.line = s.line;
    t.column = s.col;
    if (s.done()) {
      t.kind = TokKind::kEnd;
      out.push_back(t);
      return out;
    }
    char c = s.cur();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      t.kind = TokKind::kIdent;
      while (!s.done() && (std::isalnum(static_cast<unsigned char>(s.cur())) ||
                           s.cur() == '_')) {
        t.text.push_back(s.cur());
        s.advance();
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(s.lookahead())))) {
      std::string num;
      bool is_float = false;
      while (!s.done() && std::isdigit(static_cast<unsigned char>(s.cur()))) {
        num.push_back(s.cur());
        s.advance();
      }
      if (!s.done() && s.cur() == '.' &&
          std::isdigit(static_cast<unsigned char>(s.lookahead()))) {
        is_float = true;
        num.push_back('.');
        s.advance();
        while (!s.done() && std::isdigit(static_cast<unsigned char>(s.cur()))) {
          num.push_back(s.cur());
          s.advance();
        }
      }
      if (!s.done() && (s.cur() == 'e' || s.cur() == 'E')) {
        char nxt = s.lookahead();
        char nxt2 = s.lookahead(2);
        if (std::isdigit(static_cast<unsigned char>(nxt)) ||
            ((nxt == '+' || nxt == '-') &&
             std::isdigit(static_cast<unsigned char>(nxt2)))) {
          is_float = true;
          num.push_back(s.cur());
          s.advance();
          if (s.cur() == '+' || s.cur() == '-') {
            num.push_back(s.cur());
            s.advance();
          }
          while (!s.done() &&
                 std::isdigit(static_cast<unsigned char>(s.cur()))) {
            num.push_back(s.cur());
            s.advance();
          }
        }
      }
      t.text = num;
      if (is_float) {
        t.kind = TokKind::kFloat;
        t.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = TokKind::kInt;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
        t.float_value = static_cast<double>(t.int_value);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      t.kind = TokKind::kString;
      s.advance();
      while (!s.done() && s.cur() != quote) {
        t.text.push_back(s.cur());
        s.advance();
      }
      if (s.done())
        throw ParseError("unterminated string literal", t.line, t.column);
      s.advance();  // closing quote
      out.push_back(std::move(t));
      continue;
    }
    // Multi-char punctuation, greedy.
    bool matched = false;
    for (const char* mp : kMultiPunct) {
      if (c == mp[0] && s.lookahead() == mp[1]) {
        t.kind = TokKind::kPunct;
        t.text = mp;
        s.advance();
        s.advance();
        out.push_back(std::move(t));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::strchr(kSinglePunct, c)) {
      t.kind = TokKind::kPunct;
      t.text = std::string(1, c);
      s.advance();
      out.push_back(std::move(t));
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", s.line,
                     s.col);
  }
}

bool TokenCursor::accept_punct(const char* p) {
  if (peek().is_punct(p)) {
    next();
    return true;
  }
  return false;
}

bool TokenCursor::accept_ident(const std::string& kw) {
  if (peek().is_ident(kw)) {
    next();
    return true;
  }
  return false;
}

const Token& TokenCursor::expect_punct(const char* p) {
  if (!peek().is_punct(p))
    fail(std::string("expected '") + p + "', found '" + peek().text + "'");
  return next();
}

const Token& TokenCursor::expect_ident(const std::string& kw) {
  if (!peek().is_ident(kw))
    fail("expected keyword '" + kw + "', found '" + peek().text + "'");
  return next();
}

const Token& TokenCursor::expect_any_ident(const char* what) {
  if (peek().kind != TokKind::kIdent)
    fail(std::string("expected ") + what + ", found '" + peek().text + "'");
  return next();
}

const Token& TokenCursor::expect_int(const char* what) {
  if (peek().kind != TokKind::kInt)
    fail(std::string("expected integer ") + what + ", found '" + peek().text +
         "'");
  return next();
}

void TokenCursor::fail(const std::string& msg) const {
  const Token& t = peek();
  throw ParseError(msg, t.line, t.column);
}

}  // namespace adv
