#include "common/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/env.h"
#include "faultz/faultz.h"

namespace adv {

namespace {
std::string errno_message(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

FileHandle::FileId id_from_stat(const struct stat& st) {
  FileHandle::FileId id;
  id.dev = static_cast<uint64_t>(st.st_dev);
  id.ino = static_cast<uint64_t>(st.st_ino);
  id.size = static_cast<uint64_t>(st.st_size);
#ifdef __APPLE__
  id.mtime_ns = static_cast<int64_t>(st.st_mtimespec.tv_sec) * 1000000000 +
                st.st_mtimespec.tv_nsec;
#else
  id.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                st.st_mtim.tv_nsec;
#endif
  return id;
}
}  // namespace

IoMode resolve_io_mode(IoMode mode) {
  if (mode != IoMode::kAuto) return mode;
  std::string v = env_str("ADV_IO_MODE", "mmap");
  return v == "pread" ? IoMode::kPread : IoMode::kMmap;
}

FileHandle::FileId FileHandle::stat_id(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0)
    throw IoError(errno_message("stat", path));
  return id_from_stat(st);
}

FileHandle::FileHandle(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) throw IoError(errno_message("cannot open", path));
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw IoError(errno_message("fstat", path));
  }
  id_ = id_from_stat(st);
}

FileHandle::~FileHandle() {
  if (map_) ::munmap(map_, map_size_);
  if (fd_ >= 0) ::close(fd_);
}

FileHandle::FileHandle(FileHandle&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      path_(std::move(o.path_)),
      id_(std::exchange(o.id_, FileId{})),
      map_(std::exchange(o.map_, nullptr)),
      map_size_(std::exchange(o.map_size_, 0)) {}

FileHandle& FileHandle::operator=(FileHandle&& o) noexcept {
  if (this != &o) {
    if (map_) ::munmap(map_, map_size_);
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(o.fd_, -1);
    path_ = std::move(o.path_);
    id_ = std::exchange(o.id_, FileId{});
    map_ = std::exchange(o.map_, nullptr);
    map_size_ = std::exchange(o.map_size_, 0);
  }
  return *this;
}

bool FileHandle::map() {
  if (map_) return true;
  uint64_t n = size();
  if (n == 0) return false;  // mmap(0) is invalid; empty files use pread
  // An injected mapping refusal must take the same road as a real one:
  // callers fall back to pread and the query still answers.
  if (!faultz::inj_mmap_allowed()) return false;
  void* p = ::mmap(nullptr, n, PROT_READ, MAP_SHARED, fd_, 0);
  if (p == MAP_FAILED) return false;
  map_ = static_cast<unsigned char*>(p);
  map_size_ = n;
  // Extraction walks chunks front to back; ask the kernel to read ahead.
  (void)::posix_madvise(map_, map_size_, POSIX_MADV_SEQUENTIAL);
  (void)::posix_madvise(map_, map_size_, POSIX_MADV_WILLNEED);
  return true;
}

const unsigned char* FileHandle::mapped_range(std::size_t n,
                                              uint64_t offset) const {
  // Torn mapping: the file shrank under an established map and the next
  // dereference would fault.  Injection surfaces it as the same IoError the
  // bounds check below raises for a genuinely short mapping.
  if (faultz::enabled()) {
    faultz::maybe_throw_io(faultz::Site::kMmapTorn,
                           ("mapped read from '" + path_ + "'").c_str());
  }
  if (!map_ || offset + n > map_size_) {
    throw IoError("short mapped read from '" + path_ + "': wanted " +
                  std::to_string(n) + " bytes at offset " +
                  std::to_string(offset) + ", mapped " +
                  std::to_string(map_size_));
  }
  return map_ + offset;
}

uint64_t FileHandle::size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) throw IoError(errno_message("fstat", path_));
  return static_cast<uint64_t>(st.st_size);
}

void FileHandle::pread_exact(void* out, std::size_t n, uint64_t offset) const {
  std::size_t got = pread_some(out, n, offset);
  if (got != n) {
    throw IoError("short read from '" + path_ + "': wanted " +
                  std::to_string(n) + " bytes at offset " +
                  std::to_string(offset) + ", got " + std::to_string(got));
  }
}

std::size_t FileHandle::pread_some(void* out, std::size_t n,
                                   uint64_t offset) const {
  unsigned char* p = static_cast<unsigned char*>(out);
  std::size_t total = 0;
  while (total < n) {
    ssize_t r = faultz::inj_pread(fd_, p + total, n - total,
                                  static_cast<off_t>(offset + total));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError(errno_message("pread", path_));
    }
    if (r == 0) break;  // EOF
    total += static_cast<std::size_t>(r);
  }
  return total;
}

FileCache& FileCache::instance() {
  static FileCache cache;
  return cache;
}

std::shared_ptr<const FileHandle> FileCache::open(const std::string& path,
                                                  IoMode mode) {
  const bool want_map = resolve_io_mode(mode) == IoMode::kMmap;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = cache_.find(path);
  if (it != cache_.end()) {
    // Serve the cached handle only while the on-disk file is still the one
    // it was opened against.  Comparing dev/inode/size *and* nanosecond
    // mtime catches in-place rewrites that keep the size and land within
    // the same second — coarse whole-second mtimes would miss those.  A
    // failed stat (file deleted) also drops the entry; reopening below then
    // reports the real error.
    bool fresh = false;
    try {
      fresh = FileHandle::stat_id(path) == it->second->id();
    } catch (const IoError&) {
    }
    if (!fresh) {
      cache_.erase(it);
      it = cache_.end();
    }
  }
  if (it != cache_.end()) {
    // A handle is never mutated after insertion (mapping it in place would
    // race with lock-free readers); when a mapping is wanted but the cached
    // handle has none, a fresh mapped handle replaces the entry and the old
    // one stays alive for whoever still holds it.
    if (!want_map || it->second->mapped_data()) return it->second;
    cache_.erase(it);
  }
  auto handle = std::make_shared<FileHandle>(path);
  if (want_map) (void)handle->map();
  if (cache_.size() >= capacity_) {
    // Evict handles nobody else holds; in-flight ones stay shared.
    for (auto e = cache_.begin(); e != cache_.end();) {
      if (e->second.use_count() == 1) e = cache_.erase(e);
      else ++e;
    }
  }
  cache_.emplace(path, handle);
  return handle;
}

void FileCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  cache_.clear();
}

std::size_t FileCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.size();
}

BufferedWriter::BufferedWriter(const std::string& path,
                               std::size_t buffer_bytes)
    : path_(path), buf_(buffer_bytes) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw IoError(errno_message("cannot create", path));
}

BufferedWriter::~BufferedWriter() {
  if (fd_ >= 0) {
    try {
      close();
    } catch (...) {
      // Destructor must not throw; close() explicitly to observe errors.
    }
  }
}

void BufferedWriter::write(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    std::size_t room = buf_.size() - used_;
    std::size_t take = n < room ? n : room;
    std::memcpy(buf_.data() + used_, p, take);
    used_ += take;
    p += take;
    n -= take;
    bytes_written_ += take;
    if (used_ == buf_.size()) flush();
  }
}

void BufferedWriter::flush() {
  std::size_t off = 0;
  while (off < used_) {
    ssize_t w = ::write(fd_, buf_.data() + off, used_ - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(errno_message("write", path_));
    }
    off += static_cast<std::size_t>(w);
  }
  used_ = 0;
}

void BufferedWriter::close() {
  if (fd_ < 0) return;
  flush();
  if (::close(fd_) != 0) {
    fd_ = -1;
    throw IoError(errno_message("close", path_));
  }
  fd_ = -1;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  out << content;
  if (!out) throw IoError("write failed for '" + path + "'");
}

uint64_t file_size(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0)
    throw IoError(errno_message("stat", path));
  return static_cast<uint64_t>(st.st_size);
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

uint64_t directory_bytes(const std::filesystem::path& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(dir, ec);
       it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file(ec)) total += it->file_size(ec);
  }
  return total;
}

}  // namespace adv
