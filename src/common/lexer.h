// Generic tokenizer shared by the meta-data descriptor parser and the SQL
// parser.
//
// Produces identifiers, integer/float literals, double-quoted strings and
// punctuation.  Comments: `//` to end of line, `#` to end of line, and the
// paper's `{* ... *}` block comments.  Multi-character punctuation is chosen
// greedily from a fixed set (">=", "<=", "<>", "!=", "==", "&&", "||").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace adv {

enum class TokKind : uint8_t {
  kIdent,    // [A-Za-z_][A-Za-z0-9_]*
  kInt,      // 123
  kFloat,    // 1.5, .5, 1e3, 1.5e-3
  kString,   // "..." (value excludes quotes)
  kPunct,    // one of the punctuation spellings
  kEnd,      // end of input
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // identifier name / punct spelling / string value
  int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;    // 1-based
  int column = 0;  // 1-based

  bool is_punct(const char* p) const {
    return kind == TokKind::kPunct && text == p;
  }
  // Case-insensitive identifier match (descriptor & SQL keywords are
  // case-insensitive).
  bool is_ident(const std::string& name) const;
};

// Tokenizes the entire input eagerly.  Throws ParseError on a bad character
// or unterminated string/comment.
std::vector<Token> tokenize(const std::string& input);

// Cursor over a token stream with the usual peek/expect helpers.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> toks) : toks_(std::move(toks)) {}

  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() {
    const Token& t = peek();
    if (pos_ < toks_.size() - 1) ++pos_;
    else pos_ = toks_.size() - 1;
    return t;
  }
  bool at_end() const { return peek().kind == TokKind::kEnd; }

  // If the next token is punctuation `p`, consume it and return true.
  bool accept_punct(const char* p);
  // If the next token is identifier `kw` (case-insensitive), consume it.
  bool accept_ident(const std::string& kw);

  // Consume punctuation `p` or throw ParseError.
  const Token& expect_punct(const char* p);
  // Consume identifier `kw` (case-insensitive) or throw ParseError.
  const Token& expect_ident(const std::string& kw);
  // Consume any identifier or throw ParseError.
  const Token& expect_any_ident(const char* what);
  // Consume an integer literal or throw ParseError.
  const Token& expect_int(const char* what);

  [[noreturn]] void fail(const std::string& msg) const;

  // Position save/restore for backtracking parsers.
  std::size_t pos() const { return pos_; }
  void set_pos(std::size_t p) {
    pos_ = p < toks_.size() ? p : toks_.size() - 1;
  }

 private:
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace adv
