// Fixed-size worker pool.
//
// STORM virtual nodes each own a dedicated thread (see storm/), but shared
// helper parallelism (index builds, dataset generation) funnels through this
// pool.  Tasks are type-erased; submit() returns a future.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"

namespace adv {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool is shutting down");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Indices are submitted as contiguous blocks (~4 per worker), so huge n
  // costs a handful of task allocations.  Exceptions from tasks propagate
  // (the first one observed is rethrown; an exception skips the remaining
  // indices of its own block only).
  //
  // With a non-null `cancel`, every block polls the token before each
  // index: once it fires, queued blocks return at their first index and
  // running blocks stop at their next one, so a cancelled query releases
  // its pool slots without running its remaining work.  The resulting
  // CancelledError is rethrown like any task exception.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    const CancelToken* cancel = nullptr);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace adv
