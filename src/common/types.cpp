#include "common/types.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace adv {

std::string to_string(DataType t) {
  switch (t) {
    case DataType::kInt8: return "char";
    case DataType::kInt16: return "short int";
    case DataType::kInt32: return "int";
    case DataType::kInt64: return "long int";
    case DataType::kFloat32: return "float";
    case DataType::kFloat64: return "double";
  }
  return "?";
}

DataType parse_data_type(const std::string& name) {
  // Normalize: lowercase, collapse internal whitespace to single spaces.
  std::string n;
  bool last_space = true;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!last_space) n.push_back(' ');
      last_space = true;
    } else {
      n.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      last_space = false;
    }
  }
  while (!n.empty() && n.back() == ' ') n.pop_back();

  if (n == "char" || n == "int8") return DataType::kInt8;
  if (n == "short" || n == "short int" || n == "int16") return DataType::kInt16;
  if (n == "int" || n == "int32") return DataType::kInt32;
  if (n == "long" || n == "long int" || n == "long long" || n == "int64")
    return DataType::kInt64;
  if (n == "float" || n == "float32") return DataType::kFloat32;
  if (n == "double" || n == "float64") return DataType::kFloat64;
  throw ValidationError("unknown data type name: '" + name + "'");
}

std::string Value::to_string() const {
  std::ostringstream os;
  if (is_int()) {
    os << as_int();
  } else {
    os << as_double();
  }
  return os.str();
}

Value decode_value(DataType t, const unsigned char* bytes) {
  switch (t) {
    case DataType::kInt8: {
      int8_t v;
      std::memcpy(&v, bytes, sizeof v);
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kInt16: {
      int16_t v;
      std::memcpy(&v, bytes, sizeof v);
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kInt32: {
      int32_t v;
      std::memcpy(&v, bytes, sizeof v);
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kInt64: {
      int64_t v;
      std::memcpy(&v, bytes, sizeof v);
      return Value(v);
    }
    case DataType::kFloat32: {
      float v;
      std::memcpy(&v, bytes, sizeof v);
      return Value(static_cast<double>(v));
    }
    case DataType::kFloat64: {
      double v;
      std::memcpy(&v, bytes, sizeof v);
      return Value(v);
    }
  }
  throw InternalError("decode_value: bad DataType");
}

void encode_value(DataType t, const Value& v, unsigned char* out) {
  switch (t) {
    case DataType::kInt8: {
      int8_t x = static_cast<int8_t>(v.as_int());
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kInt16: {
      int16_t x = static_cast<int16_t>(v.as_int());
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kInt32: {
      int32_t x = static_cast<int32_t>(v.as_int());
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kInt64: {
      int64_t x = v.as_int();
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kFloat32: {
      float x = static_cast<float>(v.as_double());
      std::memcpy(out, &x, sizeof x);
      return;
    }
    case DataType::kFloat64: {
      double x = v.as_double();
      std::memcpy(out, &x, sizeof x);
      return;
    }
  }
  throw InternalError("encode_value: bad DataType");
}

}  // namespace adv
