#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace adv {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              const CancelToken* cancel) {
  if (n == 0) return;
  // Submit blocked ranges, ~4 per worker, instead of one task per index:
  // a million-iteration loop enqueues a handful of std::functions, not a
  // million, while still leaving enough blocks for load balancing.
  const std::size_t nblocks = std::min(n, size() * 4);
  const std::size_t per_block = (n + nblocks - 1) / nblocks;
  std::vector<std::future<void>> futs;
  futs.reserve(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * per_block;
    const std::size_t hi = std::min(n, lo + per_block);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn, cancel] {
      if (!cancel) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
        return;
      }
      // Cancellation exceptions stay worker-local: a cancelled query makes
      // *every* worker throw at once, and shipping those objects to the
      // joining thread via the future means they are constructed, read
      // (what()), and refcount-destroyed on different threads.  The real
      // synchronization lives in libstdc++'s __cxa exception refcounting,
      // which tsan cannot see, so the joining thread re-raises from the
      // token instead and the worker's exception never leaves this frame.
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          cancel->check();
          fn(i);
        }
      } catch (const CancelledError&) {
        // Swallowed; only this token's check() throws it, so the token is
        // already fired and the joining thread re-raises below.
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  // Cancellation wins over worker errors: once the token fired, any
  // concurrent worker failure is teardown noise, and re-raising here keeps
  // the exception object local to the joining thread.
  if (cancel) cancel->check();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace adv
