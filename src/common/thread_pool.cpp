#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace adv {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Submit blocked ranges, ~4 per worker, instead of one task per index:
  // a million-iteration loop enqueues a handful of std::functions, not a
  // million, while still leaving enough blocks for load balancing.
  const std::size_t nblocks = std::min(n, size() * 4);
  const std::size_t per_block = (n + nblocks - 1) / nblocks;
  std::vector<std::future<void>> futs;
  futs.reserve(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * per_block;
    const std::size_t hi = std::min(n, lo + per_block);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace adv
