// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
// STORM per-node timing statistics.
#pragma once

#include <chrono>

namespace adv {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates busy time across start/stop pairs; used to measure the
// compute time of one virtual node independent of thread scheduling gaps.
class BusyTimer {
 public:
  void start() { sw_.reset(); }
  void stop() { total_ += sw_.elapsed_seconds(); }
  double total_seconds() const { return total_; }
  void add(double s) { total_ += s; }

 private:
  Stopwatch sw_;
  double total_ = 0;
};

}  // namespace adv
