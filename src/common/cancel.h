// Cooperative cancellation.
//
// A CancelToken is a flag plus an optional deadline that long-running work
// polls at natural yield points (per AFC, per extraction batch, per shipped
// row batch, per planner emission).  Cancellation is *cooperative*: setting
// the flag never interrupts anything — the next poll observes it and the
// worker unwinds by throwing CancelledError, which the STORM node runner
// converts into a per-node error string like any other runtime failure.
//
// Thread-safety: cancel() / set_deadline*() may race freely with the
// cancelled()/check() polls; all state is atomic.  One token belongs to one
// query; the scheduler (src/sched/) hands it out via QueryContext and the
// query service's control-channel reader fires it on a client kCancel frame
// or disconnect.
#pragma once

#include <atomic>
#include <chrono>

#include "common/error.h"

namespace adv {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation (idempotent).
  void cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  // Absolute deadline; work observes it through cancelled()/check().
  void set_deadline(Clock::time_point tp) noexcept {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_release);
  }
  // Relative deadline; <= 0 leaves the token without one.
  void set_deadline_after(double seconds) noexcept {
    if (seconds <= 0) return;
    set_deadline(Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(seconds)));
  }

  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }
  // True once cancel() was called (deadline expiry not included).
  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  bool deadline_exceeded() const noexcept {
    int64_t d = deadline_ns_.load(std::memory_order_acquire);
    return d != 0 && Clock::now().time_since_epoch().count() >= d;
  }
  // The poll: explicit request or expired deadline.
  bool cancelled() const noexcept {
    return cancel_requested() || deadline_exceeded();
  }

  // Throws CancelledError when the token fired.  The message distinguishes
  // an explicit cancel from a deadline so callers can report the cause.
  void check() const {
    if (cancel_requested()) throw CancelledError("query cancelled");
    if (deadline_exceeded()) throw CancelledError("query deadline exceeded");
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // steady_clock ticks; 0 = none
};

}  // namespace adv
