#include "common/tempdir.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>

#include "common/error.h"
#include "common/rng.h"

namespace adv {

namespace {
std::atomic<uint64_t> counter{0};
}

TempDir::TempDir(const std::string& tag) {
  const char* base = std::getenv("TMPDIR");
  std::filesystem::path root = base && *base ? base : "/tmp";
  // Unique name: pid + monotonic counter + a hash of the address of a local.
  uint64_t n = counter.fetch_add(1);
  uint64_t h = mix64(static_cast<uint64_t>(::getpid()) ^ (n << 32) ^
                     reinterpret_cast<uintptr_t>(&n));
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::filesystem::path cand =
        root / (tag + "-" + std::to_string((h + attempt) & 0xffffffffu) + "-" +
                std::to_string(n));
    std::error_code ec;
    if (std::filesystem::create_directories(cand, ec) && !ec) {
      path_ = cand;
      return;
    }
  }
  throw IoError("TempDir: failed to create a unique directory under " +
                root.string());
}

TempDir::~TempDir() {
  if (keep_ || path_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  // Errors in cleanup are ignored: destructor must not throw.
}

std::string TempDir::subdir(const std::string& name) const {
  std::filesystem::path p = path_ / name;
  std::error_code ec;
  std::filesystem::create_directories(p, ec);
  if (ec)
    throw IoError("TempDir: cannot create subdirectory '" + p.string() +
                  "': " + ec.message());
  return p.string();
}

}  // namespace adv
