// Environment-variable helpers used by the benchmark harnesses to scale
// dataset sizes and node counts without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace adv {

// Returns the integer value of env var `name`, or `def` when unset/invalid.
int64_t env_int(const char* name, int64_t def);

// Returns the value of env var `name`, or `def` when unset.
std::string env_str(const char* name, const std::string& def);

}  // namespace adv
