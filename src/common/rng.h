// Deterministic pseudo-random utilities.
//
// The dataset generators must be able to recompute any cell value on demand
// (the "row oracle" used by correctness tests), so values are derived from a
// stateless hash of the cell coordinates rather than from sequential RNG
// state.
#pragma once

#include <cstdint>

namespace adv {

// SplitMix64 finalizer: a high-quality 64-bit mix.
constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combines hash values (order-sensitive).
constexpr uint64_t hash_combine(uint64_t a, uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Uniform double in [0, 1) derived from a hash value.
constexpr double hash_unit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

// Sequential generator (xorshift-star flavored SplitMix64 stream) for places
// where order does not need to be recomputable per-cell.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  // Uniform in [0, n).
  uint64_t next_below(uint64_t n) { return n == 0 ? 0 : next() % n; }

  double next_unit() { return hash_unit(next()); }

 private:
  uint64_t state_;
};

}  // namespace adv
