#include "common/env.h"

#include <cstdlib>

namespace adv {

int64_t env_int(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  char* end = nullptr;
  long long out = std::strtoll(v, &end, 10);
  if (end == v || (end && *end != '\0')) return def;
  return static_cast<int64_t>(out);
}

std::string env_str(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return v && *v ? std::string(v) : def;
}

}  // namespace adv
