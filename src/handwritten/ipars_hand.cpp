#include "handwritten/ipars_hand.h"

#include <algorithm>
#include <cmath>

#include "common/io.h"
#include "common/string_util.h"

namespace adv::hand {

namespace {

// Variable names in schema order 5.. (matches dataset::ipars_schema).
std::vector<std::string> var_names(const dataset::IparsConfig& cfg) {
  std::vector<std::string> v = {"SOIL", "SGAS", "OILVX", "OILVY", "OILVZ"};
  for (int i = 1; i <= cfg.pad_vars; ++i) v.push_back(format("P%02d", i));
  return v;
}

std::vector<int> rel_list(const dataset::IparsConfig& cfg,
                          const IparsQuery& q) {
  if (!q.rels.empty()) return q.rels;
  std::vector<int> all(static_cast<std::size_t>(cfg.rels));
  for (int r = 0; r < cfg.rels; ++r) all[static_cast<std::size_t>(r)] = r;
  return all;
}

expr::Table full_table(const dataset::IparsConfig& cfg) {
  expr::Table t;
  meta::Schema s = dataset::ipars_schema(cfg);
  std::vector<expr::Table::Column> cols;
  for (const auto& a : s.attrs) cols.push_back({a.name, a.type});
  return expr::Table(std::move(cols));
}

inline float load_f32(const unsigned char* p) {
  float v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

expr::Table run_ipars_l0(const dataset::IparsConfig& cfg,
                         const std::string& root, const IparsQuery& q,
                         int only_node, codegen::ExtractStats* stats) {
  expr::Table out = full_table(cfg);
  codegen::ExtractStats st;

  const int G = cfg.grid_per_node;
  const int nvars = cfg.num_variables();
  const std::vector<std::string> vars = var_names(cfg);
  const int t_lo = static_cast<int>(std::max<int64_t>(1, q.time_lo));
  const int t_hi =
      static_cast<int>(std::min<int64_t>(cfg.timesteps, q.time_hi));

  std::vector<double> row(static_cast<std::size_t>(cfg.num_attrs()));
  std::vector<unsigned char> coords(static_cast<std::size_t>(G) * 12);
  std::vector<std::vector<unsigned char>> vbuf(
      static_cast<std::size_t>(nvars),
      std::vector<unsigned char>(static_cast<std::size_t>(G) * 4));

  for (int node = 0; node < cfg.nodes; ++node) {
    if (only_node >= 0 && node != only_node) continue;
    std::string dir = root + "/node" + std::to_string(node) + "/ipars/";

    FileHandle coords_f(dir + "COORDS");
    coords_f.pread_exact(coords.data(), coords.size(), 0);
    st.bytes_read += coords.size();

    for (int rel : rel_list(cfg, q)) {
      // The 17 per-variable files of this (node, realization).
      std::vector<FileHandle> vf;
      vf.reserve(static_cast<std::size_t>(nvars));
      for (int v = 0; v < nvars; ++v)
        vf.emplace_back(dir + vars[static_cast<std::size_t>(v)] +
                        std::to_string(rel));

      for (int t = t_lo; t <= t_hi; ++t) {
        uint64_t off = (static_cast<uint64_t>(t) - 1) *
                       static_cast<uint64_t>(G) * 4;
        for (int v = 0; v < nvars; ++v) {
          vf[static_cast<std::size_t>(v)].pread_exact(
              vbuf[static_cast<std::size_t>(v)].data(),
              static_cast<std::size_t>(G) * 4, off);
          st.bytes_read += static_cast<std::size_t>(G) * 4;
        }
        for (int g = 0; g < G; ++g) {
          st.rows_scanned++;
          // Inlined filters in cheap-first order.
          float soil = load_f32(vbuf[0].data() + g * 4);
          if (!(static_cast<double>(soil) > q.soil_gt) &&
              std::isfinite(q.soil_gt))
            continue;
          float vx = load_f32(vbuf[2].data() + g * 4);
          float vy = load_f32(vbuf[3].data() + g * 4);
          float vz = load_f32(vbuf[4].data() + g * 4);
          if (std::isfinite(q.speed_lt)) {
            double speed = std::sqrt(static_cast<double>(vx) * vx +
                                     static_cast<double>(vy) * vy +
                                     static_cast<double>(vz) * vz);
            if (!(speed < q.speed_lt)) continue;
          }
          st.rows_matched++;
          row[0] = rel;
          row[1] = t;
          row[2] = load_f32(coords.data() + g * 12);
          row[3] = load_f32(coords.data() + g * 12 + 4);
          row[4] = load_f32(coords.data() + g * 12 + 8);
          for (int v = 0; v < nvars; ++v)
            row[static_cast<std::size_t>(5 + v)] =
                load_f32(vbuf[static_cast<std::size_t>(v)].data() + g * 4);
          out.append_row(row.data());
        }
      }
    }
  }
  if (stats) *stats = st;
  return out;
}

expr::Table run_ipars_layout1(const dataset::IparsConfig& cfg,
                              const std::string& root, const IparsQuery& q,
                              int only_node, codegen::ExtractStats* stats) {
  expr::Table out = full_table(cfg);
  codegen::ExtractStats st;

  const int G = cfg.grid_per_node;
  const int nattrs = cfg.num_attrs();
  // Record: REL int16 + TIME int32 + (X Y Z + vars) float32.
  const std::size_t rec = 2 + 4 + static_cast<std::size_t>(nattrs - 2) * 4;
  const int t_lo = static_cast<int>(std::max<int64_t>(1, q.time_lo));
  const int t_hi =
      static_cast<int>(std::min<int64_t>(cfg.timesteps, q.time_hi));

  std::vector<int> rels = rel_list(cfg, q);
  std::vector<bool> rel_ok(static_cast<std::size_t>(cfg.rels), false);
  for (int r : rels)
    if (r >= 0 && r < cfg.rels) rel_ok[static_cast<std::size_t>(r)] = true;

  std::vector<double> row(static_cast<std::size_t>(nattrs));
  std::vector<unsigned char> buf(rec * static_cast<std::size_t>(G));

  for (int node = 0; node < cfg.nodes; ++node) {
    if (only_node >= 0 && node != only_node) continue;
    FileHandle f(root + "/node" + std::to_string(node) + "/ipars/ALL");
    const uint64_t time_stride =
        static_cast<uint64_t>(cfg.rels) * G * rec;  // one time step
    for (int t = t_lo; t <= t_hi; ++t) {
      for (int rel = 0; rel < cfg.rels; ++rel) {
        if (!rel_ok[static_cast<std::size_t>(rel)]) continue;
        uint64_t off = (static_cast<uint64_t>(t) - 1) * time_stride +
                       static_cast<uint64_t>(rel) * G * rec;
        f.pread_exact(buf.data(), buf.size(), off);
        st.bytes_read += buf.size();
        for (int g = 0; g < G; ++g) {
          st.rows_scanned++;
          const unsigned char* p = buf.data() + rec * static_cast<std::size_t>(g);
          float soil = load_f32(p + 6 + 12);  // after REL,TIME,X,Y,Z
          if (std::isfinite(q.soil_gt) &&
              !(static_cast<double>(soil) > q.soil_gt))
            continue;
          if (std::isfinite(q.speed_lt)) {
            float vx = load_f32(p + 6 + 12 + 8);
            float vy = load_f32(p + 6 + 12 + 12);
            float vz = load_f32(p + 6 + 12 + 16);
            double speed = std::sqrt(static_cast<double>(vx) * vx +
                                     static_cast<double>(vy) * vy +
                                     static_cast<double>(vz) * vz);
            if (!(speed < q.speed_lt)) continue;
          }
          st.rows_matched++;
          int16_t rr;
          std::memcpy(&rr, p, 2);
          int32_t tt;
          std::memcpy(&tt, p + 2, 4);
          row[0] = rr;
          row[1] = tt;
          for (int a = 2; a < nattrs; ++a)
            row[static_cast<std::size_t>(a)] =
                load_f32(p + 6 + static_cast<std::size_t>(a - 2) * 4);
          out.append_row(row.data());
        }
      }
    }
  }
  if (stats) *stats = st;
  return out;
}

}  // namespace adv::hand
