// Hand-written index and extraction functions for the IPARS L0 layout.
//
// This is the baseline the paper compares its compiler-generated code
// against (Figs. 9-11): code an application developer would write with full
// knowledge of the physical layout — hard-coded file names, offsets and
// types, direct float loads, inlined predicates.  It intentionally bypasses
// all advirt metadata machinery except the result Table.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "codegen/extractor.h"  // ExtractStats
#include "dataset/ipars.h"
#include "expr/table.h"

namespace adv::hand {

// The query shapes of the paper's Figure 8 (full scan, TIME range, SOIL
// filter, SPEED filter), plus a realization list.
struct IparsQuery {
  int64_t time_lo = std::numeric_limits<int64_t>::min();
  int64_t time_hi = std::numeric_limits<int64_t>::max();
  double soil_gt = -std::numeric_limits<double>::infinity();
  double speed_lt = std::numeric_limits<double>::infinity();
  std::vector<int> rels;  // empty = all realizations
};

// Runs `q` against an L0-layout dataset rooted at `root` and returns full
// schema rows.  `only_node` restricts to one node (-1 = all).
expr::Table run_ipars_l0(const dataset::IparsConfig& cfg,
                         const std::string& root, const IparsQuery& q,
                         int only_node = -1,
                         codegen::ExtractStats* stats = nullptr);

// Hand-written extractor for Layout I (single file per node, full tuples,
// time-major) — used by the layout ablation.
expr::Table run_ipars_layout1(const dataset::IparsConfig& cfg,
                              const std::string& root, const IparsQuery& q,
                              int only_node = -1,
                              codegen::ExtractStats* stats = nullptr);

}  // namespace adv::hand
