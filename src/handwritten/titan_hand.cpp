#include "handwritten/titan_hand.h"

#include <cmath>
#include <cstring>

#include "common/io.h"

namespace adv::hand {

namespace {
inline float load_f32(const unsigned char* p) {
  float v;
  std::memcpy(&v, p, 4);
  return v;
}
}  // namespace

expr::Table run_titan(const dataset::TitanConfig& cfg, const std::string& root,
                      const TitanQuery& q, int only_node,
                      codegen::ExtractStats* stats) {
  std::vector<expr::Table::Column> cols;
  for (const auto& a : dataset::titan_schema().attrs)
    cols.push_back({a.name, a.type});
  expr::Table out(std::move(cols));
  codegen::ExtractStats st;

  const int P = cfg.points_per_chunk;
  const std::size_t rec = 8 * 4;  // 8 float32 attributes
  const std::size_t chunk_bytes = static_cast<std::size_t>(P) * rec;
  const int chunks_per_node = cfg.num_chunks() / cfg.nodes;

  std::vector<unsigned char> buf(chunk_bytes);
  double row[8];

  for (int node = 0; node < cfg.nodes; ++node) {
    if (only_node >= 0 && node != only_node) continue;
    FileHandle f(root + "/node" + std::to_string(node) + "/titan/CHUNKS");
    for (int local = 0; local < chunks_per_node; ++local) {
      int chunk = node * chunks_per_node + local;
      // Hand-coded spatial skip: the developer knows the cell geometry.
      double lo, hi;
      dataset::titan_chunk_bounds(cfg, chunk, 0, &lo, &hi);
      if (hi < q.x_lo || lo > q.x_hi) continue;
      dataset::titan_chunk_bounds(cfg, chunk, 1, &lo, &hi);
      if (hi < q.y_lo || lo > q.y_hi) continue;
      dataset::titan_chunk_bounds(cfg, chunk, 2, &lo, &hi);
      if (hi < q.z_lo || lo > q.z_hi) continue;

      f.pread_exact(buf.data(), chunk_bytes,
                    static_cast<uint64_t>(local) * chunk_bytes);
      st.bytes_read += chunk_bytes;
      for (int e = 0; e < P; ++e) {
        st.rows_scanned++;
        const unsigned char* p = buf.data() + static_cast<std::size_t>(e) * rec;
        float x = load_f32(p), y = load_f32(p + 4), z = load_f32(p + 8);
        if (x < q.x_lo || x > q.x_hi || y < q.y_lo || y > q.y_hi ||
            z < q.z_lo || z > q.z_hi)
          continue;
        float s1 = load_f32(p + 12);
        if (std::isfinite(q.s1_lt) && !(static_cast<double>(s1) < q.s1_lt))
          continue;
        if (std::isfinite(q.dist_lt)) {
          double d = std::sqrt(static_cast<double>(x) * x +
                               static_cast<double>(y) * y +
                               static_cast<double>(z) * z);
          if (!(d < q.dist_lt)) continue;
        }
        st.rows_matched++;
        row[0] = x;
        row[1] = y;
        row[2] = z;
        for (int s = 0; s < 5; ++s)
          row[3 + s] = load_f32(p + 12 + 4 * static_cast<std::size_t>(s));
        out.append_row(row);
      }
    }
  }
  if (stats) *stats = st;
  return out;
}

}  // namespace adv::hand
