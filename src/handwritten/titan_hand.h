// Hand-written index and extraction functions for the Titan chunked
// layout, including a hard-coded spatial chunk skip using the generator's
// cell geometry (the application developer "is" the indexing service here).
#pragma once

#include <limits>
#include <string>

#include "codegen/extractor.h"  // ExtractStats
#include "dataset/titan.h"
#include "expr/table.h"

namespace adv::hand {

// The query shapes of the paper's Figure 7.
struct TitanQuery {
  double x_lo = -std::numeric_limits<double>::infinity();
  double x_hi = std::numeric_limits<double>::infinity();
  double y_lo = -std::numeric_limits<double>::infinity();
  double y_hi = std::numeric_limits<double>::infinity();
  double z_lo = -std::numeric_limits<double>::infinity();
  double z_hi = std::numeric_limits<double>::infinity();
  double s1_lt = std::numeric_limits<double>::infinity();
  double dist_lt = std::numeric_limits<double>::infinity();  // DISTANCE(X,Y,Z)
};

expr::Table run_titan(const dataset::TitanConfig& cfg, const std::string& root,
                      const TitanQuery& q, int only_node = -1,
                      codegen::ExtractStats* stats = nullptr);

}  // namespace adv::hand
