// The runtime half of the paper's Figure 5 algorithm.
//
// Given a compiled DatasetModel and a bound query, plan_afcs():
//   1. Find_File_Groups — prunes files by the query's implicit-attribute
//      constraints (file-name bindings and loop spans), forms the cartesian
//      product of matching files across the participating leaf datasets, and
//      drops combinations whose implicit attributes are inconsistent or
//      whose record loops cannot be aligned.
//   2. Process_File_Groups — enumerates aligned file chunk sets per group:
//      iterates the non-record ("enumerated") loops, skipping values the
//      query's intervals exclude (the index function), applies the optional
//      ChunkFilter (external chunk index, e.g. spatial min/max), clips the
//      record range when the record ident names a constrained attribute,
//      and computes per-chunk byte offsets.
#pragma once

#include "afc/dataset_model.h"
#include "afc/types.h"
#include "common/cancel.h"
#include "expr/predicate.h"

namespace adv::afc {

struct PlannerOptions {
  // External chunk index consulted per data-bearing chunk (may be null).
  const ChunkFilter* filter = nullptr;
  // Disable file-level implicit pruning (ablation only; results identical).
  bool prune_files = true;
  // Disable enumerated-loop interval pruning (ablation only).
  bool prune_loops = true;
  // Restrict planning to one virtual node (-1 = all nodes).
  int only_node = -1;
  // Cooperative cancellation: polled per file group and per considered
  // AFC; a fired token aborts planning with CancelledError.
  const CancelToken* cancel = nullptr;
};

// Plans the AFCs answering `q` against `model`.
// Throws QueryError when a needed attribute is neither stored in any file
// nor derivable as an implicit attribute.
PlanResult plan_afcs(const DatasetModel& model, const expr::BoundQuery& q,
                     const PlannerOptions& opts = {});

}  // namespace adv::afc
