// Aligned-file-chunk data structures (paper §4).
//
// An AFC set is {num_rows, {File_1, Offset_1, Num_Bytes_1}, ...}: reading
// num_rows * Num_Bytes_i bytes from each File_i starting at Offset_i and
// zipping the streams row by row reconstructs rows of the virtual table.
// Chunks of one AFC may name the same file at different offsets (layouts
// that store per-variable arrays inside one file).
//
// To keep per-AFC instances small, the static structure (files, strides,
// field maps, implicit attributes) lives in a GroupPlan shared by all AFCs
// of one file group; each AFC carries only its chunk offsets and the values
// of the enumerated loops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/interval.h"
#include "layout/region.h"

namespace adv::afc {

// Index-service hook used by the planner's "check against index" step.
// Implementations look up per-chunk metadata (e.g. min/max of DATAINDEX
// attributes) keyed by (file path, chunk byte offset).
class ChunkFilter {
 public:
  virtual ~ChunkFilter() = default;

  // False when the chunk starting at `offset` in `file_path` provably
  // contains no rows matching `qi`.  Must be conservative: when in doubt
  // (e.g. the chunk is not indexed), return true.
  virtual bool may_match(const std::string& file_path, uint64_t offset,
                         const expr::QueryIntervals& qi) const = 0;
};

// Source of per-chunk attribute bounds, keyed like ChunkFilter by
// (file path, byte offset).  The code emitter embeds these bounds into
// generated scan functions so compiled code prunes chunks the same way the
// interpreted index function does.  index::MinMaxIndex implements this.
class ChunkBoundsSource {
 public:
  virtual ~ChunkBoundsSource() = default;

  // Schema attribute indices the bounds cover, in bounds order.
  virtual const std::vector<int>& bounds_attrs() const = 0;

  // Fills `out` with [min, max] per indexed attribute; false when the
  // chunk is not indexed.
  virtual bool chunk_bounds(const std::string& file_path, uint64_t offset,
                            std::vector<std::pair<double, double>>& out)
      const = 0;
};

// One chunk-producing region of one file within a group.
struct ChunkPlan {
  int file = 0;                 // index into GroupPlan::files
  uint64_t base_offset = 0;     // offset at all-enumerated-loops-at-lo
  uint32_t bytes_per_row = 0;
  // Stride per enumerated loop (parallel to GroupPlan::loops; 0 when the
  // loop does not enclose this region).
  std::vector<uint64_t> loop_strides;
  // Stored fields this chunk contributes (attribute index resolved against
  // the schema; -1 for local non-schema attributes, which are skipped).
  struct StoredField {
    int attr = -1;
    DataType type = DataType::kFloat32;
    uint32_t intra_offset = 0;
    bool operator==(const StoredField&) const = default;
  };
  std::vector<StoredField> fields;

  bool operator==(const ChunkPlan&) const = default;
};

// One enumerated (non-record) loop of a group.
struct EnumLoop {
  std::string ident;
  int attr = -1;  // schema attribute index when the ident names one
  layout::EvalRange range;

  bool operator==(const EnumLoop&) const = default;
};

// Static structure shared by all AFCs of one file group.
struct GroupPlan {
  int node_id = 0;
  std::vector<std::string> files;   // distinct file paths
  std::vector<ChunkPlan> chunks;
  std::vector<EnumLoop> loops;

  // Implicit attributes constant over the whole group (file-name bindings).
  std::vector<std::pair<int, double>> const_implicits;  // (attr, value)

  // Row space: the shared record loop.
  std::string row_ident;
  layout::EvalRange row_range;
  int row_attr = -1;  // schema attribute index when row ident names one

  uint64_t bytes_per_full_row() const {
    uint64_t n = 0;
    for (const auto& c : chunks) n += c.bytes_per_row;
    return n;
  }

  bool operator==(const GroupPlan&) const = default;
};

// One aligned file chunk set.
struct Afc {
  int group = 0;                   // index into PlanResult::groups
  uint64_t num_rows = 0;
  std::vector<uint64_t> offsets;   // per chunk, parallel to GroupPlan::chunks
  std::vector<int64_t> loop_values;  // per enumerated loop
  int64_t row_first = 0;           // record-loop value of the first row

  bool operator==(const Afc&) const = default;
};

// Counters exposed for tests and the ablation benchmarks.
struct PlanStats {
  uint64_t files_total = 0;
  uint64_t files_matched = 0;
  uint64_t groups_considered = 0;
  uint64_t groups_formed = 0;
  uint64_t afcs_considered = 0;
  uint64_t afcs_emitted = 0;
  uint64_t afcs_filtered_by_index = 0;
  // Rows and extraction bytes pruning saved: AFCs dropped by the chunk
  // index (zone-map sidecar) plus loop values the planner clipped via
  // implicit-dimension intervals (docs/LAYOUTS.md §2) — everything the
  // full enumeration of each formed group would have cost beyond what
  // was scheduled.  File groups rejected before enumeration (e.g. an
  // out-of-range file-name binding) are not charged here.
  uint64_t rows_pruned = 0;
  uint64_t bytes_skipped = 0;

  bool operator==(const PlanStats&) const = default;
};

struct PlanResult {
  std::vector<GroupPlan> groups;
  std::vector<Afc> afcs;
  PlanStats stats;

  // Total bytes the extractor will read for these AFCs.
  uint64_t bytes_to_read() const;
  // Total rows before residual filtering.
  uint64_t candidate_rows() const;

  // Structural equality (groups, AFCs, and counters) — lets tests assert a
  // plan-cache hit reproduces the cold plan exactly.
  bool operator==(const PlanResult&) const = default;
};

}  // namespace adv::afc
