// Implicit-attribute value domains — the planner-level half of
// cross-dataset joins (api/join_query.h).
//
// An attribute is *implicit* when every concrete file derives its value
// from metadata alone: a file-name binding variable (implicit point) or a
// structure/record loop whose ident names the attribute (implicit span).
// For such attributes the exact set of values the whole dataset can
// produce is enumerable without touching a single data byte — file
// bindings contribute one value per file, loops contribute their
// lo:hi:step lattice.  Two datasets joined on a shared implicit attribute
// can therefore intersect their domains at plan time and push the
// intersection into each side's scan as an interval / IN filter (mutual
// pruning), before any extraction happens.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "afc/dataset_model.h"

namespace adv::afc {

// True when every concrete file of `model` binds schema attribute `attr`
// implicitly (file-name binding or loop ident).  Stored-only attributes —
// payload fields read from data bytes — return false.
bool is_implicit_attr(const DatasetModel& model, int attr);

// The exact, sorted, deduplicated set of values `attr` takes across the
// dataset, or nullopt when the attribute is not implicit or the domain
// exceeds `cap` values (callers then fall back to unpruned scans — the
// join merge keeps answers correct either way).
std::optional<std::vector<int64_t>> implicit_attr_domain(
    const DatasetModel& model, int attr, std::size_t cap = 4096);

}  // namespace adv::afc
