#include "afc/reference.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "common/error.h"

namespace adv::afc::reference {

namespace {

// First-wins attribute sourcing (the system's semantics; shared with the
// optimized planner by specification, not by code).
struct Participation {
  std::vector<int> leaves;                         // ascending
  std::map<int, std::set<int>> regions_per_leaf;   // leaf -> region ordinals
};

Participation choose_participation(const DatasetModel& model,
                                   const expr::BoundQuery& q) {
  Participation out;
  std::map<int, std::set<int>> regions;
  for (int attr : q.needed_attrs()) {
    const std::string& name =
        model.schema().at(static_cast<std::size_t>(attr)).name;
    bool found = false;
    // Stored fields.
    for (std::size_t l = 0; !found && l < model.leaves().size(); ++l) {
      const auto& skel = model.leaves()[l].skeleton;
      for (std::size_t r = 0; !found && r < skel.size(); ++r) {
        if (skel[r].find_field(name)) {
          regions[static_cast<int>(l)].insert(static_cast<int>(r));
          found = true;
        }
      }
    }
    // File-name bindings.
    for (std::size_t l = 0; !found && l < model.leaves().size(); ++l) {
      const auto& b = model.leaves()[l].binding_attrs;
      if (std::find(b.begin(), b.end(), attr) != b.end()) {
        regions[static_cast<int>(l)];  // participates, no stored region
        found = true;
      }
    }
    // Loop identifiers.
    for (std::size_t l = 0; !found && l < model.leaves().size(); ++l) {
      for (const auto& reg : model.leaves()[l].skeleton) {
        bool here = reg.record_ident == name;
        for (const auto& pl : reg.path) here = here || pl.ident == name;
        if (here) {
          regions[static_cast<int>(l)];
          found = true;
          break;
        }
      }
    }
    if (!found)
      throw QueryError("reference planner: attribute '" + name +
                       "' has no source");
  }
  for (auto& [leaf, regs] : regions) {
    if (regs.empty()) regs.insert(0);
    out.leaves.push_back(leaf);
  }
  out.regions_per_leaf = std::move(regions);
  return out;
}

bool file_matches_query(const ConcreteFile& f,
                        const expr::QueryIntervals& qi) {
  for (const auto& [attr, v] : f.implicit_points)
    if (!qi.value_may_match(static_cast<std::size_t>(attr), v)) return false;
  for (const auto& sp : f.implicit_spans)
    if (!qi.chunk_may_match(static_cast<std::size_t>(sp.attr), sp.lo, sp.hi))
      return false;
  return true;
}

}  // namespace

std::vector<FlatAfc> plan_reference(const DatasetModel& model,
                                    const expr::BoundQuery& q,
                                    const ChunkFilter* filter) {
  std::vector<FlatAfc> out;
  const expr::QueryIntervals& qi = q.intervals();
  if (qi.contradictory()) return out;

  Participation part = choose_participation(model, q);

  // --- Find_File_Groups ----------------------------------------------------
  // "Let S be the set of files that match against the query."
  // "Classify files in S by the set of attributes they have": files of one
  // leaf store one attribute set, so the classes are the leaves.
  std::vector<std::vector<const ConcreteFile*>> classes;
  for (int leaf : part.leaves) {
    std::vector<const ConcreteFile*> cls;
    for (int fid : model.files_of_leaf(leaf)) {
      const ConcreteFile& f = model.files()[static_cast<std::size_t>(fid)];
      if (file_matches_query(f, qi)) cls.push_back(&f);
    }
    if (cls.empty()) return out;
    classes.push_back(std::move(cls));
  }

  // "foreach {s_1,...,s_m} — cartesian product between S_1,...,S_m."
  std::vector<const ConcreteFile*> combo(classes.size());
  std::vector<std::vector<const ConcreteFile*>> T;
  std::function<void(std::size_t)> product = [&](std::size_t i) {
    if (i == classes.size()) {
      // "If the values of implicit attributes are not inconsistent."
      std::map<int, double> implied;
      for (const ConcreteFile* f : combo)
        for (const auto& [attr, v] : f->implicit_points) {
          auto it = implied.find(attr);
          if (it != implied.end() && it->second != v) return;
          implied[attr] = v;
        }
      // Aligned layouts require one shared record loop across the
      // participating regions.
      const layout::Region* first = nullptr;
      for (std::size_t k = 0; k < combo.size(); ++k) {
        for (int rid : part.regions_per_leaf.at(part.leaves[k])) {
          const layout::Region& r =
              combo[k]->regions[static_cast<std::size_t>(rid)];
          if (!first) first = &r;
          else if (r.record_ident != first->record_ident ||
                   !(r.record_range == first->record_range))
            return;
        }
      }
      T.push_back(combo);
      return;
    }
    for (const ConcreteFile* f : classes[i]) {
      combo[i] = f;
      product(i + 1);
    }
  };
  product(0);

  // --- Process_File_Groups -------------------------------------------------
  for (const auto& group : T) {
    struct Picked {
      const ConcreteFile* file;
      const layout::Region* region;
    };
    std::vector<Picked> regions;
    for (std::size_t k = 0; k < group.size(); ++k)
      for (int rid : part.regions_per_leaf.at(part.leaves[k]))
        regions.push_back(
            {group[k], &group[k]->regions[static_cast<std::size_t>(rid)]});

    // Merge the outer (structure) loops by identifier.
    struct OuterLoop {
      std::string ident;
      int attr;
      layout::EvalRange range;
    };
    std::vector<OuterLoop> loops;
    bool alignable = true;
    for (const auto& pk : regions) {
      for (const auto& pl : pk.region->path) {
        auto it = std::find_if(loops.begin(), loops.end(),
                               [&](const OuterLoop& o) {
                                 return o.ident == pl.ident;
                               });
        if (it == loops.end()) {
          loops.push_back({pl.ident, model.schema().find(pl.ident),
                           pl.range});
        } else if (it->range.lo != pl.range.lo ||
                   it->range.step != pl.range.step) {
          alignable = false;
        } else {
          it->range.hi = std::min(it->range.hi, pl.range.hi);
        }
      }
    }
    if (!alignable) continue;

    // Record-loop window: first/last record value admitted by the query
    // interval of the record attribute (scan every value, the naive way).
    const layout::Region& rep = *regions.front().region;
    int record_attr = model.schema().find(rep.record_ident);
    int64_t first_idx = -1, last_idx = -1;
    int64_t count = rep.record_range.count();
    for (int64_t i = 0; i < count; ++i) {
      int64_t v = rep.record_range.lo + i * rep.record_range.step;
      bool ok = record_attr < 0 ||
                qi.interval(static_cast<std::size_t>(record_attr))
                    .contains(static_cast<double>(v));
      if (ok) {
        if (first_idx < 0) first_idx = i;
        last_idx = i;
      }
    }
    // The optimized planner clips to the convex interval only; a hole-free
    // window is guaranteed because intervals are convex.
    if (first_idx < 0) continue;
    uint64_t num_rows = static_cast<uint64_t>(last_idx - first_idx + 1);
    int64_t row_first =
        rep.record_range.lo + first_idx * rep.record_range.step;

    // Enumerate every combination of outer loop values, testing each value
    // against the query individually.
    std::vector<int64_t> values(loops.size());
    std::function<void(std::size_t)> enumerate = [&](std::size_t k) {
      if (k == loops.size()) {
        FlatAfc afc;
        afc.num_rows = num_rows;
        afc.row_first = row_first;
        for (const auto& pk : regions) {
          FlatChunk c;
          c.file = pk.file->full_path;
          c.bytes_per_row = pk.region->record_bytes;
          uint64_t off = pk.region->base_offset;
          for (std::size_t j = 0; j < loops.size(); ++j) {
            for (const auto& pl : pk.region->path) {
              if (pl.ident != loops[j].ident) continue;
              off += static_cast<uint64_t>(
                         (values[j] - loops[j].range.lo) /
                         loops[j].range.step) *
                     pl.stride;
            }
          }
          off += static_cast<uint64_t>(first_idx) * c.bytes_per_row;
          c.offset = off;
          afc.chunks.push_back(std::move(c));
        }
        // "Check against index."
        if (filter) {
          for (std::size_t ci = 0; ci < afc.chunks.size(); ++ci) {
            if (regions[ci].region->fields.empty()) continue;
            if (!filter->may_match(afc.chunks[ci].file,
                                   afc.chunks[ci].offset, qi))
              return;
          }
        }
        std::sort(afc.chunks.begin(), afc.chunks.end());
        out.push_back(std::move(afc));
        return;
      }
      const OuterLoop& L = loops[k];
      for (int64_t v = L.range.lo; v <= L.range.hi; v += L.range.step) {
        if (L.attr >= 0 &&
            !qi.value_may_match(static_cast<std::size_t>(L.attr),
                                static_cast<double>(v)))
          continue;
        values[k] = v;
        enumerate(k + 1);
      }
    };
    enumerate(0);
  }

  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FlatAfc> flatten(const PlanResult& pr) {
  std::vector<FlatAfc> out;
  for (const Afc& a : pr.afcs) {
    const GroupPlan& gp = pr.groups[static_cast<std::size_t>(a.group)];
    FlatAfc f;
    f.num_rows = a.num_rows;
    f.row_first = a.row_first;
    for (std::size_t c = 0; c < gp.chunks.size(); ++c) {
      FlatChunk ch;
      ch.file = gp.files[static_cast<std::size_t>(gp.chunks[c].file)];
      ch.offset = a.offsets[c];
      ch.bytes_per_row = gp.chunks[c].bytes_per_row;
      f.chunks.push_back(std::move(ch));
    }
    std::sort(f.chunks.begin(), f.chunks.end());
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace adv::afc::reference
