#include "afc/implicit_domain.h"

#include <algorithm>
#include <set>

namespace adv::afc {

namespace {

bool file_binds_attr(const ConcreteFile& f, int attr) {
  for (const auto& [a, v] : f.implicit_points)
    if (a == attr) return true;
  for (const auto& sp : f.implicit_spans)
    if (sp.attr == attr) return true;
  return false;
}

// Adds every value of `range` to `out`; false once `cap` would be exceeded.
bool add_range(const layout::EvalRange& range, std::size_t cap,
               std::set<int64_t>& out) {
  for (int64_t v = range.lo; v <= range.hi; v += range.step) {
    out.insert(v);
    if (out.size() > cap) return false;
  }
  return true;
}

}  // namespace

bool is_implicit_attr(const DatasetModel& model, int attr) {
  if (attr < 0 || static_cast<std::size_t>(attr) >= model.schema().size())
    return false;
  if (model.files().empty()) return false;
  for (const auto& f : model.files())
    if (!file_binds_attr(f, attr)) return false;
  return true;
}

std::optional<std::vector<int64_t>> implicit_attr_domain(
    const DatasetModel& model, int attr, std::size_t cap) {
  if (!is_implicit_attr(model, attr)) return std::nullopt;
  const std::string& name =
      model.schema().at(static_cast<std::size_t>(attr)).name;
  std::set<int64_t> values;
  for (const auto& f : model.files()) {
    // File-name bindings: one exact value per file.
    if (f.env.has(name)) {
      values.insert(f.env.get(name));
      if (values.size() > cap) return std::nullopt;
    }
    // Loop bindings: enumerate the lo:hi:step lattice from the analyzed
    // regions (implicit_spans keep only the hull; the regions keep steps).
    for (const auto& r : f.regions) {
      for (const auto& pl : r.path)
        if (pl.ident == name && !add_range(pl.range, cap, values))
          return std::nullopt;
      if (r.record_ident == name && !add_range(r.record_range, cap, values))
        return std::nullopt;
    }
  }
  return std::vector<int64_t>(values.begin(), values.end());
}

}  // namespace adv::afc
