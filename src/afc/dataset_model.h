// Query-independent compilation of a descriptor: concrete file enumeration,
// per-file region analysis, and per-file implicit attributes.
//
// This is the expensive half of the paper's two-phase design (§4): parsing
// and analyzing the meta-data happens once; per-query work (the planner in
// planner.h) only walks the precomputed structures.
#pragma once

#include <string>
#include <vector>

#include "afc/types.h"
#include "metadata/model.h"

namespace adv::afc {

// A file named by a DATA pattern under one binding assignment.
struct ConcreteFile {
  int leaf = 0;           // index into DatasetModel::leaves()
  std::string path;       // path relative to the dataset root
  std::string full_path;  // root + "/" + path
  int node_id = 0;        // virtual node holding the file
  meta::VarEnv env;       // binding-variable values

  std::vector<layout::Region> regions;

  // Implicit attribute values derived from the file name: (attr, value).
  std::vector<std::pair<int, double>> implicit_points;
  // Implicit attribute ranges derived from loops whose ident names a schema
  // attribute: (attr, lo, hi).
  struct Span {
    int attr;
    double lo, hi;
  };
  std::vector<Span> implicit_spans;
};

// Per-leaf static information.
struct LeafInfo {
  const meta::DatasetDecl* decl = nullptr;
  std::string name;
  // Region skeletons (from the first concrete file): used to choose which
  // (leaf, region, field) sources a query's attributes come from.  Region
  // structure is identical across files of a leaf; only ranges differ.
  std::vector<layout::Region> skeleton;
  // Binding variables that name schema attributes (implicit point sources).
  std::vector<int> binding_attrs;
};

class DatasetModel {
 public:
  // Compiles `dataset_name` of `desc`.  `root_path` is the filesystem
  // directory the storage DIR paths are relative to.  Throws
  // ValidationError / QueryError on unresolvable metadata.
  DatasetModel(meta::Descriptor desc, const std::string& dataset_name,
               std::string root_path);

  const meta::Descriptor& descriptor() const { return desc_; }
  const meta::Schema& schema() const { return *schema_; }
  const std::string& dataset_name() const { return dataset_name_; }
  const std::string& root_path() const { return root_path_; }

  const std::vector<LeafInfo>& leaves() const { return leaves_; }
  const std::vector<ConcreteFile>& files() const { return files_; }

  // Files of one leaf (indices into files()).
  const std::vector<int>& files_of_leaf(int leaf) const {
    return files_of_leaf_[leaf];
  }

  // Number of virtual nodes (distinct storage node names; at least 1).
  int num_nodes() const { return num_nodes_; }
  const std::vector<std::string>& node_names() const { return node_names_; }

  // Expected on-disk byte size of a concrete file (for integrity checks).
  uint64_t expected_file_bytes(const ConcreteFile& f) const;

 private:
  void enumerate_files(const meta::DatasetDecl& leaf, int leaf_idx);

  meta::Descriptor desc_;
  std::string dataset_name_;
  std::string root_path_;
  const meta::Schema* schema_ = nullptr;
  const meta::Storage* storage_ = nullptr;  // may be null
  std::vector<std::string> node_names_;
  int num_nodes_ = 1;
  std::vector<LeafInfo> leaves_;
  std::vector<ConcreteFile> files_;
  std::vector<std::vector<int>> files_of_leaf_;
};

}  // namespace adv::afc
