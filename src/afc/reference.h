// Reference planner: the paper's Figure 5 pseudocode, implemented as
// literally as possible.
//
//   Data_Extract {
//     Find_File_Groups()          — match all files against the query,
//                                   classify by attribute set, cartesian
//                                   product, drop inconsistent implicits
//     Process_File_Groups()       — per group: find aligned file chunks,
//                                   supply implicit attributes, check each
//                                   chunk against the index, compute offset
//                                   and length, output
//   }
//
// No incremental pruning, no interval jumps — every combination and every
// loop value is visited and tested individually.  Exponentially slower than
// afc::plan_afcs on wide vertical partitions, and used ONLY as a
// differential-testing oracle: both planners must emit exactly the same
// aligned chunk sets for every query (tests/reference_test.cpp).
#pragma once

#include "afc/dataset_model.h"
#include "afc/types.h"
#include "expr/predicate.h"

namespace adv::afc::reference {

// One aligned file chunk set in a planner-independent canonical form.
struct FlatChunk {
  std::string file;
  uint64_t offset = 0;
  uint32_t bytes_per_row = 0;

  auto operator<=>(const FlatChunk&) const = default;
};

struct FlatAfc {
  std::vector<FlatChunk> chunks;  // sorted
  uint64_t num_rows = 0;
  int64_t row_first = 0;

  auto operator<=>(const FlatAfc&) const = default;
};

// Plans `q` the Figure 5 way.  The result is sorted canonically.
std::vector<FlatAfc> plan_reference(const DatasetModel& model,
                                    const expr::BoundQuery& q,
                                    const ChunkFilter* filter = nullptr);

// Canonicalizes an optimized-planner result for comparison.
std::vector<FlatAfc> flatten(const PlanResult& pr);

}  // namespace adv::afc::reference
