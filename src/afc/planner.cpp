#include "afc/planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "common/error.h"

namespace adv::afc {

namespace {

// Where one needed attribute comes from.
struct AttrSource {
  enum class Kind : uint8_t { kStored, kBinding, kLoop };
  Kind kind = Kind::kStored;
  int leaf = -1;
  int region = -1;  // kStored only
};

// Chooses a source for every needed attribute and derives the participating
// (leaf, region) set.  Deterministic: first leaf / region / field wins.
struct SourcePlan {
  std::map<int, AttrSource> sources;                 // attr -> source
  std::vector<int> leaves;                           // participating leaves
  std::vector<std::vector<int>> regions_per_leaf;    // parallel to leaves
};

SourcePlan choose_sources(const DatasetModel& model,
                          const expr::BoundQuery& q) {
  SourcePlan sp;
  const auto& leaves = model.leaves();

  for (int attr : q.needed_attrs()) {
    const std::string& name =
        model.schema().at(static_cast<std::size_t>(attr)).name;
    AttrSource src;
    bool found = false;
    // Stored fields first.
    for (std::size_t l = 0; !found && l < leaves.size(); ++l) {
      for (std::size_t r = 0; !found && r < leaves[l].skeleton.size(); ++r) {
        if (leaves[l].skeleton[r].find_field(name)) {
          src = {AttrSource::Kind::kStored, static_cast<int>(l),
                 static_cast<int>(r)};
          found = true;
        }
      }
    }
    // File-name bindings.
    for (std::size_t l = 0; !found && l < leaves.size(); ++l) {
      const auto& b = leaves[l].binding_attrs;
      if (std::find(b.begin(), b.end(), attr) != b.end()) {
        src = {AttrSource::Kind::kBinding, static_cast<int>(l), -1};
        found = true;
      }
    }
    // Loop identifiers (structure or record loops).
    for (std::size_t l = 0; !found && l < leaves.size(); ++l) {
      for (const auto& reg : leaves[l].skeleton) {
        if (reg.record_ident == name) {
          src = {AttrSource::Kind::kLoop, static_cast<int>(l), -1};
          found = true;
          break;
        }
        for (const auto& pl : reg.path) {
          if (pl.ident == name) {
            src = {AttrSource::Kind::kLoop, static_cast<int>(l), -1};
            found = true;
            break;
          }
        }
        if (found) break;
      }
    }
    if (!found)
      throw QueryError("attribute '" + name +
                       "' is neither stored in any file nor derivable from "
                       "the layout of dataset '" + model.dataset_name() + "'");
    sp.sources[attr] = src;
  }

  // Participating leaves in ascending order, with their chosen regions.
  std::map<int, std::set<int>> leaf_regions;
  for (const auto& [attr, src] : sp.sources) {
    auto& regs = leaf_regions[src.leaf];  // creates the leaf entry
    if (src.kind == AttrSource::Kind::kStored) regs.insert(src.region);
  }
  for (auto& [leaf, regs] : leaf_regions) {
    if (regs.empty()) regs.insert(0);  // implicit-only leaf: representative
    sp.leaves.push_back(leaf);
    sp.regions_per_leaf.emplace_back(regs.begin(), regs.end());
  }
  return sp;
}

// File-level implicit-attribute match (Find_File_Groups step 1).
bool file_matches(const ConcreteFile& f, const expr::QueryIntervals& qi) {
  for (const auto& [attr, v] : f.implicit_points)
    if (!qi.value_may_match(static_cast<std::size_t>(attr), v)) return false;
  for (const auto& sp : f.implicit_spans)
    if (!qi.chunk_may_match(static_cast<std::size_t>(sp.attr), sp.lo, sp.hi))
      return false;
  return true;
}

class GroupBuilder {
 public:
  GroupBuilder(const DatasetModel& model, const expr::BoundQuery& q,
               const PlannerOptions& opts, const SourcePlan& sp,
               PlanResult& out)
      : model_(model), q_(q), opts_(opts), sp_(sp), out_(out) {}

  // Builds the GroupPlan for a combination that already passed the
  // incremental consistency checks (implicit points and record alignment),
  // then enumerates its AFCs.  Can still reject when shared enumerated
  // loops have incompatible phases.
  void try_group(const std::vector<const ConcreteFile*>& combo,
                 const std::map<int, double>& const_implicits) {
    struct PickedRegion {
      const ConcreteFile* file;
      const layout::Region* region;
    };
    std::vector<PickedRegion> regions;
    for (std::size_t i = 0; i < combo.size(); ++i) {
      for (int rid : sp_.regions_per_leaf[i]) {
        if (static_cast<std::size_t>(rid) >= combo[i]->regions.size())
          throw InternalError("region ordinal out of range");
        regions.push_back({combo[i], &combo[i]->regions[rid]});
      }
    }
    const layout::Region* first = regions.front().region;

    // (c) Merge enumerated loops by identifier.
    GroupPlan gp;
    gp.row_ident = first->record_ident;
    gp.row_range = first->record_range;
    gp.row_attr = model_.schema().find(gp.row_ident);
    for (const auto& pr : regions) {
      for (const auto& pl : pr.region->path) {
        auto it = std::find_if(gp.loops.begin(), gp.loops.end(),
                               [&](const EnumLoop& e) {
                                 return e.ident == pl.ident;
                               });
        if (it == gp.loops.end()) {
          EnumLoop e;
          e.ident = pl.ident;
          e.attr = model_.schema().find(pl.ident);
          e.range = pl.range;
          gp.loops.push_back(std::move(e));
        } else {
          // Shared loop: same phase required; span is the intersection.
          if (it->range.lo != pl.range.lo || it->range.step != pl.range.step)
            return;
          it->range.hi = std::min(it->range.hi, pl.range.hi);
        }
      }
    }

    // (d) Chunk plans.
    for (const auto& pr : regions) {
      ChunkPlan cp;
      auto fit = std::find(gp.files.begin(), gp.files.end(),
                           pr.file->full_path);
      if (fit == gp.files.end()) {
        cp.file = static_cast<int>(gp.files.size());
        gp.files.push_back(pr.file->full_path);
      } else {
        cp.file = static_cast<int>(fit - gp.files.begin());
      }
      cp.base_offset = pr.region->base_offset;
      cp.bytes_per_row = pr.region->record_bytes;
      cp.loop_strides.assign(gp.loops.size(), 0);
      for (std::size_t k = 0; k < gp.loops.size(); ++k) {
        for (const auto& pl : pr.region->path)
          if (pl.ident == gp.loops[k].ident) cp.loop_strides[k] = pl.stride;
      }
      for (const auto& f : pr.region->fields) {
        int attr = model_.schema().find(f.attr);
        if (attr < 0) continue;  // local (non-schema) attribute
        cp.fields.push_back({attr, f.type, f.intra_offset});
      }
      gp.chunks.push_back(std::move(cp));
    }

    gp.node_id = combo.front()->node_id;
    for (const auto& [attr, v] : const_implicits)
      gp.const_implicits.emplace_back(attr, v);

    out_.stats.groups_formed++;
    int group_id = static_cast<int>(out_.groups.size());
    out_.groups.push_back(std::move(gp));
    enumerate_afcs(group_id);
  }

 private:
  // Iterates the enumerated loops of `group_id`, pruning by query
  // intervals, and emits AFCs.  Whatever interval clipping and IN-hole
  // checks exclude never reaches emit(); the difference against the full
  // enumeration is charged to rows_pruned/bytes_skipped so plan-time
  // implicit-dimension pruning is visible even without a zone map.
  void enumerate_afcs(int group_id) {
    const GroupPlan& gp = out_.groups[group_id];
    uint64_t full_rows =
        static_cast<uint64_t>(std::max<int64_t>(gp.row_range.count(), 0));
    for (const EnumLoop& l : gp.loops)
      full_rows *= static_cast<uint64_t>(std::max<int64_t>(l.range.count(), 0));
    visited_rows_ = 0;
    enumerate_clipped(group_id);
    if (full_rows > visited_rows_) {
      const uint64_t pruned = full_rows - visited_rows_;
      out_.stats.rows_pruned += pruned;
      out_.stats.bytes_skipped += pruned * gp.bytes_per_full_row();
    }
  }

  void enumerate_clipped(int group_id) {
    const GroupPlan& gp = out_.groups[group_id];
    const expr::QueryIntervals& qi = q_.intervals();

    // Row clipping: when the record ident names a constrained attribute,
    // restrict the record index window once per group.
    int64_t row_first_idx = 0;
    int64_t row_last_idx = gp.row_range.count() - 1;
    if (row_last_idx < 0) return;
    int64_t row_first_value = gp.row_range.lo;
    if (gp.row_attr >= 0 && opts_.prune_loops) {
      const expr::Interval& iv =
          qi.interval(static_cast<std::size_t>(gp.row_attr));
      if (!iv.is_all()) {
        // First index with value >= iv.lo, last with value <= iv.hi.
        if (std::isfinite(iv.lo) &&
            iv.lo > static_cast<double>(gp.row_range.lo)) {
          row_first_idx = static_cast<int64_t>(
              std::ceil((iv.lo - static_cast<double>(gp.row_range.lo)) /
                        static_cast<double>(gp.row_range.step)));
        }
        if (std::isfinite(iv.hi) &&
            iv.hi < static_cast<double>(gp.row_range.hi)) {
          row_last_idx = static_cast<int64_t>(
              std::floor((iv.hi - static_cast<double>(gp.row_range.lo)) /
                         static_cast<double>(gp.row_range.step)));
        }
        if (row_first_idx > row_last_idx) return;  // empty row window
        row_first_value = gp.row_range.lo + row_first_idx * gp.row_range.step;
      }
    }
    uint64_t num_rows =
        static_cast<uint64_t>(row_last_idx - row_first_idx + 1);

    std::vector<int64_t> values(gp.loops.size());
    std::vector<uint64_t> idx(gp.loops.size());
    recurse(group_id, 0, values, idx, num_rows,
            static_cast<uint64_t>(row_first_idx), row_first_value);
  }

  void recurse(int group_id, std::size_t k, std::vector<int64_t>& values,
               std::vector<uint64_t>& idx, uint64_t num_rows,
               uint64_t row_first_idx, int64_t row_first_value) {
    const GroupPlan& gp = out_.groups[group_id];
    if (k == gp.loops.size()) {
      emit(group_id, values, idx, num_rows, row_first_idx, row_first_value);
      return;
    }
    const EnumLoop& loop = gp.loops[k];
    const expr::QueryIntervals& qi = q_.intervals();

    int64_t lo = loop.range.lo, hi = loop.range.hi, step = loop.range.step;
    if (loop.attr >= 0 && opts_.prune_loops) {
      const expr::Interval& iv =
          qi.interval(static_cast<std::size_t>(loop.attr));
      if (std::isfinite(iv.lo) && iv.lo > static_cast<double>(lo)) {
        int64_t skip = static_cast<int64_t>(
            std::ceil((iv.lo - static_cast<double>(lo)) /
                      static_cast<double>(step)));
        lo += skip * step;
      }
      if (std::isfinite(iv.hi) && iv.hi < static_cast<double>(hi)) {
        hi = loop.range.lo +
             static_cast<int64_t>(
                 std::floor((iv.hi - static_cast<double>(loop.range.lo)) /
                            static_cast<double>(step))) *
                 step;
      }
    }
    for (int64_t v = lo; v <= hi; v += step) {
      if (loop.attr >= 0 && opts_.prune_loops &&
          !qi.value_may_match(static_cast<std::size_t>(loop.attr),
                              static_cast<double>(v)))
        continue;  // e.g. an IN-set with holes
      values[k] = v;
      idx[k] = static_cast<uint64_t>((v - loop.range.lo) / step);
      recurse(group_id, k + 1, values, idx, num_rows, row_first_idx,
              row_first_value);
    }
  }

  void emit(int group_id, const std::vector<int64_t>& values,
            const std::vector<uint64_t>& idx, uint64_t num_rows,
            uint64_t row_first_idx, int64_t row_first_value) {
    // Per considered AFC: the finest-grained planning poll, so a
    // cancelled query leaves the index function within one emission even
    // on plans enumerating millions of chunk sets.
    if (opts_.cancel) opts_.cancel->check();
    const GroupPlan& gp = out_.groups[group_id];
    out_.stats.afcs_considered++;
    visited_rows_ += num_rows;

    Afc a;
    a.group = group_id;
    a.num_rows = num_rows;
    a.loop_values = values;
    a.row_first = row_first_value;
    a.offsets.reserve(gp.chunks.size());
    for (const auto& c : gp.chunks) {
      uint64_t off = c.base_offset;
      for (std::size_t k = 0; k < idx.size(); ++k)
        off += idx[k] * c.loop_strides[k];
      off += row_first_idx * c.bytes_per_row;
      a.offsets.push_back(off);
    }

    if (opts_.filter) {
      for (std::size_t ci = 0; ci < gp.chunks.size(); ++ci) {
        if (gp.chunks[ci].fields.empty()) continue;
        if (!opts_.filter->may_match(
                gp.files[static_cast<std::size_t>(gp.chunks[ci].file)],
                a.offsets[ci], q_.intervals())) {
          out_.stats.afcs_filtered_by_index++;
          out_.stats.rows_pruned += num_rows;
          out_.stats.bytes_skipped += num_rows * gp.bytes_per_full_row();
          return;
        }
      }
    }

    out_.stats.afcs_emitted++;
    out_.afcs.push_back(std::move(a));
  }

  const DatasetModel& model_;
  const expr::BoundQuery& q_;
  const PlannerOptions& opts_;
  const SourcePlan& sp_;
  PlanResult& out_;
  // Rows reaching emit() for the group currently being enumerated
  // (scheduled or index-filtered); the remainder was plan-pruned.
  uint64_t visited_rows_ = 0;
};

}  // namespace

uint64_t PlanResult::bytes_to_read() const {
  uint64_t total = 0;
  for (const auto& a : afcs)
    total += a.num_rows * groups[static_cast<std::size_t>(a.group)]
                              .bytes_per_full_row();
  return total;
}

uint64_t PlanResult::candidate_rows() const {
  uint64_t total = 0;
  for (const auto& a : afcs) total += a.num_rows;
  return total;
}

PlanResult plan_afcs(const DatasetModel& model, const expr::BoundQuery& q,
                     const PlannerOptions& opts) {
  PlanResult out;
  if (q.intervals().contradictory()) return out;

  SourcePlan sp = choose_sources(model, q);

  // Find_File_Groups step 1: files matching the query per participating
  // leaf.
  std::vector<std::vector<const ConcreteFile*>> matching(sp.leaves.size());
  for (std::size_t i = 0; i < sp.leaves.size(); ++i) {
    for (int fid : model.files_of_leaf(sp.leaves[i])) {
      const ConcreteFile& f = model.files()[static_cast<std::size_t>(fid)];
      out.stats.files_total++;
      if (opts.only_node >= 0 && f.node_id != opts.only_node) continue;
      if (opts.prune_files && !file_matches(f, q.intervals())) continue;
      out.stats.files_matched++;
      matching[i].push_back(&f);
    }
    if (matching[i].empty()) return out;  // no data for this leaf
  }

  // Cartesian product over participating leaves with incremental pruning:
  // a branch dies as soon as a file's implicit point attributes contradict
  // the partial combination or its participating regions cannot align with
  // the established record loop.  This keeps the walk linear in practice
  // even for layouts with many vertically-partitioned leaves (the paper's
  // L0 has 18).
  struct Partial {
    std::map<int, double> implicits;
    bool have_record = false;
    std::string record_ident;
    layout::EvalRange record_range;
  };

  GroupBuilder gb(model, q, opts, sp, out);
  std::vector<const ConcreteFile*> combo(sp.leaves.size());

  // Extends `p` with file `f` at leaf position `i`; false on conflict.
  auto extend = [&](Partial& p, std::size_t i, const ConcreteFile* f) {
    for (const auto& [attr, v] : f->implicit_points) {
      auto it = p.implicits.find(attr);
      if (it == p.implicits.end()) {
        p.implicits[attr] = v;
      } else if (it->second != v) {
        return false;
      }
    }
    for (int rid : sp.regions_per_leaf[i]) {
      const layout::Region& reg =
          f->regions[static_cast<std::size_t>(rid)];
      if (!p.have_record) {
        p.have_record = true;
        p.record_ident = reg.record_ident;
        p.record_range = reg.record_range;
      } else if (reg.record_ident != p.record_ident ||
                 !(reg.record_range == p.record_range)) {
        return false;
      }
    }
    return true;
  };

  std::function<void(std::size_t, const Partial&)> rec =
      [&](std::size_t i, const Partial& partial) {
        const bool last = (i == sp.leaves.size() - 1);
        for (const ConcreteFile* f : matching[i]) {
          if (opts.cancel) opts.cancel->check();
          if (last) out.stats.groups_considered++;
          Partial p = partial;
          if (!extend(p, i, f)) continue;
          combo[i] = f;
          if (last) {
            gb.try_group(combo, p.implicits);
          } else {
            rec(i + 1, p);
          }
        }
      };
  rec(0, Partial{});
  return out;
}

}  // namespace adv::afc
