#include "afc/dataset_model.h"

#include <algorithm>
#include <functional>

#include "common/error.h"

namespace adv::afc {

namespace {

// Collects leaf datasets in declaration order.
void collect_leaves(const meta::DatasetDecl& d,
                    std::vector<const meta::DatasetDecl*>& out) {
  if (d.is_leaf()) {
    out.push_back(&d);
    return;
  }
  for (const auto& c : d.children) collect_leaves(c, out);
}

// Enumerates all assignments of the pattern's binding variables, invoking
// `fn(env)` for each.
void enumerate_bindings(const meta::FilePattern& fp,
                        const std::function<void(const meta::VarEnv&)>& fn) {
  meta::VarEnv env;
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == fp.bindings.size()) {
      fn(env);
      return;
    }
    const auto& b = fp.bindings[i];
    meta::VarEnv empty;
    int64_t lo = b.range.lo->eval(empty);
    int64_t hi = b.range.hi->eval(empty);
    int64_t step = b.range.step ? b.range.step->eval(empty) : 1;
    for (int64_t v = lo; v <= hi; v += step) {
      env.set(b.var, v);
      rec(i + 1);
    }
  };
  rec(0);
}

}  // namespace

DatasetModel::DatasetModel(meta::Descriptor desc,
                           const std::string& dataset_name,
                           std::string root_path)
    : desc_(std::move(desc)),
      dataset_name_(dataset_name),
      root_path_(std::move(root_path)) {
  const meta::DatasetDecl* top = desc_.find_dataset(dataset_name);
  if (!top)
    throw QueryError("unknown dataset '" + dataset_name +
                     "' (no DATASET declaration)");
  schema_ = &desc_.schema_of(*top);
  storage_ = desc_.find_storage(top->name);
  if (storage_) {
    node_names_ = storage_->node_names();
    num_nodes_ = static_cast<int>(node_names_.size());
  } else {
    node_names_ = {"local"};
    num_nodes_ = 1;
  }

  std::vector<const meta::DatasetDecl*> leaf_decls;
  collect_leaves(*top, leaf_decls);
  if (leaf_decls.empty())
    throw ValidationError("dataset '" + dataset_name + "' has no leaf "
                          "datasets");

  for (std::size_t i = 0; i < leaf_decls.size(); ++i) {
    LeafInfo li;
    li.decl = leaf_decls[i];
    li.name = leaf_decls[i]->name;
    leaves_.push_back(std::move(li));
  }
  files_of_leaf_.resize(leaves_.size());

  for (std::size_t i = 0; i < leaves_.size(); ++i)
    enumerate_files(*leaves_[i].decl, static_cast<int>(i));

  // Region skeletons and binding-attr lists per leaf.
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    if (files_of_leaf_[i].empty())
      throw ValidationError("leaf dataset '" + leaves_[i].name +
                            "' produced no concrete files");
    leaves_[i].skeleton = files_[files_of_leaf_[i][0]].regions;
    std::vector<int> battrs;
    for (const auto& fp : leaves_[i].decl->files) {
      for (const auto& b : fp.bindings) {
        int a = schema_->find(b.var);
        if (a >= 0 &&
            std::find(battrs.begin(), battrs.end(), a) == battrs.end())
          battrs.push_back(a);
      }
    }
    leaves_[i].binding_attrs = std::move(battrs);
  }
}

void DatasetModel::enumerate_files(const meta::DatasetDecl& leaf,
                                   int leaf_idx) {
  for (const auto& fp : leaf.files) {
    enumerate_bindings(fp, [&](const meta::VarEnv& env) {
      ConcreteFile cf;
      cf.leaf = leaf_idx;
      cf.env = env;

      // Resolve the path and node.
      std::string path;
      int node = 0;
      bool node_set = false;
      for (const auto& seg : fp.segs) {
        switch (seg.kind) {
          case meta::PatternSeg::Kind::kLiteral:
            path += seg.literal;
            break;
          case meta::PatternSeg::Kind::kVarRef:
            path += std::to_string(env.get(seg.var));
            break;
          case meta::PatternSeg::Kind::kDirRef: {
            int64_t idx = seg.dir_index->eval(env);
            if (!storage_)
              throw ValidationError("DIR[...] used without a storage section");
            if (idx < 0 ||
                static_cast<std::size_t>(idx) >= storage_->dirs.size())
              throw ValidationError(
                  "DIR index " + std::to_string(idx) + " out of range in "
                  "pattern '" + fp.raw + "'");
            const meta::StorageDir& dir = storage_->dirs[idx];
            path += dir.path;
            if (!node_set) {
              auto it = std::find(node_names_.begin(), node_names_.end(),
                                  dir.node_name);
              node = static_cast<int>(it - node_names_.begin());
              node_set = true;
            }
            break;
          }
        }
      }
      cf.path = path;
      cf.full_path = root_path_.empty() ? path : root_path_ + "/" + path;
      cf.node_id = node;

      // Regions under this environment.
      cf.regions = layout::analyze_regions(leaf.dataspace, *schema_,
                                           leaf.local_attrs, env);

      // Implicit points: binding variables naming schema attributes.
      for (const auto& [var, value] : env.vars()) {
        int a = schema_->find(var);
        if (a >= 0)
          cf.implicit_points.emplace_back(a, static_cast<double>(value));
      }

      // Implicit spans: loops (structure or record) naming schema
      // attributes.  A loop ident that names an attribute constrains that
      // attribute's values within this file to the loop range.
      std::vector<std::pair<int, layout::EvalRange>> spans;
      for (const auto& r : cf.regions) {
        for (const auto& pl : r.path) {
          int a = schema_->find(pl.ident);
          if (a >= 0) spans.emplace_back(a, pl.range);
        }
        int a = schema_->find(r.record_ident);
        if (a >= 0) spans.emplace_back(a, r.record_range);
      }
      // Merge per attribute (hull over regions).
      std::sort(spans.begin(), spans.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      for (std::size_t i = 0; i < spans.size();) {
        int attr = spans[i].first;
        double lo = static_cast<double>(spans[i].second.lo);
        double hi = static_cast<double>(spans[i].second.hi);
        std::size_t j = i + 1;
        while (j < spans.size() && spans[j].first == attr) {
          lo = std::min(lo, static_cast<double>(spans[j].second.lo));
          hi = std::max(hi, static_cast<double>(spans[j].second.hi));
          ++j;
        }
        cf.implicit_spans.push_back({attr, lo, hi});
        i = j;
      }

      files_of_leaf_[leaf_idx].push_back(static_cast<int>(files_.size()));
      files_.push_back(std::move(cf));
    });
  }
}

uint64_t DatasetModel::expected_file_bytes(const ConcreteFile& f) const {
  const LeafInfo& li = leaves_[f.leaf];
  return layout::dataspace_bytes(li.decl->dataspace, *schema_,
                                 li.decl->local_attrs, f.env);
}

}  // namespace adv::afc
