#include "index/minmax.h"

#include <limits>

#include "codegen/plan.h"
#include "common/error.h"
#include "common/io.h"

namespace adv::index {

void MinMaxIndex::add(ChunkKey key, ChunkBounds bounds) {
  if (bounds.bounds.size() != attrs_.size())
    throw InternalError("MinMaxIndex::add: bounds arity mismatch");
  entries_[std::move(key)] = std::move(bounds);
}

const ChunkBounds* MinMaxIndex::find(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool MinMaxIndex::may_match(const std::string& file_path, uint64_t offset,
                            const expr::QueryIntervals& qi) const {
  const ChunkBounds* b = find({file_path, offset});
  if (!b) return true;  // unindexed chunk: cannot prune
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (!qi.chunk_may_match(static_cast<std::size_t>(attrs_[i]),
                            b->bounds[i].first, b->bounds[i].second))
      return false;
  }
  return true;
}

bool MinMaxIndex::chunk_bounds(const std::string& file_path, uint64_t offset,
                               std::vector<std::pair<double, double>>& out)
    const {
  const ChunkBounds* b = find({file_path, offset});
  if (!b) return false;
  out = b->bounds;
  return true;
}

void MinMaxIndex::save(const std::string& path) const {
  BufferedWriter w(path);
  const char magic[8] = {'A', 'D', 'V', 'M', 'M', 'I', 'X', '1'};
  w.write(magic, 8);
  w.write_pod(static_cast<uint32_t>(attrs_.size()));
  for (int a : attrs_) w.write_pod(static_cast<int32_t>(a));
  w.write_pod(static_cast<uint64_t>(entries_.size()));
  for (const auto& [key, b] : entries_) {
    w.write_pod(static_cast<uint32_t>(key.file.size()));
    w.write(key.file.data(), key.file.size());
    w.write_pod(key.offset);
    for (const auto& [lo, hi] : b.bounds) {
      w.write_pod(lo);
      w.write_pod(hi);
    }
  }
  w.close();
}

MinMaxIndex MinMaxIndex::load(const std::string& path) {
  FileHandle f(path);
  uint64_t pos = 0;
  auto read = [&](void* out, std::size_t n) {
    f.pread_exact(out, n, pos);
    pos += n;
  };
  char magic[8];
  read(magic, 8);
  if (std::string(magic, 8) != "ADVMMIX1")
    throw IoError("'" + path + "' is not a min/max index file");
  uint32_t nattrs;
  read(&nattrs, 4);
  std::vector<int> attrs(nattrs);
  for (auto& a : attrs) {
    int32_t v;
    read(&v, 4);
    a = v;
  }
  MinMaxIndex idx(std::move(attrs));
  uint64_t n;
  read(&n, 8);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t len;
    read(&len, 4);
    std::string file(len, '\0');
    read(file.data(), len);
    ChunkKey key;
    key.file = std::move(file);
    read(&key.offset, 8);
    ChunkBounds b;
    b.bounds.resize(idx.attrs_.size());
    for (auto& [lo, hi] : b.bounds) {
      read(&lo, 8);
      read(&hi, 8);
    }
    idx.entries_[std::move(key)] = std::move(b);
  }
  return idx;
}

MinMaxIndex MinMaxIndex::build(const codegen::DataServicePlan& plan,
                               std::vector<int> attrs) {
  const meta::Schema& schema = plan.schema();
  if (attrs.empty()) {
    // Use the DATAINDEX declaration of the dataset.
    const meta::DatasetDecl* decl =
        plan.model().descriptor().find_dataset(plan.model().dataset_name());
    check_internal(decl != nullptr, "dataset decl disappeared");
    for (const auto& name : decl->dataindex) {
      int a = schema.find(name);
      if (a >= 0) attrs.push_back(a);
    }
  }
  if (attrs.empty())
    throw QueryError("MinMaxIndex::build: dataset '" +
                     plan.model().dataset_name() +
                     "' declares no DATAINDEX attributes");

  // Scan all chunks with a SELECT of the indexed attributes.
  std::string sql = "SELECT ";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i) sql += ", ";
    sql += schema.at(static_cast<std::size_t>(attrs[i])).name;
  }
  sql += " FROM " + plan.model().dataset_name();
  expr::BoundQuery q = plan.bind(sql);
  afc::PlanResult pr = plan.index_fn(q);

  MinMaxIndex idx(attrs);
  codegen::Extractor ex;
  std::vector<codegen::GroupBinding> bindings;
  for (const auto& g : pr.groups)
    bindings.push_back(codegen::bind_group(g, q, schema));

  for (const auto& a : pr.afcs) {
    const afc::GroupPlan& gp = pr.groups[static_cast<std::size_t>(a.group)];
    expr::Table t(q.result_columns());
    ex.extract(gp, a, bindings[static_cast<std::size_t>(a.group)], q, t);
    ChunkBounds b;
    b.bounds.assign(attrs.size(),
                    {std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()});
    for (std::size_t c = 0; c < attrs.size(); ++c) {
      for (double v : t.column(c)) {
        b.bounds[c].first = std::min(b.bounds[c].first, v);
        b.bounds[c].second = std::max(b.bounds[c].second, v);
      }
    }
    for (std::size_t c = 0; c < gp.chunks.size(); ++c) {
      if (gp.chunks[c].fields.empty()) continue;
      idx.add({gp.files[static_cast<std::size_t>(gp.chunks[c].file)],
               a.offsets[c]},
              b);
    }
  }
  return idx;
}

}  // namespace adv::index
