// Min/max chunk index — the indexing service's persistent metadata
// (paper §2.3: "A spatial index is built so that chunks that intersect the
// query are searched for quickly").
//
// For every data chunk, identified by (file path, byte offset), the index
// stores the [min, max] of each DATAINDEX attribute over the chunk's rows.
// The planner's ChunkFilter hook consults it to drop aligned chunk sets
// that provably contain no matching rows (Titan's spatial chunks; any
// layout whose DATAINDEX attributes are stored rather than implicit).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "afc/types.h"

namespace adv::codegen {
class DataServicePlan;
}

namespace adv::index {

struct ChunkKey {
  std::string file;
  uint64_t offset = 0;
  auto operator<=>(const ChunkKey&) const = default;
};

struct ChunkBounds {
  // Parallel to MinMaxIndex::attrs(): [min, max] per indexed attribute.
  std::vector<std::pair<double, double>> bounds;
};

class MinMaxIndex : public afc::ChunkFilter, public afc::ChunkBoundsSource {
 public:
  MinMaxIndex() = default;
  explicit MinMaxIndex(std::vector<int> attrs) : attrs_(std::move(attrs)) {}

  const std::vector<int>& attrs() const { return attrs_; }
  std::size_t num_chunks() const { return entries_.size(); }

  void add(ChunkKey key, ChunkBounds bounds);
  const ChunkBounds* find(const ChunkKey& key) const;
  const std::map<ChunkKey, ChunkBounds>& entries() const { return entries_; }

  // ChunkFilter: conservative membership test.  Unindexed chunks pass.
  bool may_match(const std::string& file_path, uint64_t offset,
                 const expr::QueryIntervals& qi) const override;

  // ChunkBoundsSource (for the code emitter).
  const std::vector<int>& bounds_attrs() const override { return attrs_; }
  bool chunk_bounds(const std::string& file_path, uint64_t offset,
                    std::vector<std::pair<double, double>>& out)
      const override;

  // Binary persistence.
  void save(const std::string& path) const;
  static MinMaxIndex load(const std::string& path);

  // Builds the index by scanning every chunk of `plan` and recording the
  // min/max of the DATAINDEX attributes declared in the dataset (or of
  // `attrs` when non-empty).  This is the "index build" pass a repository
  // administrator runs once after ingesting data.
  static MinMaxIndex build(const codegen::DataServicePlan& plan,
                           std::vector<int> attrs = {});

 private:
  std::vector<int> attrs_;
  std::map<ChunkKey, ChunkBounds> entries_;
};

}  // namespace adv::index
