#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace adv::index {

void Box::extend(const Box& o) {
  for (std::size_t d = 0; d < lo.size(); ++d) {
    lo[d] = std::min(lo[d], o.lo[d]);
    hi[d] = std::max(hi[d], o.hi[d]);
  }
}

namespace {

double center(const Box& b, std::size_t d) { return (b.lo[d] + b.hi[d]) / 2; }

// Recursive STR: orders `idx` so that consecutive runs of `run` elements
// form spatially coherent tiles.
void str_sort(std::vector<uint32_t>& idx, std::size_t begin, std::size_t end,
              const std::vector<Box>& boxes, std::size_t dim,
              std::size_t dims, std::size_t leaf_run) {
  if (dim + 1 >= dims || end - begin <= leaf_run) {
    std::sort(idx.begin() + begin, idx.begin() + end,
              [&](uint32_t a, uint32_t b) {
                return center(boxes[a], dim) < center(boxes[b], dim);
              });
    return;
  }
  std::sort(idx.begin() + begin, idx.begin() + end,
            [&](uint32_t a, uint32_t b) {
              return center(boxes[a], dim) < center(boxes[b], dim);
            });
  // Slice into ~sqrt(n/run) slabs along this dimension, recurse within.
  std::size_t n = end - begin;
  std::size_t slabs = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(std::pow(static_cast<double>(n) / leaf_run,
                                1.0 / static_cast<double>(dims - dim)))));
  std::size_t per_slab = (n + slabs - 1) / slabs;
  for (std::size_t s = begin; s < end; s += per_slab)
    str_sort(idx, s, std::min(end, s + per_slab), boxes, dim + 1, dims,
             leaf_run);
}

}  // namespace

RTree RTree::build(std::vector<Entry> entries, std::size_t dims,
                   std::size_t fanout) {
  if (fanout < 2) fanout = 2;
  RTree t;
  t.entries_ = std::move(entries);
  t.num_entries_ = t.entries_.size();
  if (t.entries_.empty()) {
    Node root;
    root.leaf = true;
    root.box = Box(std::vector<double>(dims, 0.0),
                   std::vector<double>(dims, -1.0));  // empty box
    t.nodes_.push_back(std::move(root));
    t.root_ = 0;
    t.height_ = 1;
    return t;
  }
  for (const auto& e : t.entries_)
    check_internal(e.box.dims() == dims, "RTree entry dimension mismatch");

  // STR-order the entries.
  std::vector<Box> boxes;
  boxes.reserve(t.entries_.size());
  for (const auto& e : t.entries_) boxes.push_back(e.box);
  std::vector<uint32_t> order(t.entries_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  str_sort(order, 0, order.size(), boxes, 0, dims, fanout);

  // Leaf level.
  std::vector<uint32_t> level;
  for (std::size_t i = 0; i < order.size(); i += fanout) {
    Node n;
    n.leaf = true;
    std::size_t end = std::min(order.size(), i + fanout);
    n.box = t.entries_[order[i]].box;
    for (std::size_t j = i; j < end; ++j) {
      n.children.push_back(order[j]);
      n.box.extend(t.entries_[order[j]].box);
    }
    level.push_back(static_cast<uint32_t>(t.nodes_.size()));
    t.nodes_.push_back(std::move(n));
  }
  t.height_ = 1;

  // Inner levels.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (std::size_t i = 0; i < level.size(); i += fanout) {
      Node n;
      n.leaf = false;
      std::size_t end = std::min(level.size(), i + fanout);
      n.box = t.nodes_[level[i]].box;
      for (std::size_t j = i; j < end; ++j) {
        n.children.push_back(level[j]);
        n.box.extend(t.nodes_[level[j]].box);
      }
      next.push_back(static_cast<uint32_t>(t.nodes_.size()));
      t.nodes_.push_back(std::move(n));
    }
    level = std::move(next);
    t.height_++;
  }
  t.root_ = level[0];
  return t;
}

void RTree::query(const Box& q, std::vector<uint64_t>& out) const {
  last_visited_ = 0;
  if (num_entries_ == 0) return;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    const Node& n = nodes_[ni];
    last_visited_++;
    if (!n.box.intersects(q)) continue;
    if (n.leaf) {
      for (uint32_t ei : n.children)
        if (entries_[ei].box.intersects(q)) out.push_back(entries_[ei].payload);
    } else {
      for (uint32_t ci : n.children) stack.push_back(ci);
    }
  }
}

}  // namespace adv::index
