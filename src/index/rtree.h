// Packed (STR bulk-loaded) R-tree over axis-aligned boxes.
//
// The indexing service uses it to answer "which chunks intersect this query
// box" in sublinear time when a dataset has many chunks; the ablation
// benchmark bench_ablation_index compares it against the brute-force
// min/max scan.
#pragma once

#include <cstdint>
#include <vector>

namespace adv::index {

struct Box {
  std::vector<double> lo, hi;

  Box() = default;
  Box(std::vector<double> l, std::vector<double> h)
      : lo(std::move(l)), hi(std::move(h)) {}

  std::size_t dims() const { return lo.size(); }

  bool intersects(const Box& o) const {
    for (std::size_t d = 0; d < lo.size(); ++d)
      if (o.hi[d] < lo[d] || o.lo[d] > hi[d]) return false;
    return true;
  }

  // Grows to cover `o`.
  void extend(const Box& o);
};

class RTree {
 public:
  struct Entry {
    Box box;
    uint64_t payload = 0;
  };

  // Sort-Tile-Recursive bulk load.  `dims` must match every entry.
  static RTree build(std::vector<Entry> entries, std::size_t dims,
                     std::size_t fanout = 16);

  std::size_t size() const { return num_entries_; }
  int height() const { return height_; }

  // Payloads of all entries intersecting `q` (order unspecified).
  void query(const Box& q, std::vector<uint64_t>& out) const;

  // Number of nodes visited by the last query (diagnostics for the
  // ablation benchmark).  Not thread-safe across concurrent queries.
  std::size_t last_nodes_visited() const { return last_visited_; }

 private:
  struct Node {
    Box box;
    bool leaf = false;
    std::vector<uint32_t> children;  // node indices, or entry indices (leaf)
  };

  std::vector<Node> nodes_;
  std::vector<Entry> entries_;
  uint32_t root_ = 0;
  std::size_t num_entries_ = 0;
  int height_ = 0;
  mutable std::size_t last_visited_ = 0;
};

}  // namespace adv::index
