#include "index/spatial_filter.h"

#include <limits>

namespace adv::index {

RTreeFilter::RTreeFilter(const MinMaxIndex& idx, std::size_t fanout)
    : idx_(idx) {
  std::vector<RTree::Entry> entries;
  uint64_t ordinal = 0;
  for (const auto& [key, b] : idx.entries()) {
    RTree::Entry e;
    e.payload = ordinal;
    std::vector<double> lo, hi;
    for (const auto& [l, h] : b.bounds) {
      lo.push_back(l);
      hi.push_back(h);
    }
    e.box = Box(std::move(lo), std::move(hi));
    entries.push_back(std::move(e));
    ordinals_[key] = ordinal++;
  }
  tree_ = RTree::build(std::move(entries), idx.attrs().size(), fanout);
}

Box RTreeFilter::query_box(const expr::QueryIntervals& qi) const {
  std::vector<double> lo, hi;
  for (int attr : idx_.attrs()) {
    const expr::Interval& iv = qi.interval(static_cast<std::size_t>(attr));
    lo.push_back(std::isfinite(iv.lo) ? iv.lo
                                      : -std::numeric_limits<double>::max());
    hi.push_back(std::isfinite(iv.hi) ? iv.hi
                                      : std::numeric_limits<double>::max());
  }
  return Box(std::move(lo), std::move(hi));
}

bool RTreeFilter::may_match(const std::string& file_path, uint64_t offset,
                            const expr::QueryIntervals& qi) const {
  auto it = ordinals_.find({file_path, offset});
  if (it == ordinals_.end()) return true;  // unindexed chunk
  if (cached_qi_ != &qi) {
    cached_qi_ = &qi;
    hits_.assign(ordinals_.size(), false);
    std::vector<uint64_t> found;
    tree_.query(query_box(qi), found);
    for (uint64_t f : found) hits_[f] = true;
  }
  return hits_[it->second];
}

}  // namespace adv::index
