// ChunkFilter backed by an R-tree over the min/max chunk index.
//
// Semantically identical to filtering with the MinMaxIndex directly, but
// the intersecting-chunk set is computed once per query with a tree walk
// instead of a per-chunk scan.  Create one filter per query execution; the
// hit set is cached against the QueryIntervals instance it first sees.
#pragma once

#include <map>
#include <vector>

#include "index/minmax.h"
#include "index/rtree.h"

namespace adv::index {

class RTreeFilter : public afc::ChunkFilter {
 public:
  explicit RTreeFilter(const MinMaxIndex& idx, std::size_t fanout = 16);

  bool may_match(const std::string& file_path, uint64_t offset,
                 const expr::QueryIntervals& qi) const override;

  const RTree& rtree() const { return tree_; }

  // The query box an interval set induces over the indexed attributes.
  Box query_box(const expr::QueryIntervals& qi) const;

 private:
  const MinMaxIndex& idx_;
  RTree tree_;
  std::map<ChunkKey, uint64_t> ordinals_;
  mutable const expr::QueryIntervals* cached_qi_ = nullptr;
  mutable std::vector<bool> hits_;
};

}  // namespace adv::index
