// C++ source emission: the compiler's second backend.
//
// Besides the in-process specialized plans (plan.h), the tool can emit a
// standalone C++ translation unit implementing the index and extraction
// functions for one dataset — the form the paper describes, where generated
// code is compiled into the STORM services.  The emitted unit has no advirt
// dependencies; its ABI is:
//
//   extern "C" int         advgen_num_attrs(void);
//   extern "C" const char* advgen_attr_name(int i);
//   extern "C" int         advgen_num_groups(void);
//   extern "C" int         advgen_group_node(int g);   // hosting node id
//   extern "C" long long   advgen_scan_group(int g, const char* root,
//                                      const double* lo, const double* hi,
//                                      void (*row_cb)(void*, const double*),
//                                      void* ctx);
//   extern "C" long long   advgen_scan(const char* root,
//                                      const double* lo, const double* hi,
//                                      void (*row_cb)(void*, const double*),
//                                      void* ctx);
//
// advgen_scan_group scans a single file group (a set of files whose chunks
// align); groups carry the id of the cluster node holding their files, so
// distributed middleware can run each node's groups on that node.
//
// advgen_scan evaluates a conjunctive interval query (closed [lo[i], hi[i]]
// per schema attribute; use -/+HUGE_VAL for unconstrained) with the same
// chunk-level pruning the interpreted index function performs, invokes
// row_cb for every matching row (values in schema order), and returns the
// number of rows delivered (negative errno-style value on I/O failure).
// Residual predicates beyond intervals (UDF filters, OR trees) remain the
// host's job, exactly as STORM's filtering service sits above extraction.
#pragma once

#include <string>

#include "afc/dataset_model.h"
#include "expr/predicate.h"

namespace adv::codegen {

// Emits the translation unit.  Group structure is unrolled at emission
// time, so this is intended for datasets with a moderate number of files.
//
// When `bounds` is given (e.g. an index::MinMaxIndex built over the
// dataset), per-chunk attribute bounds are embedded into the generated
// code and chunks whose bounds are disjoint from the query intervals are
// skipped without I/O — the compiled equivalent of the indexing service.
std::string emit_cpp(const afc::DatasetModel& model,
                     const afc::ChunkBoundsSource* bounds = nullptr);

// True when the query's predicate can be compiled into a standalone
// translation unit: no UDF calls (opaque host function pointers cannot
// cross the dlopen boundary; such queries run on the vector tier).
bool can_jit_query(const expr::BoundQuery& q);

// Emits the per-plan extract+filter translation unit for the jit kernel
// tier (ABI in src/kernels/jit.h): one `advjit_g<g>` function per group of
// `pr` with chunk offsets and strides hard-coded, implicit-attribute
// constants folded to literals (hexfloat, so values round-trip exactly),
// and the predicate inlined as a plain C++ expression.  The source embeds
// no file paths, so two plans with identical layouts and SQL share one
// compiled module via the source-hash cache key.
std::string emit_extract_cpp(const afc::PlanResult& pr,
                             const expr::BoundQuery& q);

}  // namespace adv::codegen
