// DataServicePlan — the compiler front door and the library's primary API.
//
// Construction performs the expensive metadata analysis once ("compile
// time" in the paper's two-phase design): descriptor parsing, concrete-file
// enumeration, region/stride analysis.  Afterwards index_fn() and execute()
// do only cheap per-query work.
//
//   DataServicePlan plan =
//       DataServicePlan::from_text(descriptor_text, "IparsData", root_dir);
//   expr::Table t = plan.execute(
//       "SELECT * FROM IparsData WHERE TIME > 1000 AND TIME < 1100");
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "afc/dataset_model.h"
#include "afc/planner.h"
#include "codegen/extractor.h"

namespace adv::codegen {

class DataServicePlan {
 public:
  // Compiles `dataset_name` of an already-parsed descriptor.  `root_path`
  // is the directory the storage DIR paths are relative to.
  DataServicePlan(meta::Descriptor desc, const std::string& dataset_name,
                  const std::string& root_path);

  // Parses `descriptor_text` and compiles.  Throws ParseError /
  // ValidationError / QueryError.
  static DataServicePlan from_text(const std::string& descriptor_text,
                                   const std::string& dataset_name,
                                   const std::string& root_path);

  const afc::DatasetModel& model() const { return *model_; }
  const meta::Schema& schema() const { return model_->schema(); }

  // Parses and binds a query.  The FROM clause must name this dataset (or
  // its schema), case-insensitively.
  expr::BoundQuery bind(const std::string& sql) const;

  // The generated index function: query -> aligned file chunk sets.
  afc::PlanResult index_fn(const expr::BoundQuery& q,
                           const afc::PlannerOptions& opts = {}) const;

  // Convenience single-process execution: plan + extract + filter.
  // (The STORM middleware runs the same pieces per virtual node instead.)
  expr::Table execute(const std::string& sql,
                      const afc::PlannerOptions& opts = {},
                      ExtractStats* stats = nullptr) const;
  expr::Table execute(const expr::BoundQuery& q,
                      const afc::PlannerOptions& opts = {},
                      ExtractStats* stats = nullptr) const;

  // Multi-threaded execution: AFCs are distributed round-robin over
  // `threads` workers, each with its own extractor, and the partial tables
  // are concatenated.  Row order differs from execute(); the row set is
  // identical.
  expr::Table execute_parallel(const expr::BoundQuery& q, int threads,
                               const afc::PlannerOptions& opts = {},
                               ExtractStats* stats = nullptr) const;

  // Integrity check: every concrete file must exist with the byte size the
  // layout implies.  Returns human-readable problem descriptions (empty
  // when everything checks out).
  std::vector<std::string> verify_files() const;

 private:
  std::shared_ptr<afc::DatasetModel> model_;
};

}  // namespace adv::codegen
