// The extraction function: turns aligned file chunk sets into rows.
//
// For each AFC, the extractor walks num_rows * bytes_per_row bytes of
// every chunk — decoding directly out of the file's shared memory mapping
// when available, otherwise preading bounded batches into per-extractor
// buffers — zips the streams row by row, decodes the needed fields into a
// dense double buffer, fills in implicit attributes, evaluates the
// residual predicate (including user-defined filters), and hands each
// matching row to a RowSink (zero-copy: the sink sees the decode buffer
// itself).  A Table convenience overload appends to a result table.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "afc/types.h"
#include "common/cancel.h"
#include "common/io.h"
#include "expr/predicate.h"
#include "expr/table.h"

namespace adv::codegen {

struct ExtractStats {
  uint64_t bytes_read = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  // Work the planner's chunk filter (zone-map / min-max index) removed
  // before extraction started: AFCs dropped, rows never scanned, bytes
  // never read.  Filled from PlanStats by whoever ran the index function.
  uint64_t afcs_pruned = 0;
  uint64_t rows_pruned = 0;
  uint64_t bytes_skipped = 0;

  ExtractStats& operator+=(const ExtractStats& o) {
    bytes_read += o.bytes_read;
    rows_scanned += o.rows_scanned;
    rows_matched += o.rows_matched;
    afcs_pruned += o.afcs_pruned;
    rows_pruned += o.rows_pruned;
    bytes_skipped += o.bytes_skipped;
    return *this;
  }
};

// Where each needed slot of a query comes from within one group.
struct SlotSource {
  enum class Kind : uint8_t { kField, kConst, kLoop, kRow };
  Kind kind = Kind::kConst;
  int chunk = -1;            // kField
  uint32_t intra_offset = 0; // kField
  DataType type = DataType::kFloat64;  // kField
  int loop_index = -1;       // kLoop: index into GroupPlan::loops
  double const_value = 0;    // kConst
};

// Per-(group, query) binding of needed slots to sources, with the per-row
// work pre-analyzed: constant/loop fills happen once per AFC, stored-field
// fetches compile to a flat list, and the (at most one) row-varying slot is
// tracked separately.
struct GroupBinding {
  std::vector<SlotSource> slots;

  struct FieldFetch {
    std::size_t chunk;
    uint32_t bpr;
    uint32_t intra;
    DataType type;
    std::size_t slot;
  };
  // Fields the predicate reads (materialized for every row) and fields only
  // the SELECT list needs (materialized lazily for matching rows).
  std::vector<FieldFetch> pred_fetches;
  std::vector<FieldFetch> post_fetches;
  std::vector<std::pair<std::size_t, double>> const_fills;  // (slot, value)
  std::vector<std::pair<std::size_t, int>> loop_fills;  // (slot, loop index)
  int row_slot = -1;
};

// Builds the binding; throws InternalError when a needed attribute has no
// source in the group (the planner guarantees one exists).
GroupBinding bind_group(const afc::GroupPlan& gp, const expr::BoundQuery& q,
                        const meta::Schema& schema);

// Receives matched rows as they are decoded.  `vals` points at the
// extractor's decode buffer — q.select_slots().size() doubles in SELECT
// order, valid only for the duration of the call.  `scan_index` is the
// row's 0-based scan position within the AFC being extracted; combined
// with a per-AFC base it yields a threading-invariant global row sequence
// (see storm's ordering contract in docs/PIPELINE.md).
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual void on_row(const double* vals, uint64_t scan_index) = 0;
};

struct ExtractorOptions {
  // Bounds memory on the pread path: at most ~batch_bytes are buffered per
  // chunk while streaming one AFC.  The mmap path needs no buffering.
  std::size_t batch_bytes = 1 << 20;
  IoMode io_mode = IoMode::kAuto;
  // Cooperative cancellation: polled once per decode batch (batches are
  // capped when a token is present so even a fully-mapped AFC polls every
  // ~64Ki rows); a fired token aborts with CancelledError.
  const CancelToken* cancel = nullptr;
};

// Streaming extractor.  File handles come from the process-wide FileCache
// (opened/mapped once, shared across threads); the per-extractor scratch
// state makes an Extractor instance itself not thread-safe — STORM gives
// each worker its own.
class Extractor {
 public:
  explicit Extractor(std::size_t batch_bytes)
      : Extractor(ExtractorOptions{batch_bytes, IoMode::kAuto}) {}
  explicit Extractor(const ExtractorOptions& opts = {})
      : batch_bytes_(opts.batch_bytes),
        io_mode_(resolve_io_mode(opts.io_mode)),
        cancel_(opts.cancel) {}

  // Extracts one AFC.  `binding` must come from bind_group() of the AFC's
  // group.  Hands each matching row to `sink`.
  ExtractStats extract(const afc::GroupPlan& gp, const afc::Afc& a,
                       const GroupBinding& binding,
                       const expr::BoundQuery& q, RowSink& sink);

  // Convenience overload: appends matching rows to `out`.
  ExtractStats extract(const afc::GroupPlan& gp, const afc::Afc& a,
                       const GroupBinding& binding,
                       const expr::BoundQuery& q, expr::Table& out);

  // Drops this extractor's handle references and per-group state, and
  // invalidates the process-wide handle cache.  Call when switching to a
  // different PlanResult or after files were rewritten.
  void clear_cache() {
    handles_.clear();
    group_handles_.clear();
    FileCache::instance().clear();
  }

 private:
  const FileHandle& handle(const std::string& path);
  const std::vector<const FileHandle*>& group_handles(
      const afc::GroupPlan& gp);

  std::size_t batch_bytes_;
  IoMode io_mode_;
  const CancelToken* cancel_ = nullptr;
  // Shared handles pinned for this extractor's lifetime.
  std::map<std::string, std::shared_ptr<const FileHandle>> handles_;
  // Resolved handles per group (keyed by GroupPlan address; valid while the
  // PlanResult the groups live in is alive).
  std::map<const afc::GroupPlan*, std::vector<const FileHandle*>>
      group_handles_;
  // Scratch reused across AFCs: pread chunk buffers, per-chunk source
  // cursors, the slot row, the projected output row.
  std::vector<std::vector<unsigned char>> bufs_;
  std::vector<const unsigned char*> srcs_;
  std::vector<double> row_;
  std::vector<double> out_row_;
};

}  // namespace adv::codegen
