// The extraction function: turns aligned file chunk sets into rows.
//
// For each AFC, the extractor walks num_rows * bytes_per_row bytes of
// every chunk — decoding directly out of the file's shared memory mapping
// when available, otherwise preading bounded batches into per-extractor
// buffers — and runs one of three kernel tiers over each batch (see
// docs/KERNELS.md):
//
//   interp  row-at-a-time: decode the needed fields into a dense double
//           buffer, evaluate the compiled predicate per row.  The reference
//           engine; always available.
//   vector  columnar: decode predicate columns into arena batch buffers,
//           evaluate the predicate as branch-free mask passes, gather the
//           survivors, materialize output rows batch-at-a-time.
//   jit     a per-plan compiled function (src/kernels/jit.h) does decode,
//           filter and projection in one specialized pass; falls back to
//           vector when no function was bound.
//
// All tiers produce bit-identical rows in the same scan order and hand
// them to a RowSink (zero-copy: the sink sees extractor-owned buffers).
// A Table convenience overload appends to a result table.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "afc/types.h"
#include "common/cancel.h"
#include "common/io.h"
#include "common/kernel_mode.h"
#include "expr/predicate.h"
#include "expr/table.h"
#include "kernels/batch.h"
#include "kernels/jit.h"

namespace adv::codegen {

struct ExtractStats {
  uint64_t bytes_read = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  // Work the planner's chunk filter (zone-map / min-max index) removed
  // before extraction started: AFCs dropped, rows never scanned, bytes
  // never read.  Filled from PlanStats by whoever ran the index function.
  uint64_t afcs_pruned = 0;
  uint64_t rows_pruned = 0;
  uint64_t bytes_skipped = 0;
  // Which kernel tier actually ran, one count per extracted AFC.  Lets
  // callers (and tests) assert that e.g. a jit request really used the
  // generated function rather than silently falling back.
  uint64_t afcs_interp = 0;
  uint64_t afcs_vector = 0;
  uint64_t afcs_jit = 0;

  ExtractStats& operator+=(const ExtractStats& o) {
    bytes_read += o.bytes_read;
    rows_scanned += o.rows_scanned;
    rows_matched += o.rows_matched;
    afcs_pruned += o.afcs_pruned;
    rows_pruned += o.rows_pruned;
    bytes_skipped += o.bytes_skipped;
    afcs_interp += o.afcs_interp;
    afcs_vector += o.afcs_vector;
    afcs_jit += o.afcs_jit;
    return *this;
  }
};

// Where each needed slot of a query comes from within one group.
struct SlotSource {
  enum class Kind : uint8_t { kField, kConst, kLoop, kRow };
  Kind kind = Kind::kConst;
  int chunk = -1;            // kField
  uint32_t intra_offset = 0; // kField
  DataType type = DataType::kFloat64;  // kField
  int loop_index = -1;       // kLoop: index into GroupPlan::loops
  double const_value = 0;    // kConst
};

// Per-(group, query) binding of needed slots to sources, with the per-row
// work pre-analyzed: constant/loop fills happen once per AFC, stored-field
// fetches compile to a flat list, and the (at most one) row-varying slot is
// tracked separately.
struct GroupBinding {
  std::vector<SlotSource> slots;

  struct FieldFetch {
    std::size_t chunk;
    uint32_t bpr;
    uint32_t intra;
    DataType type;
    std::size_t slot;
  };
  // Fields the predicate reads (materialized for every row) and fields only
  // the SELECT list needs (materialized lazily for matching rows).
  std::vector<FieldFetch> pred_fetches;
  std::vector<FieldFetch> post_fetches;
  std::vector<std::pair<std::size_t, double>> const_fills;  // (slot, value)
  std::vector<std::pair<std::size_t, int>> loop_fills;  // (slot, loop index)
  int row_slot = -1;

  // Generated extract+filter function for this group, bound by the caller
  // when a JIT module is available (storm's run_node, the plan cache).
  // Null means the jit tier falls back to vector for this group.
  kernels::JitExtractFn jit_fn = nullptr;
};

// Builds the binding; throws InternalError when a needed attribute has no
// source in the group (the planner guarantees one exists).
GroupBinding bind_group(const afc::GroupPlan& gp, const expr::BoundQuery& q,
                        const meta::Schema& schema);

// Receives matched rows as they are decoded.  `vals` points at the
// extractor's decode buffer — q.select_slots().size() doubles in SELECT
// order, valid only for the duration of the call.  `scan_index` is the
// row's 0-based scan position within the AFC being extracted; combined
// with a per-AFC base it yields a threading-invariant global row sequence
// (see storm's ordering contract in docs/PIPELINE.md).
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual void on_row(const double* vals, uint64_t scan_index) = 0;

  // Batch delivery: `rows` holds nrows * ncols doubles row-major,
  // scan_index[i] is row i's scan position.  The vector and jit tiers call
  // this once per batch; sinks that can ingest in bulk override it, the
  // default preserves per-row semantics exactly.
  virtual void on_rows(const double* rows, std::size_t ncols,
                       std::size_t nrows, const uint64_t* scan_index) {
    for (std::size_t i = 0; i < nrows; ++i)
      on_row(rows + i * ncols, scan_index[i]);
  }
};

struct ExtractorOptions {
  // Bounds memory on the pread path: at most ~batch_bytes are buffered per
  // chunk while streaming one AFC.  The mmap path needs no buffering.
  std::size_t batch_bytes = 1 << 20;
  IoMode io_mode = IoMode::kAuto;
  // Cooperative cancellation: polled once per decode batch (batches are
  // capped when a token is present so even a fully-mapped AFC polls every
  // ~64Ki rows); a fired token aborts with CancelledError.
  const CancelToken* cancel = nullptr;
  // Kernel tier; kAuto resolves via ADV_KERNEL_MODE (default vector).
  KernelMode kernel_mode = KernelMode::kAuto;
};

// Streaming extractor.  File handles come from the process-wide FileCache
// (opened/mapped once, shared across threads); the per-extractor scratch
// state makes an Extractor instance itself not thread-safe — STORM gives
// each worker its own.
class Extractor {
 public:
  explicit Extractor(std::size_t batch_bytes)
      : Extractor(ExtractorOptions{batch_bytes, IoMode::kAuto}) {}
  explicit Extractor(const ExtractorOptions& opts = {})
      : batch_bytes_(opts.batch_bytes),
        io_mode_(resolve_io_mode(opts.io_mode)),
        cancel_(opts.cancel),
        kernel_mode_(resolve_kernel_mode(opts.kernel_mode)) {}

  KernelMode kernel_mode() const { return kernel_mode_; }

  // Extracts one AFC.  `binding` must come from bind_group() of the AFC's
  // group.  Hands each matching row to `sink`.
  ExtractStats extract(const afc::GroupPlan& gp, const afc::Afc& a,
                       const GroupBinding& binding,
                       const expr::BoundQuery& q, RowSink& sink);

  // Convenience overload: appends matching rows to `out`.
  ExtractStats extract(const afc::GroupPlan& gp, const afc::Afc& a,
                       const GroupBinding& binding,
                       const expr::BoundQuery& q, expr::Table& out);

  // Drops this extractor's handle references and per-group state, and
  // invalidates the process-wide handle cache.  Call when switching to a
  // different PlanResult or after files were rewritten.
  void clear_cache() {
    handles_.clear();
    group_handles_.clear();
    FileCache::instance().clear();
  }

 private:
  const FileHandle& handle(const std::string& path);
  const std::vector<const FileHandle*>& group_handles(
      const afc::GroupPlan& gp);

  // One kernel tier per batch; all share the chunk-cursor setup in
  // extract().  `srcs` point at the batch base of every chunk, `done` is
  // the batch's first in-AFC row index, `n` its row count.
  void run_interp(const afc::GroupPlan& gp, const afc::Afc& a,
                  const GroupBinding& binding, const expr::BoundQuery& q,
                  RowSink& sink, const unsigned char** srcs, uint64_t done,
                  uint64_t n, ExtractStats& stats);
  void run_vector(const afc::GroupPlan& gp, const afc::Afc& a,
                  const GroupBinding& binding, const expr::BoundQuery& q,
                  RowSink& sink, const unsigned char** srcs, uint64_t done,
                  uint64_t n, ExtractStats& stats);
  void run_jit(const afc::GroupPlan& gp, const afc::Afc& a,
               const GroupBinding& binding, const expr::BoundQuery& q,
               RowSink& sink, const unsigned char** srcs, uint64_t done,
               uint64_t n, ExtractStats& stats);

  std::size_t batch_bytes_;
  IoMode io_mode_;
  const CancelToken* cancel_ = nullptr;
  KernelMode kernel_mode_ = KernelMode::kVector;
  // Shared handles pinned for this extractor's lifetime.
  std::map<std::string, std::shared_ptr<const FileHandle>> handles_;
  // Resolved handles per group (keyed by GroupPlan address; valid while the
  // PlanResult the groups live in is alive).
  std::map<const afc::GroupPlan*, std::vector<const FileHandle*>>
      group_handles_;
  // Scratch reused across AFCs: pread chunk buffers, per-chunk source
  // cursors, the slot row, the projected output row.
  std::vector<std::vector<unsigned char>> bufs_;
  std::vector<const unsigned char*> srcs_;
  std::vector<double> row_;
  std::vector<double> out_row_;
  // Columnar scratch for the vector/jit tiers, grow-only across batches.
  kernels::BatchArena arena_;
  std::vector<const double*> colptrs_;
  std::vector<uint8_t> slot_from_pred_col_;
};

}  // namespace adv::codegen
