#include "codegen/plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <numeric>

#include "common/io.h"
#include "common/thread_pool.h"
#include "common/string_util.h"

namespace adv::codegen {

namespace {

// Column descriptors of the scan rows extraction produces for a pushdown
// query (group keys first, then aggregate inputs — select_slots order).
std::vector<expr::Table::Column> scan_columns(const expr::BoundQuery& q,
                                              const meta::Schema& schema) {
  std::vector<expr::Table::Column> cols;
  for (int a : q.select_attrs()) {
    const auto& attr = schema.at(static_cast<std::size_t>(a));
    cols.push_back({attr.name, attr.type});
  }
  return cols;
}

// Naive client-side aggregation / top-k over extracted scan rows — the
// differential reference the dq harness compares the pushdown engine
// against (docs/AGGREGATION.md).  Deliberately independent of src/agg:
// std::map grouping, plain left-to-right double accumulation, its own
// sort.  Keys, COUNT, MIN/MAX, and row ordering are exact matches for the
// engine's documented contract; SUM/AVG values may differ within float
// tolerance (plain sums vs the engine's exact superaccumulator).
expr::Table naive_pushdown(const expr::BoundQuery& q,
                           const expr::Table& scan) {
  const std::vector<expr::Table::Column> out_schema = q.result_columns();
  const std::size_t width = out_schema.size();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // IEEE total order as an unsigned compare; the documented contract for
  // both group-key identity (NaN groups with NaN, -0 with +0 after
  // canonicalization) and ORDER BY.
  auto obits = [](double v) -> uint64_t {
    uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return (b >> 63) ? ~b : b | (uint64_t{1} << 63);
  };

  std::vector<double> rows;  // final rows, row-major `width` wide
  if (q.has_aggregates()) {
    struct Acc {
      uint64_t count = 0;
      double sum = 0, mn = 0, mx = 0;
      bool seen = false;
    };
    struct Group {
      std::vector<double> keys;
      std::vector<Acc> accs;
    };
    const auto& key_cols = q.group_key_cols();
    const auto& items = q.agg_items();
    std::map<std::vector<uint64_t>, Group> groups;
    std::vector<double> vals(scan.columns().size());
    std::vector<double> kv(key_cols.size());
    std::vector<uint64_t> kb(key_cols.size());
    for (std::size_t r = 0; r < scan.num_rows(); ++r) {
      for (std::size_t c = 0; c < vals.size(); ++c) vals[c] = scan.at(r, c);
      for (std::size_t k = 0; k < key_cols.size(); ++k) {
        double v = vals[static_cast<std::size_t>(key_cols[k])];
        if (std::isnan(v)) v = qnan;
        if (v == 0) v = 0.0;
        kv[k] = v;
        kb[k] = obits(v);
      }
      Group& g = groups[kb];
      if (g.accs.empty()) {
        g.keys = kv;
        g.accs.resize(items.size());
      }
      for (std::size_t j = 0; j < items.size(); ++j) {
        Acc& a = g.accs[j];
        ++a.count;
        if (items[j].fn == sql::AggFn::kCount) continue;
        const double v = items[j].input.eval(vals.data());
        a.sum += v;
        if (!std::isnan(v)) {
          if (!a.seen || v < a.mn) a.mn = v;
          if (!a.seen || v > a.mx) a.mx = v;
          a.seen = true;
        }
      }
    }
    // Global aggregate over empty input still yields its one row.
    if (groups.empty() && key_cols.empty())
      groups[{}] = Group{{}, std::vector<Acc>(items.size())};
    for (const auto& [bits, g] : groups) {
      (void)bits;
      for (const auto& o : q.output_cols()) {
        if (!o.is_agg) {
          rows.push_back(g.keys[static_cast<std::size_t>(o.index)]);
          continue;
        }
        const Acc& a = g.accs[static_cast<std::size_t>(o.index)];
        switch (items[static_cast<std::size_t>(o.index)].fn) {
          case sql::AggFn::kCount:
            rows.push_back(static_cast<double>(a.count));
            break;
          case sql::AggFn::kSum:
            rows.push_back(a.count ? a.sum : 0.0);
            break;
          case sql::AggFn::kAvg:
            rows.push_back(a.count ? a.sum / static_cast<double>(a.count)
                                   : qnan);
            break;
          case sql::AggFn::kMin:
            rows.push_back(a.seen ? a.mn : qnan);
            break;
          default:
            rows.push_back(a.seen ? a.mx : qnan);
            break;
        }
      }
    }
  } else {
    // Plain top-k: scan rows already have the final schema.
    rows.reserve(scan.num_rows() * width);
    for (std::size_t r = 0; r < scan.num_rows(); ++r)
      for (std::size_t c = 0; c < width; ++c) rows.push_back(scan.at(r, c));
  }

  const std::size_t nrows = width ? rows.size() / width : 0;
  std::vector<std::size_t> perm(nrows);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) {
    const double* a = rows.data() + x * width;
    const double* b = rows.data() + y * width;
    for (const auto& k : q.order_keys()) {
      const uint64_t u = obits(a[k.col]), v = obits(b[k.col]);
      if (u != v) return k.desc ? u > v : u < v;
    }
    for (std::size_t c = 0; c < width; ++c) {
      const uint64_t u = obits(a[c]), v = obits(b[c]);
      if (u != v) return u < v;
    }
    return false;
  });
  std::size_t keep = nrows;
  if (q.limit() >= 0)
    keep = std::min<std::size_t>(keep, static_cast<std::size_t>(q.limit()));
  expr::Table out(out_schema);
  for (std::size_t i = 0; i < keep; ++i)
    out.append_rows(rows.data() + perm[i] * width, 1);
  return out;
}

}  // namespace

DataServicePlan::DataServicePlan(meta::Descriptor desc,
                                 const std::string& dataset_name,
                                 const std::string& root_path)
    : model_(std::make_shared<afc::DatasetModel>(std::move(desc),
                                                 dataset_name, root_path)) {}

DataServicePlan DataServicePlan::from_text(const std::string& descriptor_text,
                                           const std::string& dataset_name,
                                           const std::string& root_path) {
  return DataServicePlan(meta::parse_descriptor(descriptor_text),
                         dataset_name, root_path);
}

expr::BoundQuery DataServicePlan::bind(const std::string& sql) const {
  sql::SelectQuery q = sql::parse_select(sql);
  if (q.is_join())
    throw QueryError(
        "FROM names " + std::to_string(q.tables.size()) +
        " datasets; a single-dataset plan cannot execute joins — use "
        "execute_join / join_query (api/join_query.h)");
  if (!iequals(q.table, model_->dataset_name()) &&
      !iequals(q.table, model_->schema().name))
    throw QueryError("query is against table '" + q.table +
                     "' but this plan serves dataset '" +
                     model_->dataset_name() + "' (schema " +
                     model_->schema().name + ")");
  return expr::BoundQuery(std::move(q), model_->schema());
}

afc::PlanResult DataServicePlan::index_fn(const expr::BoundQuery& q,
                                          const afc::PlannerOptions& opts) const {
  return afc::plan_afcs(*model_, q, opts);
}

expr::Table DataServicePlan::execute(const std::string& sql,
                                     const afc::PlannerOptions& opts,
                                     ExtractStats* stats) const {
  return execute(bind(sql), opts, stats);
}

expr::Table DataServicePlan::execute(const expr::BoundQuery& q,
                                     const afc::PlannerOptions& opts,
                                     ExtractStats* stats) const {
  afc::PlanResult pr = index_fn(q, opts);
  expr::Table out(q.is_pushdown() ? scan_columns(q, model_->schema())
                                  : q.result_columns());
  // The naive executors stay on the interp tier regardless of
  // ADV_KERNEL_MODE: they are the reference the differential harness
  // compares the kernel engines against.
  ExtractorOptions xopts;
  xopts.kernel_mode = KernelMode::kInterp;
  Extractor ex(xopts);
  std::vector<GroupBinding> bindings;
  bindings.reserve(pr.groups.size());
  for (const auto& g : pr.groups)
    bindings.push_back(bind_group(g, q, model_->schema()));
  ExtractStats total;
  total.afcs_pruned = pr.stats.afcs_filtered_by_index;
  total.rows_pruned = pr.stats.rows_pruned;
  total.bytes_skipped = pr.stats.bytes_skipped;
  for (const auto& a : pr.afcs) {
    total += ex.extract(pr.groups[static_cast<std::size_t>(a.group)], a,
                        bindings[static_cast<std::size_t>(a.group)], q, out);
  }
  if (stats) *stats = total;
  if (q.is_pushdown()) return naive_pushdown(q, out);
  return out;
}

expr::Table DataServicePlan::execute_parallel(
    const expr::BoundQuery& q, int threads, const afc::PlannerOptions& opts,
    ExtractStats* stats) const {
  if (threads < 1) throw QueryError("execute_parallel: threads must be >= 1");
  // Pushdown queries delegate to the sequential path: the naive reference
  // accumulates plain doubles, so its SUM/AVG values depend on fold order —
  // one fixed order keeps the reference deterministic (the engine's own
  // parallelism is exercised by StormCluster, not here).
  if (q.is_pushdown()) return execute(q, opts, stats);
  afc::PlanResult pr = index_fn(q, opts);
  std::vector<GroupBinding> bindings;
  bindings.reserve(pr.groups.size());
  for (const auto& g : pr.groups)
    bindings.push_back(bind_group(g, q, model_->schema()));

  std::vector<expr::Table> parts(static_cast<std::size_t>(threads),
                                 expr::Table(q.result_columns()));
  std::vector<ExtractStats> part_stats(static_cast<std::size_t>(threads));
  ThreadPool pool(static_cast<std::size_t>(threads));
  pool.parallel_for(static_cast<std::size_t>(threads), [&](std::size_t w) {
    ExtractorOptions xopts;
    xopts.kernel_mode = KernelMode::kInterp;
    Extractor ex(xopts);
    for (std::size_t i = w; i < pr.afcs.size();
         i += static_cast<std::size_t>(threads)) {
      const afc::Afc& a = pr.afcs[i];
      part_stats[w] +=
          ex.extract(pr.groups[static_cast<std::size_t>(a.group)], a,
                     bindings[static_cast<std::size_t>(a.group)], q,
                     parts[w]);
    }
  });
  expr::Table out = std::move(parts[0]);
  ExtractStats total = part_stats[0];
  for (std::size_t w = 1; w < parts.size(); ++w) {
    out.append_table(parts[w]);
    total += part_stats[w];
  }
  total.afcs_pruned += pr.stats.afcs_filtered_by_index;
  total.rows_pruned += pr.stats.rows_pruned;
  total.bytes_skipped += pr.stats.bytes_skipped;
  if (stats) *stats = total;
  return out;
}

std::vector<std::string> DataServicePlan::verify_files() const {
  std::vector<std::string> problems;
  for (const auto& f : model_->files()) {
    if (!file_exists(f.full_path)) {
      problems.push_back("missing file: " + f.full_path);
      continue;
    }
    uint64_t expect = model_->expected_file_bytes(f);
    uint64_t actual = file_size(f.full_path);
    if (actual != expect) {
      problems.push_back("size mismatch for " + f.full_path + ": layout "
                         "implies " + std::to_string(expect) + " bytes, file "
                         "has " + std::to_string(actual));
    }
  }
  return problems;
}

}  // namespace adv::codegen
