#include "codegen/plan.h"

#include "common/io.h"
#include "common/thread_pool.h"
#include "common/string_util.h"

namespace adv::codegen {

DataServicePlan::DataServicePlan(meta::Descriptor desc,
                                 const std::string& dataset_name,
                                 const std::string& root_path)
    : model_(std::make_shared<afc::DatasetModel>(std::move(desc),
                                                 dataset_name, root_path)) {}

DataServicePlan DataServicePlan::from_text(const std::string& descriptor_text,
                                           const std::string& dataset_name,
                                           const std::string& root_path) {
  return DataServicePlan(meta::parse_descriptor(descriptor_text),
                         dataset_name, root_path);
}

expr::BoundQuery DataServicePlan::bind(const std::string& sql) const {
  sql::SelectQuery q = sql::parse_select(sql);
  if (!iequals(q.table, model_->dataset_name()) &&
      !iequals(q.table, model_->schema().name))
    throw QueryError("query is against table '" + q.table +
                     "' but this plan serves dataset '" +
                     model_->dataset_name() + "' (schema " +
                     model_->schema().name + ")");
  return expr::BoundQuery(std::move(q), model_->schema());
}

afc::PlanResult DataServicePlan::index_fn(const expr::BoundQuery& q,
                                          const afc::PlannerOptions& opts) const {
  return afc::plan_afcs(*model_, q, opts);
}

expr::Table DataServicePlan::execute(const std::string& sql,
                                     const afc::PlannerOptions& opts,
                                     ExtractStats* stats) const {
  return execute(bind(sql), opts, stats);
}

expr::Table DataServicePlan::execute(const expr::BoundQuery& q,
                                     const afc::PlannerOptions& opts,
                                     ExtractStats* stats) const {
  afc::PlanResult pr = index_fn(q, opts);
  expr::Table out(q.result_columns());
  // The naive executors stay on the interp tier regardless of
  // ADV_KERNEL_MODE: they are the reference the differential harness
  // compares the kernel engines against.
  ExtractorOptions xopts;
  xopts.kernel_mode = KernelMode::kInterp;
  Extractor ex(xopts);
  std::vector<GroupBinding> bindings;
  bindings.reserve(pr.groups.size());
  for (const auto& g : pr.groups)
    bindings.push_back(bind_group(g, q, model_->schema()));
  ExtractStats total;
  total.afcs_pruned = pr.stats.afcs_filtered_by_index;
  total.rows_pruned = pr.stats.rows_pruned;
  total.bytes_skipped = pr.stats.bytes_skipped;
  for (const auto& a : pr.afcs) {
    total += ex.extract(pr.groups[static_cast<std::size_t>(a.group)], a,
                        bindings[static_cast<std::size_t>(a.group)], q, out);
  }
  if (stats) *stats = total;
  return out;
}

expr::Table DataServicePlan::execute_parallel(
    const expr::BoundQuery& q, int threads, const afc::PlannerOptions& opts,
    ExtractStats* stats) const {
  if (threads < 1) throw QueryError("execute_parallel: threads must be >= 1");
  afc::PlanResult pr = index_fn(q, opts);
  std::vector<GroupBinding> bindings;
  bindings.reserve(pr.groups.size());
  for (const auto& g : pr.groups)
    bindings.push_back(bind_group(g, q, model_->schema()));

  std::vector<expr::Table> parts(static_cast<std::size_t>(threads),
                                 expr::Table(q.result_columns()));
  std::vector<ExtractStats> part_stats(static_cast<std::size_t>(threads));
  ThreadPool pool(static_cast<std::size_t>(threads));
  pool.parallel_for(static_cast<std::size_t>(threads), [&](std::size_t w) {
    ExtractorOptions xopts;
    xopts.kernel_mode = KernelMode::kInterp;
    Extractor ex(xopts);
    for (std::size_t i = w; i < pr.afcs.size();
         i += static_cast<std::size_t>(threads)) {
      const afc::Afc& a = pr.afcs[i];
      part_stats[w] +=
          ex.extract(pr.groups[static_cast<std::size_t>(a.group)], a,
                     bindings[static_cast<std::size_t>(a.group)], q,
                     parts[w]);
    }
  });
  expr::Table out = std::move(parts[0]);
  ExtractStats total = part_stats[0];
  for (std::size_t w = 1; w < parts.size(); ++w) {
    out.append_table(parts[w]);
    total += part_stats[w];
  }
  total.afcs_pruned += pr.stats.afcs_filtered_by_index;
  total.rows_pruned += pr.stats.rows_pruned;
  total.bytes_skipped += pr.stats.bytes_skipped;
  if (stats) *stats = total;
  return out;
}

std::vector<std::string> DataServicePlan::verify_files() const {
  std::vector<std::string> problems;
  for (const auto& f : model_->files()) {
    if (!file_exists(f.full_path)) {
      problems.push_back("missing file: " + f.full_path);
      continue;
    }
    uint64_t expect = model_->expected_file_bytes(f);
    uint64_t actual = file_size(f.full_path);
    if (actual != expect) {
      problems.push_back("size mismatch for " + f.full_path + ": layout "
                         "implies " + std::to_string(expect) + " bytes, file "
                         "has " + std::to_string(actual));
    }
  }
  return problems;
}

}  // namespace adv::codegen
