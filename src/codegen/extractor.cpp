#include "codegen/extractor.h"

#include <algorithm>

#include "common/error.h"

namespace adv::codegen {

namespace {

// Vector/jit batch cap in rows: the columnar working set (a few decoded
// columns plus the row-major output block) stays inside L2 while still
// amortizing the per-batch setup.
constexpr uint64_t kKernelBatchRows = 4096;

}  // namespace

GroupBinding bind_group(const afc::GroupPlan& gp, const expr::BoundQuery& q,
                        const meta::Schema& schema) {
  GroupBinding b;
  b.slots.resize(q.needed_attrs().size());
  for (std::size_t s = 0; s < q.needed_attrs().size(); ++s) {
    int attr = q.needed_attrs()[s];
    SlotSource src;
    bool found = false;
    // Stored field, first chunk wins.
    for (std::size_t c = 0; !found && c < gp.chunks.size(); ++c) {
      for (const auto& f : gp.chunks[c].fields) {
        if (f.attr == attr) {
          src.kind = SlotSource::Kind::kField;
          src.chunk = static_cast<int>(c);
          src.intra_offset = f.intra_offset;
          src.type = f.type;
          found = true;
          break;
        }
      }
    }
    // Constant implicit (file-name binding).
    if (!found) {
      for (const auto& [a, v] : gp.const_implicits) {
        if (a == attr) {
          src.kind = SlotSource::Kind::kConst;
          src.const_value = v;
          found = true;
          break;
        }
      }
    }
    // Enumerated loop value.
    if (!found) {
      for (std::size_t k = 0; k < gp.loops.size(); ++k) {
        if (gp.loops[k].attr == attr) {
          src.kind = SlotSource::Kind::kLoop;
          src.loop_index = static_cast<int>(k);
          found = true;
          break;
        }
      }
    }
    // Record-loop (row-varying) value.
    if (!found && gp.row_attr == attr) {
      src.kind = SlotSource::Kind::kRow;
      found = true;
    }
    if (!found)
      throw InternalError("no source for attribute '" +
                          schema.at(static_cast<std::size_t>(attr)).name +
                          "' in group");
    b.slots[s] = src;
  }

  // Pre-analyze the per-row work.
  for (std::size_t s = 0; s < b.slots.size(); ++s) {
    const SlotSource& src = b.slots[s];
    switch (src.kind) {
      case SlotSource::Kind::kConst:
        b.const_fills.emplace_back(s, src.const_value);
        break;
      case SlotSource::Kind::kLoop:
        b.loop_fills.emplace_back(s, src.loop_index);
        break;
      case SlotSource::Kind::kRow:
        b.row_slot = static_cast<int>(s);
        break;
      case SlotSource::Kind::kField: {
        const afc::ChunkPlan& cp =
            gp.chunks[static_cast<std::size_t>(src.chunk)];
        bool in_pred = false;
        for (int ps : q.predicate_slots())
          if (ps == static_cast<int>(s)) in_pred = true;
        auto& list = in_pred ? b.pred_fetches : b.post_fetches;
        list.push_back({static_cast<std::size_t>(src.chunk),
                        cp.bytes_per_row, src.intra_offset, src.type, s});
        break;
      }
    }
  }
  return b;
}

const FileHandle& Extractor::handle(const std::string& path) {
  auto it = handles_.find(path);
  if (it == handles_.end())
    it = handles_.emplace(path, FileCache::instance().open(path, io_mode_))
             .first;
  return *it->second;
}

const std::vector<const FileHandle*>& Extractor::group_handles(
    const afc::GroupPlan& gp) {
  auto& hv = group_handles_[&gp];
  if (hv.size() != gp.files.size()) {
    hv.clear();
    hv.reserve(gp.files.size());
    for (const auto& f : gp.files) hv.push_back(&handle(f));
  }
  return hv;
}

namespace {

// Adapter: a sink that appends every matched row to a result table.
class TableSink final : public RowSink {
 public:
  explicit TableSink(expr::Table& t) : t_(t) {}
  void on_row(const double* vals, uint64_t) override { t_.append_row(vals); }
  void on_rows(const double* rows, std::size_t, std::size_t nrows,
               const uint64_t*) override {
    t_.append_rows(rows, nrows);
  }

 private:
  expr::Table& t_;
};

}  // namespace

ExtractStats Extractor::extract(const afc::GroupPlan& gp, const afc::Afc& a,
                                const GroupBinding& binding,
                                const expr::BoundQuery& q, expr::Table& out) {
  TableSink sink(out);
  return extract(gp, a, binding, q, sink);
}

ExtractStats Extractor::extract(const afc::GroupPlan& gp, const afc::Afc& a,
                                const GroupBinding& binding,
                                const expr::BoundQuery& q, RowSink& sink) {
  ExtractStats stats;
  const std::size_t num_chunks = gp.chunks.size();
  if (bufs_.size() < num_chunks) bufs_.resize(num_chunks);
  if (srcs_.size() < num_chunks) srcs_.resize(num_chunks);

  const std::vector<const FileHandle*>& handles = group_handles(gp);

  // Effective tier for this AFC: jit needs a bound function for the group,
  // otherwise it degrades to vector (same results, no specialization).
  KernelMode mode = kernel_mode_;
  if (mode == KernelMode::kJit && binding.jit_fn == nullptr)
    mode = KernelMode::kVector;
  switch (mode) {
    case KernelMode::kInterp: ++stats.afcs_interp; break;
    case KernelMode::kJit: ++stats.afcs_jit; break;
    default: mode = KernelMode::kVector; ++stats.afcs_vector; break;
  }

  // Mapped chunks decode in place; only unmapped ones need buffered
  // batching.  When every chunk is mapped the whole AFC is one batch.
  bool all_mapped = true;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const afc::ChunkPlan& cp = gp.chunks[c];
    if (cp.bytes_per_row == 0) continue;
    if (!handles[static_cast<std::size_t>(cp.file)]->mapped_data())
      all_mapped = false;
  }

  // Batch size in rows, bounded by batch_bytes_ per chunk on the pread
  // path.
  uint32_t max_bpr = 1;
  for (const auto& c : gp.chunks) max_bpr = std::max(max_bpr, c.bytes_per_row);
  uint64_t batch_rows =
      all_mapped ? std::max<uint64_t>(1, a.num_rows)
                 : std::max<uint64_t>(1, batch_bytes_ / max_bpr);
  // With a cancel token, cap the batch so the poll below runs at a
  // bounded row granularity even when a fully-mapped AFC would otherwise
  // decode in one pass.
  if (cancel_) batch_rows = std::min<uint64_t>(batch_rows, 1 << 16);
  // The columnar tiers work in cache-sized batches regardless of mapping.
  if (mode != KernelMode::kInterp)
    batch_rows = std::min(batch_rows, kKernelBatchRows);

  if (mode == KernelMode::kInterp) {
    // Row buffer: one double per needed slot (scratch reused across AFCs;
    // every slot has exactly one source, so no zero-fill is needed).
    row_.resize(binding.slots.size());
    double* row = row_.data();
    // Constant and per-AFC loop-implicit slots fill once.
    for (const auto& [s, v] : binding.const_fills) row[s] = v;
    for (const auto& [s, k] : binding.loop_fills)
      row[s] = static_cast<double>(
          a.loop_values[static_cast<std::size_t>(k)]);
    out_row_.resize(q.select_slots().size());
  } else {
    // Which slots the vector tier will have as decoded predicate columns.
    slot_from_pred_col_.assign(binding.slots.size(), 0);
    for (const auto& f : binding.pred_fetches) slot_from_pred_col_[f.slot] = 1;
    colptrs_.assign(binding.slots.size(), nullptr);
  }

  const unsigned char** srcs = srcs_.data();
  for (uint64_t done = 0; done < a.num_rows; done += batch_rows) {
    if (cancel_) cancel_->check();
    uint64_t n = std::min(batch_rows, a.num_rows - done);
    // Point each chunk cursor at this batch: straight into the mapping
    // when the file is mapped, through a pread buffer otherwise.
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const afc::ChunkPlan& cp = gp.chunks[c];
      if (cp.bytes_per_row == 0) continue;
      std::size_t bytes = static_cast<std::size_t>(n) * cp.bytes_per_row;
      uint64_t offset = a.offsets[c] + done * cp.bytes_per_row;
      const FileHandle* h = handles[static_cast<std::size_t>(cp.file)];
      if (h->mapped_data()) {
        srcs[c] = h->mapped_range(bytes, offset);
      } else {
        if (bufs_[c].size() < bytes) bufs_[c].resize(bytes);
        h->pread_exact(bufs_[c].data(), bytes, offset);
        srcs[c] = bufs_[c].data();
      }
      stats.bytes_read += bytes;
    }
    switch (mode) {
      case KernelMode::kInterp:
        run_interp(gp, a, binding, q, sink, srcs, done, n, stats);
        break;
      case KernelMode::kJit:
        run_jit(gp, a, binding, q, sink, srcs, done, n, stats);
        break;
      default:
        run_vector(gp, a, binding, q, sink, srcs, done, n, stats);
        break;
    }
  }
  return stats;
}

void Extractor::run_interp(const afc::GroupPlan& gp, const afc::Afc& a,
                           const GroupBinding& binding,
                           const expr::BoundQuery& q, RowSink& sink,
                           const unsigned char** srcs, uint64_t done,
                           uint64_t n, ExtractStats& stats) {
  double* row = row_.data();
  double* out_row = out_row_.data();
  const int row_slot = binding.row_slot;
  const auto& select_slots = q.select_slots();
  // Fast path: SELECT list is exactly the slot buffer in order (true for
  // SELECT * and any projection whose needed set equals its select set).
  bool identity_select = select_slots.size() == binding.slots.size();
  for (std::size_t i = 0; identity_select && i < select_slots.size(); ++i)
    identity_select = select_slots[i] == static_cast<int>(i);
  const bool has_predicate = q.has_predicate();

  // Zip rows: predicate inputs are materialized eagerly, the remaining
  // fields only once a row passes the filter.
  for (uint64_t r = 0; r < n; ++r) {
    for (const GroupBinding::FieldFetch& f : binding.pred_fetches)
      row[f.slot] = decode_double(f.type, srcs[f.chunk] + f.intra + r * f.bpr);
    if (row_slot >= 0) {
      row[static_cast<std::size_t>(row_slot)] = static_cast<double>(
          a.row_first + static_cast<int64_t>(done + r) * gp.row_range.step);
    }
    stats.rows_scanned++;
    if (!has_predicate || q.matches(row)) {
      stats.rows_matched++;
      for (const GroupBinding::FieldFetch& f : binding.post_fetches)
        row[f.slot] =
            decode_double(f.type, srcs[f.chunk] + f.intra + r * f.bpr);
      if (identity_select) {
        sink.on_row(row, done + r);
      } else {
        for (std::size_t i = 0; i < select_slots.size(); ++i)
          out_row[i] = row[static_cast<std::size_t>(select_slots[i])];
        sink.on_row(out_row, done + r);
      }
    }
  }
}

void Extractor::run_vector(const afc::GroupPlan& gp, const afc::Afc& a,
                           const GroupBinding& binding,
                           const expr::BoundQuery& q, RowSink& sink,
                           const unsigned char** srcs, uint64_t done,
                           uint64_t n, ExtractStats& stats) {
  const auto& select_slots = q.select_slots();
  const std::size_t ncols = select_slots.size();
  const int64_t step = gp.row_range.step;
  stats.rows_scanned += n;
  arena_.reset_scratch();

  if (!q.has_predicate()) {
    // No filter: decode every selected field column straight into the
    // row-major output block (out_stride = ncols), fill implicits, done.
    double* out = arena_.out(n * ncols);
    for (std::size_t i = 0; i < ncols; ++i) {
      const SlotSource& src =
          binding.slots[static_cast<std::size_t>(select_slots[i])];
      switch (src.kind) {
        case SlotSource::Kind::kField: {
          const afc::ChunkPlan& cp =
              gp.chunks[static_cast<std::size_t>(src.chunk)];
          kernels::decode_column(
              src.type, srcs[src.chunk] + src.intra_offset, cp.bytes_per_row,
              n, out + i, ncols);
          break;
        }
        case SlotSource::Kind::kConst:
          for (uint64_t r = 0; r < n; ++r) out[r * ncols + i] = src.const_value;
          break;
        case SlotSource::Kind::kLoop: {
          double v = static_cast<double>(
              a.loop_values[static_cast<std::size_t>(src.loop_index)]);
          for (uint64_t r = 0; r < n; ++r) out[r * ncols + i] = v;
          break;
        }
        case SlotSource::Kind::kRow:
          for (uint64_t r = 0; r < n; ++r)
            out[r * ncols + i] = static_cast<double>(
                a.row_first + static_cast<int64_t>(done + r) * step);
          break;
      }
    }
    uint64_t* seq = arena_.seq(n);
    for (uint64_t r = 0; r < n; ++r) seq[r] = done + r;
    stats.rows_matched += n;
    sink.on_rows(out, ncols, n, seq);
    return;
  }

  // 1. Decode every predicate-read column into the arena.
  for (const GroupBinding::FieldFetch& f : binding.pred_fetches) {
    double* col = arena_.col(f.slot, n);
    kernels::decode_column(f.type, srcs[f.chunk] + f.intra, f.bpr, n, col);
    colptrs_[f.slot] = col;
  }
  for (int ps : q.predicate_slots()) {
    const std::size_t s = static_cast<std::size_t>(ps);
    const SlotSource& src = binding.slots[s];
    switch (src.kind) {
      case SlotSource::Kind::kField:
        break;  // decoded above
      case SlotSource::Kind::kConst: {
        double* col = arena_.col(s, n);
        for (uint64_t r = 0; r < n; ++r) col[r] = src.const_value;
        colptrs_[s] = col;
        break;
      }
      case SlotSource::Kind::kLoop: {
        double* col = arena_.col(s, n);
        double v = static_cast<double>(
            a.loop_values[static_cast<std::size_t>(src.loop_index)]);
        for (uint64_t r = 0; r < n; ++r) col[r] = v;
        colptrs_[s] = col;
        break;
      }
      case SlotSource::Kind::kRow: {
        double* col = arena_.col(s, n);
        for (uint64_t r = 0; r < n; ++r)
          col[r] = static_cast<double>(
              a.row_first + static_cast<int64_t>(done + r) * step);
        colptrs_[s] = col;
        break;
      }
    }
  }

  // 2. Predicate as mask passes, 3. compact survivors.
  uint8_t* mask = arena_.mask(n);
  kernels::eval_mask(q.predicate(), colptrs_.data(), n, mask, arena_);
  uint32_t* sel = arena_.sel(n);
  std::size_t nsel = kernels::gather_selected(mask, n, sel);
  stats.rows_matched += nsel;
  if (nsel == 0) return;

  // 4. Materialize surviving rows: predicate columns gather from the arena,
  // SELECT-only fields decode-gather straight from the chunk, implicits
  // fill or compute.
  double* out = arena_.out(nsel * ncols);
  for (std::size_t i = 0; i < ncols; ++i) {
    const std::size_t s = static_cast<std::size_t>(select_slots[i]);
    const SlotSource& src = binding.slots[s];
    if (colptrs_[s] != nullptr) {
      const double* col = colptrs_[s];
      for (std::size_t j = 0; j < nsel; ++j) out[j * ncols + i] = col[sel[j]];
      continue;
    }
    switch (src.kind) {
      case SlotSource::Kind::kField: {
        const afc::ChunkPlan& cp =
            gp.chunks[static_cast<std::size_t>(src.chunk)];
        kernels::decode_gather(src.type, srcs[src.chunk] + src.intra_offset,
                               cp.bytes_per_row, sel, nsel, out + i, ncols);
        break;
      }
      case SlotSource::Kind::kConst:
        for (std::size_t j = 0; j < nsel; ++j)
          out[j * ncols + i] = src.const_value;
        break;
      case SlotSource::Kind::kLoop: {
        double v = static_cast<double>(
            a.loop_values[static_cast<std::size_t>(src.loop_index)]);
        for (std::size_t j = 0; j < nsel; ++j) out[j * ncols + i] = v;
        break;
      }
      case SlotSource::Kind::kRow:
        for (std::size_t j = 0; j < nsel; ++j)
          out[j * ncols + i] = static_cast<double>(
              a.row_first + static_cast<int64_t>(done + sel[j]) * step);
        break;
    }
  }
  uint64_t* seq = arena_.seq(nsel);
  for (std::size_t j = 0; j < nsel; ++j) seq[j] = done + sel[j];
  sink.on_rows(out, ncols, nsel, seq);
}

void Extractor::run_jit(const afc::GroupPlan& gp, const afc::Afc& a,
                        const GroupBinding& binding,
                        const expr::BoundQuery& q, RowSink& sink,
                        const unsigned char** srcs, uint64_t done, uint64_t n,
                        ExtractStats& stats) {
  const std::size_t ncols = q.select_slots().size();
  stats.rows_scanned += n;
  arena_.reset_scratch();
  double* out = arena_.out(n * ncols);
  uint32_t* sel = arena_.sel(n);
  const long long row_base =
      a.row_first + static_cast<int64_t>(done) * gp.row_range.step;
  static_assert(sizeof(long long) == sizeof(int64_t));
  long long cnt = binding.jit_fn(
      srcs, n, reinterpret_cast<const long long*>(a.loop_values.data()),
      row_base, out, sel);
  const std::size_t nsel = static_cast<std::size_t>(cnt);
  stats.rows_matched += nsel;
  if (nsel == 0) return;
  uint64_t* seq = arena_.seq(nsel);
  for (std::size_t j = 0; j < nsel; ++j) seq[j] = done + sel[j];
  sink.on_rows(out, ncols, nsel, seq);
}

}  // namespace adv::codegen
