#include "expr/predicate.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"

namespace adv::expr {

double CompiledScalar::eval(const double* row) const {
  switch (kind) {
    case Kind::kConst:
      return cval;
    case Kind::kSlot:
      return row[slot];
    case Kind::kCall: {
      double argv[16];
      std::size_t n = args.size();
      for (std::size_t i = 0; i < n; ++i) argv[i] = args[i].eval(row);
      return udf->fn(argv, n);
    }
    case Kind::kArith: {
      double a = args[0].eval(row);
      double b = args[1].eval(row);
      switch (op) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/': return a / b;
      }
      return 0;
    }
  }
  return 0;
}

bool CompiledBool::eval(const double* row) const {
  switch (kind) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp: {
      double a = lhs.eval(row);
      double b = rhs.eval(row);
      switch (cmp) {
        case sql::CmpOp::kLt: return a < b;
        case sql::CmpOp::kLe: return a <= b;
        case sql::CmpOp::kGt: return a > b;
        case sql::CmpOp::kGe: return a >= b;
        case sql::CmpOp::kEq: return a == b;
        case sql::CmpOp::kNe: return a != b;
      }
      return false;
    }
    case Kind::kIn:
      return std::binary_search(in_set.begin(), in_set.end(), row[slot]);
    case Kind::kAnd:
      for (const auto& k : kids)
        if (!k.eval(row)) return false;
      return true;
    case Kind::kOr:
      for (const auto& k : kids)
        if (k.eval(row)) return true;
      return false;
    case Kind::kNot:
      return !kids[0].eval(row);
  }
  return true;
}

namespace {

// Collects the schema attributes referenced by a scalar / boolean tree.
void collect_attrs(const sql::Scalar& s, const meta::Schema& schema,
                   std::set<int>& out) {
  switch (s.kind) {
    case sql::Scalar::Kind::kLiteral:
      return;
    case sql::Scalar::Kind::kAttr: {
      int idx = schema.find(s.name);
      if (idx < 0)
        throw QueryError("unknown attribute '" + s.name + "' in query (table " +
                         schema.name + ")");
      out.insert(idx);
      return;
    }
    case sql::Scalar::Kind::kCall:
      for (const auto& a : s.args) collect_attrs(*a, schema, out);
      return;
    case sql::Scalar::Kind::kArith:
      collect_attrs(*s.lhs, schema, out);
      collect_attrs(*s.rhs, schema, out);
      return;
  }
}

void collect_attrs(const sql::BoolExpr& e, const meta::Schema& schema,
                   std::set<int>& out) {
  switch (e.kind) {
    case sql::BoolExpr::Kind::kCmp:
      collect_attrs(*e.lhs, schema, out);
      collect_attrs(*e.rhs, schema, out);
      return;
    case sql::BoolExpr::Kind::kIn: {
      int idx = schema.find(e.attr);
      if (idx < 0)
        throw QueryError("unknown attribute '" + e.attr + "' in IN clause");
      out.insert(idx);
      return;
    }
    case sql::BoolExpr::Kind::kAnd:
    case sql::BoolExpr::Kind::kOr:
      collect_attrs(*e.a, schema, out);
      collect_attrs(*e.b, schema, out);
      return;
    case sql::BoolExpr::Kind::kNot:
      collect_attrs(*e.a, schema, out);
      return;
  }
}

CompiledScalar compile_scalar(const sql::Scalar& s, const meta::Schema& schema,
                              const std::vector<int>& attr_slot) {
  CompiledScalar c;
  switch (s.kind) {
    case sql::Scalar::Kind::kLiteral:
      c.kind = CompiledScalar::Kind::kConst;
      c.cval = s.literal.as_double();
      return c;
    case sql::Scalar::Kind::kAttr: {
      c.kind = CompiledScalar::Kind::kSlot;
      c.slot = attr_slot[schema.find(s.name)];
      return c;
    }
    case sql::Scalar::Kind::kCall: {
      c.kind = CompiledScalar::Kind::kCall;
      c.udf = UdfRegistry::find(s.name);
      if (!c.udf) throw QueryError("unknown function '" + s.name + "'");
      if (c.udf->arity >= 0 &&
          static_cast<std::size_t>(c.udf->arity) != s.args.size())
        throw QueryError("function '" + s.name + "' expects " +
                         std::to_string(c.udf->arity) + " arguments, got " +
                         std::to_string(s.args.size()));
      if (s.args.size() > 16)
        throw QueryError("function '" + s.name + "': too many arguments");
      for (const auto& a : s.args)
        c.args.push_back(compile_scalar(*a, schema, attr_slot));
      return c;
    }
    case sql::Scalar::Kind::kArith:
      c.kind = CompiledScalar::Kind::kArith;
      c.op = s.op;
      c.args.push_back(compile_scalar(*s.lhs, schema, attr_slot));
      c.args.push_back(compile_scalar(*s.rhs, schema, attr_slot));
      return c;
  }
  throw InternalError("compile_scalar: bad kind");
}

CompiledBool compile_bool(const sql::BoolExpr& e, const meta::Schema& schema,
                          const std::vector<int>& attr_slot) {
  CompiledBool c;
  switch (e.kind) {
    case sql::BoolExpr::Kind::kCmp:
      c.kind = CompiledBool::Kind::kCmp;
      c.cmp = e.cmp;
      c.lhs = compile_scalar(*e.lhs, schema, attr_slot);
      c.rhs = compile_scalar(*e.rhs, schema, attr_slot);
      return c;
    case sql::BoolExpr::Kind::kIn: {
      c.kind = CompiledBool::Kind::kIn;
      c.slot = attr_slot[schema.find(e.attr)];
      for (const auto& v : e.in_values) c.in_set.push_back(v.as_double());
      std::sort(c.in_set.begin(), c.in_set.end());
      return c;
    }
    case sql::BoolExpr::Kind::kAnd:
      c.kind = CompiledBool::Kind::kAnd;
      c.kids.push_back(compile_bool(*e.a, schema, attr_slot));
      c.kids.push_back(compile_bool(*e.b, schema, attr_slot));
      return c;
    case sql::BoolExpr::Kind::kOr:
      c.kind = CompiledBool::Kind::kOr;
      c.kids.push_back(compile_bool(*e.a, schema, attr_slot));
      c.kids.push_back(compile_bool(*e.b, schema, attr_slot));
      return c;
    case sql::BoolExpr::Kind::kNot:
      c.kind = CompiledBool::Kind::kNot;
      c.kids.push_back(compile_bool(*e.a, schema, attr_slot));
      return c;
  }
  throw InternalError("compile_bool: bad kind");
}

// ---------------------------------------------------------------------------
// Interval extraction.

// Tries to evaluate a scalar that references no attributes.
bool const_fold(const sql::Scalar& s, double& out) {
  switch (s.kind) {
    case sql::Scalar::Kind::kLiteral:
      out = s.literal.as_double();
      return true;
    case sql::Scalar::Kind::kAttr:
    case sql::Scalar::Kind::kCall:
      return false;
    case sql::Scalar::Kind::kArith: {
      double a, b;
      if (!const_fold(*s.lhs, a) || !const_fold(*s.rhs, b)) return false;
      switch (s.op) {
        case '+': out = a + b; return true;
        case '-': out = a - b; return true;
        case '*': out = a * b; return true;
        case '/':
          if (b == 0) return false;
          out = a / b;
          return true;
      }
      return false;
    }
  }
  return false;
}

void apply_cmp(QueryIntervals& qi, int attr, sql::CmpOp op, double v) {
  Interval add = Interval::all();
  switch (op) {
    case sql::CmpOp::kLt:
    case sql::CmpOp::kLe:
      add = Interval::at_most(v);
      break;
    case sql::CmpOp::kGt:
    case sql::CmpOp::kGe:
      add = Interval::at_least(v);
      break;
    case sql::CmpOp::kEq:
      add = Interval::point(v);
      break;
    case sql::CmpOp::kNe:
      return;  // no useful interval
  }
  qi.interval(attr) = qi.interval(attr).intersect(add);
}

sql::CmpOp flip(sql::CmpOp op) {
  switch (op) {
    case sql::CmpOp::kLt: return sql::CmpOp::kGt;
    case sql::CmpOp::kLe: return sql::CmpOp::kGe;
    case sql::CmpOp::kGt: return sql::CmpOp::kLt;
    case sql::CmpOp::kGe: return sql::CmpOp::kLe;
    default: return op;
  }
}

void extract_intervals(const sql::BoolExpr& e, const meta::Schema& schema,
                       QueryIntervals& qi) {
  switch (e.kind) {
    case sql::BoolExpr::Kind::kCmp: {
      double v;
      if (e.lhs->kind == sql::Scalar::Kind::kAttr && const_fold(*e.rhs, v)) {
        apply_cmp(qi, schema.find(e.lhs->name), e.cmp, v);
      } else if (e.rhs->kind == sql::Scalar::Kind::kAttr &&
                 const_fold(*e.lhs, v)) {
        apply_cmp(qi, schema.find(e.rhs->name), flip(e.cmp), v);
      }
      return;
    }
    case sql::BoolExpr::Kind::kIn: {
      int attr = schema.find(e.attr);
      std::vector<double> vals;
      for (const auto& v : e.in_values) vals.push_back(v.as_double());
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      if (!vals.empty()) {
        qi.interval(attr) = qi.interval(attr).intersect(
            Interval::closed(vals.front(), vals.back()));
        // Merge with an existing IN-set by intersection.
        if (qi.in_set(attr)) {
          std::vector<double> inter;
          std::set_intersection(vals.begin(), vals.end(),
                                qi.in_set(attr)->begin(),
                                qi.in_set(attr)->end(),
                                std::back_inserter(inter));
          qi.set_in_set(attr, std::move(inter));
        } else {
          qi.set_in_set(attr, std::move(vals));
        }
      }
      return;
    }
    case sql::BoolExpr::Kind::kAnd:
      extract_intervals(*e.a, schema, qi);
      extract_intervals(*e.b, schema, qi);
      return;
    case sql::BoolExpr::Kind::kOr: {
      // Conservative disjunction: hull of the two branches, per attribute.
      QueryIntervals qa(qi.size()), qb(qi.size());
      extract_intervals(*e.a, schema, qa);
      extract_intervals(*e.b, schema, qb);
      for (std::size_t i = 0; i < qi.size(); ++i) {
        Interval h = qa.interval(i).hull(qb.interval(i));
        qi.interval(i) = qi.interval(i).intersect(h);
        if (qa.in_set(i) && qb.in_set(i)) {
          std::vector<double> u;
          std::set_union(qa.in_set(i)->begin(), qa.in_set(i)->end(),
                         qb.in_set(i)->begin(), qb.in_set(i)->end(),
                         std::back_inserter(u));
          qi.set_in_set(i, std::move(u));
        }
      }
      return;
    }
    case sql::BoolExpr::Kind::kNot:
      return;  // conservative: no constraint
  }
}

}  // namespace

BoundQuery::BoundQuery(sql::SelectQuery query, const meta::Schema& schema)
    : query_(std::move(query)),
      schema_(schema),
      intervals_(schema.size()) {
  has_agg_ = query_.has_aggregates();
  limit_ = query_.limit;

  // Resolve the select list.  For aggregate queries the "select" columns
  // the pipeline materializes are the SCAN columns: group keys first
  // (GROUP BY order), then aggregate-input attributes in first-use order.
  if (has_agg_) {
    if (query_.select_all())
      throw QueryError(
          "SELECT * cannot be combined with GROUP BY or aggregates");
    for (const auto& name : query_.group_by) {
      int idx = schema.find(name);
      if (idx < 0)
        throw QueryError("unknown attribute '" + name + "' in GROUP BY");
      for (int a : group_key_attrs_)
        if (a == idx)
          throw QueryError("duplicate GROUP BY attribute '" + name + "'");
      group_key_attrs_.push_back(idx);
    }
    select_attrs_ = group_key_attrs_;
    auto ensure_scanned = [&](int attr) {
      for (int a : select_attrs_)
        if (a == attr) return;
      select_attrs_.push_back(attr);
    };
    int agg_idx = 0;
    for (const auto& it : query_.items) {
      if (it.fn == sql::AggFn::kNone) {
        int idx = schema.find(it.attr);
        if (idx < 0)
          throw QueryError("unknown attribute '" + it.attr +
                           "' in SELECT list");
        int key = -1;
        for (std::size_t j = 0; j < group_key_attrs_.size(); ++j)
          if (group_key_attrs_[j] == idx) key = static_cast<int>(j);
        if (key < 0)
          throw QueryError("select item '" + it.attr +
                           "' must appear in GROUP BY or be aggregated");
        output_cols_.push_back({false, key});
      } else {
        if (!it.star) {
          std::set<int> arg_attrs;
          collect_attrs(*it.arg, schema, arg_attrs);
          for (int a : arg_attrs) ensure_scanned(a);
        }
        BoundAggItem b;
        b.fn = it.fn;
        b.star = it.star;
        agg_items_.push_back(std::move(b));
        output_cols_.push_back({true, agg_idx++});
      }
    }
    for (std::size_t j = 0; j < group_key_attrs_.size(); ++j)
      group_key_cols_.push_back(static_cast<int>(j));
  } else if (query_.select_all()) {
    for (std::size_t i = 0; i < schema.size(); ++i)
      select_attrs_.push_back(static_cast<int>(i));
  } else {
    for (const auto& name : query_.select_attrs) {
      int idx = schema.find(name);
      if (idx < 0)
        throw QueryError("unknown attribute '" + name + "' in SELECT list");
      select_attrs_.push_back(idx);
    }
  }

  // Needed = select ∪ predicate attributes.
  std::set<int> needed(select_attrs_.begin(), select_attrs_.end());
  if (query_.where) collect_attrs(*query_.where, schema, needed);
  needed_attrs_.assign(needed.begin(), needed.end());

  attr_slot_.assign(schema.size(), -1);
  for (std::size_t s = 0; s < needed_attrs_.size(); ++s)
    attr_slot_[needed_attrs_[s]] = static_cast<int>(s);

  for (int a : select_attrs_) select_slots_.push_back(attr_slot_[a]);

  if (query_.where) {
    predicate_ = compile_bool(*query_.where, schema, attr_slot_);
    extract_intervals(*query_.where, schema, intervals_);
    // Slots the predicate reads: the needed-attr slots of the attributes
    // referenced by the WHERE clause.
    std::set<int> pred_attrs;
    collect_attrs(*query_.where, schema, pred_attrs);
    for (int a : pred_attrs) predicate_slots_.push_back(attr_slot_[a]);
  }

  // Compile aggregate inputs against SCAN-ROW positions (the row the
  // kernels hand a RowSink is select_slots-ordered, not the needed-attr
  // buffer), now that the scan column list is final.
  if (has_agg_) {
    std::vector<int> scan_col(schema.size(), -1);
    for (std::size_t i = 0; i < select_attrs_.size(); ++i)
      scan_col[static_cast<std::size_t>(select_attrs_[i])] =
          static_cast<int>(i);
    std::size_t m = 0;
    for (const auto& it : query_.items) {
      if (it.fn == sql::AggFn::kNone) continue;
      if (!it.star)
        agg_items_[m].input = compile_scalar(*it.arg, schema, scan_col);
      ++m;
    }
  }

  // Resolve ORDER BY keys against the output columns by canonical
  // spelling; every key must name a select item (or, for SELECT *, a
  // schema attribute).
  if (!query_.order_by.empty()) {
    std::vector<std::string> out_names;
    if (has_agg_) {
      for (const auto& it : query_.items) out_names.push_back(it.to_string());
    } else if (query_.select_all()) {
      for (std::size_t i = 0; i < schema.size(); ++i)
        out_names.push_back(schema.at(i).name);
    } else {
      out_names = query_.select_attrs;
    }
    for (const auto& o : query_.order_by) {
      std::string want = o.key.to_string();
      int col = -1;
      for (std::size_t i = 0; i < out_names.size(); ++i)
        if (out_names[i] == want) {
          col = static_cast<int>(i);
          break;
        }
      if (col < 0)
        throw QueryError("ORDER BY key '" + want +
                         "' must appear in the select list");
      order_keys_.push_back({col, o.desc});
    }
  }
}

std::vector<Table::Column> BoundQuery::result_columns() const {
  std::vector<Table::Column> cols;
  if (has_agg_) {
    for (const auto& it : query_.items) {
      if (it.fn == sql::AggFn::kNone) {
        const auto& attr =
            schema_.at(static_cast<std::size_t>(schema_.find(it.attr)));
        cols.push_back({attr.name, attr.type});
      } else if (it.fn == sql::AggFn::kCount) {
        cols.push_back({it.to_string(), DataType::kInt64});
      } else if ((it.fn == sql::AggFn::kMin || it.fn == sql::AggFn::kMax) &&
                 it.arg && it.arg->kind == sql::Scalar::Kind::kAttr) {
        const auto& attr =
            schema_.at(static_cast<std::size_t>(schema_.find(it.arg->name)));
        cols.push_back({it.to_string(), attr.type});
      } else {
        cols.push_back({it.to_string(), DataType::kFloat64});
      }
    }
    return cols;
  }
  for (int a : select_attrs_) {
    const auto& attr = schema_.at(static_cast<std::size_t>(a));
    cols.push_back({attr.name, attr.type});
  }
  return cols;
}

}  // namespace adv::expr
