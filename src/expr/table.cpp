#include "expr/table.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.h"

namespace adv::expr {

Table::Table(std::vector<Column> cols) : cols_(std::move(cols)) {
  data_.resize(cols_.size());
}

void Table::append_row(const double* vals) {
  for (std::size_t c = 0; c < cols_.size(); ++c) data_[c].push_back(vals[c]);
  ++rows_;
}

void Table::append_rows(const double* rows, std::size_t nrows) {
  const std::size_t nc = cols_.size();
  for (std::size_t c = 0; c < nc; ++c) {
    auto& col = data_[c];
    const std::size_t old = col.size();
    // Geometric growth: reserving exactly old+nrows would reallocate (and
    // copy the whole column) once per appended batch — quadratic over a
    // long stream of batches.
    if (col.capacity() < old + nrows)
      col.reserve(std::max(old + nrows, 2 * col.capacity()));
    col.resize(old + nrows);
    double* dst = col.data() + old;
    const double* p = rows + c;
    for (std::size_t r = 0; r < nrows; ++r, p += nc) dst[r] = *p;
  }
  rows_ += nrows;
}

void Table::append_table(const Table& other) {
  if (other.num_cols() != num_cols())
    throw InternalError("Table::append_table: column count mismatch");
  for (std::size_t c = 0; c < cols_.size(); ++c)
    data_[c].insert(data_[c].end(), other.data_[c].begin(),
                    other.data_[c].end());
  rows_ += other.rows_;
}

void Table::sort_rows() {
  std::vector<std::size_t> order(rows_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      if (data_[c][a] < data_[c][b]) return true;
      if (data_[c][a] > data_[c][b]) return false;
    }
    return false;
  });
  for (auto& col : data_) {
    std::vector<double> sorted(rows_);
    for (std::size_t i = 0; i < rows_; ++i) sorted[i] = col[order[i]];
    col = std::move(sorted);
  }
}

bool Table::same_rows(const Table& other, double tol) const {
  if (other.num_cols() != num_cols() || other.num_rows() != num_rows())
    return false;
  Table a = *this, b = other;
  a.sort_rows();
  b.sort_rows();
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      double x = a.data_[c][r], y = b.data_[c][r];
      double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
      if (std::fabs(x - y) > tol * scale) return false;
    }
  }
  return true;
}

std::string Table::to_csv(std::size_t max_rows) const {
  std::ostringstream os;
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    if (c) os << ',';
    os << cols_[c].name;
  }
  os << '\n';
  std::size_t n = std::min(rows_, max_rows);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      if (c) os << ',';
      double v = data_[c][r];
      if (is_integral(cols_[c].type)) {
        os << static_cast<int64_t>(v);
      } else {
        os << v;
      }
    }
    os << '\n';
  }
  if (n < rows_) os << "... (" << rows_ - n << " more rows)\n";
  return os.str();
}

uint64_t Table::payload_bytes() const {
  uint64_t per_row = 0;
  for (const auto& c : cols_) per_row += size_of(c.type);
  return per_row * rows_;
}

}  // namespace adv::expr
