#include "expr/interval.h"

#include <algorithm>
#include <sstream>

namespace adv::expr {

std::string Interval::to_string() const {
  std::ostringstream os;
  os << "[" << lo << ", " << hi << "]";
  return os.str();
}

void QueryIntervals::set_in_set(std::size_t attr,
                                std::vector<double> sorted_values) {
  in_sets_[attr] = std::move(sorted_values);
}

bool QueryIntervals::chunk_may_match(std::size_t attr, double lo,
                                     double hi) const {
  if (!intervals_[attr].overlaps(lo, hi)) return false;
  if (in_sets_[attr]) {
    // Any set member inside [lo, hi]?
    const auto& s = *in_sets_[attr];
    auto it = std::lower_bound(s.begin(), s.end(), lo);
    if (it == s.end() || *it > hi) return false;
  }
  return true;
}

bool QueryIntervals::value_may_match(std::size_t attr, double v) const {
  if (!intervals_[attr].contains(v)) return false;
  if (in_sets_[attr]) {
    const auto& s = *in_sets_[attr];
    if (!std::binary_search(s.begin(), s.end(), v)) return false;
  }
  return true;
}

bool QueryIntervals::contradictory() const {
  for (const auto& iv : intervals_)
    if (iv.is_empty()) return true;
  return false;
}

}  // namespace adv::expr
