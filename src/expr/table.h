// In-memory result table.
//
// Query results are numeric (every descriptor attribute is a fixed-width
// numeric type), so the table stores column-major doubles — exact for every
// supported integer type up to 2^53 — and keeps the declared DataType per
// column for printing and for loading into minidb.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace adv::expr {

class Table {
 public:
  struct Column {
    std::string name;
    DataType type = DataType::kFloat64;
  };

  Table() = default;
  explicit Table(std::vector<Column> cols);

  const std::vector<Column>& columns() const { return cols_; }
  std::size_t num_cols() const { return cols_.size(); }
  std::size_t num_rows() const { return rows_; }

  // Appends one row; `vals` must hold num_cols() values.
  void append_row(const double* vals);

  // Appends `nrows` row-major rows in one pass: one strided copy per column
  // instead of nrows * num_cols() scattered push_backs.
  void append_rows(const double* rows, std::size_t nrows);

  double at(std::size_t row, std::size_t col) const {
    return data_[col][row];
  }
  const std::vector<double>& column(std::size_t col) const {
    return data_[col];
  }

  // Appends all rows of `other` (column schemas must match in count).
  void append_table(const Table& other);

  // Sorts rows lexicographically (column 0 first).  Used to compare results
  // produced in different orders by different layouts / engines.
  void sort_rows();

  // Row-set equality after independent sorting, with per-value tolerance
  // `tol` (floats go through a float32 round-trip in some layouts).
  bool same_rows(const Table& other, double tol = 1e-6) const;

  // First `max_rows` rows as CSV with a header line.
  std::string to_csv(std::size_t max_rows = 20) const;

  // Nominal payload size: sum of column on-disk widths times rows.
  uint64_t payload_bytes() const;

 private:
  std::vector<Column> cols_;
  std::vector<std::vector<double>> data_;  // column-major
  std::size_t rows_ = 0;
};

}  // namespace adv::expr
