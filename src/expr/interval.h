// Per-attribute interval analysis of WHERE clauses.
//
// The index function prunes aligned file chunks by intersecting each chunk's
// attribute ranges (implicit attributes from the layout, or min/max metadata
// from the chunk index) with the intervals implied by the query predicate.
// Intervals here are conservative over-approximations with closed bounds:
// pruning with them never drops a matching row because the full predicate is
// re-evaluated per row during extraction.
#pragma once

#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace adv::expr {

struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  static Interval all() { return {}; }
  static Interval at_most(double v) { return {-std::numeric_limits<double>::infinity(), v}; }
  static Interval at_least(double v) { return {v, std::numeric_limits<double>::infinity()}; }
  static Interval point(double v) { return {v, v}; }
  static Interval closed(double lo, double hi) { return {lo, hi}; }

  bool is_empty() const { return lo > hi; }
  bool is_all() const { return std::isinf(lo) && lo < 0 && std::isinf(hi) && hi > 0; }
  bool contains(double v) const { return v >= lo && v <= hi; }
  bool overlaps(double other_lo, double other_hi) const {
    return !(other_hi < lo || other_lo > hi);
  }

  // Conjunction: tightest interval containing the intersection.
  Interval intersect(const Interval& o) const {
    return {lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi};
  }

  // Disjunction: convex hull (conservative).
  Interval hull(const Interval& o) const {
    if (is_empty()) return o;
    if (o.is_empty()) return *this;
    return {lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
  }

  std::string to_string() const;
};

// The intervals (and optional discrete IN-sets) a query implies for each
// attribute of a schema, indexed by schema attribute position.
class QueryIntervals {
 public:
  explicit QueryIntervals(std::size_t num_attrs)
      : intervals_(num_attrs), in_sets_(num_attrs) {}

  std::size_t size() const { return intervals_.size(); }

  const Interval& interval(std::size_t attr) const { return intervals_[attr]; }
  Interval& interval(std::size_t attr) { return intervals_[attr]; }

  // Sorted discrete membership set (from `attr IN (...)`), when known.
  const std::optional<std::vector<double>>& in_set(std::size_t attr) const {
    return in_sets_[attr];
  }
  void set_in_set(std::size_t attr, std::vector<double> sorted_values);

  // True when a chunk whose `attr` spans [lo, hi] can contain matching rows.
  bool chunk_may_match(std::size_t attr, double lo, double hi) const;

  // True when a chunk with constant `attr == v` can contain matching rows.
  bool value_may_match(std::size_t attr, double v) const;

  // True when any attribute has an empty interval (the query matches
  // nothing).
  bool contradictory() const;

 private:
  std::vector<Interval> intervals_;
  std::vector<std::optional<std::vector<double>>> in_sets_;
};

}  // namespace adv::expr
