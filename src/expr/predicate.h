// Binding a parsed query to a schema and compiling its WHERE clause.
//
// The extraction hot loop materializes only the attributes a query needs
// (select list ∪ predicate attributes) into a dense per-row double buffer.
// The compiled predicate evaluates against that buffer by slot index; the
// interval analysis feeding the index function is produced at bind time.
#pragma once

#include <vector>

#include "expr/interval.h"
#include "expr/table.h"
#include "expr/udf.h"
#include "metadata/model.h"
#include "sql/ast.h"

namespace adv::expr {

// Compiled scalar expression with attribute references resolved to slots in
// the materialized row buffer.
struct CompiledScalar {
  enum class Kind : uint8_t { kConst, kSlot, kCall, kArith };

  Kind kind = Kind::kConst;
  double cval = 0;
  int slot = -1;
  const Udf* udf = nullptr;
  char op = '+';
  std::vector<CompiledScalar> args;  // call args, or {lhs, rhs} for kArith

  double eval(const double* row) const;
};

// Compiled boolean predicate.
struct CompiledBool {
  enum class Kind : uint8_t { kTrue, kCmp, kIn, kAnd, kOr, kNot };

  Kind kind = Kind::kTrue;
  sql::CmpOp cmp = sql::CmpOp::kLt;
  CompiledScalar lhs, rhs;       // kCmp
  int slot = -1;                 // kIn
  std::vector<double> in_set;    // kIn, sorted
  std::vector<CompiledBool> kids;

  bool eval(const double* row) const;
};

// One aggregate select item bound against the scan row.  `input` evaluates
// the aggregate argument against the row the extraction kernels materialize
// (select_slots order), not the wider needed-attr buffer.
struct BoundAggItem {
  sql::AggFn fn = sql::AggFn::kCount;
  bool star = false;       // COUNT(*)
  CompiledScalar input;    // unused when star
};

// Output column of an aggregate query: a group key or an aggregate value.
struct OutputColRef {
  bool is_agg = false;
  int index = 0;  // into group keys (is_agg false) or agg items (true)
};

// One resolved ORDER BY key: an output-column position plus direction.
struct OrderKeyRef {
  int col = 0;
  bool desc = false;
};

// A SELECT query bound against a schema.  Immutable after construction.
// Owns a copy of the schema, so it outlives the object it was bound from.
//
// Aggregation pushdown (docs/AGGREGATION.md): for queries with aggregates
// the *scan* columns (group keys ∪ aggregate-input attributes, first-use
// order) take the place of the select list everywhere the extraction
// pipeline looks — select_attrs() / select_slots() describe what the
// kernels materialize per row, so interp, vector, and jit tiers work
// unchanged.  result_columns() describes the final (post-merge) output.
class BoundQuery {
 public:
  // Throws QueryError on unknown attributes / functions or arity mismatch.
  BoundQuery(sql::SelectQuery query, const meta::Schema& schema);

  const sql::SelectQuery& query() const { return query_; }
  const meta::Schema& schema() const { return schema_; }

  // Schema attribute indices the row pipeline must materialize, ascending.
  const std::vector<int>& needed_attrs() const { return needed_attrs_; }

  // Slot in the materialized buffer for schema attribute `attr`, or -1.
  int slot_of_attr(int attr) const { return attr_slot_[attr]; }

  // Selected schema attribute indices in output order (* expands to all).
  const std::vector<int>& select_attrs() const { return select_attrs_; }

  // Slots of the selected attributes in the materialized buffer.
  const std::vector<int>& select_slots() const { return select_slots_; }

  // Full predicate over the materialized buffer.
  bool matches(const double* row) const { return predicate_.eval(row); }
  const CompiledBool& predicate() const { return predicate_; }

  // Slots (into the materialized buffer) the predicate reads — extraction
  // materializes these eagerly and defers the rest until a row matches.
  const std::vector<int>& predicate_slots() const { return predicate_slots_; }

  // Whether the query has any WHERE clause at all.
  bool has_predicate() const { return predicate_.kind != CompiledBool::Kind::kTrue; }

  // Conservative per-attribute intervals implied by the WHERE clause.
  const QueryIntervals& intervals() const { return intervals_; }

  // Column descriptors of the result table.  For aggregate queries these
  // are the final output columns (select-list order), not the scan columns.
  std::vector<Table::Column> result_columns() const;

  // --- Aggregation / top-k pushdown plan -----------------------------------

  // True when the query aggregates (any aggregate item or GROUP BY).
  bool has_aggregates() const { return has_agg_; }
  // True when results are produced by the pushdown merge path instead of
  // row shipping: aggregates, ORDER BY, or LIMIT.
  bool is_pushdown() const {
    return has_agg_ || !order_keys_.empty() || limit_ >= 0;
  }

  // Positions of the group keys in the scan row (GROUP BY order).
  const std::vector<int>& group_key_cols() const { return group_key_cols_; }
  // Schema attribute indices of the group keys (GROUP BY order).
  const std::vector<int>& group_key_attrs() const { return group_key_attrs_; }
  // Aggregate select items (select-list order).
  const std::vector<BoundAggItem>& agg_items() const { return agg_items_; }
  // Output columns of an aggregate query (select-list order).
  const std::vector<OutputColRef>& output_cols() const { return output_cols_; }
  // Resolved ORDER BY keys (output-column positions) and the LIMIT.
  const std::vector<OrderKeyRef>& order_keys() const { return order_keys_; }
  int64_t limit() const { return limit_; }

 private:
  sql::SelectQuery query_;
  meta::Schema schema_;
  std::vector<int> needed_attrs_;
  std::vector<int> attr_slot_;
  std::vector<int> select_attrs_;
  std::vector<int> select_slots_;
  CompiledBool predicate_;
  std::vector<int> predicate_slots_;
  QueryIntervals intervals_{0};
  bool has_agg_ = false;
  std::vector<int> group_key_cols_;
  std::vector<int> group_key_attrs_;
  std::vector<BoundAggItem> agg_items_;
  std::vector<OutputColRef> output_cols_;
  std::vector<OrderKeyRef> order_keys_;
  int64_t limit_ = -1;
};

}  // namespace adv::expr
