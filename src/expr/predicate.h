// Binding a parsed query to a schema and compiling its WHERE clause.
//
// The extraction hot loop materializes only the attributes a query needs
// (select list ∪ predicate attributes) into a dense per-row double buffer.
// The compiled predicate evaluates against that buffer by slot index; the
// interval analysis feeding the index function is produced at bind time.
#pragma once

#include <vector>

#include "expr/interval.h"
#include "expr/table.h"
#include "expr/udf.h"
#include "metadata/model.h"
#include "sql/ast.h"

namespace adv::expr {

// Compiled scalar expression with attribute references resolved to slots in
// the materialized row buffer.
struct CompiledScalar {
  enum class Kind : uint8_t { kConst, kSlot, kCall, kArith };

  Kind kind = Kind::kConst;
  double cval = 0;
  int slot = -1;
  const Udf* udf = nullptr;
  char op = '+';
  std::vector<CompiledScalar> args;  // call args, or {lhs, rhs} for kArith

  double eval(const double* row) const;
};

// Compiled boolean predicate.
struct CompiledBool {
  enum class Kind : uint8_t { kTrue, kCmp, kIn, kAnd, kOr, kNot };

  Kind kind = Kind::kTrue;
  sql::CmpOp cmp = sql::CmpOp::kLt;
  CompiledScalar lhs, rhs;       // kCmp
  int slot = -1;                 // kIn
  std::vector<double> in_set;    // kIn, sorted
  std::vector<CompiledBool> kids;

  bool eval(const double* row) const;
};

// A SELECT query bound against a schema.  Immutable after construction.
// Owns a copy of the schema, so it outlives the object it was bound from.
class BoundQuery {
 public:
  // Throws QueryError on unknown attributes / functions or arity mismatch.
  BoundQuery(sql::SelectQuery query, const meta::Schema& schema);

  const sql::SelectQuery& query() const { return query_; }
  const meta::Schema& schema() const { return schema_; }

  // Schema attribute indices the row pipeline must materialize, ascending.
  const std::vector<int>& needed_attrs() const { return needed_attrs_; }

  // Slot in the materialized buffer for schema attribute `attr`, or -1.
  int slot_of_attr(int attr) const { return attr_slot_[attr]; }

  // Selected schema attribute indices in output order (* expands to all).
  const std::vector<int>& select_attrs() const { return select_attrs_; }

  // Slots of the selected attributes in the materialized buffer.
  const std::vector<int>& select_slots() const { return select_slots_; }

  // Full predicate over the materialized buffer.
  bool matches(const double* row) const { return predicate_.eval(row); }
  const CompiledBool& predicate() const { return predicate_; }

  // Slots (into the materialized buffer) the predicate reads — extraction
  // materializes these eagerly and defers the rest until a row matches.
  const std::vector<int>& predicate_slots() const { return predicate_slots_; }

  // Whether the query has any WHERE clause at all.
  bool has_predicate() const { return predicate_.kind != CompiledBool::Kind::kTrue; }

  // Conservative per-attribute intervals implied by the WHERE clause.
  const QueryIntervals& intervals() const { return intervals_; }

  // Column descriptors of the result table.
  std::vector<Table::Column> result_columns() const;

 private:
  sql::SelectQuery query_;
  meta::Schema schema_;
  std::vector<int> needed_attrs_;
  std::vector<int> attr_slot_;
  std::vector<int> select_attrs_;
  std::vector<int> select_slots_;
  CompiledBool predicate_;
  std::vector<int> predicate_slots_;
  QueryIntervals intervals_{0};
};

}  // namespace adv::expr
