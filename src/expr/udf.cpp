#include "expr/udf.h"

#include <cmath>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "common/string_util.h"

namespace adv::expr {

namespace {

std::vector<Udf>& registry() {
  static std::vector<Udf> r;
  return r;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

double udf_speed(const double* a, std::size_t) {
  return std::sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]);
}

double udf_distance(const double* a, std::size_t) {
  return std::sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]);
}

double udf_mag2(const double* a, std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * a[i];
  return s;
}

double udf_absv(const double* a, std::size_t) { return std::fabs(a[0]); }

std::once_flag builtins_once;

}  // namespace

void UdfRegistry::register_udf(const std::string& name, int arity, UdfFn fn) {
  std::lock_guard<std::mutex> lk(registry_mutex());
  for (auto& u : registry()) {
    if (iequals(u.name, name)) {
      if (u.arity != arity)
        throw QueryError("UDF '" + name + "' re-registered with arity " +
                         std::to_string(arity) + " (was " +
                         std::to_string(u.arity) + ")");
      u.fn = fn;
      return;
    }
  }
  registry().push_back({name, arity, fn});
}

const Udf* UdfRegistry::find(const std::string& name) {
  ensure_builtins();
  std::lock_guard<std::mutex> lk(registry_mutex());
  for (const auto& u : registry())
    if (iequals(u.name, name)) return &u;
  return nullptr;
}

void UdfRegistry::ensure_builtins() {
  std::call_once(builtins_once, [] {
    register_udf("SPEED", 3, udf_speed);
    register_udf("DISTANCE", 3, udf_distance);
    register_udf("MAG2", -1, udf_mag2);
    register_udf("ABSV", 1, udf_absv);
  });
}

}  // namespace adv::expr
