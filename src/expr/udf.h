// User-defined filter functions (paper: the Filter(<Data Element>) clause).
//
// The STORM filtering service executes application-specific functions that
// are hard to express as plain comparisons, e.g. SPEED(OILVX, OILVY, OILVZ)
// in the IPARS example query and DISTANCE(X, Y, Z) in the Titan queries.
// Functions are pure double-valued; applications register their own at
// startup and reference them by name in SQL.
#pragma once

#include <cstddef>
#include <string>

namespace adv::expr {

using UdfFn = double (*)(const double* args, std::size_t n);

struct Udf {
  std::string name;  // matched case-insensitively
  int arity;         // -1 = variadic
  UdfFn fn;
};

// Process-global function registry.  Registration is expected at startup
// (not thread-safe against concurrent lookup); lookup is read-only and
// thread-safe afterwards.
class UdfRegistry {
 public:
  // Registers (or replaces) a function.  Throws QueryError when `name`
  // collides with a different arity.
  static void register_udf(const std::string& name, int arity, UdfFn fn);

  // Returns the function or nullptr.
  static const Udf* find(const std::string& name);

  // Built-ins available to every query:
  //   SPEED(vx, vy, vz)    — magnitude of a velocity vector
  //   DISTANCE(x, y, z)    — Euclidean distance from the origin
  //   MAG2(a, b, ...)      — sum of squares (variadic)
  //   ABSV(x)              — absolute value
  static void ensure_builtins();
};

}  // namespace adv::expr
