#include "dataset/ipars.h"

#include <cmath>
#include <filesystem>
#include <sstream>

#include "afc/dataset_model.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "dataset/layout_writer.h"

namespace adv::dataset {

const char* to_string(IparsLayout l) {
  switch (l) {
    case IparsLayout::kL0: return "L0";
    case IparsLayout::kI: return "I";
    case IparsLayout::kII: return "II";
    case IparsLayout::kIII: return "III";
    case IparsLayout::kIV: return "IV";
    case IparsLayout::kV: return "V";
    case IparsLayout::kVI: return "VI";
  }
  return "?";
}

std::vector<IparsLayout> all_ipars_layouts() {
  return {IparsLayout::kL0, IparsLayout::kI,  IparsLayout::kII,
          IparsLayout::kIII, IparsLayout::kIV, IparsLayout::kV,
          IparsLayout::kVI};
}

namespace {

// Names of the time-varying variables (schema indices 5..).
std::vector<std::string> variable_names(const IparsConfig& cfg) {
  std::vector<std::string> v = {"SOIL", "SGAS", "OILVX", "OILVY", "OILVZ"};
  for (int i = 1; i <= cfg.pad_vars; ++i) v.push_back(format("P%02d", i));
  return v;
}

}  // namespace

uint64_t IparsConfig::table_bytes() const {
  // REL int16 + TIME int32 + (num_attrs-2) float32.
  uint64_t row = 2 + 4 + static_cast<uint64_t>(num_attrs() - 2) * 4;
  return row * total_rows();
}

meta::Schema ipars_schema(const IparsConfig& cfg) {
  meta::Schema s;
  s.name = "IPARS";
  s.attrs.push_back({"REL", DataType::kInt16});
  s.attrs.push_back({"TIME", DataType::kInt32});
  for (const char* c : {"X", "Y", "Z"})
    s.attrs.push_back({c, DataType::kFloat32});
  for (const auto& v : variable_names(cfg))
    s.attrs.push_back({v, DataType::kFloat32});
  return s;
}

double ipars_value(const IparsConfig& cfg, int attr, int rel, int time,
                   int gid) {
  switch (attr) {
    case 0: return static_cast<double>(rel);
    case 1: return static_cast<double>(time);
    case 2:   // X
    case 3:   // Y
    case 4: { // Z — a regular 8x8xN lattice; coordinates are small integers.
      int g = gid - 1;
      int x = g % 8, y = (g / 8) % 8, z = g / 64;
      return static_cast<double>(attr == 2 ? x : attr == 3 ? y : z);
    }
    default: {
      // Hash of (seed, attr, rel, time, gid) -> 24-bit mantissa so the value
      // is exactly representable as float32.
      uint64_t h = mix64(cfg.seed);
      h = hash_combine(h, static_cast<uint64_t>(attr));
      h = hash_combine(h, static_cast<uint64_t>(rel));
      h = hash_combine(h, static_cast<uint64_t>(time));
      h = hash_combine(h, static_cast<uint64_t>(gid));
      uint32_t m = static_cast<uint32_t>(h >> 40);  // 24 bits
      float unit = static_cast<float>(m) * (1.0f / 16777216.0f);  // [0,1)
      if (attr >= 7 && attr <= 9) {
        // Velocity components in (-25, 25).
        return static_cast<double>((unit - 0.5f) * 50.0f);
      }
      if (attr == 5) {
        // SOIL: oil saturation declines as the reservoir is produced, with
        // per-cell noise around the trend.  The temporal correlation is what
        // a real simulation exhibits — and what makes per-chunk min/max
        // metadata (the zone-map index) able to skip whole time steps for
        // selective saturation predicates.
        float phase = static_cast<float>(time - 1) /
                      static_cast<float>(cfg.timesteps);
        return static_cast<double>((1.0f - phase) *
                                   (0.55f + 0.45f * unit));
      }
      return static_cast<double>(unit);  // saturations / pads in [0,1)
    }
  }
}

// ---------------------------------------------------------------------------
// Descriptor generation.

namespace {

std::string schema_and_storage_text(const IparsConfig& cfg) {
  std::ostringstream os;
  meta::Schema s = ipars_schema(cfg);
  os << "[IPARS]\n";
  for (const auto& a : s.attrs)
    os << a.name << " = " << to_string(a.type) << '\n';
  os << "\n[IparsData]\nDatasetDescription = IPARS\n";
  for (int n = 0; n < cfg.nodes; ++n)
    os << "DIR[" << n << "] = node" << n << "/ipars\n";
  os << '\n';
  return os.str();
}

std::string grid_range(const IparsConfig& cfg) {
  return format("($DIRID*%d+1):(($DIRID+1)*%d):1", cfg.grid_per_node,
                cfg.grid_per_node);
}

std::string dir_binding(const IparsConfig& cfg) {
  return format("DIRID = 0:%d:1", cfg.nodes - 1);
}

// All attribute names except REL and TIME (the explicit per-cell payload).
std::vector<std::string> payload_attrs(const IparsConfig& cfg) {
  std::vector<std::string> v = {"X", "Y", "Z"};
  for (const auto& n : variable_names(cfg)) v.push_back(n);
  return v;
}

// Splits the time-varying variables into `parts` contiguous groups.
std::vector<std::vector<std::string>> split_vars(const IparsConfig& cfg,
                                                 int parts) {
  std::vector<std::string> vars = variable_names(cfg);
  std::vector<std::vector<std::string>> out(parts);
  for (std::size_t i = 0; i < vars.size(); ++i)
    out[i * parts / vars.size()].push_back(vars[i]);
  return out;
}

std::string coords_leaf(const IparsConfig& cfg) {
  std::ostringstream os;
  os << "  DATASET \"coords\" {\n"
     << "    DATASPACE { LOOP GRID " << grid_range(cfg) << " { X Y Z } }\n"
     << "    DATA { \"DIR[$DIRID]/COORDS\" " << dir_binding(cfg) << " }\n"
     << "  }\n";
  return os.str();
}

}  // namespace

std::string ipars_descriptor_text(const IparsConfig& cfg,
                                  IparsLayout layout) {
  std::ostringstream os;
  os << "// IPARS dataset, layout " << to_string(layout) << "\n";
  os << schema_and_storage_text(cfg);
  os << "DATASET \"IparsData\" {\n"
     << "  DATATYPE { IPARS }\n"
     << "  DATAINDEX { REL TIME }\n";

  const std::string g = grid_range(cfg);
  const std::string db = dir_binding(cfg);
  const std::string rel_binding = format("REL = 0:%d:1", cfg.rels - 1);
  const std::string time_binding = format("TIME = 1:%d:1", cfg.timesteps);
  const std::string time_loop = format("LOOP TIME 1:%d:1", cfg.timesteps);
  const std::string rel_loop = format("LOOP REL 0:%d:1", cfg.rels - 1);

  switch (layout) {
    case IparsLayout::kL0: {
      // COORDS per node + one file per variable per realization per node.
      os << coords_leaf(cfg);
      for (const auto& var : variable_names(cfg)) {
        os << "  DATASET \"var_" << var << "\" {\n"
           << "    DATASPACE { " << time_loop << " { LOOP GRID " << g << " { "
           << var << " } } }\n"
           << "    DATA { \"DIR[$DIRID]/" << var << "$REL\" " << rel_binding
           << " " << db << " }\n"
           << "  }\n";
      }
      break;
    }
    case IparsLayout::kI: {
      // One file per node: full tuples as records, time-major.
      os << "  DATASET \"all\" {\n"
         << "    DATASPACE { " << time_loop << " { " << rel_loop
         << " { LOOP GRID " << g << " { REL TIME "
         << join(payload_attrs(cfg), " ") << " } } } }\n"
         << "    DATA { \"DIR[$DIRID]/ALL\" " << db << " }\n"
         << "  }\n";
      break;
    }
    case IparsLayout::kII: {
      // One file per node: each time step a chunk, variables as arrays.
      os << "  DATASET \"all\" {\n"
         << "    DATASPACE { " << time_loop << " { " << rel_loop << " {\n";
      for (const auto& var : payload_attrs(cfg))
        os << "      LOOP GRID " << g << " { " << var << " }\n";
      os << "    } } }\n"
         << "    DATA { \"DIR[$DIRID]/ALL\" " << db << " }\n"
         << "  }\n";
      break;
    }
    case IparsLayout::kIII: {
      // One file per time step per node; tuples in tabular form.
      os << "  DATASET \"step\" {\n"
         << "    DATASPACE { " << rel_loop << " { LOOP GRID " << g
         << " { REL " << join(payload_attrs(cfg), " ") << " } } }\n"
         << "    DATA { \"DIR[$DIRID]/T$TIME\" " << time_binding << " " << db
         << " }\n"
         << "  }\n";
      break;
    }
    case IparsLayout::kIV: {
      // One file per time step per node; variables as arrays.
      os << "  DATASET \"step\" {\n"
         << "    DATASPACE { " << rel_loop << " {\n";
      for (const auto& var : payload_attrs(cfg))
        os << "      LOOP GRID " << g << " { " << var << " }\n";
      os << "    } }\n"
         << "    DATA { \"DIR[$DIRID]/T$TIME\" " << time_binding << " " << db
         << " }\n"
         << "  }\n";
      break;
    }
    case IparsLayout::kV:
    case IparsLayout::kVI: {
      // COORDS + the variables split over six files per node.
      os << coords_leaf(cfg);
      auto groups = split_vars(cfg, 6);
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        if (groups[gi].empty()) continue;
        os << "  DATASET \"grp" << gi << "\" {\n"
           << "    DATASPACE { " << time_loop << " { " << rel_loop << " {";
        if (layout == IparsLayout::kV) {
          os << " LOOP GRID " << g << " { " << join(groups[gi], " ")
             << " } ";
        } else {
          os << "\n";
          for (const auto& var : groups[gi])
            os << "      LOOP GRID " << g << " { " << var << " }\n";
          os << "    ";
        }
        os << "} } }\n"
           << "    DATA { \"DIR[$DIRID]/G" << gi << "\" " << db << " }\n"
           << "  }\n";
      }
      break;
    }
  }
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Data generation (layout-driven).

GeneratedIpars generate_ipars(const IparsConfig& cfg, IparsLayout layout,
                              const std::string& root_dir) {
  GeneratedIpars out;
  out.cfg = cfg;
  out.layout = layout;
  out.root = root_dir;
  out.dataset_name = "IparsData";
  out.descriptor_text = ipars_descriptor_text(cfg, layout);

  meta::Descriptor desc = meta::parse_descriptor(out.descriptor_text);
  afc::DatasetModel model(desc, "IparsData", root_dir);
  const meta::Schema& schema = model.schema();

  ValueFn fn = [&cfg, &schema](const std::string& attr,
                               const meta::VarEnv& vars) {
    int a = schema.find(attr);
    int rel = vars.has("REL") ? static_cast<int>(vars.get("REL")) : 0;
    int time = vars.has("TIME") ? static_cast<int>(vars.get("TIME")) : 0;
    int gid = vars.has("GRID") ? static_cast<int>(vars.get("GRID")) : 0;
    return ipars_value(cfg, a, rel, time, gid);
  };

  for (const auto& cf : model.files()) {
    std::filesystem::create_directories(
        std::filesystem::path(cf.full_path).parent_path());
    const auto& leaf = model.leaves()[static_cast<std::size_t>(cf.leaf)];
    out.bytes_written +=
        write_file_from_layout(*leaf.decl, schema, cf.env, cf.full_path, fn);
    out.files_written++;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Oracle.

expr::Table ipars_oracle(const IparsConfig& cfg, const expr::BoundQuery& q) {
  expr::Table out(q.result_columns());
  const auto& needed = q.needed_attrs();
  std::vector<double> buf(needed.size());
  std::vector<double> sel(q.select_slots().size());
  int total_grid = cfg.nodes * cfg.grid_per_node;
  for (int rel = 0; rel < cfg.rels; ++rel) {
    for (int time = 1; time <= cfg.timesteps; ++time) {
      for (int gid = 1; gid <= total_grid; ++gid) {
        for (std::size_t s = 0; s < needed.size(); ++s)
          buf[s] = ipars_value(cfg, needed[s], rel, time, gid);
        if (!q.matches(buf.data())) continue;
        for (std::size_t i = 0; i < sel.size(); ++i)
          sel[i] = buf[static_cast<std::size_t>(q.select_slots()[i])];
        out.append_row(sel.data());
      }
    }
  }
  return out;
}

}  // namespace adv::dataset
