// Layout-driven file writer.
//
// Generates the bytes of a concrete file directly from its DATASPACE
// declaration: the writer walks the loop nest exactly as the extractor's
// offset model expects, asking a value callback for each scalar field.
// Generator and descriptor therefore cannot drift apart — the same metadata
// drives both sides.
#pragma once

#include <functional>
#include <string>

#include "metadata/model.h"

namespace adv::dataset {

// Returns the value of `attr` for the current loop-variable assignment
// (file bindings plus every enclosing loop ident, e.g. REL/TIME/GRID).
using ValueFn =
    std::function<double(const std::string& attr, const meta::VarEnv& vars)>;

// Writes the file `path` for leaf dataset `leaf` under binding environment
// `env`.  Returns bytes written.
uint64_t write_file_from_layout(const meta::DatasetDecl& leaf,
                                const meta::Schema& schema,
                                const meta::VarEnv& env,
                                const std::string& path, const ValueFn& fn);

}  // namespace adv::dataset
