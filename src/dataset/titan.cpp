#include "dataset/titan.h"

#include <filesystem>
#include <sstream>

#include "afc/dataset_model.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "dataset/layout_writer.h"

namespace adv::dataset {

meta::Schema titan_schema() {
  meta::Schema s;
  s.name = "TITAN";
  for (const char* c : {"X", "Y", "Z", "S1", "S2", "S3", "S4", "S5"})
    s.attrs.push_back({c, DataType::kFloat32});
  return s;
}

namespace {

// Cell coordinates of a chunk (x-major linearization so x-slabs are
// contiguous chunk-id ranges, one slab group per node).
void chunk_cell(const TitanConfig& cfg, int chunk, int* ix, int* iy,
                int* iz) {
  *iz = chunk % cfg.cells_z;
  *iy = (chunk / cfg.cells_z) % cfg.cells_y;
  *ix = chunk / (cfg.cells_z * cfg.cells_y);
}

float unit_hash(const TitanConfig& cfg, int attr, int chunk, int elem) {
  uint64_t h = mix64(cfg.seed ^ 0x7154u);
  h = hash_combine(h, static_cast<uint64_t>(attr));
  h = hash_combine(h, static_cast<uint64_t>(chunk));
  h = hash_combine(h, static_cast<uint64_t>(elem));
  uint32_t m = static_cast<uint32_t>(h >> 40);  // 24 bits
  return static_cast<float>(m) * (1.0f / 16777216.0f);
}

}  // namespace

void titan_chunk_bounds(const TitanConfig& cfg, int chunk, int attr,
                        double* lo, double* hi) {
  int ix, iy, iz;
  chunk_cell(cfg, chunk, &ix, &iy, &iz);
  int cell = attr == 0 ? ix : attr == 1 ? iy : iz;
  int cells = attr == 0 ? cfg.cells_x : attr == 1 ? cfg.cells_y : cfg.cells_z;
  double extent =
      attr == 0 ? cfg.extent_x : attr == 1 ? cfg.extent_y : cfg.extent_z;
  double w = extent / cells;
  *lo = cell * w;
  *hi = (cell + 1) * w;
}

double titan_value(const TitanConfig& cfg, int attr, int chunk, int elem) {
  float u = unit_hash(cfg, attr, chunk, elem);
  if (attr <= 2) {
    double lo, hi;
    titan_chunk_bounds(cfg, chunk, attr, &lo, &hi);
    // Computed in float so the stored float32 round-trips exactly.
    return static_cast<double>(static_cast<float>(lo) +
                               u * (static_cast<float>(hi) -
                                    static_cast<float>(lo)));
  }
  // Sensor values in [0,1), spatially autocorrelated like real instrument
  // readings: a per-chunk base level plus small within-chunk variation.
  // (This locality is what makes a B-tree on a sensor attribute effective
  // in a row store — matching tuples cluster in few pages.)
  float base = unit_hash(cfg, attr + 100, chunk, 0);
  constexpr float kSpread = 0.125f;
  return static_cast<double>(base * (1.0f - kSpread) + u * kSpread);
}

std::string titan_descriptor_text(const TitanConfig& cfg) {
  if (cfg.cells_x % cfg.nodes != 0)
    throw ValidationError("TitanConfig: cells_x must be divisible by nodes");
  int cpn = cfg.num_chunks() / cfg.nodes;  // chunks per node
  std::ostringstream os;
  os << "// Titan satellite dataset\n[TITAN]\n";
  for (const auto& a : titan_schema().attrs)
    os << a.name << " = " << to_string(a.type) << '\n';
  os << "\n[TitanData]\nDatasetDescription = TITAN\n";
  for (int n = 0; n < cfg.nodes; ++n)
    os << "DIR[" << n << "] = node" << n << "/titan\n";
  os << "\nDATASET \"TitanData\" {\n"
     << "  DATATYPE { TITAN }\n"
     << "  DATAINDEX { X Y Z }\n"
     << "  DATASPACE {\n"
     << "    LOOP CHUNK ($DIRID*" << cpn << "):(($DIRID+1)*" << cpn
     << "-1):1 {\n"
     << "      LOOP ELEM 0:" << cfg.points_per_chunk - 1
     << ":1 { X Y Z S1 S2 S3 S4 S5 }\n"
     << "    }\n"
     << "  }\n"
     << "  DATA { \"DIR[$DIRID]/CHUNKS\" DIRID = 0:" << cfg.nodes - 1
     << ":1 }\n"
     << "}\n";
  return os.str();
}

GeneratedTitan generate_titan(const TitanConfig& cfg,
                              const std::string& root_dir) {
  GeneratedTitan out;
  out.cfg = cfg;
  out.root = root_dir;
  out.dataset_name = "TitanData";
  out.descriptor_text = titan_descriptor_text(cfg);

  meta::Descriptor desc = meta::parse_descriptor(out.descriptor_text);
  afc::DatasetModel model(desc, "TitanData", root_dir);
  const meta::Schema& schema = model.schema();

  ValueFn fn = [&cfg, &schema](const std::string& attr,
                               const meta::VarEnv& vars) {
    return titan_value(cfg, schema.find(attr),
                       static_cast<int>(vars.get("CHUNK")),
                       static_cast<int>(vars.get("ELEM")));
  };

  for (const auto& cf : model.files()) {
    std::filesystem::create_directories(
        std::filesystem::path(cf.full_path).parent_path());
    const auto& leaf = model.leaves()[static_cast<std::size_t>(cf.leaf)];
    out.bytes_written +=
        write_file_from_layout(*leaf.decl, schema, cf.env, cf.full_path, fn);
    out.files_written++;
  }
  return out;
}

expr::Table titan_oracle(const TitanConfig& cfg, const expr::BoundQuery& q) {
  expr::Table out(q.result_columns());
  const auto& needed = q.needed_attrs();
  std::vector<double> buf(needed.size());
  std::vector<double> sel(q.select_slots().size());
  for (int c = 0; c < cfg.num_chunks(); ++c) {
    for (int e = 0; e < cfg.points_per_chunk; ++e) {
      for (std::size_t s = 0; s < needed.size(); ++s)
        buf[s] = titan_value(cfg, needed[s], c, e);
      if (!q.matches(buf.data())) continue;
      for (std::size_t i = 0; i < sel.size(); ++i)
        sel[i] = buf[static_cast<std::size_t>(q.select_slots()[i])];
      out.append_row(sel.data());
    }
  }
  return out;
}

}  // namespace adv::dataset
