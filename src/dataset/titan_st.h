// Titan-style spatio-temporal chunked dataset generator (paper §2.2).
//
// Unlike dataset/titan.h — where X/Y/Z are stored float coordinates and
// chunking is a property of the generator only — this family makes the
// chunk grid *visible to the planner*: TIME, LAT and LON are implicit
// attributes bound by structure loops, so a regular grid of chunks over
// (TIME, LAT, LON) falls out of the descriptor itself.  Each chunk carries
// a per-chunk header word (MARK) and the file opens with a header (HDR),
// mirroring the self-describing chunked formats the paper targets.  The
// record loop inside a chunk can be row-major (interleaved records) or
// COLMAJOR (one contiguous array per sensor), exercising the column-major
// array family end to end.
//
// Sensor values are spatio-temporally autocorrelated (a per-chunk base
// level plus small within-chunk variation), so a zone-map sidecar can skip
// whole chunks for selective sensor predicates — the bytes_skipped > 0
// acceptance check in bench_micro rides on this.
#pragma once

#include <cstdint>
#include <string>

#include "expr/predicate.h"
#include "expr/table.h"
#include "metadata/model.h"

namespace adv::dataset {

struct TitanStConfig {
  int nodes = 1;
  // Chunk grid: LAT slabs are the spatial partition across nodes (each node
  // stores lat_chunks of the global nodes*lat_chunks LAT rows); LON and
  // TIME are enumerated inside every file.
  int lat_chunks = 4;  // per node
  int lon_chunks = 8;
  int timesteps = 16;
  int cells_per_chunk = 256;
  bool colmajor = false;  // per-sensor arrays inside each chunk
  uint64_t seed = 17;

  int num_sensors() const { return 5; }
  int chunks_per_file() const { return timesteps * lat_chunks * lon_chunks; }
  uint64_t total_rows() const {
    return static_cast<uint64_t>(nodes) * chunks_per_file() * cells_per_chunk;
  }
  // Payload bytes only (headers/markers excluded).
  uint64_t table_bytes() const {
    return total_rows() * static_cast<uint64_t>(num_sensors()) * 4;
  }
};

// Schema: TIME, LAT, LON (implicit int32 dimensions) + S1..S5 (float32).
meta::Schema titan_st_schema();

// Deterministic sensor value (attr in [3, 3+num_sensors)) for `cell` of the
// (time, lat, lon) chunk; lat is global (node offset included).
double titan_st_value(const TitanStConfig& cfg, int attr, int time, int lat,
                      int lon, int cell);

struct GeneratedTitanSt {
  TitanStConfig cfg;
  std::string root;
  std::string dataset_name;  // "TitanST"
  std::string descriptor_text;
  uint64_t bytes_written = 0;
  uint64_t files_written = 0;
};

// Writes one chunked file per node under `root_dir`.
GeneratedTitanSt generate_titan_st(const TitanStConfig& cfg,
                                   const std::string& root_dir);

std::string titan_st_descriptor_text(const TitanStConfig& cfg);

// Brute-force ground truth for a query bound against titan_st_schema().
expr::Table titan_st_oracle(const TitanStConfig& cfg,
                            const expr::BoundQuery& q);

}  // namespace adv::dataset
