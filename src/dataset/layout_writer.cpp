#include "dataset/layout_writer.h"

#include "common/error.h"
#include "common/io.h"
#include "common/types.h"

namespace adv::dataset {

namespace {

DataType type_of(const std::string& attr, const meta::Schema& schema,
                 const std::vector<meta::Attribute>& local_attrs) {
  int idx = schema.find(attr);
  if (idx >= 0) return schema.at(static_cast<std::size_t>(idx)).type;
  for (const auto& a : local_attrs)
    if (a.name == attr) return a.type;
  throw ValidationError("writer: unknown attribute '" + attr + "'");
}

struct Writer {
  const meta::Schema& schema;
  const std::vector<meta::Attribute>& local_attrs;
  const ValueFn& fn;
  BufferedWriter& out;
  meta::VarEnv vars;  // file bindings plus enclosing loop values

  void walk(const meta::LayoutNode& node) {
    if (node.kind == meta::LayoutNode::Kind::kFields) {
      unsigned char buf[8];
      for (const auto& name : node.fields) {
        DataType t = type_of(name, schema, local_attrs);
        encode_double(t, fn(name, vars), buf);
        out.write(buf, size_of(t));
      }
      return;
    }
    int64_t lo = node.range.lo->eval(vars);
    int64_t hi = node.range.hi->eval(vars);
    int64_t step = node.range.step ? node.range.step->eval(vars) : 1;
    if (node.colmajor) {
      // Column-major record loop: one full pass over the span per field.
      unsigned char buf[8];
      for (const auto& item : node.body) {
        for (const auto& name : item.fields) {
          DataType t = type_of(name, schema, local_attrs);
          for (int64_t v = lo; v <= hi; v += step) {
            vars.set(node.loop_ident, v);
            encode_double(t, fn(name, vars), buf);
            out.write(buf, size_of(t));
          }
        }
      }
      return;
    }
    for (int64_t v = lo; v <= hi; v += step) {
      vars.set(node.loop_ident, v);
      for (const auto& item : node.body) walk(item);
    }
  }
};

}  // namespace

uint64_t write_file_from_layout(const meta::DatasetDecl& leaf,
                                const meta::Schema& schema,
                                const meta::VarEnv& env,
                                const std::string& path, const ValueFn& fn) {
  BufferedWriter out(path);
  Writer w{schema, leaf.local_attrs, fn, out, env};
  for (const auto& node : leaf.dataspace) w.walk(node);
  out.close();
  return out.bytes_written();
}

}  // namespace adv::dataset
