#include "dataset/titan_st.h"

#include <filesystem>
#include <sstream>

#include "afc/dataset_model.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "dataset/layout_writer.h"

namespace adv::dataset {

meta::Schema titan_st_schema() {
  meta::Schema s;
  s.name = "TITANST";
  for (const char* c : {"TIME", "LAT", "LON"})
    s.attrs.push_back({c, DataType::kInt32});
  for (const char* c : {"S1", "S2", "S3", "S4", "S5"})
    s.attrs.push_back({c, DataType::kFloat32});
  return s;
}

namespace {

float unit_hash(const TitanStConfig& cfg, int attr, int time, int lat,
                int lon, int cell) {
  uint64_t h = mix64(cfg.seed ^ 0x5717a57ULL);
  h = hash_combine(h, static_cast<uint64_t>(attr));
  h = hash_combine(h, static_cast<uint64_t>(time));
  h = hash_combine(h, static_cast<uint64_t>(lat));
  h = hash_combine(h, static_cast<uint64_t>(lon));
  h = hash_combine(h, static_cast<uint64_t>(cell));
  uint32_t m = static_cast<uint32_t>(h >> 40);  // 24 bits
  return static_cast<float>(m) * (1.0f / 16777216.0f);
}

}  // namespace

double titan_st_value(const TitanStConfig& cfg, int attr, int time, int lat,
                      int lon, int cell) {
  if (attr == 0) return time;
  if (attr == 1) return lat;
  if (attr == 2) return lon;
  // Sensor readings in [0,1), autocorrelated within a chunk: a per-chunk
  // base level plus a small spread.  Chunk min/max spans ~kSpread, so a
  // selective predicate like S1 >= 0.9 rules out most chunks entirely —
  // exactly what the zone-map sidecar exploits.
  float base = unit_hash(cfg, attr + 100, time, lat, lon, 0);
  float u = unit_hash(cfg, attr, time, lat, lon, cell);
  constexpr float kSpread = 0.125f;
  return static_cast<double>(base * (1.0f - kSpread) + u * kSpread);
}

std::string titan_st_descriptor_text(const TitanStConfig& cfg) {
  if (cfg.nodes < 1 || cfg.lat_chunks < 1 || cfg.lon_chunks < 1 ||
      cfg.timesteps < 1 || cfg.cells_per_chunk < 1)
    throw ValidationError("TitanStConfig: all dimensions must be positive");
  std::ostringstream os;
  os << "// Titan spatio-temporal chunk grid\n[TITANST]\n";
  for (const auto& a : titan_st_schema().attrs)
    os << a.name << " = " << to_string(a.type) << '\n';
  os << "\n[TitanST]\nDatasetDescription = TITANST\n";
  for (int n = 0; n < cfg.nodes; ++n)
    os << "DIR[" << n << "] = node" << n << "/titanst\n";
  os << "\nDATASET \"TitanST\" {\n"
     << "  DATATYPE { TITANST HDR = long MARK = int }\n"
     << "  DATAINDEX { TIME LAT LON }\n"
     << "  DATASPACE {\n"
     << "    HDR\n"
     << "    LOOP TIME 1:" << cfg.timesteps << ":1 {\n"
     << "      LOOP LAT ($DIRID*" << cfg.lat_chunks << "+1):(($DIRID+1)*"
     << cfg.lat_chunks << "):1 {\n"
     << "        LOOP LON 1:" << cfg.lon_chunks << ":1 {\n"
     << "          MARK\n"
     << "          LOOP CELL 1:" << cfg.cells_per_chunk << ":1"
     << (cfg.colmajor ? " COLMAJOR" : "") << " { S1 S2 S3 S4 S5 }\n"
     << "        }\n"
     << "      }\n"
     << "    }\n"
     << "  }\n"
     << "  DATA { \"DIR[$DIRID]/GRID\" DIRID = 0:" << cfg.nodes - 1
     << ":1 }\n"
     << "}\n";
  return os.str();
}

GeneratedTitanSt generate_titan_st(const TitanStConfig& cfg,
                                   const std::string& root_dir) {
  GeneratedTitanSt out;
  out.cfg = cfg;
  out.root = root_dir;
  out.dataset_name = "TitanST";
  out.descriptor_text = titan_st_descriptor_text(cfg);

  meta::Descriptor desc = meta::parse_descriptor(out.descriptor_text);
  afc::DatasetModel model(desc, "TitanST", root_dir);
  const meta::Schema& schema = model.schema();

  ValueFn fn = [&cfg, &schema](const std::string& attr,
                               const meta::VarEnv& vars) -> double {
    if (attr == "HDR") return 0x7157;  // magic, never read back
    if (attr == "MARK")
      return vars.get("LAT") * 1000 + vars.get("LON");  // chunk tag
    return titan_st_value(cfg, schema.find(attr),
                          static_cast<int>(vars.get("TIME")),
                          static_cast<int>(vars.get("LAT")),
                          static_cast<int>(vars.get("LON")),
                          static_cast<int>(vars.get("CELL")));
  };

  for (const auto& cf : model.files()) {
    std::filesystem::create_directories(
        std::filesystem::path(cf.full_path).parent_path());
    const auto& leaf = model.leaves()[static_cast<std::size_t>(cf.leaf)];
    out.bytes_written +=
        write_file_from_layout(*leaf.decl, schema, cf.env, cf.full_path, fn);
    out.files_written++;
  }
  return out;
}

expr::Table titan_st_oracle(const TitanStConfig& cfg,
                            const expr::BoundQuery& q) {
  expr::Table out(q.result_columns());
  const auto& needed = q.needed_attrs();
  std::vector<double> buf(needed.size());
  std::vector<double> sel(q.select_slots().size());
  const int global_lat = cfg.nodes * cfg.lat_chunks;
  for (int t = 1; t <= cfg.timesteps; ++t)
    for (int lat = 1; lat <= global_lat; ++lat)
      for (int lon = 1; lon <= cfg.lon_chunks; ++lon)
        for (int cell = 1; cell <= cfg.cells_per_chunk; ++cell) {
          for (std::size_t s = 0; s < needed.size(); ++s)
            buf[s] = titan_st_value(cfg, needed[s], t, lat, lon, cell);
          if (!q.matches(buf.data())) continue;
          for (std::size_t i = 0; i < sel.size(); ++i)
            sel[i] = buf[static_cast<std::size_t>(q.select_slots()[i])];
          out.append_row(sel.data());
        }
  return out;
}

}  // namespace adv::dataset
