// Titan satellite dataset generator (paper §2.2, §5).
//
// Models AVHRR-style satellite sensor data: each data element has spatial
// coordinates X, Y, a third coordinate Z (the time-like dimension the
// paper's queries range over), and five sensor values S1..S5.  Elements are
// bucketed into spatial chunks — each chunk covers one cell of a cx×cy×cz
// grid over the extent — and chunks are stored consecutively in one file
// per node.  A min/max chunk index over (X, Y, Z) is what the paper's
// spatial indexing service consumes; see index/minmax.h.
#pragma once

#include <cstdint>
#include <string>

#include "expr/predicate.h"
#include "expr/table.h"
#include "metadata/model.h"

namespace adv::dataset {

struct TitanConfig {
  int nodes = 1;
  // Chunk grid over the extent; chunks are distributed round-robin by x-slab
  // across nodes.  cells_x must be divisible by nodes.
  int cells_x = 8, cells_y = 8, cells_z = 4;
  int points_per_chunk = 512;
  double extent_x = 40000, extent_y = 40000, extent_z = 1000;
  uint64_t seed = 7;

  int num_chunks() const { return cells_x * cells_y * cells_z; }
  uint64_t total_rows() const {
    return static_cast<uint64_t>(num_chunks()) * points_per_chunk;
  }
  uint64_t table_bytes() const { return total_rows() * 8 * 4; }  // 8 float32
};

// Schema: X, Y, Z, S1..S5 — the paper's 8 attributes.
meta::Schema titan_schema();

// Deterministic value of attribute `attr` for element `elem` of `chunk`.
// Coordinates fall inside the chunk's cell; sensors are uniform in [0,1).
double titan_value(const TitanConfig& cfg, int attr, int chunk, int elem);

// Bounding box of one chunk's cell: [lo, hi] for attr in {0:X, 1:Y, 2:Z}.
void titan_chunk_bounds(const TitanConfig& cfg, int chunk, int attr,
                        double* lo, double* hi);

struct GeneratedTitan {
  TitanConfig cfg;
  std::string root;
  std::string dataset_name;     // "TitanData"
  std::string descriptor_text;
  uint64_t bytes_written = 0;
  uint64_t files_written = 0;
};

// Writes the chunked dataset under `root_dir` and returns the descriptor.
GeneratedTitan generate_titan(const TitanConfig& cfg,
                              const std::string& root_dir);

std::string titan_descriptor_text(const TitanConfig& cfg);

// Brute-force ground truth for a query bound against titan_schema().
expr::Table titan_oracle(const TitanConfig& cfg, const expr::BoundQuery& q);

}  // namespace adv::dataset
