// IPARS oil-reservoir dataset generator (paper §2.2, §5).
//
// The dataset models a multi-realization reservoir simulation: REL
// realizations × TIME steps × a 3-D grid partitioned across cluster nodes.
// Every cell value is a pure function of (attribute, rel, time, gid), so any
// subset of the virtual table can be recomputed on demand — the "row oracle"
// the correctness tests compare engine output against.
//
// The same logical data can be written in the eight physical layouts of the
// paper's Figure 9 experiment:
//   L0  — the application's original layout: one COORDS file per node plus
//         one file per variable per realization per node (the paper's
//         "18 different files" per aligned chunk set).
//   I   — one file per node; full tuples as records, sorted by time.
//   II  — one file per node; each time step a chunk, variables as arrays.
//   III — one file per time step per node; tuples in tabular form.
//   IV  — one file per time step per node; variables as arrays.
//   V   — seven files per node: coordinates + attributes split over six
//         files, tuples within each.
//   VI  — like V but each variable stored as an array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "expr/table.h"
#include "metadata/model.h"

namespace adv::dataset {

enum class IparsLayout { kL0, kI, kII, kIII, kIV, kV, kVI };

const char* to_string(IparsLayout l);
std::vector<IparsLayout> all_ipars_layouts();

struct IparsConfig {
  int nodes = 4;          // cluster nodes == grid partitions
  int rels = 4;           // realizations 0..rels-1
  int timesteps = 500;    // TIME values 1..timesteps
  int grid_per_node = 100;  // grid points per partition
  int pad_vars = 12;      // extra variables P01.. beyond the named five
  uint64_t seed = 42;

  // Schema: REL, TIME, X, Y, Z, SOIL, SGAS, OILVX, OILVY, OILVZ, P01..
  // => 5 + pad_vars time-varying variables (the paper's 17 when pad_vars=12).
  int num_attrs() const { return 10 + pad_vars; }
  int num_variables() const { return 5 + pad_vars; }  // non-coordinate vars

  uint64_t total_rows() const {
    return static_cast<uint64_t>(nodes) * rels * timesteps * grid_per_node;
  }
  // Nominal table payload (all attributes, all rows).
  uint64_t table_bytes() const;
};

// The schema the generator writes (shared by all layouts).
meta::Schema ipars_schema(const IparsConfig& cfg);

// The deterministic value of attribute `attr` (schema index) for the cell
// (rel, time, gid).  Values of float32 attributes are exactly representable
// in float32.
double ipars_value(const IparsConfig& cfg, int attr, int rel, int time,
                   int gid);

// A generated dataset on disk.
struct GeneratedIpars {
  IparsConfig cfg;
  IparsLayout layout = IparsLayout::kL0;
  std::string root;             // filesystem root the DIR paths live under
  std::string dataset_name;     // "IparsData"
  std::string descriptor_text;  // complete meta-data descriptor
  uint64_t bytes_written = 0;
  uint64_t files_written = 0;
};

// Writes the dataset under `root_dir` in the given layout and returns the
// matching descriptor.  Node k's files go to <root_dir>/node<k>/ipars.
GeneratedIpars generate_ipars(const IparsConfig& cfg, IparsLayout layout,
                              const std::string& root_dir);

// Descriptor text only (no file writing) — used by tests that inspect the
// metadata and by the documentation generator.
std::string ipars_descriptor_text(const IparsConfig& cfg, IparsLayout layout);

// Ground truth: evaluates `q` (bound against ipars_schema(cfg)) by brute
// force over every cell.  Row order is unspecified; compare with
// Table::same_rows.
expr::Table ipars_oracle(const IparsConfig& cfg, const expr::BoundQuery& q);

}  // namespace adv::dataset
