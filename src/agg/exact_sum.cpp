#include "agg/exact_sum.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace adv::agg {

namespace {

// Smallest representable magnitude is 2^-1074 (bit 0 of the accumulator);
// largest finite double tops out near bit 2^1024 - 2^-1074, i.e. bit 2098.
constexpr int kBiasBits = 1074;

}  // namespace

void ExactSum::add(double v) {
  if (!std::isfinite(v)) {
    if (std::isnan(v)) saw_nan = true;
    else if (v > 0) saw_pinf = true;
    else saw_ninf = true;
    return;
  }
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  const uint64_t frac = bits & ((uint64_t{1} << 52) - 1);
  const int exp = static_cast<int>((bits >> 52) & 0x7ff);
  const uint64_t mant = exp ? (frac | (uint64_t{1} << 52)) : frac;
  if (mant == 0) return;  // +-0 contributes nothing
  const int64_t sign = (bits >> 63) ? -1 : 1;
  // v = mant * 2^(e) with e = unbiased exponent - 52; subnormals use the
  // minimum exponent.  pos is the accumulator bit of mant's bit 0.
  const int e = (exp ? exp : 1) - 1075;
  const int pos = e + kBiasBits;  // >= 0 by construction
  const int li = pos >> 5;
  const int sh = pos & 31;
  // mant << sh spans at most 84 bits; split it into 64 low + 20 high.
  const uint64_t lo64 = mant << sh;
  const uint64_t hi64 = sh ? mant >> (64 - sh) : 0;
  limb[li] += sign * static_cast<int64_t>(static_cast<uint32_t>(lo64));
  limb[li + 1] +=
      sign * static_cast<int64_t>(static_cast<uint32_t>(lo64 >> 32));
  limb[li + 2] += sign * static_cast<int64_t>(static_cast<uint32_t>(hi64));
  if (++pending >= (uint32_t{1} << 30)) normalize();
}

void ExactSum::normalize() {
  for (int i = 0; i < kLimbs - 1; ++i) {
    // Arithmetic shift implements floor division, so this propagates
    // borrows from negative limbs as well as carries from positive ones.
    const int64_t carry = limb[i] >> 32;
    limb[i] -= carry << 32;
    limb[i + 1] += carry;
  }
  pending = 0;
}

void ExactSum::merge(const ExactSum& o) {
  normalize();
  ExactSum t = o;
  t.normalize();
  for (int i = 0; i < kLimbs; ++i) limb[i] += t.limb[i];
  normalize();
  saw_nan = saw_nan || o.saw_nan;
  saw_pinf = saw_pinf || o.saw_pinf;
  saw_ninf = saw_ninf || o.saw_ninf;
}

bool ExactSum::is_zero() const {
  if (saw_nan || saw_pinf || saw_ninf) return false;
  ExactSum t = *this;
  t.normalize();
  for (int i = 0; i < kLimbs; ++i)
    if (t.limb[i] != 0) return false;
  return true;
}

double ExactSum::finalize() const {
  if (saw_nan || (saw_pinf && saw_ninf))
    return std::numeric_limits<double>::quiet_NaN();
  if (saw_pinf) return std::numeric_limits<double>::infinity();
  if (saw_ninf) return -std::numeric_limits<double>::infinity();

  ExactSum t = *this;
  t.normalize();
  int top = kLimbs - 1;
  while (top >= 0 && t.limb[top] == 0) --top;
  if (top < 0) return 0.0;
  const bool neg = t.limb[top] < 0;
  if (neg) {
    for (int i = 0; i < kLimbs; ++i) t.limb[i] = -t.limb[i];
    t.normalize();
    top = kLimbs - 1;
    while (top >= 0 && t.limb[top] == 0) --top;
  }

  // Magnitude = sum_i limb[i] * 2^(32*i), limbs 0..top-1 in [0, 2^32) and
  // the top limb positive (possibly wider than 32 bits).  B is the bit
  // index of the most significant set bit.
  int hb = 63;
  while (hb > 0 && !((static_cast<uint64_t>(t.limb[top]) >> hb) & 1)) --hb;
  const long B = static_cast<long>(top) * 32 + hb;

  if (B <= 52) {
    // At most 53 significant bits: the value is exactly representable.
    uint64_t mag = static_cast<uint64_t>(t.limb[0]);
    if (top >= 1) mag |= static_cast<uint64_t>(t.limb[1]) << 32;
    const double r = std::ldexp(static_cast<double>(mag), -kBiasBits);
    return neg ? -r : r;
  }

  // Reads bits [lo_bit, lo_bit + nbits) of the magnitude, nbits <= 53.
  // Three limbs (bit positions 0/32/64 relative to the base limb) always
  // cover a 53-bit window at any sub-limb shift.
  const auto get_bits = [&](long lo_bit, int nbits) -> uint64_t {
    const int base = static_cast<int>(lo_bit >> 5);
    const int sh = static_cast<int>(lo_bit & 31);
    const auto limb_at = [&](int i) -> uint64_t {
      return (i >= 0 && i <= top) ? static_cast<uint64_t>(t.limb[i]) : 0;
    };
    uint64_t w = (limb_at(base) >> sh) | (limb_at(base + 1) << (32 - sh));
    if (sh) w |= limb_at(base + 2) << (64 - sh);
    return nbits >= 64 ? w : w & ((uint64_t{1} << nbits) - 1);
  };

  long exp_b = B;
  uint64_t m = get_bits(B - 52, 53);
  const bool guard = get_bits(B - 53, 1) != 0;
  bool sticky = false;
  const long below = B - 53;  // bits [0, below) feed the sticky bit
  const int full = static_cast<int>(below >> 5);
  for (int i = 0; i < full && i <= top; ++i) sticky = sticky || t.limb[i] != 0;
  const int rem = static_cast<int>(below & 31);
  if (!sticky && rem > 0 && full <= top)
    sticky = (static_cast<uint64_t>(t.limb[full]) &
              ((uint64_t{1} << rem) - 1)) != 0;
  if (guard && (sticky || (m & 1))) {
    ++m;
    if (m >> 53) {
      m >>= 1;
      ++exp_b;
    }
  }
  const double r =
      std::ldexp(static_cast<double>(m), static_cast<int>(exp_b - 52 - kBiasBits));
  return neg ? -r : r;
}

}  // namespace adv::agg
