#include "agg/agg.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace adv::agg {

namespace {

constexpr uint64_t kCountLimit = uint64_t{1} << 53;

// --- little-endian byte codec ---------------------------------------------

void put_u8(std::string& s, uint8_t v) { s.push_back(static_cast<char>(v)); }

template <typename T>
void put_le(std::string& s, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  s.append(buf, sizeof(T));
}

struct Reader {
  const uint8_t* p;
  std::size_t left;

  void need(std::size_t n) const {
    if (left < n) throw QueryError("malformed aggregate state: truncated");
  }
  uint8_t u8() {
    need(1);
    --left;
    return *p++;
  }
  template <typename T>
  T le() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }
};

// State kind tags leading every encoded state.
constexpr uint8_t kKindTable = 1;
constexpr uint8_t kKindTopK = 2;

void encode_sum(std::string& out, const ExactSum& sum) {
  ExactSum t = sum;
  t.normalize();
  uint8_t flags = 0;
  if (t.saw_nan) flags |= 1;
  if (t.saw_pinf) flags |= 2;
  if (t.saw_ninf) flags |= 4;
  put_u8(out, flags);
  uint8_t nnz = 0;
  for (int i = 0; i < ExactSum::kLimbs; ++i)
    if (t.limb[i] != 0) ++nnz;
  put_u8(out, nnz);
  for (int i = 0; i < ExactSum::kLimbs; ++i) {
    if (t.limb[i] == 0) continue;
    put_u8(out, static_cast<uint8_t>(i));
    put_le<int64_t>(out, t.limb[i]);
  }
}

ExactSum decode_sum(Reader& r) {
  ExactSum s;
  const uint8_t flags = r.u8();
  s.saw_nan = flags & 1;
  s.saw_pinf = flags & 2;
  s.saw_ninf = flags & 4;
  const uint8_t nnz = r.u8();
  for (uint8_t i = 0; i < nnz; ++i) {
    const uint8_t idx = r.u8();
    if (idx >= ExactSum::kLimbs)
      throw QueryError("malformed aggregate state: limb index out of range");
    s.limb[idx] = r.le<int64_t>();
  }
  return s;
}

void encode_item(std::string& out, sql::AggFn fn, const ItemState& st) {
  switch (fn) {
    case sql::AggFn::kCount:
      put_le<uint64_t>(out, st.count);
      break;
    case sql::AggFn::kSum:
      encode_sum(out, st.sum);
      break;
    case sql::AggFn::kAvg:
      put_le<uint64_t>(out, st.count);
      encode_sum(out, st.sum);
      break;
    case sql::AggFn::kMin:
    case sql::AggFn::kMax:
      put_u8(out, st.mm_seen ? 1 : 0);
      put_le<double>(out, st.mm);
      break;
    case sql::AggFn::kNone:
      throw InternalError("encode_item on a non-aggregate select item");
  }
}

ItemState decode_item(Reader& r, sql::AggFn fn) {
  ItemState st;
  switch (fn) {
    case sql::AggFn::kCount:
      st.count = r.le<uint64_t>();
      break;
    case sql::AggFn::kSum:
      st.sum = decode_sum(r);
      break;
    case sql::AggFn::kAvg:
      st.count = r.le<uint64_t>();
      st.sum = decode_sum(r);
      break;
    case sql::AggFn::kMin:
    case sql::AggFn::kMax:
      st.mm_seen = r.u8() != 0;
      st.mm = r.le<double>();
      break;
    case sql::AggFn::kNone:
      throw QueryError("malformed aggregate state: kNone item");
  }
  return st;
}

bool valid_fn(uint8_t v) {
  return v >= static_cast<uint8_t>(sql::AggFn::kCount) &&
         v <= static_cast<uint8_t>(sql::AggFn::kAvg);
}

}  // namespace

double canon(double v) {
  if (std::isnan(v)) return std::numeric_limits<double>::quiet_NaN();
  if (v == 0.0) return 0.0;
  return v;
}

uint64_t order_bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return (bits >> 63) ? ~bits : bits | (uint64_t{1} << 63);
}

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kDense: return "dense";
    case Strategy::kHash: return "hash";
    case Strategy::kRadix: return "radix";
  }
  return "?";
}

// --- ItemState -------------------------------------------------------------

void ItemState::fold(sql::AggFn fn, double v) {
  switch (fn) {
    case sql::AggFn::kCount:
      ++count;
      return;
    case sql::AggFn::kSum:
      sum.add(v);
      return;
    case sql::AggFn::kAvg:
      sum.add(v);
      ++count;
      return;
    case sql::AggFn::kMin: {
      if (std::isnan(v)) return;  // NaN never wins MIN/MAX
      const double c = canon(v);
      if (!mm_seen || c < mm) mm = c;
      mm_seen = true;
      return;
    }
    case sql::AggFn::kMax: {
      if (std::isnan(v)) return;
      const double c = canon(v);
      if (!mm_seen || c > mm) mm = c;
      mm_seen = true;
      return;
    }
    case sql::AggFn::kNone:
      return;
  }
}

void ItemState::merge(sql::AggFn fn, const ItemState& o) {
  switch (fn) {
    case sql::AggFn::kCount:
      count += o.count;
      return;
    case sql::AggFn::kSum:
      sum.merge(o.sum);
      return;
    case sql::AggFn::kAvg:
      count += o.count;
      sum.merge(o.sum);
      return;
    case sql::AggFn::kMin:
      if (o.mm_seen && (!mm_seen || o.mm < mm)) mm = o.mm;
      mm_seen = mm_seen || o.mm_seen;
      return;
    case sql::AggFn::kMax:
      if (o.mm_seen && (!mm_seen || o.mm > mm)) mm = o.mm;
      mm_seen = mm_seen || o.mm_seen;
      return;
    case sql::AggFn::kNone:
      return;
  }
}

double ItemState::finalize(sql::AggFn fn) const {
  switch (fn) {
    case sql::AggFn::kCount:
      if (count > kCountLimit)
        throw QueryError("COUNT overflow: " + std::to_string(count) +
                         " rows exceeds 2^53 (not exactly representable)");
      return static_cast<double>(count);
    case sql::AggFn::kSum:
      return sum.finalize();
    case sql::AggFn::kAvg:
      if (count == 0) return std::numeric_limits<double>::quiet_NaN();
      if (count > kCountLimit)
        throw QueryError("AVG overflow: " + std::to_string(count) +
                         " rows exceeds 2^53 (not exactly representable)");
      return sum.finalize() / static_cast<double>(count);
    case sql::AggFn::kMin:
    case sql::AggFn::kMax:
      return mm_seen ? mm : std::numeric_limits<double>::quiet_NaN();
    case sql::AggFn::kNone:
      return std::numeric_limits<double>::quiet_NaN();
  }
  return std::numeric_limits<double>::quiet_NaN();
}

// --- GroupTable ------------------------------------------------------------

GroupTable::GroupTable(std::size_t nkeys, std::size_t nitems)
    : nkeys_(nkeys), nitems_(nitems), index_(16, 0) {}

uint64_t GroupTable::hash_keys(const double* keys, std::size_t nkeys) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the canonical key bits
  for (std::size_t k = 0; k < nkeys; ++k) {
    uint64_t bits;
    std::memcpy(&bits, &keys[k], sizeof bits);
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

void GroupTable::rehash(std::size_t cap) {
  index_.assign(cap, 0);
  const std::size_t mask = cap - 1;
  for (std::size_t g = 0; g < ngroups_; ++g) {
    std::size_t i = hash_keys(key(g), nkeys_) & mask;
    while (index_[i] != 0) i = (i + 1) & mask;
    index_[i] = static_cast<uint32_t>(g) + 1;
  }
}

ItemState* GroupTable::find_or_insert(const double* keys) {
  // Keep load under 0.7 so probes stay short.
  if ((ngroups_ + 1) * 10 >= index_.size() * 7) rehash(index_.size() * 2);
  const std::size_t mask = index_.size() - 1;
  std::size_t i = hash_keys(keys, nkeys_) & mask;
  for (;;) {
    const uint32_t slot = index_[i];
    if (slot == 0) {
      index_[i] = static_cast<uint32_t>(ngroups_) + 1;
      keys_.insert(keys_.end(), keys, keys + nkeys_);
      states_.resize(states_.size() + nitems_);
      return states_.data() + (ngroups_++) * nitems_;
    }
    if (std::memcmp(key(slot - 1), keys, nkeys_ * sizeof(double)) == 0)
      return states_.data() + (slot - 1) * nitems_;
    i = (i + 1) & mask;
  }
}

// --- AggTable --------------------------------------------------------------

AggTable::AggTable(AggShape shape, StrategyChoice choice)
    : shape_(std::move(shape)),
      choice_(choice),
      active_(choice.strategy) {
  if (active_ == Strategy::kDense) {
    const int64_t width = choice_.dense_hi - choice_.dense_lo + 1;
    if (width < 1 || width * static_cast<int64_t>(
                                 std::max<std::size_t>(shape_.nitems(), 1)) >
                         kDenseCellBudget)
      throw InternalError("dense aggregation domain exceeds the cell budget");
    dense_.resize(static_cast<std::size_t>(width) * shape_.nitems());
    present_.assign(static_cast<std::size_t>(width), 0);
    spill_ = std::make_unique<GroupTable>(shape_.nkeys, shape_.nitems());
  } else if (active_ == Strategy::kRadix) {
    parts_.reserve(kRadixParts);
    for (int i = 0; i < kRadixParts; ++i)
      parts_.emplace_back(shape_.nkeys, shape_.nitems());
  } else {
    parts_.emplace_back(shape_.nkeys, shape_.nitems());
  }
}

std::size_t AggTable::part_of(const double* keys) const {
  return static_cast<std::size_t>(
      GroupTable::hash_keys(keys, shape_.nkeys) >> 60);
}

void AggTable::upgrade_to_radix() {
  std::vector<GroupTable> parts;
  parts.reserve(kRadixParts);
  for (int i = 0; i < kRadixParts; ++i)
    parts.emplace_back(shape_.nkeys, shape_.nitems());
  const GroupTable& old = parts_[0];
  for (std::size_t g = 0; g < old.ngroups(); ++g) {
    const double* k = old.key(g);
    ItemState* dst =
        parts[GroupTable::hash_keys(k, shape_.nkeys) >> 60].find_or_insert(k);
    const ItemState* src = old.states(g);
    for (std::size_t j = 0; j < shape_.nitems(); ++j) dst[j] = src[j];
  }
  parts_ = std::move(parts);
  active_ = Strategy::kRadix;
}

ItemState* AggTable::find_or_insert(const double* keys) {
  if (active_ == Strategy::kDense) {
    const double v = keys[0];
    // Runtime guard: the hull estimate is advisory — anything outside the
    // dense domain (or not exactly integral) spills to the hash table.
    if (v >= static_cast<double>(choice_.dense_lo) &&
        v <= static_cast<double>(choice_.dense_hi) &&
        v == std::floor(v)) {
      const std::size_t idx =
          static_cast<std::size_t>(static_cast<int64_t>(v) - choice_.dense_lo);
      if (!present_[idx]) {
        present_[idx] = 1;
        ++dense_groups_;
      }
      return dense_.data() + idx * shape_.nitems();
    }
    return spill_->find_or_insert(keys);
  }
  // Upgrade *before* the lookup so the returned pointer stays valid while
  // the caller folds into it.
  if (active_ == Strategy::kHash &&
      parts_[0].ngroups() >= kRadixUpgradeGroups)
    upgrade_to_radix();
  GroupTable& t =
      active_ == Strategy::kRadix ? parts_[part_of(keys)] : parts_[0];
  return t.find_or_insert(keys);
}

uint64_t AggTable::ngroups() const {
  if (active_ == Strategy::kDense) return dense_groups_ + spill_->ngroups();
  uint64_t n = 0;
  for (const auto& p : parts_) n += p.ngroups();
  return n;
}

void AggTable::for_each_group(
    const std::function<void(const double*, const ItemState*)>& fn) const {
  if (active_ == Strategy::kDense) {
    double key = 0;
    for (std::size_t idx = 0; idx < present_.size(); ++idx) {
      if (!present_[idx]) continue;
      key = static_cast<double>(choice_.dense_lo + static_cast<int64_t>(idx));
      fn(&key, dense_.data() + idx * shape_.nitems());
    }
    for (std::size_t g = 0; g < spill_->ngroups(); ++g)
      fn(spill_->key(g), spill_->states(g));
    return;
  }
  for (const auto& p : parts_)
    for (std::size_t g = 0; g < p.ngroups(); ++g) fn(p.key(g), p.states(g));
}

void AggTable::merge(const AggTable& o) {
  if (!(shape_ == o.shape_))
    throw InternalError("merging aggregate tables of different shapes");
  o.for_each_group([&](const double* keys, const ItemState* st) {
    ItemState* dst = find_or_insert(keys);
    for (std::size_t j = 0; j < shape_.nitems(); ++j)
      dst[j].merge(shape_.fns[j], st[j]);
  });
}

void AggTable::encode(std::string& out) const {
  put_u8(out, kKindTable);
  put_le<uint16_t>(out, shape_.nkeys);
  put_le<uint16_t>(out, static_cast<uint16_t>(shape_.nitems()));
  for (sql::AggFn fn : shape_.fns) put_u8(out, static_cast<uint8_t>(fn));
  put_le<uint64_t>(out, ngroups());
  for_each_group([&](const double* keys, const ItemState* st) {
    for (uint16_t k = 0; k < shape_.nkeys; ++k) put_le<double>(out, keys[k]);
    for (std::size_t j = 0; j < shape_.nitems(); ++j)
      encode_item(out, shape_.fns[j], st[j]);
  });
}

void AggTable::merge_encoded(const uint8_t* data, std::size_t size) {
  Reader r{data, size};
  if (r.u8() != kKindTable)
    throw QueryError("malformed aggregate state: expected a group table");
  const uint16_t nkeys = r.le<uint16_t>();
  const uint16_t nitems = r.le<uint16_t>();
  if (nkeys != shape_.nkeys || nitems != shape_.nitems())
    throw QueryError("aggregate state shape mismatch");
  for (uint16_t j = 0; j < nitems; ++j) {
    const uint8_t fn = r.u8();
    if (!valid_fn(fn) || static_cast<sql::AggFn>(fn) != shape_.fns[j])
      throw QueryError("aggregate state shape mismatch");
  }
  const uint64_t ngroups = r.le<uint64_t>();
  std::vector<double> keys(nkeys);
  for (uint64_t g = 0; g < ngroups; ++g) {
    for (uint16_t k = 0; k < nkeys; ++k) keys[k] = canon(r.le<double>());
    ItemState* dst = find_or_insert(keys.data());
    for (uint16_t j = 0; j < nitems; ++j) {
      const ItemState st = decode_item(r, shape_.fns[j]);
      dst[j].merge(shape_.fns[j], st);
    }
  }
}

// --- TopK ------------------------------------------------------------------

TopK::TopK(int ncols, std::vector<expr::OrderKeyRef> order, int64_t limit)
    : ncols_(ncols), order_(std::move(order)), limit_(limit) {
  if (ncols_ <= 0) throw InternalError("TopK needs at least one column");
  for (const auto& k : order_)
    if (k.col < 0 || k.col >= ncols_)
      throw InternalError("TopK order key out of range");
}

bool TopK::before(const double* a, const double* b) const {
  for (const auto& k : order_) {
    const uint64_t oa = order_bits(a[k.col]);
    const uint64_t ob = order_bits(b[k.col]);
    if (oa != ob) return k.desc ? oa > ob : oa < ob;
  }
  // Whole-row lexicographic tie-break: makes the order total over distinct
  // rows, so the k "smallest" are a deterministic set.
  for (int c = 0; c < ncols_; ++c) {
    const uint64_t oa = order_bits(a[c]);
    const uint64_t ob = order_bits(b[c]);
    if (oa != ob) return oa < ob;
  }
  return false;
}

void TopK::swap_rows(std::size_t a, std::size_t b) {
  const std::size_t w = static_cast<std::size_t>(ncols_);
  std::swap_ranges(rows_.begin() + a * w, rows_.begin() + (a + 1) * w,
                   rows_.begin() + b * w);
}

void TopK::sift_up(std::size_t i) {
  const std::size_t w = static_cast<std::size_t>(ncols_);
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    if (!before(&rows_[p * w], &rows_[i * w])) break;
    swap_rows(p, i);
    i = p;
  }
}

void TopK::sift_down(std::size_t i, std::size_t n) {
  const std::size_t w = static_cast<std::size_t>(ncols_);
  for (;;) {
    std::size_t largest = i;
    for (std::size_t c = 2 * i + 1; c <= 2 * i + 2 && c < n; ++c)
      if (before(&rows_[largest * w], &rows_[c * w])) largest = c;
    if (largest == i) return;
    swap_rows(i, largest);
    i = largest;
  }
}

void TopK::add(const double* row) {
  const std::size_t w = static_cast<std::size_t>(ncols_);
  if (limit_ < 0) {
    rows_.insert(rows_.end(), row, row + w);
    return;
  }
  if (limit_ == 0) return;
  const std::size_t n = nrows();
  if (static_cast<int64_t>(n) < limit_) {
    rows_.insert(rows_.end(), row, row + w);
    sift_up(n);
    return;
  }
  // Full: the root is the worst retained row; replace it if the new row
  // orders before it.
  if (before(row, rows_.data())) {
    std::copy(row, row + w, rows_.begin());
    sift_down(0, n);
  }
}

void TopK::merge(const TopK& o) {
  if (o.ncols_ != ncols_)
    throw InternalError("merging top-k states of different widths");
  const std::size_t w = static_cast<std::size_t>(ncols_);
  for (std::size_t i = 0; i < o.nrows(); ++i) add(o.rows_.data() + i * w);
}

std::vector<double> TopK::sorted_rows() const {
  std::vector<double> flat = rows_;
  sort_limit_rows(flat, ncols_, order_, limit_);
  return flat;
}

void TopK::encode(std::string& out) const {
  put_u8(out, kKindTopK);
  put_le<uint16_t>(out, static_cast<uint16_t>(ncols_));
  put_le<uint64_t>(out, nrows());
  for (double v : rows_) put_le<double>(out, v);
}

void TopK::merge_encoded(const uint8_t* data, std::size_t size) {
  Reader r{data, size};
  if (r.u8() != kKindTopK)
    throw QueryError("malformed aggregate state: expected top-k rows");
  const uint16_t ncols = r.le<uint16_t>();
  if (ncols != ncols_) throw QueryError("top-k state width mismatch");
  const uint64_t n = r.le<uint64_t>();
  std::vector<double> row(ncols_);
  for (uint64_t i = 0; i < n; ++i) {
    for (int c = 0; c < ncols_; ++c) row[c] = r.le<double>();
    add(row.data());
  }
}

// --- finalization ----------------------------------------------------------

void sort_limit_rows(std::vector<double>& flat, int ncols,
                     const std::vector<expr::OrderKeyRef>& order,
                     int64_t limit) {
  if (ncols <= 0) {
    flat.clear();
    return;
  }
  const std::size_t w = static_cast<std::size_t>(ncols);
  const std::size_t n = flat.size() / w;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  const auto before = [&](std::size_t ia, std::size_t ib) {
    const double* a = flat.data() + ia * w;
    const double* b = flat.data() + ib * w;
    for (const auto& k : order) {
      const uint64_t oa = order_bits(a[k.col]);
      const uint64_t ob = order_bits(b[k.col]);
      if (oa != ob) return k.desc ? oa > ob : oa < ob;
    }
    for (int c = 0; c < ncols; ++c) {
      const uint64_t oa = order_bits(a[c]);
      const uint64_t ob = order_bits(b[c]);
      if (oa != ob) return oa < ob;
    }
    return false;
  };
  std::sort(perm.begin(), perm.end(), before);
  std::size_t keep = n;
  if (limit >= 0) keep = std::min<std::size_t>(keep, static_cast<std::size_t>(limit));
  std::vector<double> out;
  out.reserve(keep * w);
  for (std::size_t i = 0; i < keep; ++i)
    out.insert(out.end(), flat.data() + perm[i] * w,
               flat.data() + (perm[i] + 1) * w);
  flat = std::move(out);
}

FinalizeSpec finalize_spec(const expr::BoundQuery& q) {
  FinalizeSpec spec;
  spec.grouped = q.has_aggregates();
  spec.order = q.order_keys();
  spec.limit = q.limit();
  if (spec.grouped) {
    spec.shape.nkeys = static_cast<uint16_t>(q.group_key_cols().size());
    for (const auto& it : q.agg_items()) spec.shape.fns.push_back(it.fn);
    spec.out = q.output_cols();
    spec.ncols = static_cast<int>(spec.out.size());
  } else {
    spec.ncols = static_cast<int>(q.result_columns().size());
  }
  return spec;
}

FinalizeSpec finalize_spec(const sql::SelectQuery& q,
                           const std::vector<std::string>& col_names) {
  FinalizeSpec spec;
  spec.grouped = q.has_aggregates();
  spec.limit = q.limit;
  std::vector<std::string> out_names;
  if (spec.grouped) {
    spec.shape.nkeys = static_cast<uint16_t>(q.group_by.size());
    for (const auto& it : q.items) {
      if (it.fn == sql::AggFn::kNone) {
        int key = -1;
        for (std::size_t k = 0; k < q.group_by.size(); ++k)
          if (q.group_by[k] == it.attr) key = static_cast<int>(k);
        if (key < 0)
          throw QueryError("select item '" + it.attr +
                           "' must appear in GROUP BY or be aggregated");
        spec.out.push_back({false, key});
      } else {
        spec.out.push_back({true, static_cast<int>(spec.shape.fns.size())});
        spec.shape.fns.push_back(it.fn);
      }
      out_names.push_back(it.to_string());
    }
    spec.ncols = static_cast<int>(spec.out.size());
  } else {
    if (!q.items.empty())
      for (const auto& it : q.items) out_names.push_back(it.to_string());
    else if (!q.select_attrs.empty())
      out_names = q.select_attrs;
    else
      out_names = col_names;  // SELECT *: caller supplies the schema names
    spec.ncols = static_cast<int>(out_names.size());
    if (spec.ncols == 0)
      throw QueryError(
          "cannot derive the output columns of a SELECT * top-k query "
          "without result column names");
  }
  for (const auto& o : q.order_by) {
    const std::string want = o.key.to_string();
    int col = -1;
    for (std::size_t c = 0; c < out_names.size(); ++c)
      if (out_names[c] == want) col = static_cast<int>(c);
    if (col < 0)
      throw QueryError("ORDER BY key '" + want +
                       "' must appear in the select list");
    spec.order.push_back({col, o.desc});
  }
  return spec;
}

MergeAcc::MergeAcc(FinalizeSpec spec) : spec_(std::move(spec)) {
  if (spec_.grouped) {
    StrategyChoice choice;  // hash with runtime radix upgrade
    tab_ = std::make_unique<AggTable>(spec_.shape, choice);
  } else {
    topk_ = std::make_unique<TopK>(spec_.ncols, spec_.order, spec_.limit);
  }
}

void MergeAcc::merge_encoded(const uint8_t* data, std::size_t size) {
  if (tab_) tab_->merge_encoded(data, size);
  else topk_->merge_encoded(data, size);
}

void MergeAcc::merge_encoded(const std::string& bytes) {
  merge_encoded(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

uint64_t MergeAcc::ngroups() const {
  return tab_ ? tab_->ngroups() : topk_->nrows();
}

std::vector<double> MergeAcc::finalize_rows() const {
  if (!tab_) return topk_->sorted_rows();
  if (spec_.shape.nkeys == 0 && tab_->ngroups() == 0) {
    // Global aggregate over empty input: SQL still yields one row — COUNT 0,
    // SUM +0.0, AVG/MIN/MAX NaN (docs/AGGREGATION.md).
    std::vector<double> row;
    const ItemState empty{};
    for (const auto& o : spec_.out)
      row.push_back(empty.finalize(spec_.shape.fns[o.index]));
    return row;
  }
  std::vector<double> flat;
  flat.reserve(static_cast<std::size_t>(tab_->ngroups()) * spec_.ncols);
  tab_->for_each_group([&](const double* keys, const ItemState* st) {
    for (const auto& o : spec_.out)
      flat.push_back(o.is_agg ? st[o.index].finalize(spec_.shape.fns[o.index])
                              : keys[o.index]);
  });
  sort_limit_rows(flat, spec_.ncols, spec_.order, spec_.limit);
  return flat;
}

// --- strategy selection ----------------------------------------------------

namespace {

struct Hull {
  bool known = false;
  double lo = 0, hi = 0;

  void widen(double a, double b) {
    if (!known) {
      lo = std::min(a, b);
      hi = std::max(a, b);
      known = true;
    } else {
      lo = std::min(lo, std::min(a, b));
      hi = std::max(hi, std::max(a, b));
    }
  }
};

void widen_range(Hull& h, const layout::EvalRange& r) {
  if (r.count() == 0) return;
  const int64_t last = r.lo + (static_cast<int64_t>(r.count()) - 1) * r.step;
  h.widen(static_cast<double>(r.lo), static_cast<double>(last));
}

}  // namespace

StrategyChoice choose_strategy(const expr::BoundQuery& q,
                               const afc::PlanResult& plan,
                               const afc::ChunkBoundsSource* bounds) {
  StrategyChoice choice;
  if (q.group_key_attrs().size() != 1) return choice;
  const int key = q.group_key_attrs()[0];
  if (!is_integral(q.schema().at(static_cast<std::size_t>(key)).type))
    return choice;

  // Index of the key attribute in the zone map's bounds, if covered.
  int zm_idx = -1;
  if (bounds) {
    const auto& attrs = bounds->bounds_attrs();
    for (std::size_t i = 0; i < attrs.size(); ++i)
      if (attrs[i] == key) zm_idx = static_cast<int>(i);
  }

  Hull hull;
  std::vector<std::pair<double, double>> zb;
  std::size_t lookups = 0;
  constexpr std::size_t kMaxLookups = 65536;
  for (const auto& gp : plan.groups) {
    Hull gh;  // hull of the key within this group
    for (const auto& l : gp.loops)
      if (l.attr == key) widen_range(gh, l.range);
    for (const auto& ci : gp.const_implicits)
      if (ci.first == key) gh.widen(ci.second, ci.second);
    if (gp.row_attr == key) widen_range(gh, gp.row_range);
    if (!gh.known) {
      // The key must be a stored field here; only the zone map can bound it.
      if (zm_idx < 0) return choice;
      const std::size_t gidx = static_cast<std::size_t>(&gp - plan.groups.data());
      for (const auto& afc : plan.afcs) {
        if (static_cast<std::size_t>(afc.group) != gidx) continue;
        for (std::size_t c = 0; c < gp.chunks.size(); ++c) {
          bool has_key = false;
          for (const auto& f : gp.chunks[c].fields) has_key = has_key || f.attr == key;
          if (!has_key) continue;
          if (++lookups > kMaxLookups) return choice;
          if (!bounds->chunk_bounds(gp.files[gp.chunks[c].file],
                                    afc.offsets[c], zb))
            return choice;
          gh.widen(zb[zm_idx].first, zb[zm_idx].second);
        }
      }
      if (!gh.known) return choice;  // no bound found: stay with hash
    }
    hull.widen(gh.lo, gh.hi);
  }
  if (!hull.known) return choice;  // empty plan: any strategy is fine

  // The WHERE clause can only shrink the key domain.
  const expr::Interval& qi =
      q.intervals().interval(static_cast<std::size_t>(key));
  const double lo = std::max(hull.lo, qi.lo);
  const double hi = std::min(hull.hi, qi.hi);
  if (!(lo <= hi)) return choice;  // contradictory: no rows, hash is fine
  if (!std::isfinite(lo) || !std::isfinite(hi)) return choice;

  const double lo_i = std::ceil(lo);
  const double hi_i = std::floor(hi);
  constexpr double kMaxDomain = 1e15;
  if (lo_i > hi_i || hi_i - lo_i > kMaxDomain) return choice;
  const int64_t width = static_cast<int64_t>(hi_i) - static_cast<int64_t>(lo_i) + 1;
  const int64_t nitems =
      static_cast<int64_t>(std::max<std::size_t>(q.agg_items().size(), 1));
  choice.est_groups = static_cast<double>(width);
  if (width * nitems <= kDenseCellBudget) {
    choice.strategy = Strategy::kDense;
    choice.dense_lo = static_cast<int64_t>(lo_i);
    choice.dense_hi = static_cast<int64_t>(hi_i);
  } else if (static_cast<uint64_t>(width) > kRadixUpgradeGroups) {
    choice.strategy = Strategy::kRadix;
  }
  return choice;
}

// --- PushdownSink ----------------------------------------------------------

PushdownSink::PushdownSink(const expr::BoundQuery& q,
                           const StrategyChoice& choice)
    : q_(&q), choice_(choice), grouped_(q.has_aggregates()) {
  if (grouped_) {
    AggShape shape;
    shape.nkeys = static_cast<uint16_t>(q.group_key_cols().size());
    for (const auto& it : q.agg_items()) shape.fns.push_back(it.fn);
    keybuf_.resize(shape.nkeys);
    main_tab_ = std::make_unique<AggTable>(shape, choice_);
    delta_tab_ = std::make_unique<AggTable>(shape, choice_);
  } else {
    const int ncols = static_cast<int>(q.select_slots().size());
    main_topk_ = std::make_unique<TopK>(ncols, q.order_keys(), q.limit());
    delta_topk_ = std::make_unique<TopK>(ncols, q.order_keys(), q.limit());
  }
}

PushdownSink::~PushdownSink() = default;

void PushdownSink::begin_afc() {
  if (grouped_) {
    main_tab_->merge(*delta_tab_);
    delta_tab_ = std::make_unique<AggTable>(main_tab_->shape(), choice_);
  } else {
    main_topk_->merge(*delta_topk_);
    delta_topk_ = std::make_unique<TopK>(main_topk_->ncols(), q_->order_keys(),
                                         q_->limit());
  }
}

bool PushdownSink::rollback_afc() {
  // Nothing has left the worker: discarding the delta fully undoes the AFC.
  if (grouped_)
    delta_tab_ = std::make_unique<AggTable>(main_tab_->shape(), choice_);
  else
    delta_topk_ = std::make_unique<TopK>(main_topk_->ncols(), q_->order_keys(),
                                         q_->limit());
  return true;
}

void PushdownSink::finish() { begin_afc(); }

void PushdownSink::on_row(const double* vals, uint64_t) {
  ++rows_folded_;
  if (!grouped_) {
    delta_topk_->add(vals);
    return;
  }
  const auto& key_cols = q_->group_key_cols();
  for (std::size_t k = 0; k < key_cols.size(); ++k)
    keybuf_[k] = canon(vals[key_cols[k]]);
  ItemState* st = delta_tab_->find_or_insert(keybuf_.data());
  const auto& items = q_->agg_items();
  for (std::size_t j = 0; j < items.size(); ++j) {
    // COUNT (including COUNT(*)) never evaluates its argument.
    if (items[j].fn == sql::AggFn::kCount) st[j].fold(items[j].fn, 0);
    else st[j].fold(items[j].fn, items[j].input.eval(vals));
  }
}

void PushdownSink::on_rows(const double* rows, std::size_t ncols,
                           std::size_t nrows, const uint64_t*) {
  for (std::size_t i = 0; i < nrows; ++i) on_row(rows + i * ncols, 0);
}

void PushdownSink::merge_into(PushdownSink& dst) const {
  if (grouped_) dst.main_tab_->merge(*main_tab_);
  else dst.main_topk_->merge(*main_topk_);
}

void PushdownSink::encode(std::string& out) const {
  if (grouped_) main_tab_->encode(out);
  else main_topk_->encode(out);
}

}  // namespace adv::agg
