// Exact (error-free) accumulation of IEEE-754 doubles.
//
// SUM and AVG results must be byte-identical no matter how the scan is
// split across workers, nodes, or replica failovers (docs/AGGREGATION.md).
// Plain double accumulation cannot give that — float addition is not
// associative — so partial aggregates carry a fixed-point superaccumulator
// wide enough to hold any sum of doubles exactly:
//
//   value = sum_i limb[i] * 2^(32*i - 1074)
//
// 67 signed 64-bit limbs cover the full double range (2^-1074 .. 2^1024)
// with headroom for 2^53-and-more addends.  Addition of accumulators is
// limb-wise integer addition, hence associative and commutative: merging
// partial states in any grouping yields the same bits, and the final
// rounding to double (round-to-nearest-even) is performed exactly once.
//
// -0.0 contributes nothing, so a sum that is exactly zero finalizes to
// +0.0 even when every addend was -0.0.  Non-finite addends are tracked in
// flags: any NaN, or both +inf and -inf, finalizes to NaN; else +inf or
// -inf wins.  This matches left-to-right double accumulation on the same
// multiset of inputs except for the rounding of finite sums, which the
// superaccumulator performs exactly instead of per-step.
#pragma once

#include <cstdint>
#include <string>

namespace adv::agg {

struct ExactSum {
  static constexpr int kLimbs = 67;

  int64_t limb[kLimbs] = {};
  // Adds since the last carry normalization.  Each add perturbs at most
  // three limbs by < 2^32, so 2^30 adds stay well inside int64.
  uint32_t pending = 0;
  bool saw_nan = false;
  bool saw_pinf = false;
  bool saw_ninf = false;

  // Folds one value into the accumulator.  Exact for all finite inputs.
  void add(double v);

  // Limb-wise addition of another accumulator (exact, associative).
  void merge(const ExactSum& o);

  // Propagates carries so limbs 0..kLimbs-2 land in [0, 2^32).  The top
  // limb stays signed and carries the overall sign.
  void normalize();

  // Rounds the exact value to the nearest double (ties to even).
  double finalize() const;

  bool is_zero() const;
};

}  // namespace adv::agg
