// Aggregation pushdown: GROUP BY / COUNT / SUM / MIN / MAX / AVG and
// ORDER BY ... LIMIT top-k evaluated inside the extraction workers.
//
// Instead of shipping matched rows, each worker folds rows into a local
// aggregation table (or a bounded top-k heap) as the kernels produce them;
// only the aggregate *state* leaves the worker.  States merge in two
// phases — per-node across workers, then across nodes at the client or
// DistCoordinator — and merging is exact (see exact_sum.h), so the final
// rows are byte-identical for every thread count, kernel tier, merge
// grouping, and replica failover.  docs/AGGREGATION.md has the full
// contract, including the strategy selection and wire format below.
//
// Strategy selection is adaptive, seeded by planner metadata: a single
// integer group key whose value hull (enum-loop ranges, const implicits,
// row ranges, zone-map chunk bounds, WHERE intervals) spans a small domain
// gets a flat dense array; unknown or midsize cardinality gets an open-
// addressing hash table that upgrades itself to 16 radix partitions past
// kRadixUpgradeGroups groups; a known-large hull starts radix-partitioned.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "afc/types.h"
#include "agg/exact_sum.h"
#include "codegen/extractor.h"
#include "expr/predicate.h"
#include "sql/ast.h"

namespace adv::agg {

// Canonicalizes a double for use as a group key or MIN/MAX candidate:
// -0.0 becomes +0.0 and every NaN becomes the canonical quiet NaN, so
// bitwise key equality and bitwise result comparison are well defined.
double canon(double v);

// Maps a double to a uint64 whose unsigned order is the IEEE total order
// (-NaN < -inf < ... < -0 < +0 < ... < +inf < +NaN).  Basis of every
// deterministic sort in this module.
uint64_t order_bits(double v);

// -------------------------------------------------------------------------
// Aggregate state

// The shape of a grouped aggregation: number of group-key columns and the
// aggregate function of each item, select-list order.  Two states merge
// only when their shapes match exactly.
struct AggShape {
  uint16_t nkeys = 0;
  std::vector<sql::AggFn> fns;

  std::size_t nitems() const { return fns.size(); }
  bool operator==(const AggShape& o) const {
    return nkeys == o.nkeys && fns == o.fns;
  }
};

// Mergeable state of one aggregate item within one group.  A single
// uniform struct keeps the tables simple; only the fields its function
// uses are live.
struct ItemState {
  uint64_t count = 0;   // COUNT / AVG
  ExactSum sum;         // SUM / AVG
  double mm = 0;        // MIN / MAX (canonical)
  bool mm_seen = false;

  void fold(sql::AggFn fn, double v);
  void merge(sql::AggFn fn, const ItemState& o);
  // Throws QueryError when a COUNT/AVG count exceeds 2^53 (no longer
  // exactly representable in the double result column).
  double finalize(sql::AggFn fn) const;
};

// -------------------------------------------------------------------------
// Strategy selection

enum class Strategy : uint8_t { kDense, kHash, kRadix };

const char* to_string(Strategy s);

// Dense array: at most this many (group, item) cells.
inline constexpr int64_t kDenseCellBudget = 4096;
// Hash tables repartition into kRadixParts once they pass this many groups.
inline constexpr uint64_t kRadixUpgradeGroups = 4096;
inline constexpr int kRadixParts = 16;

struct StrategyChoice {
  Strategy strategy = Strategy::kHash;
  // Valid when strategy == kDense: inclusive integer key domain.
  int64_t dense_lo = 0;
  int64_t dense_hi = -1;
  // Cardinality estimate that drove the choice; negative when unknown.
  double est_groups = -1;
};

// Estimates the group-key cardinality from planner metadata and picks the
// aggregation strategy.  `bounds` (the zone map) may be null.
StrategyChoice choose_strategy(const expr::BoundQuery& q,
                               const afc::PlanResult& plan,
                               const afc::ChunkBoundsSource* bounds);

// -------------------------------------------------------------------------
// Tables

// Open-addressing hash table from canonical key tuples to ItemState rows.
// Key equality is bitwise (keys are canonicalized on the way in).
class GroupTable {
 public:
  GroupTable(std::size_t nkeys, std::size_t nitems);

  // Returns the item-state row for `keys`, inserting an empty group if
  // absent.  The pointer is valid until the next insert.
  ItemState* find_or_insert(const double* keys);

  std::size_t ngroups() const { return ngroups_; }
  const double* key(std::size_t g) const { return keys_.data() + g * nkeys_; }
  const ItemState* states(std::size_t g) const {
    return states_.data() + g * nitems_;
  }
  ItemState* states(std::size_t g) { return states_.data() + g * nitems_; }

  static uint64_t hash_keys(const double* keys, std::size_t nkeys);

 private:
  void rehash(std::size_t cap);

  std::size_t nkeys_;
  std::size_t nitems_;
  std::size_t ngroups_ = 0;
  std::vector<double> keys_;        // ngroups * nkeys, insertion order
  std::vector<ItemState> states_;   // ngroups * nitems
  std::vector<uint32_t> index_;     // open addressing; 0 empty, else g + 1
};

// One logical aggregation table with a pluggable physical strategy.  Holds
// a worker's (or a merge target's) entire grouped-aggregate state.
class AggTable {
 public:
  AggTable(AggShape shape, StrategyChoice choice);

  // Keys must be canonical.  Pointer valid until the next call.
  ItemState* find_or_insert(const double* keys);

  void merge(const AggTable& o);
  uint64_t ngroups() const;
  const AggShape& shape() const { return shape_; }
  // Physical strategy currently in effect (reflects runtime upgrades).
  Strategy strategy() const { return active_; }

  // Visits every group: fn(keys, states).
  void for_each_group(
      const std::function<void(const double*, const ItemState*)>& fn) const;

  // Self-describing byte-string codec (docs/AGGREGATION.md "Wire format").
  // merge_encoded folds an encoded state into this table; throws
  // QueryError on malformed bytes or shape mismatch.
  void encode(std::string& out) const;
  void merge_encoded(const uint8_t* data, std::size_t size);

 private:
  void upgrade_to_radix();
  std::size_t part_of(const double* keys) const;

  AggShape shape_;
  StrategyChoice choice_;
  Strategy active_;

  // kDense: states indexed by key - dense_lo, occupancy in present_;
  // out-of-domain or non-integral keys spill into spill_.
  std::vector<ItemState> dense_;
  std::vector<uint8_t> present_;
  uint64_t dense_groups_ = 0;
  std::unique_ptr<GroupTable> spill_;

  // kHash: parts_ has one table; kRadix: kRadixParts tables routed by the
  // top bits of the key hash.
  std::vector<GroupTable> parts_;
};

// Top-k row state for plain (non-aggregate) SELECT ... ORDER BY/LIMIT
// pushdown: a bounded worst-at-root heap of the k first rows under the
// deterministic ordering (order keys, then whole-row lexicographic on
// total-order bits).  With no LIMIT it degrades to collect-all.
class TopK {
 public:
  TopK(int ncols, std::vector<expr::OrderKeyRef> order, int64_t limit);

  void add(const double* row);
  void merge(const TopK& o);
  uint64_t nrows() const { return ncols_ ? rows_.size() / ncols_ : 0; }
  int ncols() const { return ncols_; }

  // Rows under the deterministic ordering with the limit applied.
  std::vector<double> sorted_rows() const;

  void encode(std::string& out) const;
  void merge_encoded(const uint8_t* data, std::size_t size);

 private:
  bool before(const double* a, const double* b) const;
  void swap_rows(std::size_t a, std::size_t b);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i, std::size_t n);

  int ncols_;
  std::vector<expr::OrderKeyRef> order_;
  int64_t limit_;
  std::vector<double> rows_;  // heap-ordered when bounded
};

// -------------------------------------------------------------------------
// Finalization

// Everything needed to turn merged aggregate state into final output rows.
// Derivable from a BoundQuery in-process, or — schema-free — from the
// parsed query plus result-column names at the dist coordinator.
struct FinalizeSpec {
  bool grouped = false;
  AggShape shape;                        // grouped only
  std::vector<expr::OutputColRef> out;   // grouped only, select-list order
  std::vector<expr::OrderKeyRef> order;
  int64_t limit = -1;
  int ncols = 0;                         // final output width
};

FinalizeSpec finalize_spec(const expr::BoundQuery& q);
// `col_names` are the output column names in order, used to resolve ORDER
// BY for plain queries (pass the schema attribute names for SELECT *).
// Throws QueryError when the query's ORDER BY / select list is unresolvable.
FinalizeSpec finalize_spec(const sql::SelectQuery& q,
                           const std::vector<std::string>& col_names);

// Sorts `flat` (row-major, ncols wide) by the order keys then whole-row
// lexicographic total-order bits, and truncates to `limit` when >= 0.
void sort_limit_rows(std::vector<double>& flat, int ncols,
                     const std::vector<expr::OrderKeyRef>& order,
                     int64_t limit);

// Accumulates encoded partial states (any order, any grouping — merging is
// exact) and materializes the final, deterministically-ordered rows.
class MergeAcc {
 public:
  explicit MergeAcc(FinalizeSpec spec);

  void merge_encoded(const uint8_t* data, std::size_t size);
  void merge_encoded(const std::string& bytes);

  // Groups (or buffered top-k rows) currently held.
  uint64_t ngroups() const;
  // Final output rows, row-major spec().ncols wide, sorted and limited.
  std::vector<double> finalize_rows() const;
  const FinalizeSpec& spec() const { return spec_; }

 private:
  FinalizeSpec spec_;
  std::unique_ptr<AggTable> tab_;
  std::unique_ptr<TopK> topk_;
};

// -------------------------------------------------------------------------
// Worker-side sink

// RowSink that folds matched rows into local aggregate state instead of
// shipping them.  Mirrors storm's PartitionSink per-AFC protocol: folds go
// into a delta that begin_afc() commits and rollback_afc() discards, so an
// AFC retried after a transient IoError never double-counts (rollback
// always succeeds — nothing has left the worker).
class PushdownSink : public codegen::RowSink {
 public:
  PushdownSink(const expr::BoundQuery& q, const StrategyChoice& choice);
  ~PushdownSink() override;

  void begin_afc();
  bool rollback_afc();
  void finish();

  void on_row(const double* vals, uint64_t scan_index) override;
  void on_rows(const double* rows, std::size_t ncols, std::size_t nrows,
               const uint64_t* scan_index) override;

  uint64_t rows_folded() const { return rows_folded_; }
  // Committed state; meaningful after finish().  Exactly one is non-null.
  AggTable* table() { return main_tab_.get(); }
  TopK* topk() { return main_topk_.get(); }

  // Folds this sink's committed state into `dst` (worker -> node merge).
  void merge_into(PushdownSink& dst) const;
  // Serializes the committed state (what crosses the node boundary).
  void encode(std::string& out) const;

 private:
  const expr::BoundQuery* q_;
  StrategyChoice choice_;
  bool grouped_;
  std::vector<double> keybuf_;
  uint64_t rows_folded_ = 0;
  std::unique_ptr<AggTable> main_tab_, delta_tab_;
  std::unique_ptr<TopK> main_topk_, delta_topk_;
};

}  // namespace adv::agg
