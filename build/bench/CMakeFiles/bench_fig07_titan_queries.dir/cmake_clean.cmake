file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_titan_queries.dir/bench_fig07_titan_queries.cpp.o"
  "CMakeFiles/bench_fig07_titan_queries.dir/bench_fig07_titan_queries.cpp.o.d"
  "bench_fig07_titan_queries"
  "bench_fig07_titan_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_titan_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
