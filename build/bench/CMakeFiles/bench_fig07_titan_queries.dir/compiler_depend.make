# Empty compiler generated dependencies file for bench_fig07_titan_queries.
# This may be replaced when dependencies are built.
