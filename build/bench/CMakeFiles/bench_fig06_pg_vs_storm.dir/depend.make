# Empty dependencies file for bench_fig06_pg_vs_storm.
# This may be replaced when dependencies are built.
