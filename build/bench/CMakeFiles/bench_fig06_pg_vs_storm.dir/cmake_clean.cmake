file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_pg_vs_storm.dir/bench_fig06_pg_vs_storm.cpp.o"
  "CMakeFiles/bench_fig06_pg_vs_storm.dir/bench_fig06_pg_vs_storm.cpp.o.d"
  "bench_fig06_pg_vs_storm"
  "bench_fig06_pg_vs_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_pg_vs_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
