file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_afc.dir/bench_ablation_afc.cpp.o"
  "CMakeFiles/bench_ablation_afc.dir/bench_ablation_afc.cpp.o.d"
  "bench_ablation_afc"
  "bench_ablation_afc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_afc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
