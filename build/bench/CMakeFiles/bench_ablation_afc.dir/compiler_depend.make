# Empty compiler generated dependencies file for bench_ablation_afc.
# This may be replaced when dependencies are built.
