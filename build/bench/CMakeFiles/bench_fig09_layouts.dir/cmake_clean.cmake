file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_layouts.dir/bench_fig09_layouts.cpp.o"
  "CMakeFiles/bench_fig09_layouts.dir/bench_fig09_layouts.cpp.o.d"
  "bench_fig09_layouts"
  "bench_fig09_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
