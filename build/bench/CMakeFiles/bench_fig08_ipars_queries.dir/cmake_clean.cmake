file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_ipars_queries.dir/bench_fig08_ipars_queries.cpp.o"
  "CMakeFiles/bench_fig08_ipars_queries.dir/bench_fig08_ipars_queries.cpp.o.d"
  "bench_fig08_ipars_queries"
  "bench_fig08_ipars_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_ipars_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
