# Empty dependencies file for bench_fig08_ipars_queries.
# This may be replaced when dependencies are built.
