# Empty dependencies file for advtool.
# This may be replaced when dependencies are built.
