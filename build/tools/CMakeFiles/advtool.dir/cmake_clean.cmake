file(REMOVE_RECURSE
  "CMakeFiles/advtool.dir/advtool.cpp.o"
  "CMakeFiles/advtool.dir/advtool.cpp.o.d"
  "advtool"
  "advtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
