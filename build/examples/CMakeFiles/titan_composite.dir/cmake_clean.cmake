file(REMOVE_RECURSE
  "CMakeFiles/titan_composite.dir/titan_composite.cpp.o"
  "CMakeFiles/titan_composite.dir/titan_composite.cpp.o.d"
  "titan_composite"
  "titan_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/titan_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
