# Empty dependencies file for titan_composite.
# This may be replaced when dependencies are built.
