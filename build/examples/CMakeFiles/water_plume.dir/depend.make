# Empty dependencies file for water_plume.
# This may be replaced when dependencies are built.
