file(REMOVE_RECURSE
  "CMakeFiles/water_plume.dir/water_plume.cpp.o"
  "CMakeFiles/water_plume.dir/water_plume.cpp.o.d"
  "water_plume"
  "water_plume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_plume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
