# Empty dependencies file for ipars_bypassed_oil.
# This may be replaced when dependencies are built.
