file(REMOVE_RECURSE
  "CMakeFiles/ipars_bypassed_oil.dir/ipars_bypassed_oil.cpp.o"
  "CMakeFiles/ipars_bypassed_oil.dir/ipars_bypassed_oil.cpp.o.d"
  "ipars_bypassed_oil"
  "ipars_bypassed_oil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipars_bypassed_oil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
