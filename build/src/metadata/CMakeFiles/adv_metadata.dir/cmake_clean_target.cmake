file(REMOVE_RECURSE
  "libadv_metadata.a"
)
