# Empty dependencies file for adv_metadata.
# This may be replaced when dependencies are built.
