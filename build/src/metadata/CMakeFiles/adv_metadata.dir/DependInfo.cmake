
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metadata/arith.cpp" "src/metadata/CMakeFiles/adv_metadata.dir/arith.cpp.o" "gcc" "src/metadata/CMakeFiles/adv_metadata.dir/arith.cpp.o.d"
  "/root/repo/src/metadata/model.cpp" "src/metadata/CMakeFiles/adv_metadata.dir/model.cpp.o" "gcc" "src/metadata/CMakeFiles/adv_metadata.dir/model.cpp.o.d"
  "/root/repo/src/metadata/parser.cpp" "src/metadata/CMakeFiles/adv_metadata.dir/parser.cpp.o" "gcc" "src/metadata/CMakeFiles/adv_metadata.dir/parser.cpp.o.d"
  "/root/repo/src/metadata/print.cpp" "src/metadata/CMakeFiles/adv_metadata.dir/print.cpp.o" "gcc" "src/metadata/CMakeFiles/adv_metadata.dir/print.cpp.o.d"
  "/root/repo/src/metadata/validate.cpp" "src/metadata/CMakeFiles/adv_metadata.dir/validate.cpp.o" "gcc" "src/metadata/CMakeFiles/adv_metadata.dir/validate.cpp.o.d"
  "/root/repo/src/metadata/xml.cpp" "src/metadata/CMakeFiles/adv_metadata.dir/xml.cpp.o" "gcc" "src/metadata/CMakeFiles/adv_metadata.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
