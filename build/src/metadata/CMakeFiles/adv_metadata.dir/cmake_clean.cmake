file(REMOVE_RECURSE
  "CMakeFiles/adv_metadata.dir/arith.cpp.o"
  "CMakeFiles/adv_metadata.dir/arith.cpp.o.d"
  "CMakeFiles/adv_metadata.dir/model.cpp.o"
  "CMakeFiles/adv_metadata.dir/model.cpp.o.d"
  "CMakeFiles/adv_metadata.dir/parser.cpp.o"
  "CMakeFiles/adv_metadata.dir/parser.cpp.o.d"
  "CMakeFiles/adv_metadata.dir/print.cpp.o"
  "CMakeFiles/adv_metadata.dir/print.cpp.o.d"
  "CMakeFiles/adv_metadata.dir/validate.cpp.o"
  "CMakeFiles/adv_metadata.dir/validate.cpp.o.d"
  "CMakeFiles/adv_metadata.dir/xml.cpp.o"
  "CMakeFiles/adv_metadata.dir/xml.cpp.o.d"
  "libadv_metadata.a"
  "libadv_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
