file(REMOVE_RECURSE
  "CMakeFiles/adv_sql.dir/ast.cpp.o"
  "CMakeFiles/adv_sql.dir/ast.cpp.o.d"
  "CMakeFiles/adv_sql.dir/parser.cpp.o"
  "CMakeFiles/adv_sql.dir/parser.cpp.o.d"
  "libadv_sql.a"
  "libadv_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
