# Empty compiler generated dependencies file for adv_sql.
# This may be replaced when dependencies are built.
