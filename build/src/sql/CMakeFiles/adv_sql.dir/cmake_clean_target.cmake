file(REMOVE_RECURSE
  "libadv_sql.a"
)
