# Empty dependencies file for adv_index.
# This may be replaced when dependencies are built.
