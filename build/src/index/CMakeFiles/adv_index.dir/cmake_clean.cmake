file(REMOVE_RECURSE
  "CMakeFiles/adv_index.dir/minmax.cpp.o"
  "CMakeFiles/adv_index.dir/minmax.cpp.o.d"
  "CMakeFiles/adv_index.dir/rtree.cpp.o"
  "CMakeFiles/adv_index.dir/rtree.cpp.o.d"
  "CMakeFiles/adv_index.dir/spatial_filter.cpp.o"
  "CMakeFiles/adv_index.dir/spatial_filter.cpp.o.d"
  "libadv_index.a"
  "libadv_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
