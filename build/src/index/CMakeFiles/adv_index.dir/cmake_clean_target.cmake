file(REMOVE_RECURSE
  "libadv_index.a"
)
