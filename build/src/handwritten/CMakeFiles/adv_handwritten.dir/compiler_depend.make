# Empty compiler generated dependencies file for adv_handwritten.
# This may be replaced when dependencies are built.
