file(REMOVE_RECURSE
  "libadv_handwritten.a"
)
