file(REMOVE_RECURSE
  "CMakeFiles/adv_handwritten.dir/ipars_hand.cpp.o"
  "CMakeFiles/adv_handwritten.dir/ipars_hand.cpp.o.d"
  "CMakeFiles/adv_handwritten.dir/titan_hand.cpp.o"
  "CMakeFiles/adv_handwritten.dir/titan_hand.cpp.o.d"
  "libadv_handwritten.a"
  "libadv_handwritten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_handwritten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
