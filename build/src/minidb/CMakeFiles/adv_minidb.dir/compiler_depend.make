# Empty compiler generated dependencies file for adv_minidb.
# This may be replaced when dependencies are built.
