file(REMOVE_RECURSE
  "CMakeFiles/adv_minidb.dir/btree.cpp.o"
  "CMakeFiles/adv_minidb.dir/btree.cpp.o.d"
  "CMakeFiles/adv_minidb.dir/db.cpp.o"
  "CMakeFiles/adv_minidb.dir/db.cpp.o.d"
  "CMakeFiles/adv_minidb.dir/heap.cpp.o"
  "CMakeFiles/adv_minidb.dir/heap.cpp.o.d"
  "libadv_minidb.a"
  "libadv_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
