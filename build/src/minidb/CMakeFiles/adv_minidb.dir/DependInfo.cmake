
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/btree.cpp" "src/minidb/CMakeFiles/adv_minidb.dir/btree.cpp.o" "gcc" "src/minidb/CMakeFiles/adv_minidb.dir/btree.cpp.o.d"
  "/root/repo/src/minidb/db.cpp" "src/minidb/CMakeFiles/adv_minidb.dir/db.cpp.o" "gcc" "src/minidb/CMakeFiles/adv_minidb.dir/db.cpp.o.d"
  "/root/repo/src/minidb/heap.cpp" "src/minidb/CMakeFiles/adv_minidb.dir/heap.cpp.o" "gcc" "src/minidb/CMakeFiles/adv_minidb.dir/heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/adv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/adv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/adv_metadata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
