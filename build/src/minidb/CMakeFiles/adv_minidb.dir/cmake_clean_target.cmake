file(REMOVE_RECURSE
  "libadv_minidb.a"
)
