file(REMOVE_RECURSE
  "CMakeFiles/adv_dataset.dir/ipars.cpp.o"
  "CMakeFiles/adv_dataset.dir/ipars.cpp.o.d"
  "CMakeFiles/adv_dataset.dir/layout_writer.cpp.o"
  "CMakeFiles/adv_dataset.dir/layout_writer.cpp.o.d"
  "CMakeFiles/adv_dataset.dir/titan.cpp.o"
  "CMakeFiles/adv_dataset.dir/titan.cpp.o.d"
  "libadv_dataset.a"
  "libadv_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
