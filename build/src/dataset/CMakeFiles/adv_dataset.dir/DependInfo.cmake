
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/ipars.cpp" "src/dataset/CMakeFiles/adv_dataset.dir/ipars.cpp.o" "gcc" "src/dataset/CMakeFiles/adv_dataset.dir/ipars.cpp.o.d"
  "/root/repo/src/dataset/layout_writer.cpp" "src/dataset/CMakeFiles/adv_dataset.dir/layout_writer.cpp.o" "gcc" "src/dataset/CMakeFiles/adv_dataset.dir/layout_writer.cpp.o.d"
  "/root/repo/src/dataset/titan.cpp" "src/dataset/CMakeFiles/adv_dataset.dir/titan.cpp.o" "gcc" "src/dataset/CMakeFiles/adv_dataset.dir/titan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/adv_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/adv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/afc/CMakeFiles/adv_afc.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/adv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/adv_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
