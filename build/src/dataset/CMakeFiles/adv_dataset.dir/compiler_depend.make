# Empty compiler generated dependencies file for adv_dataset.
# This may be replaced when dependencies are built.
