file(REMOVE_RECURSE
  "libadv_dataset.a"
)
