# Empty dependencies file for adv_layout.
# This may be replaced when dependencies are built.
