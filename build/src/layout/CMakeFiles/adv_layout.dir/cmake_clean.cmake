file(REMOVE_RECURSE
  "CMakeFiles/adv_layout.dir/region.cpp.o"
  "CMakeFiles/adv_layout.dir/region.cpp.o.d"
  "libadv_layout.a"
  "libadv_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
