file(REMOVE_RECURSE
  "libadv_layout.a"
)
