file(REMOVE_RECURSE
  "libadv_storm.a"
)
