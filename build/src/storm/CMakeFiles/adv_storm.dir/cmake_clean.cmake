file(REMOVE_RECURSE
  "CMakeFiles/adv_storm.dir/cluster.cpp.o"
  "CMakeFiles/adv_storm.dir/cluster.cpp.o.d"
  "CMakeFiles/adv_storm.dir/net.cpp.o"
  "CMakeFiles/adv_storm.dir/net.cpp.o.d"
  "libadv_storm.a"
  "libadv_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
