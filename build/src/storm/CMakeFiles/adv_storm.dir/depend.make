# Empty dependencies file for adv_storm.
# This may be replaced when dependencies are built.
