file(REMOVE_RECURSE
  "libadv_api.a"
)
