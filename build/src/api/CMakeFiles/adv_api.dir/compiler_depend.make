# Empty compiler generated dependencies file for adv_api.
# This may be replaced when dependencies are built.
