file(REMOVE_RECURSE
  "CMakeFiles/adv_api.dir/virtual_table.cpp.o"
  "CMakeFiles/adv_api.dir/virtual_table.cpp.o.d"
  "libadv_api.a"
  "libadv_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
