
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/emit.cpp" "src/codegen/CMakeFiles/adv_codegen.dir/emit.cpp.o" "gcc" "src/codegen/CMakeFiles/adv_codegen.dir/emit.cpp.o.d"
  "/root/repo/src/codegen/extractor.cpp" "src/codegen/CMakeFiles/adv_codegen.dir/extractor.cpp.o" "gcc" "src/codegen/CMakeFiles/adv_codegen.dir/extractor.cpp.o.d"
  "/root/repo/src/codegen/plan.cpp" "src/codegen/CMakeFiles/adv_codegen.dir/plan.cpp.o" "gcc" "src/codegen/CMakeFiles/adv_codegen.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/afc/CMakeFiles/adv_afc.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/adv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/adv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/adv_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/adv_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
