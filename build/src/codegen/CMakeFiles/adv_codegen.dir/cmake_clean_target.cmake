file(REMOVE_RECURSE
  "libadv_codegen.a"
)
