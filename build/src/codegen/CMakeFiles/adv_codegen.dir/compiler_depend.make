# Empty compiler generated dependencies file for adv_codegen.
# This may be replaced when dependencies are built.
