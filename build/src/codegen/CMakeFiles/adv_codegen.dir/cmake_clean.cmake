file(REMOVE_RECURSE
  "CMakeFiles/adv_codegen.dir/emit.cpp.o"
  "CMakeFiles/adv_codegen.dir/emit.cpp.o.d"
  "CMakeFiles/adv_codegen.dir/extractor.cpp.o"
  "CMakeFiles/adv_codegen.dir/extractor.cpp.o.d"
  "CMakeFiles/adv_codegen.dir/plan.cpp.o"
  "CMakeFiles/adv_codegen.dir/plan.cpp.o.d"
  "libadv_codegen.a"
  "libadv_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
