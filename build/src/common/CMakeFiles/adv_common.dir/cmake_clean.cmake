file(REMOVE_RECURSE
  "CMakeFiles/adv_common.dir/env.cpp.o"
  "CMakeFiles/adv_common.dir/env.cpp.o.d"
  "CMakeFiles/adv_common.dir/io.cpp.o"
  "CMakeFiles/adv_common.dir/io.cpp.o.d"
  "CMakeFiles/adv_common.dir/lexer.cpp.o"
  "CMakeFiles/adv_common.dir/lexer.cpp.o.d"
  "CMakeFiles/adv_common.dir/string_util.cpp.o"
  "CMakeFiles/adv_common.dir/string_util.cpp.o.d"
  "CMakeFiles/adv_common.dir/tempdir.cpp.o"
  "CMakeFiles/adv_common.dir/tempdir.cpp.o.d"
  "CMakeFiles/adv_common.dir/thread_pool.cpp.o"
  "CMakeFiles/adv_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/adv_common.dir/types.cpp.o"
  "CMakeFiles/adv_common.dir/types.cpp.o.d"
  "libadv_common.a"
  "libadv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
