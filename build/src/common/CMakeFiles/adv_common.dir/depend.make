# Empty dependencies file for adv_common.
# This may be replaced when dependencies are built.
