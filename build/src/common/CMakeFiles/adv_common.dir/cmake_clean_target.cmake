file(REMOVE_RECURSE
  "libadv_common.a"
)
