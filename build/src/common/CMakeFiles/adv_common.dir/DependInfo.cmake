
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/env.cpp" "src/common/CMakeFiles/adv_common.dir/env.cpp.o" "gcc" "src/common/CMakeFiles/adv_common.dir/env.cpp.o.d"
  "/root/repo/src/common/io.cpp" "src/common/CMakeFiles/adv_common.dir/io.cpp.o" "gcc" "src/common/CMakeFiles/adv_common.dir/io.cpp.o.d"
  "/root/repo/src/common/lexer.cpp" "src/common/CMakeFiles/adv_common.dir/lexer.cpp.o" "gcc" "src/common/CMakeFiles/adv_common.dir/lexer.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/common/CMakeFiles/adv_common.dir/string_util.cpp.o" "gcc" "src/common/CMakeFiles/adv_common.dir/string_util.cpp.o.d"
  "/root/repo/src/common/tempdir.cpp" "src/common/CMakeFiles/adv_common.dir/tempdir.cpp.o" "gcc" "src/common/CMakeFiles/adv_common.dir/tempdir.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/adv_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/adv_common.dir/thread_pool.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/common/CMakeFiles/adv_common.dir/types.cpp.o" "gcc" "src/common/CMakeFiles/adv_common.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
