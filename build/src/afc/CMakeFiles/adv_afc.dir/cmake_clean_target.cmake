file(REMOVE_RECURSE
  "libadv_afc.a"
)
