# Empty compiler generated dependencies file for adv_afc.
# This may be replaced when dependencies are built.
