file(REMOVE_RECURSE
  "CMakeFiles/adv_afc.dir/dataset_model.cpp.o"
  "CMakeFiles/adv_afc.dir/dataset_model.cpp.o.d"
  "CMakeFiles/adv_afc.dir/planner.cpp.o"
  "CMakeFiles/adv_afc.dir/planner.cpp.o.d"
  "CMakeFiles/adv_afc.dir/reference.cpp.o"
  "CMakeFiles/adv_afc.dir/reference.cpp.o.d"
  "libadv_afc.a"
  "libadv_afc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_afc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
