
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/afc/dataset_model.cpp" "src/afc/CMakeFiles/adv_afc.dir/dataset_model.cpp.o" "gcc" "src/afc/CMakeFiles/adv_afc.dir/dataset_model.cpp.o.d"
  "/root/repo/src/afc/planner.cpp" "src/afc/CMakeFiles/adv_afc.dir/planner.cpp.o" "gcc" "src/afc/CMakeFiles/adv_afc.dir/planner.cpp.o.d"
  "/root/repo/src/afc/reference.cpp" "src/afc/CMakeFiles/adv_afc.dir/reference.cpp.o" "gcc" "src/afc/CMakeFiles/adv_afc.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/adv_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/adv_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/adv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/adv_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
