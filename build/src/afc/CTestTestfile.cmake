# CMake generated Testfile for 
# Source directory: /root/repo/src/afc
# Build directory: /root/repo/build/src/afc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
