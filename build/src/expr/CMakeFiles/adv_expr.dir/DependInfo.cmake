
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/interval.cpp" "src/expr/CMakeFiles/adv_expr.dir/interval.cpp.o" "gcc" "src/expr/CMakeFiles/adv_expr.dir/interval.cpp.o.d"
  "/root/repo/src/expr/predicate.cpp" "src/expr/CMakeFiles/adv_expr.dir/predicate.cpp.o" "gcc" "src/expr/CMakeFiles/adv_expr.dir/predicate.cpp.o.d"
  "/root/repo/src/expr/table.cpp" "src/expr/CMakeFiles/adv_expr.dir/table.cpp.o" "gcc" "src/expr/CMakeFiles/adv_expr.dir/table.cpp.o.d"
  "/root/repo/src/expr/udf.cpp" "src/expr/CMakeFiles/adv_expr.dir/udf.cpp.o" "gcc" "src/expr/CMakeFiles/adv_expr.dir/udf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/adv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/adv_metadata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
