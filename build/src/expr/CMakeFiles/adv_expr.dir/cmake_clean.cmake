file(REMOVE_RECURSE
  "CMakeFiles/adv_expr.dir/interval.cpp.o"
  "CMakeFiles/adv_expr.dir/interval.cpp.o.d"
  "CMakeFiles/adv_expr.dir/predicate.cpp.o"
  "CMakeFiles/adv_expr.dir/predicate.cpp.o.d"
  "CMakeFiles/adv_expr.dir/table.cpp.o"
  "CMakeFiles/adv_expr.dir/table.cpp.o.d"
  "CMakeFiles/adv_expr.dir/udf.cpp.o"
  "CMakeFiles/adv_expr.dir/udf.cpp.o.d"
  "libadv_expr.a"
  "libadv_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adv_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
