file(REMOVE_RECURSE
  "libadv_expr.a"
)
