# Empty dependencies file for adv_expr.
# This may be replaced when dependencies are built.
