# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/afc_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/storm_test[1]_include.cmake")
include("/root/repo/build/tests/handwritten_test[1]_include.cmake")
include("/root/repo/build/tests/minidb_test[1]_include.cmake")
include("/root/repo/build/tests/emit_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/interval_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/advtool_test[1]_include.cmake")
include("/root/repo/build/tests/reference_test[1]_include.cmake")
