file(REMOVE_RECURSE
  "CMakeFiles/handwritten_test.dir/handwritten_test.cpp.o"
  "CMakeFiles/handwritten_test.dir/handwritten_test.cpp.o.d"
  "handwritten_test"
  "handwritten_test.pdb"
  "handwritten_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handwritten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
