# Empty compiler generated dependencies file for handwritten_test.
# This may be replaced when dependencies are built.
