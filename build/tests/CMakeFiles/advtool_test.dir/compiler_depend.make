# Empty compiler generated dependencies file for advtool_test.
# This may be replaced when dependencies are built.
