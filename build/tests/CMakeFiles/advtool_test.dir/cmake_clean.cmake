file(REMOVE_RECURSE
  "CMakeFiles/advtool_test.dir/advtool_test.cpp.o"
  "CMakeFiles/advtool_test.dir/advtool_test.cpp.o.d"
  "advtool_test"
  "advtool_test.pdb"
  "advtool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advtool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
