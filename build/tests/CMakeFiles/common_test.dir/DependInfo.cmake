
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/common_test.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/handwritten/CMakeFiles/adv_handwritten.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/adv_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/adv_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/adv_api.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/adv_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/adv_index.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/adv_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/afc/CMakeFiles/adv_afc.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/adv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/adv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/adv_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/adv_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
