file(REMOVE_RECURSE
  "CMakeFiles/afc_test.dir/afc_test.cpp.o"
  "CMakeFiles/afc_test.dir/afc_test.cpp.o.d"
  "afc_test"
  "afc_test.pdb"
  "afc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
