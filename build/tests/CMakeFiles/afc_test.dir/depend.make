# Empty dependencies file for afc_test.
# This may be replaced when dependencies are built.
