// Helper for benches that exercise the compiled codegen backend:
// emit_cpp -> g++ -O2 -shared -> dlopen, returning the generated entry
// points.  This is the deployment form the paper describes (generated code
// compiled into the STORM services).
#pragma once

#include <dlfcn.h>

#include <cstdlib>
#include <string>

#include "codegen/emit.h"
#include "common/io.h"

namespace adv::bench {

using ScanFn = long long (*)(const char*, const double*, const double*,
                             void (*)(void*, const double*), void*);
using GroupScanFn = long long (*)(int, const char*, const double*,
                                  const double*,
                                  void (*)(void*, const double*), void*);

struct GenLib {
  void* handle = nullptr;
  ScanFn scan = nullptr;
  GroupScanFn scan_group = nullptr;
  int (*num_groups)() = nullptr;
  int (*group_node)(int) = nullptr;

  bool ok() const { return scan != nullptr; }
};

inline GenLib compile_generated(const afc::DatasetModel& model,
                                const std::string& dir,
                                const std::string& tag,
                                const afc::ChunkBoundsSource* bounds =
                                    nullptr) {
  GenLib lib;
  std::string src = codegen::emit_cpp(model, bounds);
  std::string cpp = dir + "/gen_" + tag + ".cpp";
  std::string so = dir + "/libgen_" + tag + ".so";
  write_text_file(cpp, src);
  std::string cmd = "g++ -std=c++17 -O2 -shared -fPIC -o " + so + " " + cpp;
  if (std::system(cmd.c_str()) != 0) return lib;
  lib.handle = ::dlopen(so.c_str(), RTLD_NOW);
  if (!lib.handle) return lib;
  lib.scan = reinterpret_cast<ScanFn>(::dlsym(lib.handle, "advgen_scan"));
  lib.scan_group =
      reinterpret_cast<GroupScanFn>(::dlsym(lib.handle, "advgen_scan_group"));
  lib.num_groups =
      reinterpret_cast<int (*)()>(::dlsym(lib.handle, "advgen_num_groups"));
  lib.group_node =
      reinterpret_cast<int (*)(int)>(::dlsym(lib.handle, "advgen_group_node"));
  return lib;
}

}  // namespace adv::bench
