// Ablation: what the two pruning steps of the Figure 5 algorithm buy.
//
// Find_File_Groups prunes files by implicit attributes before forming
// groups; Process_File_Groups prunes enumerated loop values by the query
// intervals ("check against index").  This bench disables each and reports
// planner work and admitted bytes for a selective query as the dataset's
// chunk count grows.
#include "advirt.h"
#include "bench_util.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"

using namespace adv;

int main() {
  std::printf("=== Ablation: AFC planning with pruning disabled ===\n");
  std::printf("query: REL = 0 AND TIME in a 5%% window\n\n");

  bench::ResultTable table({"timesteps", "AFC count", "variant",
                            "plan (ms)", "groups tried", "AFCs considered",
                            "bytes admitted"});
  for (int timesteps : {100, 400, 1600}) {
    dataset::IparsConfig cfg;
    cfg.nodes = 4;
    cfg.rels = 4;
    cfg.timesteps = timesteps;
    cfg.grid_per_node = 50;
    cfg.pad_vars = 0;
    // Plan-only ablation: no data files needed.
    std::string text =
        dataset::ipars_descriptor_text(cfg, dataset::IparsLayout::kL0);
    codegen::DataServicePlan plan =
        codegen::DataServicePlan::from_text(text, "IparsData", "/data");

    int t_lo = timesteps / 2, t_hi = t_lo + timesteps / 20;
    expr::BoundQuery q = plan.bind(format(
        "SELECT * FROM IparsData WHERE REL = 0 AND TIME >= %d AND TIME <= "
        "%d",
        t_lo, t_hi));

    struct Variant {
      const char* name;
      bool prune_files, prune_loops;
    };
    for (const Variant& v :
         {Variant{"full pruning", true, true},
          Variant{"no file pruning", false, true},
          Variant{"no loop pruning", true, false},
          Variant{"no pruning", false, false}}) {
      afc::PlannerOptions opts;
      opts.prune_files = v.prune_files;
      opts.prune_loops = v.prune_loops;
      afc::PlanResult pr;
      double t = bench::time_best([&] { pr = plan.index_fn(q, opts); });
      table.add_row({std::to_string(timesteps),
                     std::to_string(pr.afcs.size()), v.name, bench::ms(t),
                     std::to_string(pr.stats.groups_considered),
                     std::to_string(pr.stats.afcs_considered),
                     human_bytes(pr.bytes_to_read())});
    }
  }
  table.print();
  std::printf("\n(rows are identical across variants — the residual filter "
              "re-checks every row — but disabled pruning multiplies "
              "planner work and admitted bytes)\n");
  return 0;
}
