// Micro-benchmarks (google-benchmark) supporting the paper's two-phase
// design claim: per-query runtime work — SQL parse, bind, index function —
// is microseconds, while the expensive metadata analysis happens once at
// compile time.
#include <benchmark/benchmark.h>

#include <memory>

#include "advirt.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"

using namespace adv;

namespace {

dataset::IparsConfig micro_cfg() {
  dataset::IparsConfig cfg;
  cfg.nodes = 4;
  cfg.rels = 4;
  cfg.timesteps = 500;
  cfg.grid_per_node = 100;
  cfg.pad_vars = 12;
  return cfg;
}

const std::string& descriptor_text() {
  static std::string text =
      dataset::ipars_descriptor_text(micro_cfg(), dataset::IparsLayout::kL0);
  return text;
}

std::shared_ptr<codegen::DataServicePlan> shared_plan() {
  static auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(descriptor_text()), "IparsData", "/data");
  return plan;
}

const char* kQuery =
    "SELECT * FROM IparsData WHERE REL IN (0, 2) AND TIME >= 100 AND TIME "
    "<= 150 AND SOIL > 0.7";

void BM_DescriptorParse(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(meta::parse_descriptor(descriptor_text()));
}
BENCHMARK(BM_DescriptorParse);

void BM_MetadataCompile(benchmark::State& state) {
  meta::Descriptor d = meta::parse_descriptor(descriptor_text());
  for (auto _ : state) {
    afc::DatasetModel model(d, "IparsData", "/data");
    benchmark::DoNotOptimize(model.files().size());
  }
}
BENCHMARK(BM_MetadataCompile);

void BM_SqlParse(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(sql::parse_select(kQuery));
}
BENCHMARK(BM_SqlParse);

void BM_QueryBind(benchmark::State& state) {
  auto plan = shared_plan();
  for (auto _ : state) benchmark::DoNotOptimize(plan->bind(kQuery));
}
BENCHMARK(BM_QueryBind);

void BM_IndexFunction(benchmark::State& state) {
  auto plan = shared_plan();
  expr::BoundQuery q = plan->bind(kQuery);
  for (auto _ : state) {
    afc::PlanResult pr = plan->index_fn(q);
    benchmark::DoNotOptimize(pr.afcs.size());
  }
}
BENCHMARK(BM_IndexFunction);

void BM_EmitCpp(benchmark::State& state) {
  auto plan = shared_plan();
  for (auto _ : state)
    benchmark::DoNotOptimize(codegen::emit_cpp(plan->model()).size());
}
BENCHMARK(BM_EmitCpp);

void BM_PredicateEval(benchmark::State& state) {
  auto plan = shared_plan();
  expr::BoundQuery q = plan->bind(kQuery);
  std::vector<double> row(q.needed_attrs().size(), 0.5);
  row[0] = 2;    // REL slot
  row[1] = 120;  // TIME slot
  for (auto _ : state) benchmark::DoNotOptimize(q.matches(row.data()));
}
BENCHMARK(BM_PredicateEval);

void BM_RTreeQuery(benchmark::State& state) {
  std::vector<index::RTree::Entry> entries;
  for (uint64_t i = 0; i < 4096; ++i) {
    double x = static_cast<double>(i % 64) * 10;
    double y = static_cast<double>(i / 64) * 10;
    entries.push_back({index::Box({x, y}, {x + 9, y + 9}), i});
  }
  index::RTree tree = index::RTree::build(entries, 2);
  index::Box q({100, 100}, {160, 160});
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    tree.query(q, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RTreeQuery);

}  // namespace

BENCHMARK_MAIN();
