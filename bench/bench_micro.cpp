// Micro-benchmarks (google-benchmark) supporting the paper's two-phase
// design claim: per-query runtime work — SQL parse, bind, index function —
// is microseconds, while the expensive metadata analysis happens once at
// compile time.
//
// After the microbenches, a multi-AFC scan-throughput section exercises
// the full intra-node extraction pipeline (index -> extract -> partition
// -> ship -> client tables) across io modes (mmap vs pread) and
// threads_per_node, and writes the measurements to BENCH_micro.json so
// the perf trajectory is trackable across PRs.  ADV_THREADS sets the
// parallel worker count (default 4).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "advirt.h"
#include "bench_util.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"
#include "dataset/titan_st.h"
#include "storm/cluster.h"
#include "storm/net.h"

using namespace adv;

namespace {

dataset::IparsConfig micro_cfg() {
  dataset::IparsConfig cfg;
  cfg.nodes = 4;
  cfg.rels = 4;
  cfg.timesteps = 500;
  cfg.grid_per_node = 100;
  cfg.pad_vars = 12;
  return cfg;
}

const std::string& descriptor_text() {
  static std::string text =
      dataset::ipars_descriptor_text(micro_cfg(), dataset::IparsLayout::kL0);
  return text;
}

std::shared_ptr<codegen::DataServicePlan> shared_plan() {
  static auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(descriptor_text()), "IparsData", "/data");
  return plan;
}

const char* kQuery =
    "SELECT * FROM IparsData WHERE REL IN (0, 2) AND TIME >= 100 AND TIME "
    "<= 150 AND SOIL > 0.7";

void BM_DescriptorParse(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(meta::parse_descriptor(descriptor_text()));
}
BENCHMARK(BM_DescriptorParse);

void BM_MetadataCompile(benchmark::State& state) {
  meta::Descriptor d = meta::parse_descriptor(descriptor_text());
  for (auto _ : state) {
    afc::DatasetModel model(d, "IparsData", "/data");
    benchmark::DoNotOptimize(model.files().size());
  }
}
BENCHMARK(BM_MetadataCompile);

void BM_SqlParse(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(sql::parse_select(kQuery));
}
BENCHMARK(BM_SqlParse);

void BM_QueryBind(benchmark::State& state) {
  auto plan = shared_plan();
  for (auto _ : state) benchmark::DoNotOptimize(plan->bind(kQuery));
}
BENCHMARK(BM_QueryBind);

void BM_IndexFunction(benchmark::State& state) {
  auto plan = shared_plan();
  expr::BoundQuery q = plan->bind(kQuery);
  for (auto _ : state) {
    afc::PlanResult pr = plan->index_fn(q);
    benchmark::DoNotOptimize(pr.afcs.size());
  }
}
BENCHMARK(BM_IndexFunction);

void BM_EmitCpp(benchmark::State& state) {
  auto plan = shared_plan();
  for (auto _ : state)
    benchmark::DoNotOptimize(codegen::emit_cpp(plan->model()).size());
}
BENCHMARK(BM_EmitCpp);

void BM_PredicateEval(benchmark::State& state) {
  auto plan = shared_plan();
  expr::BoundQuery q = plan->bind(kQuery);
  std::vector<double> row(q.needed_attrs().size(), 0.5);
  row[0] = 2;    // REL slot
  row[1] = 120;  // TIME slot
  for (auto _ : state) benchmark::DoNotOptimize(q.matches(row.data()));
}
BENCHMARK(BM_PredicateEval);

void BM_RTreeQuery(benchmark::State& state) {
  std::vector<index::RTree::Entry> entries;
  for (uint64_t i = 0; i < 4096; ++i) {
    double x = static_cast<double>(i % 64) * 10;
    double y = static_cast<double>(i / 64) * 10;
    entries.push_back({index::Box({x, y}, {x + 9, y + 9}), i});
  }
  index::RTree tree = index::RTree::build(entries, 2);
  index::Box q({100, 100}, {160, 160});
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    tree.query(q, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RTreeQuery);

// ---------------------------------------------------------------------------
// Multi-AFC scan throughput.

struct ScanConfig {
  const char* name;
  std::size_t threads_per_node;
  IoMode io_mode;
  KernelMode kernel_mode;
};

std::size_t bench_threads() {
  return static_cast<std::size_t>(env_int("ADV_THREADS", 4));
}

// The four legacy names stay pinned to the interpreter so their committed
// baselines keep meaning across the kernel-engine change; the vector and
// jit tiers get their own entries.  Every par-* config has a seq-* twin —
// scripts/bench_check.sh gates on the pairing (parallel must not lose to
// sequential).
std::vector<ScanConfig> scan_configs() {
  return {
      // the pre-pipeline baseline path
      {"seq-pread", 1, IoMode::kPread, KernelMode::kInterp},
      {"seq-mmap", 1, IoMode::kMmap, KernelMode::kInterp},
      {"par-pread", bench_threads(), IoMode::kPread, KernelMode::kInterp},
      {"par-mmap", bench_threads(), IoMode::kMmap, KernelMode::kInterp},
      {"seq-pread-vector", 1, IoMode::kPread, KernelMode::kVector},
      {"seq-mmap-vector", 1, IoMode::kMmap, KernelMode::kVector},
      {"par-pread-vector", bench_threads(), IoMode::kPread,
       KernelMode::kVector},
      {"par-mmap-vector", bench_threads(), IoMode::kMmap, KernelMode::kVector},
      {"seq-mmap-jit", 1, IoMode::kMmap, KernelMode::kJit},
      {"par-mmap-jit", bench_threads(), IoMode::kMmap, KernelMode::kJit},
  };
}

void run_scan_throughput(const dataset::GeneratedIpars& gen,
                         bench::JsonRecords& json) {
  std::printf("\n=== multi-AFC scan throughput (BENCH_micro.json) ===\n");
  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);

  const std::vector<ScanConfig> configs = scan_configs();
  const char* queries[] = {
      "SELECT * FROM IparsData",
      "SELECT * FROM IparsData WHERE SOIL >= 0.25",
  };

  bench::ResultTable table({"query", "config", "threads", "wall (s)",
                            "rows/s", "MB/s", "identical"});
  for (const char* sql : queries) {
    expr::Table reference;
    for (const ScanConfig& c : configs) {
      storm::ClusterOptions opts;
      opts.threads_per_node = c.threads_per_node;
      opts.io_mode = c.io_mode;
      opts.kernel_mode = c.kernel_mode;
      storm::StormCluster cluster(plan, opts);
      cluster.execute(sql);  // warmup: populate handle cache + page cache
      double wall = 1e300;
      uint64_t rows = 0, bytes = 0;
      expr::Table merged;
      for (int i = 0; i < bench::repeats(); ++i) {
        Stopwatch sw;
        storm::QueryResult r = cluster.execute(sql);
        double t = sw.elapsed_seconds();
        if (t < wall) wall = t;
        rows = r.total_rows();
        bytes = r.total_bytes_read();
        merged = r.merged();
      }
      // Every configuration must produce the same row set as the
      // sequential-pread baseline (sorted comparison).
      bool identical = true;
      if (&c == &configs[0]) reference = merged;
      else identical = merged.same_rows(reference);

      double rows_per_sec = static_cast<double>(rows) / wall;
      double mb_per_sec = static_cast<double>(bytes) / wall / 1e6;
      json.add()
          .field("query", sql)
          .field("config", c.name)
          .field("threads_per_node", static_cast<uint64_t>(c.threads_per_node))
          .field("io_mode", c.io_mode == IoMode::kMmap ? "mmap" : "pread")
          .field("kernel_mode", to_string(c.kernel_mode))
          .field("rows", rows)
          .field("bytes_read", bytes)
          .field("wall_seconds", wall)
          .field("rows_per_sec", rows_per_sec)
          .field("mb_per_sec", mb_per_sec)
          .field("identical_to_baseline", identical);
      table.add_row({sql, c.name, std::to_string(c.threads_per_node),
                     bench::secs(wall), format("%.0f", rows_per_sec),
                     format("%.1f", mb_per_sec), identical ? "yes" : "no"});
    }
  }
  table.print();
}

// ---------------------------------------------------------------------------
// Zone-map pruning: the selective query with and without the sidecar.

void run_zonemap_pruning(const dataset::GeneratedIpars& gen,
                         const std::string& zm_dir,
                         bench::JsonRecords& json) {
  std::printf("\n=== zone-map pruning, SOIL >= 0.9 (BENCH_micro.json) ===\n");
  const char* sql = "SELECT * FROM IparsData WHERE SOIL >= 0.9";

  bench::ResultTable table({"config", "threads", "wall (s)", "rows/s",
                            "bytes read", "bytes skipped", "afcs pruned",
                            "identical"});
  expr::Table reference;
  bool first = true;
  for (bool indexed : {false, true}) {
    for (const ScanConfig& c : scan_configs()) {
      VirtualTable::Options opt;
      opt.cluster.threads_per_node = c.threads_per_node;
      opt.cluster.io_mode = c.io_mode;
      opt.cluster.kernel_mode = c.kernel_mode;
      opt.plan_cache_capacity = 0;  // measure planning every run
      if (indexed) {
        opt.zonemap_dir = zm_dir;   // first open builds + saves, rest load
        opt.build_zonemap = true;
      }
      VirtualTable vt = VirtualTable::open(gen.descriptor_text,
                                           gen.dataset_name, gen.root, opt);
      vt.query_detailed(sql);  // warmup
      double wall = 1e300;
      storm::QueryResult last;
      for (int i = 0; i < bench::repeats(); ++i) {
        Stopwatch sw;
        storm::QueryResult r = vt.query_detailed(sql);
        double t = sw.elapsed_seconds();
        if (t < wall) wall = t;
        last = std::move(r);
      }
      expr::Table merged = last.merged();
      bool identical = true;
      if (first) reference = merged, first = false;
      else identical = merged.same_rows(reference);

      std::string name =
          std::string(indexed ? "zonemap-" : "unindexed-") + c.name;
      double rows_per_sec = static_cast<double>(last.total_rows()) / wall;
      json.add()
          .field("query", sql)
          .field("config", name)
          .field("threads_per_node", static_cast<uint64_t>(c.threads_per_node))
          .field("io_mode", c.io_mode == IoMode::kMmap ? "mmap" : "pread")
          .field("kernel_mode", to_string(c.kernel_mode))
          .field("zonemap", indexed)
          .field("rows", last.total_rows())
          .field("bytes_read", last.total_bytes_read())
          .field("bytes_skipped", last.total_bytes_skipped())
          .field("afcs_pruned", last.total_afcs_pruned())
          .field("rows_pruned", last.total_rows_pruned())
          .field("wall_seconds", wall)
          .field("rows_per_sec", rows_per_sec)
          .field("identical_to_baseline", identical);
      table.add_row({name, std::to_string(c.threads_per_node),
                     bench::secs(wall), format("%.0f", rows_per_sec),
                     human_bytes(last.total_bytes_read()),
                     human_bytes(last.total_bytes_skipped()),
                     std::to_string(last.total_afcs_pruned()),
                     identical ? "yes" : "no"});
    }
  }
  table.print();
}

// ---------------------------------------------------------------------------
// Titan-style spatio-temporal chunk grid (docs/LAYOUTS.md): TIME/LAT/LON
// are implicit structure-loop dimensions, so a selective spatio-temporal
// query prunes whole chunks at plan time, and the zone-map sidecar prunes
// further on the autocorrelated sensors (bytes_skipped > 0 is the
// acceptance check).  Both record families — interleaved rows and the
// column-major array layout — run the same queries.

void run_titan_st(bench::JsonRecords& json) {
  std::printf("\n=== titan spatio-temporal grid (BENCH_micro.json) ===\n");
  dataset::TitanStConfig cfg;
  cfg.nodes = 2;
  cfg.lat_chunks = 4;
  cfg.lon_chunks = 8;
  cfg.timesteps = 24;
  cfg.cells_per_chunk = 256;

  struct TitanQuery {
    const char* label;
    const char* sql;
    bool zonemap;
  };
  const TitanQuery queries[] = {
      {"titanst-fullscan", "SELECT * FROM TitanST", false},
      {"titanst-st-pruned",
       "SELECT * FROM TitanST WHERE TIME BETWEEN 5 AND 8 AND LAT <= 3 "
       "AND LON >= 6",
       false},
      {"titanst-zonemap",
       "SELECT * FROM TitanST WHERE TIME >= 12 AND S1 >= 0.9", true},
  };

  bench::ResultTable table({"query", "layout", "wall (s)", "rows", "MB/s",
                            "bytes read", "bytes skipped", "identical"});
  for (bool colmajor : {false, true}) {
    cfg.colmajor = colmajor;
    TempDir tmp(colmajor ? "bench-titanst-cm" : "bench-titanst-rm");
    auto gen = dataset::generate_titan_st(cfg, tmp.str());
    const char* layout = colmajor ? "colmajor" : "rowmajor";

    for (const TitanQuery& tq : queries) {
      VirtualTable::Options opt;
      opt.cluster.threads_per_node = bench_threads();
      opt.plan_cache_capacity = 0;
      if (tq.zonemap) {
        opt.zonemap_dir = tmp.str() + "/.zm";
        opt.build_zonemap = true;
      }
      VirtualTable vt = VirtualTable::open(gen.descriptor_text,
                                           gen.dataset_name, gen.root, opt);
      vt.query_detailed(tq.sql);  // warmup
      double wall = 1e300;
      storm::QueryResult last;
      for (int i = 0; i < bench::repeats(); ++i) {
        Stopwatch sw;
        storm::QueryResult r = vt.query_detailed(tq.sql);
        double t = sw.elapsed_seconds();
        if (t < wall) wall = t;
        last = std::move(r);
      }
      // The layout families must agree with the brute-force oracle.
      expr::BoundQuery q = vt.plan().bind(tq.sql);
      bool identical =
          last.merged().same_rows(dataset::titan_st_oracle(cfg, q));

      double mb_per_sec =
          static_cast<double>(last.total_bytes_read()) / wall / 1e6;
      json.add()
          .field("query", tq.sql)
          .field("config", std::string(tq.label) + "-" + layout)
          .field("threads_per_node", static_cast<uint64_t>(bench_threads()))
          .field("layout", layout)
          .field("zonemap", tq.zonemap)
          .field("rows", last.total_rows())
          .field("bytes_read", last.total_bytes_read())
          .field("bytes_skipped", last.total_bytes_skipped())
          .field("afcs_pruned", last.total_afcs_pruned())
          .field("rows_pruned", last.total_rows_pruned())
          .field("wall_seconds", wall)
          .field("rows_per_sec", static_cast<double>(last.total_rows()) / wall)
          .field("mb_per_sec", mb_per_sec)
          .field("identical_to_baseline", identical);
      table.add_row({tq.label, layout, bench::secs(wall),
                     std::to_string(last.total_rows()),
                     format("%.1f", mb_per_sec),
                     human_bytes(last.total_bytes_read()),
                     human_bytes(last.total_bytes_skipped()),
                     identical ? "yes" : "no"});
    }
  }
  table.print();
}

// ---------------------------------------------------------------------------
// Plan cache: repeated-query latency with and without cached per-node plans.

void run_plan_cache(const dataset::GeneratedIpars& gen,
                    const std::string& zm_dir, bench::JsonRecords& json) {
  std::printf("\n=== plan cache, repeated query (BENCH_micro.json) ===\n");
  const char* sql = "SELECT * FROM IparsData WHERE SOIL >= 0.9";

  bench::ResultTable table(
      {"config", "wall (s)", "rows/s", "cache hits", "identical"});
  expr::Table reference;
  for (bool cached : {false, true}) {
    VirtualTable::Options opt;
    opt.cluster.threads_per_node = bench_threads();
    opt.zonemap_dir = zm_dir;  // plan with the chunk filter: realistic cost
    opt.build_zonemap = true;
    opt.plan_cache_capacity = cached ? 16 : 0;
    VirtualTable vt = VirtualTable::open(gen.descriptor_text,
                                         gen.dataset_name, gen.root, opt);
    vt.query_detailed(sql);  // warmup; with the cache this is the cold miss
    double wall = 1e300;
    storm::QueryResult last;
    for (int i = 0; i < bench::repeats(); ++i) {
      Stopwatch sw;
      storm::QueryResult r = vt.query_detailed(sql);
      double t = sw.elapsed_seconds();
      if (t < wall) wall = t;
      last = std::move(r);
    }
    expr::Table merged = last.merged();
    bool identical = true;
    if (!cached) reference = merged;
    else identical = merged.same_rows(reference);

    const char* name = cached ? "plancache-hit" : "plancache-off";
    double rows_per_sec = static_cast<double>(last.total_rows()) / wall;
    json.add()
        .field("query", sql)
        .field("config", name)
        .field("threads_per_node",
               static_cast<uint64_t>(bench_threads()))
        .field("plan_cache_hits", vt.plan_cache_stats().hits)
        .field("rows", last.total_rows())
        .field("bytes_read", last.total_bytes_read())
        .field("wall_seconds", wall)
        .field("rows_per_sec", rows_per_sec)
        .field("identical_to_baseline", identical);
    table.add_row({name, bench::secs(wall), format("%.0f", rows_per_sec),
                   std::to_string(vt.plan_cache_stats().hits),
                   identical ? "yes" : "no"});
  }
  table.print();
}

// ---------------------------------------------------------------------------
// Aggregation pushdown (docs/AGGREGATION.md): GROUP BY / top-k evaluated
// inside the extraction workers, with only aggregate state crossing the
// node boundary.  One query per adaptive strategy — dense (loop-attr key),
// radix (high-cardinality payload key), grouped top-k, and the plain
// bounded-heap top-k — each across sequential/parallel and kernel tiers.
// bytes_shipped is what actually crossed the node boundary; ship_reduction
// compares it against the row bytes a scan-then-aggregate-client would
// have shipped for the same matched rows.

void run_agg_pushdown(const dataset::GeneratedIpars& gen,
                      bench::JsonRecords& json) {
  std::printf("\n=== aggregation pushdown (BENCH_micro.json) ===\n");
  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);

  struct AggBench {
    const char* label;
    const char* sql;
  };
  const AggBench benches[] = {
      {"dense-group",
       "SELECT TIME, COUNT(*), SUM(SOIL), AVG(SGAS) FROM IparsData "
       "GROUP BY TIME"},
      {"high-cardinality",
       "SELECT SOIL, COUNT(*), MAX(SGAS) FROM IparsData WHERE TIME <= 100 "
       "GROUP BY SOIL"},
      {"grouped-topk",
       "SELECT TIME, SUM(SOIL) FROM IparsData GROUP BY TIME "
       "ORDER BY SUM(SOIL) DESC LIMIT 10"},
      {"plain-topk",
       "SELECT * FROM IparsData ORDER BY SGAS DESC LIMIT 100"},
  };
  const std::vector<ScanConfig> configs = {
      {"seq-mmap", 1, IoMode::kMmap, KernelMode::kInterp},
      {"par-mmap", bench_threads(), IoMode::kMmap, KernelMode::kInterp},
      {"par-mmap-vector", bench_threads(), IoMode::kMmap,
       KernelMode::kVector},
      {"par-mmap-jit", bench_threads(), IoMode::kMmap, KernelMode::kJit},
  };

  bench::ResultTable table({"query", "config", "threads", "wall (s)",
                            "rows/s", "groups", "shipped", "reduction",
                            "strategy", "identical"});
  for (const AggBench& b : benches) {
    expr::Table reference;
    bool first = true;
    for (const ScanConfig& c : configs) {
      storm::ClusterOptions opts;
      opts.threads_per_node = c.threads_per_node;
      opts.io_mode = c.io_mode;
      opts.kernel_mode = c.kernel_mode;
      storm::StormCluster cluster(plan, opts);
      cluster.execute(b.sql);  // warmup
      double wall = 1e300;
      storm::QueryResult last;
      for (int i = 0; i < bench::repeats(); ++i) {
        Stopwatch sw;
        storm::QueryResult r = cluster.execute(b.sql);
        double t = sw.elapsed_seconds();
        if (t < wall) wall = t;
        last = std::move(r);
      }
      expr::Table merged = last.merged();
      // The engine's own backends are bit-identical for aggregates, so
      // every config must reproduce the first config's table exactly.
      bool identical = true;
      if (first) reference = merged, first = false;
      else identical = merged.same_rows(reference);

      uint64_t rows_scanned = 0, rows_matched = 0, shipped = 0;
      uint64_t dense = 0, hash = 0, radix = 0;
      for (const auto& ns : last.node_stats) {
        rows_scanned += ns.rows_scanned;
        rows_matched += ns.rows_matched;
        shipped += ns.bytes_sent;
        dense += ns.agg_dense;
        hash += ns.agg_hash;
        radix += ns.agg_radix;
      }
      const uint64_t groups = last.total_groups_emitted();
      // What a scan-then-aggregate-at-client design ships for the same
      // matched rows (the scan columns the workers folded from).
      const uint64_t scan_cols =
          plan->bind(b.sql).select_slots().size();
      const uint64_t row_bytes = rows_matched * scan_cols * sizeof(double);
      const double reduction =
          shipped ? static_cast<double>(row_bytes) /
                        static_cast<double>(shipped)
                  : 0.0;
      std::string strategy;
      if (dense) strategy += format("dense:%llu ",
                                    static_cast<unsigned long long>(dense));
      if (hash) strategy += format("hash:%llu ",
                                   static_cast<unsigned long long>(hash));
      if (radix) strategy += format("radix:%llu ",
                                    static_cast<unsigned long long>(radix));
      if (strategy.empty()) strategy = "topk ";
      strategy.pop_back();

      double rows_per_sec = static_cast<double>(rows_scanned) / wall;
      json.add()
          .field("query", b.sql)
          .field("config", std::string("agg-") + b.label + "-" + c.name)
          .field("threads_per_node",
                 static_cast<uint64_t>(c.threads_per_node))
          .field("kernel_mode", to_string(c.kernel_mode))
          .field("rows_scanned", rows_scanned)
          .field("rows_matched", rows_matched)
          .field("groups_emitted", groups)
          .field("bytes_shipped", shipped)
          .field("agg_bytes_shipped", last.total_agg_bytes_shipped())
          .field("row_bytes_equivalent", row_bytes)
          .field("ship_reduction", reduction)
          .field("agg_dense", dense)
          .field("agg_hash", hash)
          .field("agg_radix", radix)
          .field("wall_seconds", wall)
          .field("rows_per_sec", rows_per_sec)
          .field("identical_to_baseline", identical);
      table.add_row({b.label, c.name, std::to_string(c.threads_per_node),
                     bench::secs(wall), format("%.0f", rows_per_sec),
                     std::to_string(groups), human_bytes(shipped),
                     format("%.0fx", reduction), strategy,
                     identical ? "yes" : "no"});
    }
  }
  table.print();
}

// ---------------------------------------------------------------------------
// Served queries per second: the full TCP + admission-scheduler path.
// Closed-loop clients hammer one QueryServer; every response is checked
// against a direct cluster execution of the same query.

void run_served_qps(const dataset::GeneratedIpars& gen,
                    bench::JsonRecords& json) {
  std::printf("\n=== served queries/s, admission path (BENCH_micro.json) ===\n");
  const char* sql = "SELECT * FROM IparsData WHERE SOIL >= 0.9";
  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);
  storm::ClusterOptions copts;
  copts.threads_per_node = bench_threads();

  // Baseline: the identical query executed directly on a cluster.
  expr::Table reference;
  {
    storm::StormCluster cluster(plan, copts);
    reference = cluster.execute(sql).merged();
  }

  const std::size_t kClients = 8, kPerClient = 3;
  sched::SchedulerOptions sopts;
  sopts.max_concurrent_queries = 4;
  sopts.max_queue_depth = 2 * kClients;  // closed loop never overflows it
  storm::QueryServer server(plan, copts, 0, nullptr, sopts);

  storm::QueryClient warm("127.0.0.1", server.port());
  warm.execute(sql);  // warmup: page cache + handle cache

  std::atomic<bool> all_identical{true};
  Stopwatch sw;
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      storm::QueryClient client("127.0.0.1", server.port());
      for (std::size_t q = 0; q < kPerClient; ++q) {
        storm::RemoteResult r = client.execute(sql);
        if (!r.merged().same_rows(reference)) all_identical.store(false);
      }
    });
  }
  for (auto& t : clients) t.join();
  double wall = sw.elapsed_seconds();

  const uint64_t total = kClients * kPerClient;
  double qps = static_cast<double>(total) / wall;
  sched::SchedulerMetrics m = server.scheduler_metrics();
  json.add()
      .field("query", sql)
      .field("config", "served-8clients-4slots")
      .field("clients", static_cast<uint64_t>(kClients))
      .field("max_concurrent_queries",
             static_cast<uint64_t>(sopts.max_concurrent_queries))
      .field("queries", total)
      .field("wall_seconds", wall)
      .field("queries_per_sec", qps)
      .field("peak_running", static_cast<uint64_t>(m.peak_running))
      .field("peak_queue_depth", static_cast<uint64_t>(m.peak_queue_depth))
      .field("identical_to_baseline", all_identical.load());

  bench::ResultTable table({"config", "clients", "slots", "queries",
                            "wall (s)", "queries/s", "peak run", "identical"});
  table.add_row({"served-8clients-4slots", std::to_string(kClients), "4",
                 std::to_string(total), bench::secs(wall),
                 format("%.1f", qps), std::to_string(m.peak_running),
                 all_identical.load() ? "yes" : "no"});
  table.print();
}

// Serving layer: the same admission path with the result cache on
// (docs/SERVING.md §6).  "serving-cold-unique" sends a distinct query
// every time — every one misses, measuring the full parse + version +
// execute + insert path.  "serving-hot-cached" hammers one query — after
// the first miss every request replays the stored frames.  The hot path
// is the product claim (a dashboard refresh must not rescan), so its
// entry carries the speedup and a correctness bit; bench_check.sh gates
// both configs' queries_per_sec like any other section.
void run_serving_cache(const dataset::GeneratedIpars& gen,
                       bench::JsonRecords& json) {
  std::printf("\n=== serving: result cache cold vs hot (BENCH_micro.json) ===\n");
  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);
  storm::ClusterOptions copts;
  copts.threads_per_node = bench_threads();
  sched::SchedulerOptions sopts;
  sopts.max_concurrent_queries = 4;
  sopts.max_queue_depth = 64;
  serve::ServeOptions vsopts;
  vsopts.enable_result_cache = true;
  storm::QueryServer server(plan, copts, 0, nullptr, sopts, vsopts);

  // The dashboard query: a full unindexed scan (no zone map on this
  // server) returning ~2.5% of the rows.  Cold requests vary the TIME
  // floor so every one is a distinct key (a genuine re-scan); the hot
  // mode repeats the exact query, so after one miss every request
  // replays stored frames — extraction cost goes to zero and only the
  // connection + shipping path remains.
  const char* hot_sql =
      "SELECT * FROM IparsData WHERE SOIL >= 0.9 AND TIME >= 250";
  expr::Table reference;
  {
    storm::QueryClient warm("127.0.0.1", server.port());
    reference = warm.execute(hot_sql).merged();  // also seeds the cache
  }

  const std::size_t kClients = 4;
  struct Mode {
    const char* config;
    bool unique;      // distinct SQL per request (always a cache miss)
    std::size_t per_client;
  };
  const Mode modes[] = {
      {"serving-cold-unique", true, 6},
      {"serving-hot-cached", false, 100},
  };

  double cold_qps = 0;
  bench::ResultTable table({"config", "queries", "queries/s", "p50 (ms)",
                            "p99 (ms)", "p999 (ms)", "hit rate",
                            "identical"});
  for (const Mode& mode : modes) {
    serve::ResultCache::Stats before = server.result_cache_stats();
    std::vector<std::vector<double>> lat(kClients);
    std::atomic<bool> all_identical{true};
    Stopwatch sw;
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        storm::QueryClient client("127.0.0.1", server.port());
        for (std::size_t q = 0; q < mode.per_client; ++q) {
          std::string sql =
              mode.unique
                  ? format("SELECT * FROM IparsData WHERE SOIL >= 0.9 "
                           "AND TIME >= %zu",
                           100 + i * mode.per_client + q)
                  : std::string(hot_sql);
          Stopwatch one;
          storm::RemoteResult r = client.execute(sql);
          lat[i].push_back(one.elapsed_seconds());
          if (!mode.unique && !r.merged().same_rows(reference))
            all_identical.store(false);
        }
      });
    }
    for (auto& t : clients) t.join();
    double wall = sw.elapsed_seconds();

    std::vector<double> all;
    for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    auto pct = [&](double q) {
      std::size_t idx = static_cast<std::size_t>(q * (all.size() - 1));
      return all[idx] * 1e3;  // ms
    };
    const uint64_t total = kClients * mode.per_client;
    double qps = static_cast<double>(total) / wall;
    if (mode.unique) cold_qps = qps;

    serve::ResultCache::Stats st = server.result_cache_stats();
    uint64_t lookups = st.lookups - before.lookups;
    uint64_t hits = st.hits - before.hits;
    double hit_rate =
        lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0;

    auto& rec = json.add()
                    .field("query", mode.unique ? "unique-per-request" : hot_sql)
                    .field("config", mode.config)
                    .field("clients", static_cast<uint64_t>(kClients))
                    .field("queries", total)
                    .field("wall_seconds", wall)
                    .field("queries_per_sec", qps)
                    .field("p50_ms", pct(0.50))
                    .field("p99_ms", pct(0.99))
                    .field("p999_ms", pct(0.999))
                    .field("cache_hit_rate", hit_rate)
                    .field("identical_to_baseline", all_identical.load());
    if (!mode.unique && cold_qps > 0)
      rec.field("speedup_vs_cold", qps / cold_qps);

    table.add_row({mode.config, std::to_string(total), format("%.1f", qps),
                   format("%.2f", pct(0.50)), format("%.2f", pct(0.99)),
                   format("%.2f", pct(0.999)), format("%.2f", hit_rate),
                   all_identical.load() ? "yes" : "no"});
  }
  table.print();
  if (cold_qps > 0)
    std::printf("hot/cold speedup: the serving acceptance target is >= 10x\n");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  TempDir tmp("bench-micro-scan");
  auto gen = dataset::generate_ipars(micro_cfg(), dataset::IparsLayout::kL0,
                                     tmp.str());
  std::string zm_dir = tmp.str() + "/.zm";
  bench::JsonRecords json;
  run_scan_throughput(gen, json);
  run_zonemap_pruning(gen, zm_dir, json);
  run_titan_st(json);
  run_plan_cache(gen, zm_dir, json);
  run_agg_pushdown(gen, json);
  run_served_qps(gen, json);
  run_serving_cache(gen, json);
  json.write("micro");
  return 0;
}
