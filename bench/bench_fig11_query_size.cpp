// Figure 11: "Execution Time With Varying Query Sizes": (a) IPARS and
// (b) Titan, compiler-generated vs hand-written, four query sizes each.
//
// Expected shape (paper): processing time proportional to the amount of
// data the query retrieves; generated code within ~17% of hand-written for
// IPARS and within ~4% for Titan.
#include <cmath>
#include <memory>

#include "advirt.h"
#include "bench_util.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"
#include "genlib.h"
#include "handwritten/ipars_hand.h"
#include "handwritten/titan_hand.h"

using namespace adv;

namespace {

struct SinkCtx {
  expr::Table* out;
};

extern "C" void fig11_sink(void* p, const double* row) {
  static_cast<SinkCtx*>(p)->out->append_row(row);
}

std::vector<expr::Table::Column> schema_cols(const meta::Schema& s) {
  std::vector<expr::Table::Column> cols;
  for (const auto& a : s.attrs) cols.push_back({a.name, a.type});
  return cols;
}

}  // namespace

static void ipars_part() {
  int s = bench::scale();
  dataset::IparsConfig cfg;
  cfg.nodes = 4;  // paper used 16; scale with ADV_NODES if desired
  cfg.nodes = static_cast<int>(env_int("ADV_NODES", 4));
  cfg.rels = 2;
  cfg.timesteps = 80 * s;
  cfg.grid_per_node = 120;
  cfg.pad_vars = 12;
  TempDir tmp("fig11a");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                     tmp.str());
  codegen::DataServicePlan plan = codegen::DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  bench::GenLib lib =
      bench::compile_generated(plan.model(), tmp.str(), "ipars");
  if (!lib.ok()) {
    std::printf("!! could not compile generated IPARS source\n");
    return;
  }
  auto cols = schema_cols(plan.schema());

  std::printf("--- Figure 11(a): IPARS, %d nodes, %s ---\n", cfg.nodes,
              human_bytes(gen.bytes_written).c_str());
  bench::ResultTable table({"query size", "rows", "hand (ms)",
                            "generated (ms)", "gen/hand"});
  for (int pct : {10, 25, 50, 100}) {
    int t_hi = cfg.timesteps * pct / 100;
    hand::IparsQuery hq;
    hq.time_lo = 1;
    hq.time_hi = t_hi;
    std::vector<double> lo(static_cast<std::size_t>(cfg.num_attrs()),
                           -HUGE_VAL);
    std::vector<double> hi(static_cast<std::size_t>(cfg.num_attrs()),
                           HUGE_VAL);
    lo[1] = 1;
    hi[1] = t_hi;

    uint64_t rows = 0;
    double t_gen = bench::time_best([&] {
      expr::Table out(cols);
      SinkCtx ctx{&out};
      lib.scan(gen.root.c_str(), lo.data(), hi.data(), fig11_sink, &ctx);
      rows = out.num_rows();
    });
    uint64_t hrows = 0;
    double t_hand = bench::time_best(
        [&] { hrows = hand::run_ipars_l0(cfg, gen.root, hq).num_rows(); });
    if (rows != hrows) std::printf("!! row mismatch at %d%%\n", pct);
    table.add_row({format("%d%% of TIME", pct), std::to_string(rows),
                   bench::ms(t_hand), bench::ms(t_gen),
                   format("%.2f", t_gen / t_hand)});
  }
  table.print();
}

static void titan_part() {
  int s = bench::scale();
  dataset::TitanConfig cfg;
  cfg.nodes = 1;  // the paper stored Titan on a single node
  cfg.cells_x = 16;
  cfg.cells_y = 16;
  cfg.cells_z = 4;
  cfg.points_per_chunk = 512 * s;
  TempDir tmp("fig11b");
  auto gen = dataset::generate_titan(cfg, tmp.str());
  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);
  // The generated code embeds the spatial chunk index (the hand-written
  // baseline hard-codes the equivalent chunk skip).
  index::MinMaxIndex idx = index::MinMaxIndex::build(*plan);
  bench::GenLib lib =
      bench::compile_generated(plan->model(), tmp.str(), "titan", &idx);
  if (!lib.ok()) {
    std::printf("!! could not compile generated Titan source\n");
    return;
  }
  auto cols = schema_cols(plan->schema());

  std::printf("\n--- Figure 11(b): Titan, single node, %s ---\n",
              human_bytes(gen.bytes_written).c_str());
  bench::ResultTable table({"query size", "rows", "hand (ms)",
                            "generated (ms)", "gen/hand"});
  for (int pct : {10, 25, 50, 100}) {
    double xmax = cfg.extent_x * pct / 100.0;
    double ymax = cfg.extent_y * pct / 100.0;
    hand::TitanQuery hq;
    hq.x_lo = 0;
    hq.x_hi = xmax;
    hq.y_lo = 0;
    hq.y_hi = ymax;
    std::vector<double> lo(8, -HUGE_VAL), hi(8, HUGE_VAL);
    lo[0] = 0;
    hi[0] = xmax;
    lo[1] = 0;
    hi[1] = ymax;

    uint64_t rows = 0, hrows = 0;
    double t_gen = bench::time_best([&] {
      expr::Table out(cols);
      SinkCtx ctx{&out};
      lib.scan(gen.root.c_str(), lo.data(), hi.data(), fig11_sink, &ctx);
      rows = out.num_rows();
    });
    double t_hand = bench::time_best(
        [&] { hrows = hand::run_titan(cfg, gen.root, hq).num_rows(); });
    if (rows != hrows) std::printf("!! row mismatch at %d%%\n", pct);
    table.add_row({format("%d%% x %d%% box", pct, pct),
                   std::to_string(rows), bench::ms(t_hand),
                   bench::ms(t_gen), format("%.2f", t_gen / t_hand)});
  }
  table.print();
}

int main() {
  std::printf("=== Figure 11: execution time vs query size ===\n");
  ipars_part();
  titan_part();
  std::printf("\n(paper: time proportional to data retrieved; generated "
              "within ~17%% of hand-written for IPARS, ~4%% for Titan)\n");
  return 0;
}
