// Figure 6: "Comparison of PostgreSQL and STORM for Titan Dataset and
// Queries".
//
// The paper loads 6 GB of raw Titan data into PostgreSQL (18 GB after
// loading) and compares query times against STORM reading the original
// flat files.  Here minidb (a from-scratch row store with PostgreSQL's
// storage shape — see DESIGN.md) plays PostgreSQL; the advirt/STORM side
// reads the generated chunked flat files with compiler-generated index and
// extraction functions plus the min/max spatial chunk index.
//
// Expected shape (paper): STORM wins on the scan-heavy queries 1, 2, 3, 5
// (PostgreSQL ~3.5x slower on Q1); PostgreSQL wins only on Q4, where its
// B-tree on S1 turns a 1%-selective predicate into a cheap index scan.
#include <memory>

#include "advirt.h"
#include "bench_util.h"
#include "common/tempdir.h"
#include "dataset/titan.h"
#include "minidb/db.h"

using namespace adv;

int main() {
  int s = bench::scale();
  dataset::TitanConfig cfg;
  cfg.nodes = 1;  // Fig. 6 compares single-server engines
  cfg.cells_x = 16;
  cfg.cells_y = 16;
  cfg.cells_z = 4;
  cfg.points_per_chunk = 512 * s;
  TempDir tmp("fig06");
  auto gen = dataset::generate_titan(cfg, tmp.str());

  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);
  index::MinMaxIndex idx = index::MinMaxIndex::build(*plan);
  storm::StormCluster cluster(plan);

  // Load the same rows into minidb, indexed on the spatial coordinate X
  // and on S1 ("indexed by spatial coordinates in both systems and also by
  // attribute S1 in PostgreSQL").
  expr::Table all = plan->execute("SELECT * FROM TitanData");
  minidb::LoadStats ls;
  std::string dbdir = tmp.subdir("pg");
  minidb::Database db =
      minidb::Database::create(dbdir, "TITAN", all, {"X", "S1"}, &ls);

  std::printf("=== Figure 6: PostgreSQL(-substitute) vs STORM, Titan ===\n");
  std::printf("raw flat files: %s   loaded into row store: %s (%.1fx, "
              "paper: 6 GB -> 18 GB)   load time: %.2f s\n\n",
              human_bytes(gen.bytes_written).c_str(),
              human_bytes(ls.total_bytes()).c_str(),
              static_cast<double>(ls.total_bytes()) / gen.bytes_written,
              ls.load_seconds);

  struct Q {
    const char* id;
    std::string storm_sql;  // against TitanData
    std::string pg_sql;     // against TITAN
  };
  auto both = [](const char* where) {
    return std::pair<std::string, std::string>(
        std::string("SELECT * FROM TitanData") + where,
        std::string("SELECT * FROM TITAN") + where);
  };
  std::vector<Q> queries;
  for (const char* where : {
           "",
           " WHERE X >= 0 AND X <= 10000 AND Y >= 0 AND Y <= 10000 AND Z "
           ">= 0 AND Z <= 100",
           " WHERE DISTANCE(X, Y, Z) < 12000",
           " WHERE S1 < 0.01",
           " WHERE S1 < 0.5",
       }) {
    auto [ss, ps] = both(where);
    queries.push_back({"", ss, ps});
  }
  const char* ids[] = {"Q1 full scan", "Q2 spatial box", "Q3 DISTANCE()<r",
                       "Q4 S1<0.01", "Q5 S1<0.5"};

  // The paper's cluster (PIII, IDE disks) was disk-bound; this host page-
  // caches everything, so the "disk" columns charge each engine the bytes
  // it actually read at a paper-era disk bandwidth on top of measured CPU
  // time.  Set ADV_DISK_MBPS=0 to disable.
  double disk_bw = static_cast<double>(env_int("ADV_DISK_MBPS", 40)) * 1e6;
  bench::ResultTable table({"query", "PG (ms)", "PG disk (ms)", "plan",
                            "STORM (ms)", "STORM disk (ms)", "rows",
                            "winner @disk"});
  int storm_wins = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    minidb::ExecStats pes;
    uint64_t rows_pg = 0, rows_st = 0;
    double t_pg = bench::time_best([&] {
      rows_pg = db.query(queries[i].pg_sql, &pes).num_rows();
    });
    afc::PlannerOptions opts;
    opts.filter = &idx;
    codegen::ExtractStats ses;
    double t_st = bench::time_best([&] {
      codegen::ExtractStats stats;
      rows_st = plan->execute(queries[i].storm_sql, opts, &stats).num_rows();
      ses = stats;
    });
    if (rows_pg != rows_st)
      std::printf("!! row mismatch on %s: %llu vs %llu\n", ids[i],
                  static_cast<unsigned long long>(rows_pg),
                  static_cast<unsigned long long>(rows_st));
    double pg_disk = t_pg, st_disk = t_st;
    if (disk_bw > 0) {
      pg_disk += static_cast<double>(pes.pages_read) * 8192 / disk_bw;
      st_disk += static_cast<double>(ses.bytes_read) / disk_bw;
    }
    double ratio = pg_disk / st_disk;
    if (ratio >= 1.0) storm_wins++;
    table.add_row({ids[i], bench::ms(t_pg), bench::ms(pg_disk), pes.plan,
                   bench::ms(t_st), bench::ms(st_disk),
                   std::to_string(rows_st),
                   ratio >= 1.0 ? format("STORM %.1fx", ratio)
                                : format("PG %.1fx", 1.0 / ratio)});
  }
  table.print();
  std::printf("\nSTORM faster on %d of 5 at disk speed (paper: 4 of 5, "
              "PostgreSQL ahead only on the index-selective Q4)\n",
              storm_wins);
  return 0;
}
