// Figure 10: "Scalability of the System with Increasing Data Sources".
//
// A fixed amount of IPARS data is partitioned over 1, 2, 4, and 8 virtual
// nodes; the same query runs hand-written and compiler-generated.  The
// reported metric is the cluster makespan: the maximum per-node busy time,
// which is what wall clock would be on a real cluster with one CPU per
// node (this host has one core, so nodes are timed sequentially — see
// EXPERIMENTS.md).
//
// Expected shape (paper): both versions scale almost linearly with node
// count; the generated code trails hand-written by 5-34% (average 16%).
#include <cmath>
#include <memory>

#include "advirt.h"
#include "bench_util.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "genlib.h"
#include "handwritten/ipars_hand.h"

using namespace adv;

namespace {

struct SinkCtx {
  expr::Table* out;
};

extern "C" void fig10_sink(void* p, const double* row) {
  static_cast<SinkCtx*>(p)->out->append_row(row);
}

}  // namespace

int main() {
  int s = bench::scale();
  // Fixed totals; the per-node share shrinks as nodes grow.
  const int total_grid = 1920;
  const int timesteps = 120 * s;
  const int rels = 2;

  std::printf("=== Figure 10: scalability with increasing data sources "
              "===\n");

  bench::ResultTable table({"nodes", "hand makespan (ms)",
                            "generated makespan (ms)", "gen/hand",
                            "rows"});
  bench::JsonRecords json;
  std::vector<double> hand_ms, gen_ms, gh;
  for (int nodes : {1, 2, 4, 8}) {
    dataset::IparsConfig cfg;
    cfg.nodes = nodes;
    cfg.rels = rels;
    cfg.timesteps = timesteps;
    cfg.grid_per_node = total_grid / nodes;
    cfg.pad_vars = 12;
    TempDir tmp("fig10");
    auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                       tmp.str());
    auto plan = std::make_shared<codegen::DataServicePlan>(
        meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
        gen.root);

    int t_lo = cfg.timesteps / 4, t_hi = 3 * cfg.timesteps / 4;
    std::string sql = format(
        "SELECT * FROM IparsData WHERE TIME>%d AND TIME<%d AND SOIL > 0.5",
        t_lo, t_hi);
    hand::IparsQuery hq;
    hq.time_lo = t_lo + 1;
    hq.time_hi = t_hi - 1;
    hq.soil_gt = 0.5;

    // Hand-written makespan: time each node alone, take the max.
    double hand_makespan = 0;
    uint64_t hand_rows = 0;
    for (int n = 0; n < nodes; ++n) {
      double t = bench::time_best(
          [&] { hand::run_ipars_l0(cfg, gen.root, hq, n); });
      hand_makespan = std::max(hand_makespan, t);
      hand_rows += hand::run_ipars_l0(cfg, gen.root, hq, n).num_rows();
    }

    // Generated (compiled) makespan: each node's file groups scanned by the
    // emitted code, timed per node, max over nodes.
    bench::GenLib lib = bench::compile_generated(
        plan->model(), tmp.str(), "n" + std::to_string(nodes));
    if (!lib.ok()) {
      std::printf("!! could not compile generated source for %d nodes\n",
                  nodes);
      continue;
    }
    std::vector<double> lo(static_cast<std::size_t>(cfg.num_attrs()),
                           -HUGE_VAL);
    std::vector<double> hi(static_cast<std::size_t>(cfg.num_attrs()),
                           HUGE_VAL);
    lo[1] = static_cast<double>(t_lo + 1);  // TIME
    hi[1] = static_cast<double>(t_hi - 1);
    lo[5] = 0.5;  // SOIL (continuous values: >= equals > almost surely)
    std::vector<expr::Table::Column> cols;
    for (const auto& a : dataset::ipars_schema(cfg).attrs)
      cols.push_back({a.name, a.type});

    double gen_makespan = 0;
    uint64_t gen_rows = 0;
    for (int n = 0; n < nodes; ++n) {
      uint64_t node_rows = 0;
      double t = bench::time_best([&] {
        expr::Table out(cols);
        SinkCtx ctx{&out};
        for (int g = 0; g < lib.num_groups(); ++g) {
          if (lib.group_node(g) != n) continue;
          lib.scan_group(g, gen.root.c_str(), lo.data(), hi.data(),
                         fig10_sink, &ctx);
        }
        node_rows = out.num_rows();
      });
      gen_makespan = std::max(gen_makespan, t);
      gen_rows += node_rows;
    }
    if (hand_rows != gen_rows)
      std::printf("!! row mismatch at %d nodes: %llu vs %llu\n", nodes,
                  static_cast<unsigned long long>(hand_rows),
                  static_cast<unsigned long long>(gen_rows));

    hand_ms.push_back(hand_makespan);
    gen_ms.push_back(gen_makespan);
    gh.push_back(gen_makespan / hand_makespan);
    table.add_row({std::to_string(nodes), bench::ms(hand_makespan),
                   bench::ms(gen_makespan),
                   format("%.2f", gen_makespan / hand_makespan),
                   std::to_string(gen_rows)});
    json.add()
        .field("query", sql)
        .field("nodes", nodes)
        .field("hand_makespan_seconds", hand_makespan)
        .field("generated_makespan_seconds", gen_makespan)
        .field("generated_over_hand", gen_makespan / hand_makespan)
        .field("rows", gen_rows);
  }
  table.print();
  json.write("fig10_scalability");

  double avg = 0;
  for (double g : gh) avg += g;
  avg /= static_cast<double>(gh.size());
  std::printf("\nspeedup at 8 nodes: hand %.1fx, generated %.1fx (ideal "
              "8.0x)\naverage generated/hand-written ratio: %.2f (paper: "
              "1.05-1.34, avg 1.16)\n",
              hand_ms.front() / hand_ms.back(),
              gen_ms.front() / gen_ms.back(), avg);
  return 0;
}
