// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench binary runs with no arguments at a small default scale so the
// whole suite finishes in minutes on a laptop; set ADV_SCALE (a small
// integer, default 1) to grow the datasets toward paper scale, and
// ADV_REPEATS to change the timing repetitions.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/io.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace adv::bench {

inline int scale() {
  return static_cast<int>(env_int("ADV_SCALE", 1));
}

inline int repeats() {
  return static_cast<int>(env_int("ADV_REPEATS", 3));
}

// Runs fn `repeats()` times and returns the best (minimum) wall seconds —
// the standard way to suppress scheduler noise for deterministic work.
inline double time_best(const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats(); ++i) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

// Minimal fixed-width table printer for paper-style result tables.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      w[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        w[c] = std::max(w[c], r[c].size());
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(w[c]), cells[c].c_str());
      std::printf("\n");
    };
    line(headers_);
    std::string dash;
    for (std::size_t c = 0; c < headers_.size(); ++c)
      dash += std::string(w[c], '-') + "  ";
    std::printf("%s\n", dash.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string ms(double seconds) { return format("%.1f", seconds * 1e3); }
inline std::string secs(double seconds) { return format("%.3f", seconds); }

// Machine-readable benchmark output: a flat JSON array of records, one
// object per measurement, written to BENCH_<name>.json so the perf
// trajectory is trackable across PRs (set BENCH_JSON_DIR to redirect).
class JsonRecords {
 public:
  JsonRecords& add() {
    records_.emplace_back();
    return *this;
  }
  JsonRecords& field(const std::string& key, const std::string& v) {
    records_.back().push_back("\"" + escape(key) + "\": \"" + escape(v) +
                              "\"");
    return *this;
  }
  JsonRecords& field(const std::string& key, const char* v) {
    return field(key, std::string(v));
  }
  JsonRecords& field(const std::string& key, double v) {
    return raw(key, format("%.6g", v));
  }
  JsonRecords& field(const std::string& key, uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonRecords& field(const std::string& key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonRecords& field(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }

  std::string str() const {
    std::string out = "[\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out += "  {";
      for (std::size_t f = 0; f < records_[r].size(); ++f) {
        if (f) out += ", ";
        out += records_[r][f];
      }
      out += r + 1 < records_.size() ? "},\n" : "}\n";
    }
    return out + "]\n";
  }

  // Writes BENCH_<name>.json into BENCH_JSON_DIR (default: cwd) and tells
  // the user where it went.
  void write(const std::string& name) const {
    std::string path =
        env_str("BENCH_JSON_DIR", ".") + "/BENCH_" + name + ".json";
    write_text_file(path, str());
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  JsonRecords& raw(const std::string& key, const std::string& v) {
    records_.back().push_back("\"" + escape(key) + "\": " + v);
    return *this;
  }
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::vector<std::string>> records_;
};

}  // namespace adv::bench
