// Figure 7: the table of Titan queries.
//
// Reproduces the query table with measured characteristics on the
// generated dataset: result cardinality, selectivity, bytes the index
// function admits, and AFC counts — the workload definition every other
// Titan experiment draws from.
#include <memory>

#include "advirt.h"
#include "bench_util.h"
#include "common/tempdir.h"
#include "dataset/titan.h"

using namespace adv;

int main() {
  dataset::TitanConfig cfg;
  cfg.nodes = 1;
  cfg.cells_x = 16;
  cfg.cells_y = 16;
  cfg.cells_z = 4;
  cfg.points_per_chunk = 256 * bench::scale();
  TempDir tmp("fig07");
  auto gen = dataset::generate_titan(cfg, tmp.str());
  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);
  index::MinMaxIndex idx = index::MinMaxIndex::build(*plan);

  std::printf("=== Figure 7: Titan query workload ===\n");
  std::printf("dataset: %llu rows, %s raw, %d spatial chunks\n\n",
              static_cast<unsigned long long>(cfg.total_rows()),
              human_bytes(gen.bytes_written).c_str(), cfg.num_chunks());

  const char* queries[] = {
      "SELECT * FROM TitanData",
      "SELECT * FROM TitanData WHERE X >= 0 AND X <= 10000 AND Y >= 0 AND "
      "Y <= 10000 AND Z >= 0 AND Z <= 100",
      "SELECT * FROM TitanData WHERE DISTANCE(X, Y, Z) < 12000",
      "SELECT * FROM TitanData WHERE S1 < 0.01",
      "SELECT * FROM TitanData WHERE S1 < 0.5",
  };

  bench::ResultTable table(
      {"no.", "rows", "selectivity", "AFCs admitted", "bytes admitted"});
  int i = 1;
  for (const char* sql : queries) {
    expr::BoundQuery q = plan->bind(sql);
    afc::PlannerOptions opts;
    opts.filter = &idx;
    afc::PlanResult pr = plan->index_fn(q, opts);
    expr::Table t = plan->execute(q, opts);
    table.add_row({std::to_string(i++),
                   std::to_string(t.num_rows()),
                   format("%.2f%%", 100.0 * t.num_rows() / cfg.total_rows()),
                   std::to_string(pr.afcs.size()),
                   human_bytes(pr.bytes_to_read())});
    std::printf("Q%d: %s\n", i - 1, sql);
  }
  std::printf("\n");
  table.print();
  return 0;
}
