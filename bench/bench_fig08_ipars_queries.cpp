// Figure 8: the table of IPARS queries.
//
// The five query types of the paper — full scan, indexed subsetting,
// indexed subsetting + value filter, indexed subsetting + user-defined
// filter function, and the remote-client variant (modeled with a
// bandwidth-limited data mover) — with measured characteristics on the
// generated dataset.
#include <memory>

#include "advirt.h"
#include "bench_util.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "storm/net.h"

using namespace adv;

int main() {
  int s = bench::scale();
  dataset::IparsConfig cfg;
  cfg.nodes = 4;
  cfg.rels = 4;
  cfg.timesteps = 100 * s;
  cfg.grid_per_node = 100;
  cfg.pad_vars = 12;
  TempDir tmp("fig08");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                     tmp.str());
  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);
  storm::StormCluster local(plan);
  // Q5 in the paper accesses the data from a remote client over the
  // network; model it with a Fast-Ethernet-class data mover.
  storm::ClusterOptions remote_opts;
  remote_opts.transfer.bandwidth_bytes_per_sec = 100e6 / 8;  // 100 Mbit/s
  remote_opts.transfer.latency_sec = 0.0002;
  storm::StormCluster remote(plan, remote_opts);

  // TIME ranges scaled so the windows match the paper's 1000..1100 of
  // 1..T shape (10% of the range).
  int t_lo = cfg.timesteps / 10, t_hi = 2 * cfg.timesteps / 10;

  struct Q {
    const char* type;
    std::string sql;
    bool remote;
  };
  std::vector<Q> queries = {
      {"full scan of the table", "SELECT * FROM IparsData", false},
      {"subsetting via indexed attribute",
       format("SELECT * FROM IparsData WHERE TIME>%d AND TIME<%d", t_lo,
              t_hi),
       false},
      {"indexed attribute and filtering",
       format("SELECT * FROM IparsData WHERE TIME>%d AND TIME<%d AND SOIL "
              "> 0.7",
              t_lo, t_hi),
       false},
      {"indexed attribute and user-defined filter",
       format("SELECT * FROM IparsData WHERE TIME>%d AND TIME<%d AND "
              "SPEED(OILVX, OILVY, OILVZ) < 30",
              t_lo, t_hi),
       false},
      {"access from a remote client",
       format("SELECT * FROM IparsData WHERE TIME>%d AND TIME<%d", t_lo,
              t_lo + (t_hi - t_lo) / 2),
       true},
  };

  std::printf("=== Figure 8: IPARS query workload ===\n");
  std::printf("dataset: %llu rows, %s raw, layout L0, %d nodes\n\n",
              static_cast<unsigned long long>(cfg.total_rows()),
              human_bytes(gen.bytes_written).c_str(), cfg.nodes);

  // For the remote query the paper measures a client across the network;
  // we report both the deterministic Fast-Ethernet transfer model and an
  // actual loopback round trip through the TCP query service.
  storm::QueryServer server(plan);
  storm::QueryClient client("127.0.0.1", server.port());

  bench::ResultTable table({"no.", "type", "rows", "selectivity",
                            "makespan (ms)", "modeled transfer (ms)",
                            "loopback wall (ms)"});
  int i = 1;
  for (const auto& q : queries) {
    storm::StormCluster& c = q.remote ? remote : local;
    storm::QueryResult r = c.execute(q.sql);
    double transfer = 0;
    for (const auto& ns : r.node_stats) transfer += ns.transfer_seconds;
    std::string loopback = "-";
    if (q.remote) {
      double t = bench::time_best([&] { client.execute(q.sql); });
      loopback = bench::ms(t);
    }
    table.add_row(
        {std::to_string(i), q.type, std::to_string(r.total_rows()),
         format("%.2f%%", 100.0 * r.total_rows() / cfg.total_rows()),
         bench::ms(r.makespan_seconds), bench::ms(transfer), loopback});
    std::printf("Q%d: %s\n", i++, q.sql.c_str());
  }
  std::printf("\n");
  table.print();
  return 0;
}
