// Ablation: the indexing service's data structure.
//
// The same spatial query runs with (a) no chunk index, (b) the brute-force
// min/max filter (per-chunk lookup), and (c) the packed R-tree filter
// (one tree walk per query).  As chunk count grows the R-tree's advantage
// in filter time shows while admitted bytes stay identical to (b).
#include <memory>

#include "advirt.h"
#include "bench_util.h"
#include "common/tempdir.h"
#include "dataset/titan.h"

using namespace adv;

int main() {
  std::printf("=== Ablation: chunk index — none vs min/max scan vs R-tree "
              "===\n\n");
  bench::ResultTable table({"chunks", "variant", "plan+filter (ms)",
                            "AFCs admitted", "bytes admitted",
                            "rtree nodes visited"});
  for (int cells : {8, 16, 32}) {
    dataset::TitanConfig cfg;
    cfg.nodes = 1;
    cfg.cells_x = cells;
    cfg.cells_y = cells;
    cfg.cells_z = 4;
    cfg.points_per_chunk = 16;
    TempDir tmp("abidx");
    auto gen = dataset::generate_titan(cfg, tmp.str());
    auto plan = std::make_shared<codegen::DataServicePlan>(
        meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
        gen.root);
    index::MinMaxIndex mm = index::MinMaxIndex::build(*plan);
    index::RTreeFilter rt(mm);

    expr::BoundQuery q = plan->bind(
        "SELECT * FROM TitanData WHERE X <= 2500 AND Y <= 2500 AND Z <= "
        "250");

    struct Variant {
      const char* name;
      const afc::ChunkFilter* filter;
    };
    for (const Variant& v : {Variant{"no index", nullptr},
                             Variant{"min/max scan", &mm},
                             Variant{"R-tree", &rt}}) {
      afc::PlannerOptions opts;
      opts.filter = v.filter;
      afc::PlanResult pr;
      double t = bench::time_best([&] { pr = plan->index_fn(q, opts); });
      table.add_row(
          {std::to_string(cfg.num_chunks()), v.name, bench::ms(t),
           std::to_string(pr.afcs.size()), human_bytes(pr.bytes_to_read()),
           v.filter == &rt ? std::to_string(rt.rtree().last_nodes_visited())
                           : "-"});
    }
  }
  table.print();
  return 0;
}
