// Figure 9: "Query Execution Times Using Different File Layouts".
//
// The same IPARS data is written in the original layout L0 (one file per
// variable; 18 files per aligned chunk set) and the six alternative
// layouts I-VI, then the five Figure 8 queries run against every layout
// through the compiler-generated data services.  For L0 the hand-written
// index/extractor baseline runs as well.
//
// Expected shape (paper): execution time varies with layout; the generated
// code is within ~10% of hand-written on L0 (within ~4% on the UDF-heavy
// Q4); Q1 (full scan) is an order of magnitude above the rest, so the
// paper plots it separately — we print it as its own section.
#include <cmath>
#include <map>
#include <memory>

#include "advirt.h"
#include "bench_util.h"
#include "common/io.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "genlib.h"
#include "handwritten/ipars_hand.h"

using namespace adv;

namespace {

// Row sink materializing result rows into a Table (the same delivery work
// the hand-written and interpreted paths perform) after an optional
// client-side SPEED filter (the filtering service sits above extraction
// for UDF predicates).
struct SinkCtx {
  expr::Table* out = nullptr;
  double speed_lt = HUGE_VAL;
};

extern "C" void bench_sink(void* p, const double* row) {
  auto* ctx = static_cast<SinkCtx*>(p);
  if (std::isfinite(ctx->speed_lt)) {
    double s = std::sqrt(row[7] * row[7] + row[8] * row[8] +
                         row[9] * row[9]);  // OILVX..OILVZ
    if (!(s < ctx->speed_lt)) return;
  }
  ctx->out->append_row(row);
}

}  // namespace

int main() {
  int s = bench::scale();
  dataset::IparsConfig cfg;
  cfg.nodes = 4;
  cfg.rels = 2;
  cfg.timesteps = 250 * s;
  cfg.grid_per_node = 250;
  cfg.pad_vars = 12;  // 17 variables -> L0 has 18 files per chunk set
  TempDir tmp("fig09");

  int t_lo = cfg.timesteps / 10, t_hi = 2 * cfg.timesteps / 10;
  struct Q {
    const char* name;
    std::string sql;
    hand::IparsQuery hq;
  };
  std::vector<Q> queries;
  {
    Q q1{"Q1 full scan", "SELECT * FROM IparsData", {}};
    Q q2{"Q2 TIME range",
         format("SELECT * FROM IparsData WHERE TIME>%d AND TIME<%d", t_lo,
                t_hi),
         {}};
    q2.hq.time_lo = t_lo + 1;
    q2.hq.time_hi = t_hi - 1;
    Q q3{"Q3 +SOIL>0.7", q2.sql + " AND SOIL > 0.7", q2.hq};
    q3.hq.soil_gt = 0.7;
    Q q4{"Q4 +SPEED()<30", q2.sql + " AND SPEED(OILVX, OILVY, OILVZ) < 30",
         q2.hq};
    q4.hq.speed_lt = 30;
    Q q5{"Q5 half window",
         format("SELECT * FROM IparsData WHERE TIME>%d AND TIME<%d", t_lo,
                t_lo + (t_hi - t_lo) / 2),
         {}};
    q5.hq.time_lo = t_lo + 1;
    q5.hq.time_hi = t_lo + (t_hi - t_lo) / 2 - 1;
    queries = {q1, q2, q3, q4, q5};
  }

  // Generate every layout once and compile its plan.
  std::map<std::string, codegen::DataServicePlan> plans;
  std::string l0_root;
  uint64_t bytes = 0;
  for (auto layout : dataset::all_ipars_layouts()) {
    std::string sub = tmp.subdir(dataset::to_string(layout));
    auto gen = dataset::generate_ipars(cfg, layout, sub);
    bytes = std::max(bytes, gen.bytes_written);
    if (layout == dataset::IparsLayout::kL0) l0_root = gen.root;
    plans.emplace(dataset::to_string(layout),
                  codegen::DataServicePlan::from_text(
                      gen.descriptor_text, gen.dataset_name, gen.root));
  }

  std::printf("=== Figure 9: query times across file layouts ===\n");
  std::printf("dataset: %llu rows (~%s per layout), %d nodes, 17 "
              "variables\n\n",
              static_cast<unsigned long long>(cfg.total_rows()),
              human_bytes(bytes).c_str(), cfg.nodes);

  // The compiled backend for L0 (the paper's actual mechanism).
  TempDir gen_tmp("fig09gen");
  bench::GenLib l0_lib =
      bench::compile_generated(plans.at("L0").model(), gen_tmp.str(), "L0");
  bench::ScanFn l0_scan = l0_lib.scan;
  if (!l0_scan) std::printf("!! could not compile generated L0 source\n");
  const int nattrs = cfg.num_attrs();

  // Columns: hand-written L0, generated-and-compiled L0, interpreted plans
  // for L0 and I..VI.
  std::vector<std::string> headers = {"query", "L0 hand", "L0 gen",
                                      "gen/hand", "L0 interp"};
  for (auto layout : dataset::all_ipars_layouts())
    if (layout != dataset::IparsLayout::kL0)
      headers.push_back(std::string(dataset::to_string(layout)) + " interp");

  auto run_query = [&](const Q& q, bench::ResultTable& table) {
    double t_hand = bench::time_best(
        [&] { hand::run_ipars_l0(cfg, l0_root, q.hq); });
    uint64_t ref_rows = hand::run_ipars_l0(cfg, l0_root, q.hq).num_rows();
    std::vector<std::string> row = {q.name, bench::ms(t_hand)};

    // Generated + compiled (intervals to the scan, SPEED filter client-side
    // in the row sink, like STORM's filtering service).
    if (l0_scan) {
      std::vector<double> lo(static_cast<std::size_t>(nattrs), -HUGE_VAL);
      std::vector<double> hi(static_cast<std::size_t>(nattrs), HUGE_VAL);
      lo[1] = static_cast<double>(q.hq.time_lo);
      hi[1] = static_cast<double>(q.hq.time_hi);
      if (std::isfinite(q.hq.soil_gt)) lo[5] = q.hq.soil_gt;
      uint64_t rows = 0;
      std::vector<expr::Table::Column> cols;
      for (const auto& a : dataset::ipars_schema(cfg).attrs)
        cols.push_back({a.name, a.type});
      double t_comp = bench::time_best([&] {
        expr::Table out(cols);
        SinkCtx ctx;
        ctx.out = &out;
        ctx.speed_lt = q.hq.speed_lt;
        l0_scan(l0_root.c_str(), lo.data(), hi.data(), bench_sink, &ctx);
        rows = out.num_rows();
      });
      if (rows != ref_rows)
        std::printf("!! row mismatch: compiled L0 %s (%llu vs %llu)\n",
                    q.name, static_cast<unsigned long long>(rows),
                    static_cast<unsigned long long>(ref_rows));
      row.push_back(bench::ms(t_comp));
      row.push_back(format("%.2f", t_comp / t_hand));
    } else {
      row.push_back("n/a");
      row.push_back("n/a");
    }

    for (auto layout : dataset::all_ipars_layouts()) {
      codegen::DataServicePlan& plan =
          plans.at(dataset::to_string(layout));
      uint64_t rows = 0;
      double t = bench::time_best(
          [&] { rows = plan.execute(q.sql).num_rows(); });
      if (rows != ref_rows)
        std::printf("!! row mismatch: layout %s %s\n",
                    dataset::to_string(layout), q.name);
      row.push_back(bench::ms(t));
    }
    table.add_row(std::move(row));
  };

  std::printf("--- Figure 9(a): the full-scan query ---\n");
  bench::ResultTable ta(headers);
  run_query(queries[0], ta);
  ta.print();

  std::printf("\n--- Figure 9(b): subsetting queries ---\n");
  bench::ResultTable tb(headers);
  for (std::size_t i = 1; i < queries.size(); ++i) run_query(queries[i], tb);
  tb.print();

  std::printf("\n(paper: generated code <= ~10%% slower than hand-written "
              "on L0, <= ~4%% with the UDF of Q4; differences across "
              "layouts reflect their I/O patterns)\n");
  return 0;
}
