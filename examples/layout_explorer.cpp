// Layout explorer: the paper's central promise is that "handling a new
// dataset layout or virtual view only involves writing a new meta-data
// descriptor".  This example writes the same logical IPARS data in all
// seven physical layouts (L0 and I-VI of Figure 9), runs one query against
// each through the same engine, and shows that only the descriptor — never
// any code — changed.
#include <cstdio>

#include "advirt.h"
#include "common/stopwatch.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"

int main() {
  adv::dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 50;
  cfg.grid_per_node = 200;
  cfg.pad_vars = 12;  // the full 17-variable schema
  adv::TempDir tmp("layouts");

  const char* sql =
      "SELECT * FROM IparsData WHERE TIME > 10 AND TIME < 30 AND SOIL > "
      "0.7";
  std::printf("query: %s\n\n", sql);
  std::printf("%-8s %-8s %-10s %-8s %-10s %-10s %-8s\n", "layout", "files",
              "bytes", "groups", "AFCs", "rows", "ms");

  adv::expr::Table reference;
  bool first = true;
  for (auto layout : adv::dataset::all_ipars_layouts()) {
    std::string sub = tmp.subdir(adv::dataset::to_string(layout));
    auto gen = adv::dataset::generate_ipars(cfg, layout, sub);
    adv::codegen::DataServicePlan plan =
        adv::codegen::DataServicePlan::from_text(gen.descriptor_text,
                                                 gen.dataset_name, gen.root);
    adv::expr::BoundQuery q = plan.bind(sql);
    adv::afc::PlanResult pr = plan.index_fn(q);
    adv::Stopwatch sw;
    adv::expr::Table t = plan.execute(q);
    double ms = sw.elapsed_ms();

    bool agrees = true;
    if (first) {
      reference = t;
      first = false;
    } else {
      agrees = t.same_rows(reference);
    }
    std::printf("%-8s %-8llu %-10llu %-8llu %-10zu %-10zu %-8.1f%s\n",
                adv::dataset::to_string(layout),
                static_cast<unsigned long long>(gen.files_written),
                static_cast<unsigned long long>(gen.bytes_written),
                static_cast<unsigned long long>(pr.stats.groups_formed),
                pr.afcs.size(), t.num_rows(), ms,
                agrees ? "" : "   <-- MISMATCH!");
  }

  std::printf("\nEvery layout produced the same %zu rows through the same "
              "engine;\nonly the meta-data descriptor differed.\n",
              reference.num_rows());
  return 0;
}
