// Water-contamination study (one of the paper's motivating applications,
// §2.2): track a contaminant plume across a simulated aquifer.
//
// Unlike the other examples this one defines its dataset entirely from the
// public API: the descriptor is written inline, the binary files are
// produced by the layout-driven writer from that same descriptor, and the
// analysis runs SQL against the result — the full workflow of a scientist
// adopting advirt for their own simulation output.
//
// Physical layout (2 nodes, domain split in X):
//   COORDS           — X, Y of every cell in the node's slab (once)
//   HEAD             — hydraulic head per (hour, cell)
//   TCE / NO3        — one file per contaminant species per (hour, cell)
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "advirt.h"
#include "common/string_util.h"
#include "common/tempdir.h"
#include "dataset/layout_writer.h"

namespace {

constexpr int kNodes = 2;
constexpr int kCellsPerNode = 400;  // 20 x 20 slab per node
constexpr int kHours = 48;

// Simple advecting Gaussian plume: released at (5, 10), drifting +x.
double tce_at(double x, double y, int hour) {
  double cx = 5.0 + 0.5 * hour;  // plume centre drifts east
  double cy = 10.0;
  double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
  return 80.0 * std::exp(-d2 / 18.0);  // ug/L
}

double cell_x(int cell) { return static_cast<double>((cell - 1) % 40); }
double cell_y(int cell) { return static_cast<double>((cell - 1) / 40); }

}  // namespace

int main() {
  adv::TempDir tmp("plume");

  const std::string descriptor = R"(
[AQUIFER]
HOUR = int
X = float
Y = float
HEAD = float
TCE = float
NO3 = float

[PlumeData]
DatasetDescription = AQUIFER
DIR[0] = node0/aquifer
DIR[1] = node1/aquifer

DATASET "PlumeData" {
  DATATYPE { AQUIFER }
  DATAINDEX { HOUR }
  DATASET "coords" {
    DATASPACE { LOOP CELL ($DIRID*400+1):(($DIRID+1)*400):1 { X Y } }
    DATA { "DIR[$DIRID]/COORDS" DIRID = 0:1:1 }
  }
  DATASET "head" {
    DATASPACE {
      LOOP HOUR 1:48:1 { LOOP CELL ($DIRID*400+1):(($DIRID+1)*400):1 { HEAD } }
    }
    DATA { "DIR[$DIRID]/HEAD" DIRID = 0:1:1 }
  }
  DATASET "tce" {
    DATASPACE {
      LOOP HOUR 1:48:1 { LOOP CELL ($DIRID*400+1):(($DIRID+1)*400):1 { TCE } }
    }
    DATA { "DIR[$DIRID]/TCE" DIRID = 0:1:1 }
  }
  DATASET "no3" {
    DATASPACE {
      LOOP HOUR 1:48:1 { LOOP CELL ($DIRID*400+1):(($DIRID+1)*400):1 { NO3 } }
    }
    DATA { "DIR[$DIRID]/NO3" DIRID = 0:1:1 }
  }
}
)";

  // Write the simulation output exactly as the descriptor declares it.
  adv::meta::Descriptor desc = adv::meta::parse_descriptor(descriptor);
  adv::afc::DatasetModel model(desc, "PlumeData", tmp.str());
  adv::dataset::ValueFn physics = [](const std::string& attr,
                                     const adv::meta::VarEnv& vars) {
    int cell = static_cast<int>(vars.get("CELL"));
    int hour = vars.has("HOUR") ? static_cast<int>(vars.get("HOUR")) : 0;
    double x = cell_x(cell), y = cell_y(cell);
    if (attr == "X") return x;
    if (attr == "Y") return y;
    if (attr == "HEAD") return 50.0 - 0.1 * x;  // gentle gradient
    if (attr == "TCE") return tce_at(x, y, hour);
    return 2.0 + 0.05 * y;  // NO3 background
  };
  uint64_t bytes = 0;
  for (const auto& cf : model.files()) {
    std::filesystem::create_directories(
        std::filesystem::path(cf.full_path).parent_path());
    const auto& leaf = model.leaves()[cf.leaf];
    bytes += adv::dataset::write_file_from_layout(*leaf.decl, model.schema(),
                                                  cf.env, cf.full_path,
                                                  physics);
  }
  std::printf("wrote %.1f KB of aquifer simulation output in %zu files\n\n",
              bytes / 1024.0, model.files().size());

  // The analysis: where does the TCE plume exceed the 5 ug/L action level,
  // and how does it drift?  One SQL query per report hour.
  auto plan = std::make_shared<adv::codegen::DataServicePlan>(desc,
                                                              "PlumeData",
                                                              tmp.str());
  adv::storm::StormCluster cluster(plan);
  std::printf("%-6s %-10s %-12s %-10s\n", "hour", "cells>5", "centroid x",
              "max TCE");
  for (int hour : {1, 12, 24, 36, 48}) {
    auto r = cluster.execute(adv::format(
        "SELECT X, Y, TCE FROM PlumeData WHERE HOUR = %d AND TCE > 5.0",
        hour));
    adv::expr::Table t = r.merged();
    double cx = 0, peak = 0;
    for (std::size_t i = 0; i < t.num_rows(); ++i) {
      cx += t.at(i, 0);
      peak = std::max(peak, t.at(i, 2));
    }
    if (t.num_rows()) cx /= static_cast<double>(t.num_rows());
    std::printf("%-6d %-10zu %-12.1f %-10.1f\n", hour, t.num_rows(), cx,
                peak);
  }
  std::printf("\nThe plume drifts east ~0.5 cells/hour, crossing the node-0/"
              "node-1 boundary mid-study;\nqueries were answered by both "
              "virtual nodes without the analysis knowing the split.\n");
  return 0;
}
