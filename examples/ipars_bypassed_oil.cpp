// Oil-reservoir analysis (paper §2.2): "Find the largest bypassed oil
// regions between time T1 and T2 in realization A."
//
// Bypassed oil = grid cells that still hold substantial oil (high SOIL)
// but move slowly (low SPEED), i.e. producing wells are not draining them.
// The pipeline:
//   1. a STORM query subsets the virtual table by realization, time window,
//      saturation and velocity (the paper's Figure 1 example query shape);
//   2. the client clusters the returned cells into connected regions on the
//      grid lattice and reports the largest per time step.
#include <cstdio>
#include <map>
#include <set>

#include "advirt.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"

namespace {

// Union-find over cell ids.
struct DisjointSet {
  std::map<long, long> parent;
  long find(long x) {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    long root = x;
    while (parent[root] != root) root = parent[root];
    while (parent[x] != root) {
      long next = parent[x];
      parent[x] = root;
      x = next;
    }
    return root;
  }
  void unite(long a, long b) { parent[find(a)] = find(b); }
};

long cell_id(double x, double y, double z) {
  return static_cast<long>(z) * 10000 + static_cast<long>(y) * 100 +
         static_cast<long>(x);
}

}  // namespace

int main() {
  // Generate a reservoir study: 2 realizations x 60 time steps on a
  // 4-node cluster (the original L0 layout with per-variable files).
  adv::dataset::IparsConfig cfg;
  cfg.nodes = 4;
  cfg.rels = 2;
  cfg.timesteps = 60;
  cfg.grid_per_node = 128;
  cfg.pad_vars = 0;
  adv::TempDir tmp("bypassed");
  auto gen = adv::dataset::generate_ipars(cfg, adv::dataset::IparsLayout::kL0,
                                          tmp.str());
  std::printf("Generated %llu bytes of reservoir data in %llu files\n",
              static_cast<unsigned long long>(gen.bytes_written),
              static_cast<unsigned long long>(gen.files_written));

  auto plan = std::make_shared<adv::codegen::DataServicePlan>(
      adv::meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);
  adv::storm::StormCluster cluster(plan);

  // The example query of the paper's Figure 1, adapted to this schema.
  const char* sql =
      "SELECT TIME, X, Y, Z, SOIL FROM IparsData "
      "WHERE REL = 1 AND TIME >= 20 AND TIME <= 40 AND SOIL >= 0.8 "
      "AND SPEED(OILVX, OILVY, OILVZ) <= 18.0";
  adv::storm::QueryResult r = cluster.execute(sql);
  std::printf("\n%s\n-> %llu candidate cells from %d nodes "
              "(makespan %.1f ms)\n",
              sql, static_cast<unsigned long long>(r.total_rows()),
              cluster.num_nodes(), r.makespan_seconds * 1e3);

  // Cluster cells into connected regions per time step (6-neighborhood on
  // the integer lattice the coordinates live on).
  adv::expr::Table t = r.merged();
  std::map<long, DisjointSet> per_time;
  std::map<long, std::set<long>> cells_per_time;
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    long time = static_cast<long>(t.at(i, 0));
    cells_per_time[time].insert(cell_id(t.at(i, 1), t.at(i, 2), t.at(i, 3)));
  }
  std::printf("\n%-6s %-10s %-14s\n", "TIME", "cells", "largest region");
  for (const auto& [time, cells] : cells_per_time) {
    DisjointSet ds;
    for (long c : cells) {
      ds.find(c);
      for (long d : {1L, 100L, 10000L}) {  // +x, +y, +z neighbours
        if (cells.count(c + d)) ds.unite(c, c + d);
        if (cells.count(c - d)) ds.unite(c, c - d);
      }
    }
    std::map<long, int> sizes;
    for (long c : cells) sizes[ds.find(c)]++;
    int largest = 0;
    for (const auto& [root, n] : sizes) largest = std::max(largest, n);
    std::printf("%-6ld %-10zu %-14d\n", time, cells.size(), largest);
  }
  return 0;
}
