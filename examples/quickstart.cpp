// Quickstart: give a directory of raw binary files a virtual relational
// table view in ~60 lines.
//
// We create a tiny "weather" dataset by hand — one binary file per station,
// each holding (TEMP, RAIN) float32 pairs for 365 days — then describe that
// layout in the meta-data description language and run SQL against it.
// No data is copied or loaded anywhere: the generated index and extraction
// functions read the original files.
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "advirt.h"
#include "common/io.h"
#include "common/tempdir.h"

int main() {
  adv::TempDir tmp("quickstart");
  std::string dir = tmp.subdir("n0/weather");

  // 1. Write raw binary files the way an instrument or simulation would:
  //    S<id> holds 365 (temp, rain) float pairs for station <id>.
  const int kStations = 4, kDays = 365;
  for (int s = 0; s < kStations; ++s) {
    adv::BufferedWriter w(dir + "/S" + std::to_string(s));
    for (int d = 1; d <= kDays; ++d) {
      float temp = 10.0f + 15.0f * static_cast<float>(s) *
                               (d % 30) / 30.0f;  // synthetic
      float rain = (d % 7 == 0) ? 12.5f : 0.25f * static_cast<float>(d % 5);
      w.write_pod(temp);
      w.write_pod(rain);
    }
    w.close();
  }

  // 2. Describe the schema, storage, and layout.  STATION and DAY are never
  //    stored in the files — they are implicit in the file names and the
  //    loop structure.
  const char* descriptor = R"(
[WEATHER]
STATION = int
DAY = int
TEMP = float
RAIN = float

[WeatherData]
DatasetDescription = WEATHER
DIR[0] = n0/weather

DATASET "WeatherData" {
  DATATYPE { WEATHER }
  DATAINDEX { STATION DAY }
  DATASPACE {
    LOOP DAY 1:365:1 { TEMP RAIN }
  }
  DATA { "DIR[0]/S$STATION" STATION = 0:3:1 }
}
)";

  // 3. Compile the descriptor into data services and run queries.
  auto plan = adv::codegen::DataServicePlan::from_text(
      descriptor, "WeatherData", tmp.str());

  std::printf("Files check out: %s\n\n",
              plan.verify_files().empty() ? "yes" : "NO");

  const char* queries[] = {
      "SELECT STATION, DAY, TEMP FROM WeatherData WHERE DAY <= 3",
      "SELECT DAY, RAIN FROM WeatherData WHERE STATION = 2 AND RAIN > 10",
      "SELECT * FROM WeatherData WHERE TEMP > 20 AND DAY BETWEEN 100 AND "
      "110",
  };
  for (const char* sql : queries) {
    adv::codegen::ExtractStats stats;
    adv::expr::Table t = plan.execute(sql, {}, &stats);
    std::printf("%s\n-> %zu rows (scanned %llu, read %llu bytes)\n%s\n", sql,
                t.num_rows(),
                static_cast<unsigned long long>(stats.rows_scanned),
                static_cast<unsigned long long>(stats.bytes_read),
                t.to_csv(5).c_str());
  }

  // 4. The same descriptor can be compiled to standalone C++ source.
  std::string src = adv::codegen::emit_cpp(plan.model());
  std::printf("Generated standalone extractor: %zu lines of C++\n",
              std::count(src.begin(), src.end(), '\n'));
  return 0;
}
