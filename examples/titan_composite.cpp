// Satellite data processing (paper §2.2): answer a space/time range query
// over the Titan dataset and build a composite image — "each pixel in the
// composite image is computed by selecting the 'best' sensor value that
// maps to the associated grid point".
//
// Demonstrates the spatial indexing service: the same query runs with and
// without the min/max chunk index, and the run with the index reads only
// the chunks intersecting the query box.  The composite is written as a
// PGM image.
#include <cstdio>
#include <vector>

#include "advirt.h"
#include "common/stopwatch.h"
#include "common/tempdir.h"
#include "dataset/titan.h"

int main() {
  adv::dataset::TitanConfig cfg;
  cfg.nodes = 2;
  cfg.cells_x = 16;
  cfg.cells_y = 16;
  cfg.cells_z = 4;
  cfg.points_per_chunk = 512;
  adv::TempDir tmp("titan");
  auto gen = adv::dataset::generate_titan(cfg, tmp.str());
  std::printf("Generated %.1f MB of satellite data (%d chunks)\n",
              static_cast<double>(gen.bytes_written) / (1 << 20),
              cfg.num_chunks());

  auto plan = std::make_shared<adv::codegen::DataServicePlan>(
      adv::meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);

  // Build and persist the spatial chunk index (a one-time administrative
  // step), then reload it the way a long-running service would.
  adv::index::MinMaxIndex::build(*plan).save(tmp.file("titan.advidx"));
  adv::index::MinMaxIndex idx =
      adv::index::MinMaxIndex::load(tmp.file("titan.advidx"));
  std::printf("Spatial chunk index: %zu chunks indexed on X,Y,Z\n",
              idx.num_chunks());

  // Query: a quarter of the surface, early time window.
  const char* sql =
      "SELECT X, Y, S1 FROM TitanData "
      "WHERE X >= 0 AND X <= 20000 AND Y >= 0 AND Y <= 20000 "
      "AND Z >= 0 AND Z <= 500";

  adv::storm::StormCluster cluster(plan);
  adv::Stopwatch sw;
  adv::storm::QueryResult without = cluster.execute(sql);
  double t_scan = sw.elapsed_seconds();
  sw.reset();
  adv::storm::QueryResult with = cluster.execute(sql, {}, &idx);
  double t_idx = sw.elapsed_seconds();

  std::printf("\nwithout index: %8.2f ms, %9llu bytes read\n", t_scan * 1e3,
              static_cast<unsigned long long>(without.total_bytes_read()));
  std::printf("with index:    %8.2f ms, %9llu bytes read\n", t_idx * 1e3,
              static_cast<unsigned long long>(with.total_bytes_read()));
  std::printf("rows: %llu (identical either way: %s)\n",
              static_cast<unsigned long long>(with.total_rows()),
              with.merged().same_rows(without.merged()) ? "yes" : "NO");

  // Composite: 128x128 image over the query box, pixel = max S1.
  const int W = 128, H = 128;
  std::vector<double> best(static_cast<std::size_t>(W) * H, 0.0);
  adv::expr::Table t = with.merged();
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    int px = static_cast<int>(t.at(i, 0) / 20000.0 * (W - 1));
    int py = static_cast<int>(t.at(i, 1) / 20000.0 * (H - 1));
    std::size_t p = static_cast<std::size_t>(py) * W + px;
    best[p] = std::max(best[p], t.at(i, 2));
  }
  std::string pgm_path = tmp.file("composite.pgm");
  {
    FILE* f = std::fopen(pgm_path.c_str(), "w");
    std::fprintf(f, "P2\n%d %d\n255\n", W, H);
    for (int y = 0; y < H; ++y) {
      for (int x = 0; x < W; ++x)
        std::fprintf(f, "%d ",
                     static_cast<int>(best[static_cast<std::size_t>(y) * W +
                                           x] * 255));
      std::fprintf(f, "\n");
    }
    std::fclose(f);
  }
  std::printf("\nComposite image written to %s\n", pgm_path.c_str());
  return 0;
}
