// advtool — command-line front end for the advirt data-virtualization
// toolkit.  This is the repository administrator's interface the paper
// describes: write a meta-data descriptor for an existing flat-file
// dataset, validate it against the files, build the chunk index, serve SQL
// queries, and emit the standalone generated C++ services.
//
// Usage:
//   advtool parse    <descriptor>
//   advtool info     <descriptor> <dataset> [--root DIR]
//   advtool verify   <descriptor> <dataset> --root DIR
//   advtool generate ipars|titan --out DIR [options]
//   advtool index    <descriptor> <dataset> --root DIR --out FILE
//   advtool query    <descriptor> <dataset> --root DIR [--index FILE]
//            [--partition N] [--csv N] "SELECT ..."
//   advtool emit     <descriptor> <dataset> [--index FILE] [--out FILE]
#include <cstdio>
#include <chrono>
#include <cstring>
#include <thread>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "advirt.h"
#include "common/io.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"
#include "metadata/xml.h"

using namespace adv;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr, R"(advtool — automatic data virtualization toolkit

commands:
  parse <descriptor>
      Parse and validate a meta-data descriptor; print its canonical form.
  info <descriptor> <dataset> [--root DIR]
      Show the compiled model: schema, nodes, leaves, concrete files.
  verify <descriptor> <dataset> --root DIR
      Check that every file exists with the byte size the layout implies.
  generate ipars --out DIR [--layout L0|I|II|III|IV|V|VI] [--nodes N]
           [--rels R] [--timesteps T] [--grid G] [--pad P]
  generate titan --out DIR [--nodes N] [--cells-x N] [--cells-y N]
           [--cells-z N] [--points P]
      Write a synthetic dataset and its descriptor (descriptor.adv).
  index <descriptor> <dataset> --root DIR --out FILE
      Build the min/max chunk index over the DATAINDEX attributes.
  query <descriptor> <dataset> --root DIR [--index FILE] [--partition N]
        [--csv N] "SELECT ..."
      Execute a query on the virtual cluster; print stats and sample rows.
  emit <descriptor> <dataset> [--index FILE] [--out FILE]
      Emit the standalone generated C++ index/extraction functions.
  serve <descriptor> <dataset> --root DIR [--port P] [--index FILE]
      Run the STORM query service on TCP; clients use `query --host`.
  query ... [--host H --port P]
      With --host, submit the query to a running server instead of
      executing locally (positional: just the SQL text).
)");
  std::exit(2);
}

// Minimal flag parser: positional args plus --key value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string flag(const std::string& key, const std::string& def = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  int flag_int(const std::string& key, int def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::stoi(it->second);
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    std::string s = argv[i];
    if (starts_with(s, "--")) {
      if (i + 1 >= argc) usage(("missing value for " + s).c_str());
      a.flags[s.substr(2)] = argv[++i];
    } else {
      a.positional.push_back(std::move(s));
    }
  }
  return a;
}

// Descriptors load from the native text syntax or the XML embedding; the
// format is detected from the first non-whitespace character.
meta::Descriptor load_descriptor(const std::string& path) {
  std::string text = read_text_file(path);
  std::size_t i = text.find_first_not_of(" \t\r\n");
  if (i != std::string::npos && text[i] == '<')
    return meta::parse_descriptor_xml(text);
  return meta::parse_descriptor(text);
}

codegen::DataServicePlan make_plan(const Args& a) {
  if (a.positional.size() < 2)
    usage("expected <descriptor-file> <dataset-name>");
  return codegen::DataServicePlan(load_descriptor(a.positional[0]),
                                  a.positional[1], a.flag("root", "."));
}

int cmd_parse(const Args& a) {
  if (a.positional.empty()) usage("expected <descriptor-file>");
  meta::Descriptor d = load_descriptor(a.positional[0]);
  if (a.has("xml") || a.flag("format") == "xml") {
    std::printf("%s", meta::to_xml(d).c_str());
  } else {
    std::printf("%s", meta::to_text(d).c_str());
  }
  std::fprintf(stderr, "OK: %zu schema(s), %zu storage section(s), %zu "
               "dataset(s)\n",
               d.schemas.size(), d.storages.size(), d.datasets.size());
  return 0;
}

int cmd_info(const Args& a) {
  codegen::DataServicePlan plan = make_plan(a);
  const afc::DatasetModel& m = plan.model();
  std::printf("dataset:  %s (schema %s)\n", m.dataset_name().c_str(),
              m.schema().name.c_str());
  std::printf("root:     %s\n", m.root_path().c_str());
  std::printf("schema:   %zu attributes, %zu bytes/row\n", m.schema().size(),
              m.schema().row_bytes());
  for (const auto& attr : m.schema().attrs)
    std::printf("          %-12s %s\n", attr.name.c_str(),
                to_string(attr.type).c_str());
  std::printf("nodes:    %d (", m.num_nodes());
  for (std::size_t i = 0; i < m.node_names().size(); ++i)
    std::printf("%s%s", i ? ", " : "", m.node_names()[i].c_str());
  std::printf(")\n");
  std::printf("leaves:   %zu\n", m.leaves().size());
  for (std::size_t l = 0; l < m.leaves().size(); ++l) {
    const auto& leaf = m.leaves()[l];
    std::printf("          %-12s %zu file(s), %zu region(s)\n",
                leaf.name.c_str(), m.files_of_leaf(static_cast<int>(l)).size(),
                leaf.skeleton.size());
  }
  uint64_t total = 0;
  for (const auto& f : m.files()) total += m.expected_file_bytes(f);
  std::printf("files:    %zu concrete files, %s expected on disk\n",
              m.files().size(), human_bytes(total).c_str());
  return 0;
}

int cmd_verify(const Args& a) {
  codegen::DataServicePlan plan = make_plan(a);
  auto problems = plan.verify_files();
  if (problems.empty()) {
    std::printf("OK: %zu files verified\n", plan.model().files().size());
    return 0;
  }
  for (const auto& p : problems) std::printf("PROBLEM: %s\n", p.c_str());
  return 1;
}

int cmd_generate(const Args& a) {
  if (a.positional.empty()) usage("expected dataset kind: ipars or titan");
  std::string out = a.flag("out");
  if (out.empty()) usage("--out DIR is required");
  if (iequals(a.positional[0], "ipars")) {
    dataset::IparsConfig cfg;
    cfg.nodes = a.flag_int("nodes", 4);
    cfg.rels = a.flag_int("rels", 4);
    cfg.timesteps = a.flag_int("timesteps", 100);
    cfg.grid_per_node = a.flag_int("grid", 100);
    cfg.pad_vars = a.flag_int("pad", 12);
    dataset::IparsLayout layout = dataset::IparsLayout::kL0;
    std::string lname = a.flag("layout", "L0");
    bool found = false;
    for (auto l : dataset::all_ipars_layouts())
      if (iequals(lname, dataset::to_string(l))) {
        layout = l;
        found = true;
      }
    if (!found) usage("unknown layout (use L0, I..VI)");
    auto gen = dataset::generate_ipars(cfg, layout, out);
    write_text_file(out + "/descriptor.adv", gen.descriptor_text);
    std::printf("generated %s in %llu files (layout %s) under %s\n",
                human_bytes(gen.bytes_written).c_str(),
                static_cast<unsigned long long>(gen.files_written),
                dataset::to_string(layout), out.c_str());
    std::printf("descriptor: %s/descriptor.adv (dataset IparsData)\n",
                out.c_str());
    return 0;
  }
  if (iequals(a.positional[0], "titan")) {
    dataset::TitanConfig cfg;
    cfg.nodes = a.flag_int("nodes", 1);
    cfg.cells_x = a.flag_int("cells-x", 16);
    cfg.cells_y = a.flag_int("cells-y", 16);
    cfg.cells_z = a.flag_int("cells-z", 4);
    cfg.points_per_chunk = a.flag_int("points", 512);
    auto gen = dataset::generate_titan(cfg, out);
    write_text_file(out + "/descriptor.adv", gen.descriptor_text);
    std::printf("generated %s in %llu files (%d chunks) under %s\n",
                human_bytes(gen.bytes_written).c_str(),
                static_cast<unsigned long long>(gen.files_written),
                cfg.num_chunks(), out.c_str());
    std::printf("descriptor: %s/descriptor.adv (dataset TitanData)\n",
                out.c_str());
    return 0;
  }
  usage("unknown dataset kind");
}

int cmd_index(const Args& a) {
  codegen::DataServicePlan plan = make_plan(a);
  std::string out = a.flag("out");
  if (out.empty()) usage("--out FILE is required");
  Stopwatch sw;
  index::MinMaxIndex idx = index::MinMaxIndex::build(plan);
  idx.save(out);
  std::printf("indexed %zu chunks on %zu attribute(s) in %.2f s -> %s "
              "(%s)\n",
              idx.num_chunks(), idx.attrs().size(), sw.elapsed_seconds(),
              out.c_str(), human_bytes(file_size(out)).c_str());
  return 0;
}

int cmd_serve(const Args& a) {
  auto plan = std::make_shared<codegen::DataServicePlan>(
      load_descriptor(a.positional.at(0)), a.positional.at(1),
      a.flag("root", "."));
  static std::optional<index::MinMaxIndex> idx;
  if (a.has("index")) idx = index::MinMaxIndex::load(a.flag("index"));
  storm::QueryServer server(plan, {}, a.flag_int("port", 0),
                            idx ? &*idx : nullptr);
  std::printf("serving dataset %s on 127.0.0.1:%d  (Ctrl-C to stop)\n",
              a.positional[1].c_str(), server.port());
  std::fflush(stdout);
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

// Remote-mode query: submit to a running server.
int cmd_query_remote(const Args& a) {
  if (a.positional.empty()) usage("expected \"SELECT ...\"");
  storm::QueryClient client(a.flag("host"), a.flag_int("port", 0));
  storm::PartitionSpec part;
  part.num_consumers = a.flag_int("partition", 1);
  if (part.num_consumers > 1)
    part.policy = storm::PartitionSpec::Policy::kRoundRobin;
  Stopwatch sw;
  storm::RemoteResult r = client.execute(a.positional.back(), part);
  std::printf("rows: %llu across %zu partition(s) in %.1f ms\n",
              static_cast<unsigned long long>(r.total_rows()),
              r.partitions.size(), sw.elapsed_ms());
  for (const auto& ns : r.node_stats)
    std::printf("  node %d: %llu AFCs, %s read, %llu matched\n", ns.node_id,
                static_cast<unsigned long long>(ns.afcs),
                human_bytes(ns.bytes_read).c_str(),
                static_cast<unsigned long long>(ns.rows_matched));
  int sample = a.flag_int("csv", 10);
  if (sample > 0 && r.total_rows() > 0)
    std::printf("\n%s",
                r.merged().to_csv(static_cast<std::size_t>(sample)).c_str());
  return 0;
}

int cmd_query(const Args& a) {
  if (a.has("host")) return cmd_query_remote(a);
  if (a.positional.size() < 3)
    usage("expected <descriptor> <dataset> \"SELECT ...\"");
  auto plan = std::make_shared<codegen::DataServicePlan>(
      load_descriptor(a.positional[0]),
      a.positional[1], a.flag("root", "."));

  std::optional<index::MinMaxIndex> idx;
  if (a.has("index")) idx = index::MinMaxIndex::load(a.flag("index"));

  storm::StormCluster cluster(plan);
  storm::PartitionSpec part;
  part.num_consumers = a.flag_int("partition", 1);
  if (part.num_consumers > 1)
    part.policy = storm::PartitionSpec::Policy::kRoundRobin;

  Stopwatch sw;
  storm::QueryResult r = cluster.execute(a.positional[2], part,
                                         idx ? &*idx : nullptr);
  double total = sw.elapsed_seconds();
  if (!r.first_error().empty()) {
    std::fprintf(stderr, "node error: %s\n", r.first_error().c_str());
    return 1;
  }
  std::printf("rows: %llu across %zu partition(s)\n",
              static_cast<unsigned long long>(r.total_rows()),
              r.partitions.size());
  std::printf("time: %.1f ms wall, %.1f ms makespan over %d node(s)\n",
              total * 1e3, r.makespan_seconds * 1e3, cluster.num_nodes());
  for (const auto& ns : r.node_stats)
    std::printf("  node %d: %llu AFCs, %s read, %llu scanned, %llu "
                "matched, %.1f ms busy\n",
                ns.node_id, static_cast<unsigned long long>(ns.afcs),
                human_bytes(ns.bytes_read).c_str(),
                static_cast<unsigned long long>(ns.rows_scanned),
                static_cast<unsigned long long>(ns.rows_matched),
                ns.busy_seconds * 1e3);
  int sample = a.flag_int("csv", 10);
  if (sample > 0 && r.total_rows() > 0) {
    std::printf("\n%s",
                r.merged().to_csv(static_cast<std::size_t>(sample)).c_str());
  }
  return 0;
}

int cmd_emit(const Args& a) {
  codegen::DataServicePlan plan = make_plan(a);
  std::optional<index::MinMaxIndex> idx;
  if (a.has("index")) idx = index::MinMaxIndex::load(a.flag("index"));
  std::string src = codegen::emit_cpp(plan.model(), idx ? &*idx : nullptr);
  std::string out = a.flag("out");
  if (out.empty()) {
    std::printf("%s", src.c_str());
  } else {
    write_text_file(out, src);
    std::fprintf(stderr, "wrote %zu bytes of generated C++ to %s\n",
                 src.size(), out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string cmd = argv[1];
  Args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "parse") return cmd_parse(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "index") return cmd_index(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "emit") return cmd_emit(args);
    usage(("unknown command '" + cmd + "'").c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "advtool: %s\n", e.what());
    return 1;
  }
}
