// adv_index — build and inspect zone-map index sidecars.
//
// The zone map records per-chunk [min, max] of every stored attribute and
// persists as minidb heap + B+tree + manifest next to the data (see
// docs/INDEXING.md).  This tool is the repository administrator's interface
// to it: build after ingesting data, inspect to audit coverage and
// staleness, check as a monitoring probe (exit 1 when any sidecar entry
// went stale).
//
// Usage:
//   adv_index build   <descriptor> <dataset> --root DIR [--dir DIR]
//             [--threads N] [--io mmap|pread]
//   adv_index inspect <descriptor> <dataset> --root DIR [--dir DIR]
//             [--limit N]
//   adv_index check   <descriptor> <dataset> --root DIR [--dir DIR]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "advirt.h"
#include "common/io.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "metadata/xml.h"

using namespace adv;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr, R"(adv_index — zone-map sidecar builder/inspector

commands:
  build <descriptor> <dataset> --root DIR [--dir DIR] [--threads N]
        [--io mmap|pread]
      Scan every chunk once and write the sidecar triplet
      (<dataset>.zm.{heap,idx,meta}) under --dir (default: --root).
  inspect <descriptor> <dataset> --root DIR [--dir DIR] [--limit N]
      Load the sidecar, report coverage, staleness, and sample bounds.
  check <descriptor> <dataset> --root DIR [--dir DIR]
      Exit 0 when a sidecar exists and is fully fresh, 1 otherwise.
)");
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string flag(const std::string& key, const std::string& def = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  int flag_int(const std::string& key, int def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::stoi(it->second);
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    std::string s = argv[i];
    if (starts_with(s, "--")) {
      if (i + 1 >= argc) usage(("missing value for " + s).c_str());
      a.flags[s.substr(2)] = argv[++i];
    } else {
      a.positional.push_back(std::move(s));
    }
  }
  return a;
}

meta::Descriptor load_descriptor(const std::string& path) {
  std::string text = read_text_file(path);
  std::size_t i = text.find_first_not_of(" \t\r\n");
  if (i != std::string::npos && text[i] == '<')
    return meta::parse_descriptor_xml(text);
  return meta::parse_descriptor(text);
}

codegen::DataServicePlan make_plan(const Args& a) {
  if (a.positional.size() < 2)
    usage("expected <descriptor-file> <dataset-name>");
  return codegen::DataServicePlan(load_descriptor(a.positional[0]),
                                  a.positional[1], a.flag("root", "."));
}

std::string sidecar_dir(const Args& a) {
  return a.flag("dir", a.flag("root", "."));
}

int cmd_build(const Args& a) {
  codegen::DataServicePlan plan = make_plan(a);
  zonemap::ZoneMap::BuildOptions opts;
  std::string io = a.flag("io");
  if (io == "mmap") opts.io_mode = IoMode::kMmap;
  else if (io == "pread") opts.io_mode = IoMode::kPread;
  else if (!io.empty()) usage("--io must be mmap or pread");

  int threads = a.flag_int("threads", 0);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(threads));

  zonemap::ZoneMap zm = zonemap::ZoneMap::build(plan, pool.get(), opts);
  std::string dir = sidecar_dir(a);
  zm.save(dir, plan);
  auto sp = zonemap::ZoneMap::sidecar_paths(dir,
                                            plan.model().dataset_name());
  std::printf("indexed %zu chunks x %zu attribute(s) over %llu file(s) in "
              "%.2f s\n",
              zm.num_chunks(), zm.attrs().size(),
              static_cast<unsigned long long>(zm.num_files()),
              zm.build_seconds());
  std::printf("  heap:     %s (%s)\n", sp.heap.c_str(),
              human_bytes(file_size(sp.heap)).c_str());
  std::printf("  btree:    %s (%s)\n", sp.btree.c_str(),
              human_bytes(file_size(sp.btree)).c_str());
  std::printf("  manifest: %s\n", sp.manifest.c_str());
  return 0;
}

int cmd_inspect(const Args& a) {
  codegen::DataServicePlan plan = make_plan(a);
  std::string dir = sidecar_dir(a);
  auto zm = zonemap::ZoneMap::load(dir, plan);
  if (!zm) {
    std::printf("no loadable zone-map sidecar for dataset %s under %s\n",
                plan.model().dataset_name().c_str(), dir.c_str());
    return 1;
  }
  const meta::Schema& schema = plan.schema();
  std::printf("dataset:    %s\n", plan.model().dataset_name().c_str());
  std::printf("attributes:");
  for (int attr : zm->attrs())
    std::printf(" %s", schema.at(static_cast<std::size_t>(attr)).name.c_str());
  std::printf("\n");
  std::printf("files:      %llu indexed, %llu stale (dropped)\n",
              static_cast<unsigned long long>(zm->num_files()),
              static_cast<unsigned long long>(zm->num_stale_files()));
  std::printf("chunks:     %zu live entries\n", zm->num_chunks());

  int limit = a.flag_int("limit", 5);
  int shown = 0;
  for (const auto& [key, b] : zm->entries()) {
    if (shown++ >= limit) break;
    std::printf("  %s @%llu:", key.file.c_str(),
                static_cast<unsigned long long>(key.offset));
    for (std::size_t i = 0; i < zm->attrs().size(); ++i)
      std::printf(" %s=[%g, %g]",
                  schema.at(static_cast<std::size_t>(zm->attrs()[i]))
                      .name.c_str(),
                  b.bounds[i].first, b.bounds[i].second);
    std::printf("\n");
  }
  if (zm->num_chunks() > static_cast<std::size_t>(limit))
    std::printf("  ... (%zu more)\n",
                zm->num_chunks() - static_cast<std::size_t>(limit));
  return 0;
}

int cmd_check(const Args& a) {
  codegen::DataServicePlan plan = make_plan(a);
  auto zm = zonemap::ZoneMap::load(sidecar_dir(a), plan);
  if (!zm) {
    std::printf("STALE: no loadable sidecar\n");
    return 1;
  }
  if (zm->num_stale_files() > 0) {
    std::printf("STALE: %llu of %llu files changed since the build\n",
                static_cast<unsigned long long>(zm->num_stale_files()),
                static_cast<unsigned long long>(zm->num_files()));
    return 1;
  }
  std::printf("OK: %zu chunks over %llu files, all fresh\n", zm->num_chunks(),
              static_cast<unsigned long long>(zm->num_files()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string cmd = argv[1];
  Args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "build") return cmd_build(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "check") return cmd_check(args);
    usage(("unknown command '" + cmd + "'").c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "adv_index: %s\n", e.what());
    return 1;
  }
}
