// adv_node — one storage node's shard served as a standalone daemon.
//
// The process half of the distribution layer (see docs/DISTRIBUTION.md):
// a DistCoordinator scatters per-node queries at a set of these over the
// wire protocol's kNodeQuery frames, and `kill -9` of one adv_node takes
// down exactly one shard — which the multi-process chaos harness
// (tests/dist_chaos_test.cpp) exercises on purpose.
//
// Usage:
//   adv_node <descriptor> <dataset> --root DIR --node N [--port P]
//            [--index FILE] [--heartbeat-ms M] [--checkpoint-afcs K]
//            [--stall-after N --stall-seconds S]
//
// On success prints exactly one line to stdout:
//   READY <port> node <node_id> pid <pid>
// then serves until killed.  Spawners parse that line for the ephemeral
// port; everything else goes to stderr.
//
// Fault campaigns arm per-process from ADV_FAULT_SEED / ADV_FAULT_SPEC in
// the daemon's own environment, so a spawner can aim a campaign at one
// replica and leave its peers clean.
//
// On Linux the daemon requests SIGKILL on parent death (PR_SET_PDEATHSIG)
// so a crashed or aborted test run cannot leave orphans behind.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#include <csignal>
#endif

#include "common/io.h"
#include "common/string_util.h"
#include "index/minmax.h"
#include "metadata/model.h"
#include "metadata/xml.h"
#include "storm/node_daemon.h"

using namespace adv;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "adv_node — serve one storage node's shard as a daemon\n\n"
               "usage: adv_node <descriptor> <dataset> --root DIR --node N\n"
               "                [--port P] [--index FILE] [--heartbeat-ms M]\n"
               "                [--checkpoint-afcs K]\n"
               "                [--stall-after N --stall-seconds S]\n");
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string flag(const std::string& key, const std::string& def = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  int flag_int(const std::string& key, int def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::stoi(it->second);
  }
  double flag_double(const std::string& key, double def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::stod(it->second);
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

}  // namespace

int main(int argc, char** argv) {
#ifdef __linux__
  // Orphan prevention: if whatever spawned us dies (a chaos test SIGKILLed
  // mid-run, a ctest timeout), the kernel reaps this daemon too.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (starts_with(s, "--")) {
      if (i + 1 >= argc) usage(("missing value for " + s).c_str());
      a.flags[s.substr(2)] = argv[++i];
    } else {
      a.positional.push_back(std::move(s));
    }
  }
  if (a.positional.size() < 2) usage("expected <descriptor> <dataset>");
  if (!a.has("node")) usage("--node is required");

  try {
    std::string text = read_text_file(a.positional[0]);
    std::size_t i = text.find_first_not_of(" \t\r\n");
    meta::Descriptor desc = (i != std::string::npos && text[i] == '<')
                                ? meta::parse_descriptor_xml(text)
                                : meta::parse_descriptor(text);
    auto plan = std::make_shared<codegen::DataServicePlan>(
        std::move(desc), a.positional[1], a.flag("root", "."));

    std::optional<index::MinMaxIndex> idx;
    if (a.has("index")) idx = index::MinMaxIndex::load(a.flag("index"));

    storm::NodeDaemonOptions opts;
    opts.node_id = a.flag_int("node", 0);
    opts.port = a.flag_int("port", 0);
    opts.filter = idx ? &*idx : nullptr;
    opts.heartbeat_interval_seconds =
        a.flag_double("heartbeat-ms", 50.0) / 1e3;
    opts.checkpoint_afcs =
        static_cast<uint32_t>(a.flag_int("checkpoint-afcs", 1));
    opts.stall_after_afcs =
        static_cast<uint64_t>(a.flag_int("stall-after", 0));
    opts.stall_seconds = a.flag_double("stall-seconds", 0);

    storm::NodeDaemon daemon(plan, opts);
    std::printf("READY %d node %d pid %d\n", daemon.port(), daemon.node_id(),
                static_cast<int>(::getpid()));
    std::fflush(stdout);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adv_node: %s\n", e.what());
    return 1;
  }
}
